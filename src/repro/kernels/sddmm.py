"""Magicube SDDMM: (dense x dense) sampled by a sparse mask (Sec. IV-C).

SDDMM computes ``C = (A @ B) . sampled at the nonzero 1-D blocks of a
mask``: in sparse Transformers this is the attention-score computation
``Q K^T`` masked to the sparse attention pattern; in pruned training it
is the sparse weight-gradient.

Thread-block view (Fig. 8b): each block owns a ``BSm x BSn`` *dense*
output tile where ``BSm = V`` (one strip of output vectors) and ``BSn``
= 8 columns per warp; it marches the K dimension in ``BSk`` steps. A is
row-major, B column-major — so B feeds the MMA RHS fragments with direct
register loads (no online transpose needed, Fig. 9), while the A tile is
staged in shared memory and reused by all warps. Optionally the A tile
is prefetched with the Algorithm-1 pipeline — which the paper's Fig. 13
shows is *not* beneficial, because the shared A tile is a tiny fraction
of the traffic; the cost accounting reproduces that.

The output's storage format is chosen by the *subsequent* operator:
BCRS when a softmax follows (attention), SR-BCRS when an SpMM follows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, PrecisionError, ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import bcrs_to_srbcrs
from repro.formats.srbcrs import SRBCRSMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.mma import mma_shape_for
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div
from repro.kernels.emulation import (
    EmulationPlan,
    emulated_matmul,
    mma_count_per_tile,
    plan_for,
)
from repro.lowp.quantize import int_range


@dataclass(frozen=True)
class SDDMMConfig:
    """Configuration of one SDDMM kernel instance.

    ``l_bits``/``r_bits`` must be an SDDMM pair of Table IV (L16-R16
    emulated; L8-R8 / L4-R4 native). ``prefetch_lhs`` enables the
    Algorithm-1 pipeline on the shared A tile (the Fig. 13 ablation).
    ``warps`` warps per block, each producing 8 output columns.
    """

    l_bits: int = 8
    r_bits: int = 8
    l_signed: bool = True
    r_signed: bool = True
    prefetch_lhs: bool = False
    warps: int = 2
    output_format: str = "bcrs"

    def __post_init__(self) -> None:
        if self.warps < 1 or self.warps > 8:
            raise ConfigError(f"warps must be in [1, 8], got {self.warps}")
        if self.output_format not in ("bcrs", "srbcrs"):
            raise ConfigError(f"unknown output format {self.output_format!r}")

    @property
    def bsn(self) -> int:
        """Output vectors per thread block."""
        return 8 * self.warps

    @property
    def name(self) -> str:
        return f"L{self.l_bits}-R{self.r_bits}"


@dataclass
class SDDMMResult:
    """Output of one SDDMM execution: a sparse matrix + cost stats."""

    output: BCRSMatrix | SRBCRSMatrix
    stats: KernelStats


class MagicubeSDDMM:
    """The Magicube SDDMM kernel for one precision configuration."""

    def __init__(self, config: SDDMMConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else SDDMMConfig(**kwargs)
        self.plan: EmulationPlan = plan_for(
            self.config.l_bits, self.config.r_bits, op="sddmm"
        )

    @property
    def bsk(self) -> int:
        """Reduction step: the native MMA k dim."""
        return mma_shape_for(self.plan.native_bits).k

    # ------------------------------------------------------------------
    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        mask: BCRSMatrix,
        strict: bool = False,
    ) -> SDDMMResult:
        """Compute ``C = (A @ B) sampled at mask`` and account the cost.

        ``a`` is (M, K) row-major, ``b`` (K, N) (the kernel reads it
        column-major); ``mask`` supplies the output topology (its values
        are ignored). ``strict`` routes every strip through the
        digit-decomposition algebra.
        """
        cfg = self.config
        self._validate(a, b, mask)
        # dtype promotions and pointer reads hoisted out of the strip
        # loop; one (V, max_vectors) accumulator is reused per strip
        a64 = np.asarray(a, dtype=np.int64)
        b64 = np.asarray(b, dtype=np.int64)
        v = mask.vector_length
        num_vectors = mask.num_vectors
        values = np.zeros((num_vectors, v), dtype=np.int64)
        ptrs = np.asarray(mask.row_ptrs)
        seg_counts = np.diff(ptrs)
        max_vec = int(seg_counts.max()) if seg_counts.size else 0
        acc = np.empty((v, max_vec), dtype=np.int64)
        for r in range(mask.num_strips):
            lo, hi = int(ptrs[r]), int(ptrs[r + 1])
            if hi == lo:
                continue
            cols = mask.col_indices[lo:hi]
            a_strip = a64[r * v : (r + 1) * v]  # (V, K)
            b_cols = b64[:, cols]  # (K, nvec)
            if strict:
                prod = emulated_matmul(
                    a_strip,
                    b_cols,
                    self.plan,
                    a_signed=cfg.l_signed,
                    b_signed=cfg.r_signed,
                )
            else:
                prod = np.matmul(a_strip, b_cols, out=acc[:, : hi - lo])
            values[lo:hi] = prod.T  # vector-major

        out = BCRSMatrix(
            shape=(mask.shape[0], mask.shape[1]),
            vector_length=v,
            row_ptrs=mask.row_ptrs.copy(),
            col_indices=mask.col_indices.copy(),
            values=values,
        )
        result: BCRSMatrix | SRBCRSMatrix = out
        if cfg.output_format == "srbcrs":
            # feed the subsequent SpMM: stride = that kernel's MMA k dim
            result = bcrs_to_srbcrs(out, stride=16)
        stats = self._account(a64.shape, b64.shape, mask)
        return SDDMMResult(output=result, stats=stats)

    # ------------------------------------------------------------------
    def _validate(self, a: np.ndarray, b: np.ndarray, mask: BCRSMatrix) -> None:
        cfg = self.config
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"incompatible SDDMM shapes {a.shape} @ {b.shape}")
        if mask.shape != (a.shape[0], b.shape[1]):
            raise ShapeError(
                f"mask shape {mask.shape} != output shape {(a.shape[0], b.shape[1])}"
            )
        if a.shape[1] % self.bsk != 0:
            raise ShapeError(
                f"K={a.shape[1]} must be a multiple of BSk={self.bsk} "
                f"for {self.plan.name}"
            )
        if mask.vector_length > 8:
            raise ShapeError("mask vector length must be <= 8 (the MMA m dim)")
        lo, hi = int_range(cfg.l_bits, cfg.l_signed)
        if a.size and (a.min() < lo or a.max() > hi):
            raise PrecisionError(f"A values exceed {cfg.name} LHS range [{lo}, {hi}]")
        lo, hi = int_range(cfg.r_bits, cfg.r_signed)
        if b.size and (b.min() < lo or b.max() > hi):
            raise PrecisionError(f"B values exceed {cfg.name} RHS range [{lo}, {hi}]")

    # ------------------------------------------------------------------
    def _account(
        self, a_shape: tuple[int, int], b_shape: tuple[int, int], mask: BCRSMatrix
    ) -> KernelStats:
        cfg = self.config
        plan = self.plan
        m, k = a_shape
        n = b_shape[1]
        v = mask.vector_length
        steps = k // self.bsk
        shape = mma_shape_for(plan.native_bits)

        vec_counts = np.asarray(mask.vectors_per_strip())
        vec_blocks = -(-vec_counts // cfg.bsn)  # vectorized ceil-div
        padded_vecs = int((vec_blocks * cfg.bsn).sum())
        blocks_total = int(vec_blocks.sum())

        stats = KernelStats(name=f"magicube-sddmm-{plan.name}")
        mma_count = (
            blocks_total * cfg.warps * steps * mma_count_per_tile(plan, v)
        )
        stats.add_mma(f"int{plan.native_bits}", mma_count, shape.ops)
        stats.useful_ops = 2 * k * mask.nnz

        t = TrafficCounter()
        lhs_bytes_per_block = v * k * cfg.l_bits // 8
        lhs_access = blocks_total * lhs_bytes_per_block
        t.read("lhs", lhs_access, min(m * k * cfg.l_bits // 8, lhs_access))
        rhs_access = padded_vecs * k * cfg.r_bits // 8
        t.read("rhs", rhs_access, min(k * n * cfg.r_bits // 8, rhs_access))
        t.read("mask_indices", mask.num_vectors * 4)
        t.write("output", mask.nnz * 2 + mask.num_vectors * 4)
        stats.traffic = t

        # shared memory: only the A tile is staged; one store + one load
        # per step, reused by all warps (conflict-free row-major access)
        lhs_tile_words = max(v * self.bsk * cfg.l_bits // 8 // 4, 1)
        per_step = 2 * ceil_div(lhs_tile_words, 32)
        stats.smem_transaction_cycles = blocks_total * steps * per_step

        if plan.products > 1:
            stats.epilogue_cycles = mma_count * 6

        # B loads are consumed by direct register loads interleaved with
        # the MMAs (always effectively pipelined); the prefetch knob only
        # moves the *A-tile* latency in or out of the shadow of compute.
        # Even without prefetch most of that latency hides behind the
        # other resident blocks of the SM (the A tile is shared by all
        # warps and re-read every step by none), so only ~1/4 of the
        # stream's time is exposed — which is why Fig. 13 finds LHS
        # prefetch not beneficial.
        stats.prefetch = True
        stats.serial_bytes = 0 if cfg.prefetch_lhs else lhs_access // 4
        stats.grid = LaunchGrid(
            blocks=max(blocks_total, 1), block=ThreadBlock(warps=cfg.warps)
        )
        stats.notes = {
            "variant": "prefetch" if cfg.prefetch_lhs else "basic",
            "padded_vectors": padded_vecs,
        }
        return stats
