"""Sparse softmax in fp16 with fused (de)quantization (Fig. 16).

In the quantized attention layer the SDDMM's integer scores are
dequantized to fp16, softmax runs per row over the *nonzero* entries of
the sparse attention matrix, and the result is re-quantized to unsigned
integers for the following SpMM — all fused into one kernel in the
paper. The softmax output is non-negative, so the quantization is
scale-only unsigned; the paper evaluates 16-bit and 8-bit softmax
outputs (Fig. 17's ``16b-8b`` / ``8b-8b`` labels are
``softmax-bits`` - ``QKV-bits``).

fp16 arithmetic is modelled by rounding through ``np.float16`` at the
points where the real kernel stores halves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div
from repro.lowp.quantize import QuantParams, int_range


@dataclass
class SoftmaxResult:
    """Sparse softmax output: quantized codes + the scale to undo them."""

    output: BCRSMatrix
    params: QuantParams
    stats: KernelStats


def sparse_softmax_quantized(
    scores: BCRSMatrix,
    scale: float,
    out_bits: int = 8,
) -> SoftmaxResult:
    """Row-wise fp16 softmax over a sparse score matrix, fused quantize.

    ``scores`` holds integer attention scores (SDDMM output in BCRS);
    ``scale`` dequantizes them to real logits. Rows with no stored
    entries are left empty (their attention contributes nothing).
    Returns unsigned ``out_bits`` codes with a fixed scale of
    ``1 / qmax`` — softmax outputs are in [0, 1], so calibration is
    static, which is what lets the paper fuse quantization into the
    softmax kernel without a second pass.
    """
    if out_bits not in (8, 16):
        raise ShapeError(f"softmax output must be 8 or 16 bits, got {out_bits}")
    m, n = scores.shape
    v = scores.vector_length
    _, qmax = int_range(out_bits, signed=False)
    params = QuantParams(scale=1.0 / qmax, bits=out_bits, signed=False)

    # dequantize scores to fp16 logits
    logits = np.float16(np.asarray(scores.values, dtype=np.float32) * np.float32(scale))
    out_values = np.zeros_like(scores.values, dtype=np.int64)

    # softmax runs per *row* of the matrix; a strip holds V rows whose
    # entries share column positions (vector-major storage), so each of
    # the V lanes is an independent row softmax over the strip's vectors
    for r in range(scores.num_strips):
        lo, hi = int(scores.row_ptrs[r]), int(scores.row_ptrs[r + 1])
        if hi == lo:
            continue
        row_logits = logits[lo:hi].astype(np.float32)  # (nvec, V)
        mx = row_logits.max(axis=0, keepdims=True)
        ex = np.exp(row_logits - mx)
        sm = np.float16(ex / ex.sum(axis=0, keepdims=True))  # fp16 storage
        out_values[lo:hi] = np.clip(
            np.rint(sm.astype(np.float32) / params.scale), 0, qmax
        ).astype(np.int64)

    out = BCRSMatrix(
        shape=(m, n),
        vector_length=v,
        row_ptrs=scores.row_ptrs.copy(),
        col_indices=scores.col_indices.copy(),
        values=out_values,
    )
    stats = _account(scores, out_bits)
    return SoftmaxResult(output=out, params=params, stats=stats)


def _account(scores: BCRSMatrix, out_bits: int) -> KernelStats:
    """Cost of the fused softmax kernel: one streaming pass, fp32 exp on
    CUDA cores (modelled as epilogue cycles)."""
    stats = KernelStats(name=f"softmax-fp16-q{out_bits}")
    t = TrafficCounter()
    in_bytes = scores.nnz * 2 + scores.num_vectors * 4
    t.read("scores", in_bytes)
    t.write("probs", scores.nnz * out_bits // 8)
    stats.traffic = t
    # ~4 instructions per element (exp, sub, div, quant) over 32 lanes
    stats.epilogue_cycles = ceil_div(scores.nnz * 4, 32)
    stats.useful_ops = scores.nnz * 4
    stats.prefetch = True  # pure streaming kernel
    stats.grid = LaunchGrid(
        blocks=max(scores.num_strips, 1), block=ThreadBlock(warps=2)
    )
    return stats
