"""Magicube SpMM: sparse(SR-BCRS) x dense -> dense (Sec. IV-B).

The kernel follows the paper's thread-block decomposition (Fig. 3b):
each thread block owns a ``BSm x BSn`` output tile where ``BSm = V`` (one
SR-BCRS row strip) and iterates over the strip's stride groups; each
group contributes one ``(V x BSk) @ (BSk x BSn)`` partial product, with
``BSk`` = the SR-BCRS stride = the MMA reduction dim. The SR-BCRS layout
feeds the LHS fragments with plain contiguous loads; the RHS rows are
gathered by the group's column indices and transposed online (Figs. 4-7);
Algorithm 1 prefetches the next RHS block behind the current MMAs.

Execution here is *functional + accounted*: the true integer result is
computed (vectorized per strip), and a :class:`KernelStats` records the
exact MMA, traffic, shared-memory and epilogue costs of the configured
variant for the cost model. ``strict=True`` additionally routes every
tile through the bit-accurate fragment-level MMA path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, PrecisionError, ShapeError
from repro.formats.srbcrs import PAD_INDEX, SRBCRSMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.mma import mma_shape_for
from repro.gpu.sharedmem import conflict_degree, spmm_rhs_load_pattern
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div
from repro.kernels.emulation import (
    EmulationPlan,
    emulated_matmul,
    mma_count_per_tile,
    plan_for,
)
from repro.kernels.transpose import transpose_bitop_cost
from repro.lowp.quantize import int_range


@dataclass(frozen=True)
class SpMMConfig:
    """Configuration of one SpMM kernel instance.

    ``l_bits``/``r_bits`` select the Table-IV precision pair.
    ``conflict_free``, ``prefetch`` and ``index_shuffle`` are the Fig. 11
    ablation knobs (index shuffling only matters on the int4 path).
    ``bsn`` is the RHS tile width in elements (64 -> 64B transactions,
    two warps per block; 128 -> 128B, four warps). ``fuse_dequant``
    writes fp16 outputs (2 B) instead of raw int32 accumulators.
    """

    l_bits: int = 8
    r_bits: int = 8
    l_signed: bool = True
    r_signed: bool = True
    conflict_free: bool = True
    prefetch: bool = True
    index_shuffle: bool = True
    bsn: int = 64
    fuse_dequant: bool = True

    def __post_init__(self) -> None:
        if self.bsn % 32 != 0 or self.bsn < 32 or self.bsn > 128:
            raise ConfigError(f"BSn must be 32, 64, 96 or 128, got {self.bsn}")

    @property
    def warps(self) -> int:
        """Warps per thread block: one per 32 output columns."""
        return self.bsn // 32

    @property
    def name(self) -> str:
        return f"L{self.l_bits}-R{self.r_bits}"


@dataclass
class SpMMResult:
    """Output of one SpMM execution."""

    output: np.ndarray
    stats: KernelStats
    dequantized: np.ndarray | None = None


class MagicubeSpMM:
    """The Magicube SpMM kernel for one precision configuration."""

    def __init__(self, config: SpMMConfig | None = None, **kwargs) -> None:
        self.config = config if config is not None else SpMMConfig(**kwargs)
        self.plan: EmulationPlan = plan_for(
            self.config.l_bits, self.config.r_bits, op="spmm"
        )

    @property
    def required_stride(self) -> int:
        """SR-BCRS stride the LHS must use: the native MMA k dim."""
        return mma_shape_for(self.plan.native_bits).k

    # ------------------------------------------------------------------
    def __call__(
        self,
        lhs: SRBCRSMatrix,
        rhs: np.ndarray,
        scale: float | None = None,
        strict: bool = False,
    ) -> SpMMResult:
        """Compute ``C = lhs @ rhs`` and account the kernel's costs.

        ``rhs`` is the dense (K, N) integer-code matrix, row-major.
        ``scale`` (product of the operands' quantization scales) enables
        the fused dequantization epilogue. ``strict`` computes every
        strip through the digit-decomposition algebra instead of a
        direct matmul (slow; for verification).
        """
        cfg = self.config
        self._validate(lhs, rhs)
        m, k = lhs.shape
        n = rhs.shape[1]
        v = lhs.vector_length
        stride = lhs.stride

        out = np.zeros((m, n), dtype=np.int64)
        # dtype promotions hoisted out of the strip loop; the staging
        # buffer below is allocated once and reused per strip
        rhs64 = np.asarray(rhs, dtype=np.int64)
        values = np.asarray(lhs.values, dtype=np.int64)
        row_starts = lhs.row_starts
        counts = np.asarray(lhs.row_ends) - np.asarray(row_starts)
        max_pad = int((-(-counts // stride)).max()) * stride if counts.size else 0
        staged = np.empty((max_pad, n), dtype=np.int64)
        for r in range(lhs.num_strips):
            start = int(row_starts[r])
            npad = lhs.strip_num_groups(r) * stride
            if npad == 0:
                continue
            cols = lhs.col_indices[start : start + npad]
            valid = cols != PAD_INDEX
            safe = np.where(valid, cols, 0)
            gathered = staged[:npad]  # (npad, N) staged rows
            np.take(rhs64, safe, axis=0, out=gathered)
            gathered[~valid] = 0
            # strip LHS: stride groups stored (V, stride) row-major —
            # a transpose-reshape view beats concatenating group tiles
            tiles = values[start * v : (start + npad) * v].reshape(-1, v, stride)
            lhs_strip = tiles.transpose(1, 0, 2).reshape(v, npad)  # (V, npad)
            if strict:
                out[r * v : (r + 1) * v] = emulated_matmul(
                    lhs_strip,
                    gathered,
                    self.plan,
                    a_signed=cfg.l_signed,
                    b_signed=cfg.r_signed,
                )
            else:
                np.matmul(lhs_strip, gathered, out=out[r * v : (r + 1) * v])

        stats = self._account(lhs, n)
        deq = None
        if scale is not None and cfg.fuse_dequant:
            deq = (out * scale).astype(np.float32)
        return SpMMResult(output=out, stats=stats, dequantized=deq)

    # ------------------------------------------------------------------
    def _validate(self, lhs: SRBCRSMatrix, rhs: np.ndarray) -> None:
        cfg = self.config
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
            raise ShapeError(
                f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}"
            )
        if lhs.stride != self.required_stride:
            raise ShapeError(
                f"{self.plan.name} needs SR-BCRS stride {self.required_stride} "
                f"(the int{self.plan.native_bits} MMA k dim), got {lhs.stride}"
            )
        lo, hi = int_range(cfg.l_bits, cfg.l_signed)
        vals = np.asarray(lhs.values)
        if vals.size and (vals.min() < lo or vals.max() > hi):
            raise PrecisionError(f"LHS values exceed {cfg.name} LHS range [{lo}, {hi}]")
        lo, hi = int_range(cfg.r_bits, cfg.r_signed)
        if rhs.size and (rhs.min() < lo or rhs.max() > hi):
            raise PrecisionError(f"RHS values exceed {cfg.name} RHS range [{lo}, {hi}]")

    # ------------------------------------------------------------------
    def _account(self, lhs: SRBCRSMatrix, n: int) -> KernelStats:
        """Build the KernelStats for this execution (exact counts)."""
        cfg = self.config
        plan = self.plan
        m, k = lhs.shape
        v = lhs.vector_length
        stride = lhs.stride
        strips = lhs.num_strips
        col_blocks = ceil_div(n, cfg.bsn)
        groups_total = lhs.num_padded_vectors // stride if stride else 0
        shape = mma_shape_for(plan.native_bits)

        stats = KernelStats(name=f"magicube-spmm-{plan.name}")
        mma_count = (
            groups_total * col_blocks * (cfg.bsn // 8) * mma_count_per_tile(plan, v)
        )
        stats.add_mma(f"int{plan.native_bits}", mma_count, shape.ops)
        stats.useful_ops = 2 * lhs.nnz * n

        # ---- global traffic ------------------------------------------
        t = TrafficCounter()
        lhs_value_bytes = lhs.num_padded_vectors * v * cfg.l_bits // 8
        lhs_index_bytes = lhs.num_padded_vectors * 4
        ptr_bytes = strips * 8  # 2M pointers, 4 B each
        t.read("lhs_values", lhs_value_bytes * col_blocks, lhs_value_bytes)
        t.read("lhs_indices", lhs_index_bytes * col_blocks, lhs_index_bytes)
        t.read("row_pointers", ptr_bytes * col_blocks, ptr_bytes)
        rhs_access = lhs.num_padded_vectors * n * cfg.r_bits // 8
        rhs_unique = min(k * n * cfg.r_bits // 8, rhs_access)
        t.read("rhs", rhs_access, rhs_unique)
        t.write("output", m * n * (2 if cfg.fuse_dequant else 4))
        stats.traffic = t

        # ---- shared memory -------------------------------------------
        bsn_bytes = cfg.bsn * cfg.r_bits // 8
        staged_words = stride * bsn_bytes // 4
        store_tx = ceil_div(staged_words, 32)  # row-major stores, conflict-free
        pad_words = 8 if cfg.conflict_free else 0
        pattern = spmm_rhs_load_pattern(bsk=16, bsn_bytes=bsn_bytes, pad_words=pad_words)
        degree = max(conflict_degree(p) for p in pattern)
        load_tx = ceil_div(staged_words, 32)
        lhs_words = v * stride * cfg.l_bits // 8 // 4
        lhs_tx = ceil_div(max(lhs_words, 1), 32)
        per_group = store_tx + load_tx * degree + lhs_tx
        stats.smem_transaction_cycles = groups_total * col_blocks * per_group

        # ---- epilogue: register transposes, stacking shuffles ---------
        staged_values = stride * cfg.bsn
        transpose_ops = transpose_bitop_cost(
            plan.native_bits, staged_values, shuffled=cfg.index_shuffle
        )
        epilogue = groups_total * col_blocks * ceil_div(transpose_ops, 32)
        if plan.products > 1:
            # warp shuffles to exchange stacked partials + scale-adds
            epilogue += mma_count * 6
        stats.epilogue_cycles = epilogue

        stats.grid = LaunchGrid(
            blocks=max(strips * col_blocks, 1), block=ThreadBlock(warps=cfg.warps)
        )
        stats.prefetch = cfg.prefetch
        stats.notes = {
            "variant": self.variant_name(),
            "conflict_degree": degree,
            "padding_ratio": lhs.padding_ratio,
        }
        return stats

    def variant_name(self) -> str:
        """Human-readable ablation variant (Fig. 11 legend)."""
        cfg = self.config
        if not cfg.conflict_free:
            return "basic"
        parts = ["conflict-free"]
        if cfg.prefetch:
            parts.append("prefetch")
        if cfg.index_shuffle and self.plan.native_bits == 4:
            parts.append("col-index-shuffling")
        return " + ".join(parts)
