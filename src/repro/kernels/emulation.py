"""Mixed-precision emulation and MMA stacking (Sec. IV-D, Fig. 10).

Tensor cores natively multiply int8 x int8 and int4 x int4. Magicube
emulates higher/mixed precisions by digit decomposition: an x-bit LHS
value splits into ``x/w`` w-bit digits (top digit signed, rest unsigned,
see :mod:`repro.lowp.decompose`), each digit matrix multiplies the RHS
with a native MMA, and the int32 partial products recombine as
``C = sum_{i,j} 2^(w*(i+j)) * (L_i @ R_j)``.

Supported pairs (paper Table IV)::

    SpMM   emulated: L16-R16, L16-R8, L16-R4, L12-R4, L8-R4
           native:   L8-R8, L4-R4
    SDDMM  emulated: L16-R16
           native:   L8-R8, L4-R4

**MMA stacking** (Fig. 10b): with vector length V < 8 the MMA's m dim is
underutilized; during emulation the digit matrices A_0, A_1 can be
stacked along m into a single MMA, recovering utilization. The stacked
partial results land in different accumulator rows and are exchanged
with warp shuffles, then scaled and summed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError
from repro.lowp.decompose import decompose_matrix, digit_weights


@dataclass(frozen=True)
class EmulationPlan:
    """How one ``Lx-Ry`` precision pair maps onto native MMAs.

    ``native_bits`` is the MMA operand width (8 or 4); ``l_digits`` /
    ``r_digits`` how many digit matrices each side splits into. The
    total native products per logical MMA is ``l_digits * r_digits``.
    """

    l_bits: int
    r_bits: int
    native_bits: int

    @property
    def l_digits(self) -> int:
        return self.l_bits // self.native_bits

    @property
    def r_digits(self) -> int:
        return self.r_bits // self.native_bits

    @property
    def products(self) -> int:
        return self.l_digits * self.r_digits

    @property
    def is_native(self) -> bool:
        return self.products == 1

    @property
    def name(self) -> str:
        return f"L{self.l_bits}-R{self.r_bits}"

    def weights(self) -> list[tuple[int, int, int]]:
        """(scale, l_digit, r_digit) triples for recombination."""
        wl = digit_weights(self.l_bits, self.native_bits)
        wr = digit_weights(self.r_bits, self.native_bits)
        return [
            (wl[i] * wr[j], i, j)
            for i in range(self.l_digits)
            for j in range(self.r_digits)
        ]


#: Table IV, SpMM row: precision pairs -> native MMA width
_SPMM_PLANS = {
    (16, 16): 8,
    (16, 8): 8,
    (8, 8): 8,
    (16, 4): 4,
    (12, 4): 4,
    (8, 4): 4,
    (4, 4): 4,
}
#: Table IV, SDDMM row
_SDDMM_PLANS = {
    (16, 16): 8,
    (8, 8): 8,
    (4, 4): 4,
}


def supported_pairs(op: str = "spmm") -> list[tuple[int, int]]:
    """All (l_bits, r_bits) pairs of Table IV for the given operation."""
    table = _SPMM_PLANS if op == "spmm" else _SDDMM_PLANS
    return sorted(table, reverse=True)


def plan_for(l_bits: int, r_bits: int, op: str = "spmm") -> EmulationPlan:
    """Emulation plan for an ``Lx-Ry`` pair; PrecisionError if outside
    Table IV."""
    if op not in ("spmm", "sddmm"):
        raise PrecisionError(f"unknown operation {op!r}")
    table = _SPMM_PLANS if op == "spmm" else _SDDMM_PLANS
    native = table.get((l_bits, r_bits))
    if native is None:
        raise PrecisionError(
            f"L{l_bits}-R{r_bits} is not supported for {op} (Table IV)"
        )
    return EmulationPlan(l_bits=l_bits, r_bits=r_bits, native_bits=native)


def stack_factor(vector_length: int, products: int) -> int:
    """How many digit products stack into one MMA (Fig. 10b).

    With V rows used of the MMA's m=8, up to ``8 // V`` digit matrices
    fit stacked; never more than there are products. Native precision
    (1 product) cannot stack.
    """
    if vector_length < 1 or vector_length > 8:
        raise PrecisionError(f"vector length must be in [1, 8], got {vector_length}")
    return max(1, min(8 // vector_length, products))


def mma_count_per_tile(plan: EmulationPlan, vector_length: int) -> int:
    """Native MMA instructions per logical (8 x k) x (k x 8) tile product.

    Emulation multiplies the count by ``products``; stacking divides it
    back by the stack factor (ceil — a partial stack still costs one).
    """
    s = stack_factor(vector_length, plan.products)
    return -(-plan.products // s)


def emulated_matmul(
    a: np.ndarray,
    b: np.ndarray,
    plan: EmulationPlan,
    a_signed: bool = True,
    b_signed: bool = True,
) -> np.ndarray:
    """Exact integer matmul via the digit-decomposition algebra.

    Splits both operands into native-width digits, multiplies every
    digit pair with int32-accumulating native-width products, and
    recombines with the 2^(w(i+j)) scales — precisely what the GPU
    kernel does across its MMA calls. Output dtype int64 (the final
    scaled sum can exceed int32 for L16-R16; the hardware kernel
    accumulates those in 64-bit or fp32 epilogues).
    """
    a = np.asarray(a)
    b = np.asarray(b)
    l_digits = decompose_matrix(a, plan.l_bits, plan.native_bits, signed=a_signed)
    r_digits = decompose_matrix(b.T, plan.r_bits, plan.native_bits, signed=b_signed)
    r_digits = [d.T for d in r_digits]
    acc = np.zeros((a.shape[0], b.shape[1]), dtype=np.int64)
    for scale, i, j in plan.weights():
        part = l_digits[i].astype(np.int64) @ r_digits[j].astype(np.int64)
        acc += scale * part
    return acc


def stacked_lhs(digit_tiles: list[np.ndarray], vector_length: int) -> list[np.ndarray]:
    """Stack digit LHS tiles along the m dimension (Fig. 10b).

    Each input tile is ``(V, k)``; the output tiles are ``(V * s, k)``
    with ``s`` digits stacked (the last stack may be partial, padded
    with zero rows to keep the MMA shape).
    """
    if not digit_tiles:
        return []
    v = vector_length
    k = digit_tiles[0].shape[1]
    s = stack_factor(v, len(digit_tiles))
    out = []
    for base in range(0, len(digit_tiles), s):
        chunk = digit_tiles[base : base + s]
        tile = np.zeros((v * s, k), dtype=np.int64)
        for idx, d in enumerate(chunk):
            tile[idx * v : (idx + 1) * v] = d
        out.append(tile)
    return out
