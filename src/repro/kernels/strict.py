"""Device-level reference execution of Magicube SpMM.

These executors run the *entire* simulated machinery the way the CUDA
kernel does — per thread block, per stride group: gather the RHS rows,
stage them (in shuffled order on the int4 path), perform the online
transpose on packed registers, build the warp fragments, issue
``mma_sync`` per MMA with its interleaved column set, and keep the
accumulators in register fragments until the final store.

They are orders of magnitude slower than the vectorized kernels and
exist as the ground truth the fast paths are tested against: if the
SR-BCRS layout, the Fig. 4-6 transpose dataflow, the Fig. 7 bit trick,
or the fragment mappings were wrong anywhere, these would disagree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.shuffle import SHUFFLE_ORDER
from repro.formats.srbcrs import PAD_INDEX, SRBCRSMatrix
from repro.gpu.fragments import INT4_M8N8K32, INT8_M8N8K16
from repro.gpu.mma import mma_sync
from repro.kernels.transpose import (
    int8_mma_columns,
    online_transpose_int4,
    online_transpose_int8,
)


def _gather_rows(rhs: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """RHS rows addressed by a group's column indices (zeros for pads)."""
    safe = np.where(cols == PAD_INDEX, 0, cols)
    rows = rhs[safe]
    rows[cols == PAD_INDEX] = 0
    return rows


def spmm_int8_strict(lhs: SRBCRSMatrix, rhs: np.ndarray, bsn: int = 64) -> np.ndarray:
    """Fragment-level int8 SpMM (L8-R8): the Fig. 3-6 dataflow.

    Requires stride 16 (the m8n8k16 reduction dim) and BSn a multiple
    of 32. Returns the exact int32->int64 product.
    """
    if lhs.stride != 16:
        raise ShapeError("int8 strict path needs SR-BCRS stride 16")
    if bsn % 32 != 0:
        raise ShapeError("BSn must be a multiple of 32")
    lay = INT8_M8N8K16
    m, k = lhs.shape
    n = rhs.shape[1]
    v = lhs.vector_length
    n_pad = -(-n // bsn) * bsn
    rhs_p = np.zeros((k, n_pad), dtype=np.int64)
    rhs_p[:, :n] = rhs
    out = np.zeros((m, n_pad), dtype=np.int64)

    for strip in range(lhs.num_strips):
        for cb in range(n_pad // bsn):
            col0 = cb * bsn
            # one accumulator fragment per MMA of the block (bsn/8 MMAs)
            acc = [np.zeros((32, 2), dtype=np.int32) for _ in range(bsn // 8)]
            for cols, tile in lhs.iter_groups(strip):
                # LHS: SR-BCRS rows feed the A fragment directly (pad V->8)
                a_tile = np.zeros((8, 16), dtype=np.int64)
                a_tile[:v] = tile
                a_frags = lay.distribute_a(a_tile)
                # RHS: stage the gathered rows and transpose online
                staged = _gather_rows(rhs_p, cols)[:, col0 : col0 + bsn]
                b_frags = online_transpose_int8(staged)
                for j in range(bsn // 8):
                    acc[j] = mma_sync(a_frags, b_frags[j], acc[j], lay)
            # store: each MMA's columns are the interleaved set of Fig. 6
            for j in range(bsn // 8):
                c_tile = lay.collect_c(acc[j])
                out[strip * v : strip * v + v, col0 + int8_mma_columns(j)] = c_tile[:v]
    return out[:, :n]


def spmm_int4_strict(lhs: SRBCRSMatrix, rhs: np.ndarray, bsn: int = 64) -> np.ndarray:
    """Fragment-level int4 SpMM (L4-R4) with index shuffling (Fig. 7).

    The column indices are shuffled block-wise, the RHS rows staged in
    that order, and the nibble mask/shift/OR trick restores the original
    row order before the fragments are built — exactly the production
    kernel's dataflow. Requires stride 32.
    """
    if lhs.stride != 32:
        raise ShapeError("int4 strict path needs SR-BCRS stride 32")
    if bsn % 8 != 0:
        raise ShapeError("BSn must be a multiple of 8")
    lay = INT4_M8N8K32
    m, k = lhs.shape
    n = rhs.shape[1]
    v = lhs.vector_length
    n_pad = -(-n // bsn) * bsn
    rhs_p = np.zeros((k, n_pad), dtype=np.int64)
    rhs_p[:, :n] = rhs
    out = np.zeros((m, n_pad), dtype=np.int64)

    for strip in range(lhs.num_strips):
        for cb in range(n_pad // bsn):
            col0 = cb * bsn
            acc = [np.zeros((32, 2), dtype=np.int32) for _ in range(bsn // 8)]
            for cols, tile in lhs.iter_groups(strip):
                a_tile = np.zeros((8, 32), dtype=np.int64)
                a_tile[:v] = tile
                a_frags = lay.distribute_a(a_tile)
                # the kernel gathers by the *pre-shuffled* index array:
                # staging order = SHUFFLE_ORDER within each 8-row block
                shuffled_cols = cols.reshape(-1, 8)[:, SHUFFLE_ORDER].reshape(-1)
                staged = _gather_rows(rhs_p, shuffled_cols)[:, col0 : col0 + bsn]
                # Fig. 7: int32-granularity bit trick undoes the shuffle
                b_block = online_transpose_int4(staged)
                for j in range(bsn // 8):
                    b_frags = lay.distribute_b(b_block[:, 8 * j : 8 * j + 8])
                    acc[j] = mma_sync(a_frags, b_frags, acc[j], lay)
            for j in range(bsn // 8):
                c_tile = lay.collect_c(acc[j])
                out[strip * v : strip * v + v, col0 + 8 * j : col0 + 8 * j + 8] = c_tile[:v]
    return out[:, :n]
