"""Online transpose strategies for the SpMM RHS matrix (Figs. 4-7).

The RHS dense matrix B is stored row-major, but ``mma`` requires its B
operand column-major — and pre-transposing B is useless because the
sparse column indices gather non-consecutive rows. Magicube therefore
transposes *online*, inside the kernel:

**int8 path** (Sec. IV-B2): rows are staged into a padded shared-memory
buffer (conflict-free, Fig. 4), each thread loads four int32 down a word
column, and transposes its 4 x 4 byte block in registers (Fig. 5). The
resulting registers feed the RHS fragments of 4 MMAs per warp (Fig. 6),
each MMA covering the byte-columns congruent to its index mod 4.

**int4 path** (Sec. IV-B3): transposing 64 int4 per thread naively needs
per-nibble bit surgery. Instead, the SR-BCRS column indices are
pre-shuffled block-wise (Fig. 7: ``[0,2,4,6,1,3,5,7]``), so B rows are
*staged in shuffled order*; after the same char-granularity register
transpose, a fixed mask/shift/OR sequence on int32 words both separates
the nibble columns and lands the rows back in their **original** order —
8 bitwise ops per 16 values instead of per-nibble shuffling.

These functions execute the real bit manipulations on packed ``uint32``
arrays; the SpMM kernel uses them in strict mode, and the fast path is
verified against them.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.shuffle import SHUFFLE_ORDER
from repro.gpu.fragments import INT8_M8N8K16
from repro.lowp.bitops import (
    interleave_nibble_pairs,
    split_nibbles,
    transpose_bytes_4x4,
)
from repro.lowp.pack import pack_rows

#: bitwise ops per 16 int4 values for the shuffled trick (Fig. 7: two
#: nibble splits at 3 ops each + two interleaves at 1 op each)
SHUFFLED_INT4_OPS_PER_16 = 8
#: bitwise ops per 16 int4 values for the naive per-nibble transpose
#: (per nibble: shift+mask to extract, shift+or to place = 4 ops)
NAIVE_INT4_OPS_PER_16 = 64
#: register ops per 16 int8 values for the 4x4 byte transpose (PRMT-like)
INT8_OPS_PER_16 = 4


def transpose_bitop_cost(bits: int, values: int, shuffled: bool) -> int:
    """Register bit-operation count to transpose ``values`` elements.

    This is the cost the Fig. 11 ablation charges: the int4 path without
    index shuffling pays 4x the bit work.
    """
    groups = (values + 15) // 16
    if bits == 8:
        return groups * INT8_OPS_PER_16
    if bits == 4:
        return groups * (SHUFFLED_INT4_OPS_PER_16 if shuffled else NAIVE_INT4_OPS_PER_16)
    raise ShapeError(f"no online transpose for int{bits}")


def online_transpose_int8(block: np.ndarray) -> np.ndarray:
    """Int8 online transpose of one staged RHS block (Figs. 4-6).

    ``block`` is the (BSk=16, BSn) row-major int8 tile staged in shared
    memory (rows already gathered by the sparse column indices). Returns
    the per-MMA B fragments as a ``(BSn // 8, 32)`` uint32 array: entry
    ``[j]`` is the packed register fragment of MMA ``j``, whose 8
    columns are the *interleaved* set ``4*c + j%4 + 32*(j//8...)`` — see
    :func:`int8_mma_columns`. Bit-exact: performs the actual 4x4 byte
    register transposes.
    """
    block = np.asarray(block)
    k, n = block.shape
    if k != 16 or n % 32 != 0:
        raise ShapeError(f"int8 staged block must be 16 x multiple-of-32, got {block.shape}")
    words = pack_rows(block, 8)  # (16, n/4) staged row-major words
    n_warps = n // 32
    frags = np.empty((n // 8, 32), dtype=np.uint32)
    for w in range(n_warps):
        # thread t loads words (rows 4*(t%4)+step, word col t//4 + 8w)
        t = np.arange(32)
        wc = t // 4 + 8 * w
        rows = 4 * (t % 4)
        loaded = np.stack(
            [words[rows + step, wc] for step in range(4)], axis=-1
        )  # (32 threads, 4 words) = each thread's 4 registers
        transposed = transpose_bytes_4x4(loaded)  # (32, 4): register i = col 4*(t//4)+i
        for i in range(4):
            # register i of every thread feeds MMA (w, i): its B fragment
            # column t//4 holds absolute column 4*(t//4) + i + 32w
            frags[4 * w + i] = transposed[:, i]
    return frags


def int8_mma_columns(mma_index: int) -> np.ndarray:
    """Absolute B columns covered by MMA ``mma_index`` after the int8
    online transpose: the 8 columns ``{32*warp + 4*c + i : c in 0..7}``.
    """
    warp, i = mma_index // 4, mma_index % 4
    return 32 * warp + 4 * np.arange(8) + i


def verify_int8_fragments(block: np.ndarray, frags: np.ndarray) -> bool:
    """Check that the online transpose produced valid MMA B fragments.

    For each MMA, collecting its fragment must reconstruct exactly
    ``block[:, int8_mma_columns(j)]`` — i.e. the data landed column-major
    in the layout of Fig. 1 with zero data exchange between threads.
    """
    for j in range(frags.shape[0]):
        got = INT8_M8N8K16.collect_b(frags[j])
        want = np.asarray(block)[:, int8_mma_columns(j)]
        if not np.array_equal(got, want.astype(got.dtype)):
            return False
    return True


def stage_rows_shuffled(rows: np.ndarray) -> np.ndarray:
    """Reorder gathered RHS rows into the Fig. 7 staging order.

    ``rows`` is (8*g, n): the RHS rows gathered by *unshuffled* column
    indices. The kernel actually gathers by the pre-shuffled index array,
    which is equivalent to permuting each 8-row block by SHUFFLE_ORDER.
    """
    rows = np.asarray(rows)
    if rows.shape[0] % 8 != 0:
        raise ShapeError(f"row count must be a multiple of 8, got {rows.shape[0]}")
    blocks = rows.reshape(-1, 8, rows.shape[1])
    return np.ascontiguousarray(blocks[:, SHUFFLE_ORDER].reshape(rows.shape))


def online_transpose_int4(staged: np.ndarray) -> np.ndarray:
    """Int4 online transpose via index shuffling (Fig. 7), bit-exact.

    ``staged`` is the (BSk=32, BSn) int4 tile whose rows are in
    *shuffled* staging order (see :func:`stage_rows_shuffled`). Returns
    the (BSk, BSn) tile with rows restored to their original order,
    computed purely with the int32-granularity mask/shift/OR sequence —
    never touching individual nibbles.

    Steps (numbers as in Fig. 7): rows were shuffled at format
    construction (1) and loaded via shared memory (2); the 4x4 byte
    transpose (3, 4) gives, per byte-column, one word holding staged rows
    0-3 and one holding staged rows 4-7 of an 8-row block (5); nibble
    splits (6) and interleaves (7) emit one word of even-column values
    and one of odd-column values, each with rows in original order.
    """
    staged = np.asarray(staged)
    k, n = staged.shape
    if k % 8 != 0 or n % 8 != 0:
        raise ShapeError(f"int4 staged block must be 8-aligned, got {staged.shape}")
    words = pack_rows(staged, 4)  # (k, n/8) words; byte b of a word = 2 nibble cols
    n_bytes = n // 2
    byte_view = words.view(np.uint8).reshape(k, n_bytes)  # little-endian bytes

    # column_words[c] = one uint32 per 8-row block holding the 8
    # original-order row values of nibble column c (lane r = row r)
    column_words = np.empty((k // 8, n), dtype=np.uint32)
    for b in range(k // 8):
        b0 = 8 * b
        # per byte-column: w0 = staged rows 0-3 of the block (original
        # rows [0,2,4,6]), w1 = staged rows 4-7 (original [1,3,5,7]) —
        # these are exactly the registers the 4x4 byte transpose yields
        w0 = np.ascontiguousarray(byte_view[b0 : b0 + 4].T).view(np.uint32).reshape(-1)
        w1 = np.ascontiguousarray(byte_view[b0 + 4 : b0 + 8].T).view(np.uint32).reshape(-1)
        lo0, hi0 = split_nibbles(w0)
        lo1, hi1 = split_nibbles(w1)
        column_words[b, 0::2] = interleave_nibble_pairs(lo0, lo1)  # even cols
        column_words[b, 1::2] = interleave_nibble_pairs(hi0, hi1)  # odd cols

    # expand the per-column words back into the (k, n) value tile: lane r
    # of column_words[b, c] is element (8*b + r, c)
    lanes = np.arange(8, dtype=np.uint32) * np.uint32(4)
    nibs = (column_words[:, :, None] >> lanes[None, None, :]) & np.uint32(0xF)
    vals = nibs.astype(np.int16)
    vals[vals >= 8] -= 16  # sign-extend int4
    out = vals.transpose(0, 2, 1).reshape(k, n)
    return out.astype(staged.dtype)
