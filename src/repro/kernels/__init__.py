"""Magicube kernels: SpMM, SDDMM, online transpose, precision emulation.

- :mod:`repro.kernels.transpose` — the online-transpose strategies: the
  int8 register transpose (Figs. 4-6) and the int4 transpose via column
  index shuffling (Fig. 7), executed bit-exactly on packed words.
- :mod:`repro.kernels.emulation` — mixed-precision emulation plans
  (Table IV) and the mma-stacking utilization optimization (Fig. 10).
- :mod:`repro.kernels.spmm` — Magicube SpMM (Sec. IV-B).
- :mod:`repro.kernels.sddmm` — Magicube SDDMM (Sec. IV-C).
- :mod:`repro.kernels.softmax` — fp16 softmax with fused (de)quantization
  for the end-to-end attention layer (Fig. 16).
"""

from repro.kernels.emulation import (
    EmulationPlan,
    plan_for,
    emulated_matmul,
    stack_factor,
    supported_pairs,
)
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig, SpMMResult
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig, SDDMMResult
from repro.kernels.transpose import (
    online_transpose_int8,
    online_transpose_int4,
    transpose_bitop_cost,
)

__all__ = [
    "EmulationPlan",
    "plan_for",
    "emulated_matmul",
    "stack_factor",
    "supported_pairs",
    "MagicubeSpMM",
    "SpMMConfig",
    "SpMMResult",
    "MagicubeSDDMM",
    "SDDMMConfig",
    "SDDMMResult",
    "online_transpose_int8",
    "online_transpose_int4",
    "transpose_bitop_cost",
]
