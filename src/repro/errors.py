"""Exception hierarchy for the repro (Magicube reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so that
clients can catch one exception family at the :mod:`repro.api`
boundary::

    try:
        client.run(request)
    except repro.ReproError as exc:
        ...  # every typed library error lands here

:data:`MagicubeError` is the pre-v1 name of the same base class, kept
as an alias so existing ``except MagicubeError`` handlers keep
catching everything.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


#: pre-v1 alias of :class:`ReproError`; ``except MagicubeError`` still
#: catches the whole family
MagicubeError = ReproError


class PrecisionError(MagicubeError):
    """An unsupported precision (pair) was requested.

    Raised e.g. when asking SpMM for an ``Lx-Ry`` combination outside
    Table IV of the paper, or when operand bit widths do not match the
    declared precision.
    """


class FormatError(MagicubeError):
    """A sparse-format invariant was violated.

    Covers malformed row pointers, out-of-range column indices, vector
    length / stride mismatches, and invalid conversions.
    """


class ShapeError(MagicubeError):
    """Operand shapes are inconsistent with the requested operation."""


class LayoutError(MagicubeError):
    """A Tensor-core data-layout requirement was violated.

    The MMA primitives require a row-major LHS and a column-major RHS
    fragment; this error signals a fragment fed in the wrong layout or
    with the wrong per-thread distribution.
    """


class DeviceError(MagicubeError):
    """An unknown device or unsupported device capability was requested."""


class QuantizationError(MagicubeError):
    """Invalid quantization parameters (zero scale, bad bit width, ...)."""


class ConfigError(MagicubeError):
    """Invalid kernel/launch configuration (tile sizes, warp counts...)."""


class MaskError(ConfigError):
    """An attention-mask builder was given invalid parameters.

    Raised by the :mod:`repro.transformer.masks` zoo when a sequence
    length is not divisible by the vector length V, a sparsity target
    falls outside ``[0, 1)``, or a window/stride/offset parameter is
    non-positive. A subclass of :class:`ConfigError`, so pre-existing
    ``except ConfigError`` handlers around mask construction keep
    working.
    """


class AdmissionError(MagicubeError):
    """The serving layer refused to enqueue a request.

    Raised by the micro-batcher's admission control when a group's
    queue depth exceeds ``BatchPolicy.max_queue_depth`` or the
    estimated queue delay would blow ``BatchPolicy.admission_budget_s``.
    Rejected requests are counted, never silently dropped.
    """


class PlanCacheError(MagicubeError, ValueError):
    """A persisted plan cache or autotune artifact could not be read.

    Wraps corrupt / truncated JSON, unsupported schema versions and
    missing payload fields behind one typed error so startup code can
    distinguish "bad cache file" from a programming error. Also a
    ``ValueError`` so pre-existing callers that caught the old untyped
    rejection keep working.
    """


class SweepError(MagicubeError):
    """An autotuning sweep was misconfigured or produced no points."""


class RetuneError(MagicubeError):
    """The telemetry-driven re-tuning scheduler failed or is absent.

    Raised by :meth:`repro.serve.engine.Engine.retune_status` /
    :meth:`repro.api.Client.retune_status` when the engine was opened
    without ``retune=``, and by the scheduler when a re-tune cycle
    cannot synthesize or promote plans.
    """


class FleetError(MagicubeError):
    """A multi-process fleet (gateway / worker pool) invariant failed.

    Covers placement over an empty ring, malformed fleet packs, RPC
    protocol violations and worker-pool misconfiguration. Worker
    crashes surface as the more specific :class:`WorkerCrashError`.
    """


class WorkerCrashError(FleetError):
    """A fleet worker died and took an in-flight request with it.

    The gateway retries a request lost to a dying worker exactly once
    (on the respawned worker, or rebalanced to the next worker on the
    placement ring); this error is what the request's future resolves
    to when the retry is also lost, or when the worker slot exceeded
    its respawn budget.
    """


class EngineClosedError(MagicubeError, RuntimeError):
    """A request was submitted to (or redeemed from) a closed engine.

    Raised by :meth:`repro.serve.engine.Engine.submit` /
    :meth:`~repro.serve.engine.Engine.result` and by the micro-batcher
    once :meth:`~repro.serve.engine.Engine.close` has run, instead of
    leaking work into a shut-down executor. Also a ``RuntimeError`` so
    pre-existing callers that caught the old untyped rejection keep
    working.
    """
