"""Exception hierarchy for the repro (Magicube reproduction) library.

All library-raised exceptions derive from :class:`MagicubeError` so that
callers can catch a single type at API boundaries.
"""

from __future__ import annotations


class MagicubeError(Exception):
    """Base class for all errors raised by the repro library."""


class PrecisionError(MagicubeError):
    """An unsupported precision (pair) was requested.

    Raised e.g. when asking SpMM for an ``Lx-Ry`` combination outside
    Table IV of the paper, or when operand bit widths do not match the
    declared precision.
    """


class FormatError(MagicubeError):
    """A sparse-format invariant was violated.

    Covers malformed row pointers, out-of-range column indices, vector
    length / stride mismatches, and invalid conversions.
    """


class ShapeError(MagicubeError):
    """Operand shapes are inconsistent with the requested operation."""


class LayoutError(MagicubeError):
    """A Tensor-core data-layout requirement was violated.

    The MMA primitives require a row-major LHS and a column-major RHS
    fragment; this error signals a fragment fed in the wrong layout or
    with the wrong per-thread distribution.
    """


class DeviceError(MagicubeError):
    """An unknown device or unsupported device capability was requested."""


class QuantizationError(MagicubeError):
    """Invalid quantization parameters (zero scale, bad bit width, ...)."""


class ConfigError(MagicubeError):
    """Invalid kernel/launch configuration (tile sizes, warp counts...)."""


class AdmissionError(MagicubeError):
    """The serving layer refused to enqueue a request.

    Raised by the micro-batcher's admission control when a group's
    queue depth exceeds ``BatchPolicy.max_queue_depth`` or the
    estimated queue delay would blow ``BatchPolicy.admission_budget_s``.
    Rejected requests are counted, never silently dropped.
    """


class PlanCacheError(MagicubeError, ValueError):
    """A persisted plan cache or autotune artifact could not be read.

    Wraps corrupt / truncated JSON, unsupported schema versions and
    missing payload fields behind one typed error so startup code can
    distinguish "bad cache file" from a programming error. Also a
    ``ValueError`` so pre-existing callers that caught the old untyped
    rejection keep working.
    """


class SweepError(MagicubeError):
    """An autotuning sweep was misconfigured or produced no points."""
