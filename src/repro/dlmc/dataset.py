"""The synthetic DLMC collection: the paper's evaluation grid.

256 matrices per sparsity level across the ResNet-50 and Transformer
shape families (paper Sec. V: "covers all the sparse matrices from
ResNet-50 model and part of sparse matrices from Transformer model"),
six sparsity levels, three dilation vector lengths = the 1,536-matrix
grid of Figs. 12-15. ``count`` subsamples deterministically for quick
runs.
"""

from __future__ import annotations

import numpy as np

from repro.dlmc.generator import RN50_SHAPES, TRANSFORMER_SHAPES, MatrixSpec

#: the paper's sparsity grid
SPARSITIES: tuple[float, ...] = (0.5, 0.7, 0.8, 0.9, 0.95, 0.98)
#: the paper's dilation vector lengths
VECTOR_LENGTHS: tuple[int, ...] = (2, 4, 8)
#: matrices per sparsity level in the full collection
FULL_COUNT = 256


def dlmc_collection(
    sparsity: float, count: int = FULL_COUNT, seed: int = 2022
) -> list[MatrixSpec]:
    """``count`` matrix specs at one sparsity level (deterministic).

    Shapes cycle through the ResNet-50 family (as in DLMC, the bulk of
    the collection) interleaved with Transformer shapes; each instance
    gets a distinct seed so patterns differ even at equal shape.
    """
    if sparsity not in SPARSITIES:
        raise ValueError(f"sparsity must be one of {SPARSITIES}, got {sparsity}")
    shapes = list(RN50_SHAPES) + list(TRANSFORMER_SHAPES)
    rng = np.random.default_rng(seed + int(sparsity * 1000))
    specs = []
    for i in range(count):
        rows, cols = shapes[i % len(shapes)]
        model = "rn50" if i % len(shapes) < len(RN50_SHAPES) else "transformer"
        specs.append(
            MatrixSpec(
                model=model,
                rows=rows,
                cols=cols,
                sparsity=sparsity,
                seed=int(rng.integers(0, 2**31)),
            )
        )
    return specs


def full_grid(count: int = FULL_COUNT, seed: int = 2022) -> dict[float, list[MatrixSpec]]:
    """The whole collection: ``{sparsity: [specs]}`` (1,536 at full count)."""
    return {s: dlmc_collection(s, count=count, seed=seed) for s in SPARSITIES}
