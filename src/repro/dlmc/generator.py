"""Synthetic DLMC matrix generator.

DLMC matrices come from magnitude pruning of real models, which leaves
two statistical signatures that matter for SpMM performance and that
this generator reproduces:

- the shape grid of the source layers (ResNet-50 conv-as-GEMM shapes,
  Transformer projection/FFN shapes), and
- *per-row nonzero imbalance*: pruned rows keep different numbers of
  weights (roughly log-normal around the target density), which drives
  the ELL padding tax and load-balance effects.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError

#: ResNet-50 conv layers as GEMM (out_channels, in_channels x kh x kw),
#: medium shapes first so that subsampled runs stay representative of
#: the full collection (which mid-size layers dominate)
RN50_SHAPES: tuple[tuple[int, int], ...] = (
    (256, 512),
    (128, 1152),
    (256, 1024),
    (512, 1024),
    (256, 2304),
    (128, 256),
    (512, 2048),
    (64, 576),
    (512, 4608),
    (64, 64),
)
#: Transformer projection / FFN shapes (d_model 512 family, as in the
#: DLMC transformer subset)
TRANSFORMER_SHAPES: tuple[tuple[int, int], ...] = (
    (512, 512),
    (1024, 512),
    (2048, 512),
    (512, 2048),
    (1024, 1024),
    (512, 1024),
)


@dataclass(frozen=True)
class MatrixSpec:
    """One matrix of the collection (pre-dilation pattern shape)."""

    model: str  # "rn50" or "transformer"
    rows: int
    cols: int
    sparsity: float
    seed: int

    def __post_init__(self) -> None:
        if self.model not in ("rn50", "transformer"):
            raise ConfigError(f"unknown model family {self.model!r}")
        if not 0.0 <= self.sparsity < 1.0:
            raise ConfigError(f"sparsity must be in [0, 1), got {self.sparsity}")

    @property
    def name(self) -> str:
        return f"{self.model}_{self.rows}x{self.cols}_s{self.sparsity:g}_{self.seed}"


def generate_pattern(spec: MatrixSpec, rows: int | None = None) -> np.ndarray:
    """Boolean nonzero pattern with per-row imbalance.

    Each row's nonzero count is drawn log-normally around the target
    density (clipped to [1, cols]), then that many distinct column
    positions are chosen uniformly. Deterministic in ``spec.seed``.
    ``rows`` overrides the row count (the dilation path generates one
    pattern row per V-row strip).
    """
    rng = np.random.default_rng(spec.seed)
    n_rows = spec.rows if rows is None else rows
    density = 1.0 - spec.sparsity
    target = density * spec.cols
    # sigma 0.35: moderate imbalance, matching pruned-layer statistics
    row_nnz = np.clip(
        np.rint(rng.lognormal(np.log(max(target, 1.0)), 0.35, size=n_rows)),
        1,
        spec.cols,
    ).astype(np.int64)
    pattern = np.zeros((n_rows, spec.cols), dtype=bool)
    for r in range(n_rows):
        cols = rng.choice(spec.cols, size=int(row_nnz[r]), replace=False)
        pattern[r, cols] = True
    return pattern


def generate_matrix(
    spec: MatrixSpec,
    vector_length: int,
    bits: int = 8,
    signed: bool = True,
) -> np.ndarray:
    """A V-dilated integer matrix of shape ``(spec.rows, spec.cols)``.

    Following the paper's methodology (Sec. V and Fig. 11, where the
    same M=256 x K=2304 matrix is used at V=2 and V=8): the nonzero
    *pattern* is vector-structured — one pattern row per V-row strip,
    dilated down the strip — so the matrix shape is independent of V and
    the scalar sparsity matches the spec.
    """
    from repro.dlmc.dilate import dilate_pattern

    if spec.rows % vector_length != 0:
        raise ConfigError(
            f"rows {spec.rows} not divisible by vector length {vector_length}"
        )
    pattern = generate_pattern(spec, rows=spec.rows // vector_length)
    dilated = dilate_pattern(pattern, vector_length)
    rng = np.random.default_rng(spec.seed + 1)
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    vals = rng.integers(lo, hi + 1, size=dilated.shape, dtype=np.int64)
    out = np.where(dilated, vals, 0)
    # keep dilated vectors fully dense in spirit: a vector with an
    # all-zero draw keeps structure by forcing its first element nonzero
    strips = out.reshape(-1, vector_length, spec.cols)
    mask3 = dilated.reshape(-1, vector_length, spec.cols)
    dead = mask3.any(axis=1) & ~(strips != 0).any(axis=1)
    if dead.any():
        s, c = np.nonzero(dead)
        strips[s, 0, c] = 1
    return out.reshape(dilated.shape).astype(np.int32)


def generate_blocked_ell(
    spec: MatrixSpec, block_size: int = 8, bits: int = 8
) -> "np.ndarray":
    """A *block-sparse* dense matrix with the spec's sparsity.

    The paper's cuSPARSE methodology (after Chen et al.): "the
    Blocked-ELL format with the same sparsity and problem size as BCRS
    and SR-BCRS is generated" — i.e. cuSPARSE gets a matrix whose
    nonzeros already come in ``bs x bs`` blocks at the same overall
    sparsity, not a lossy re-blocking of the 1-D-block matrix. Returns
    the dense matrix; compress with ``dense_to_blocked_ell``.
    """
    rng = np.random.default_rng(spec.seed + 2)
    brows = spec.rows // block_size
    bcols = spec.cols // block_size
    density = 1.0 - spec.sparsity
    target = max(density * bcols, 1.0)
    row_blocks = np.clip(
        np.rint(rng.lognormal(np.log(target), 0.25, size=brows)), 1, bcols
    ).astype(np.int64)
    lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    out = np.zeros((spec.rows, spec.cols), dtype=np.int32)
    for r in range(brows):
        cols = rng.choice(bcols, size=int(row_blocks[r]), replace=False)
        for c in cols:
            block = rng.integers(lo, hi + 1, size=(block_size, block_size))
            block.flat[0] = max(block.flat[0], 1)  # never an all-zero block
            out[
                r * block_size : (r + 1) * block_size,
                c * block_size : (c + 1) * block_size,
            ] = block
    return out
