"""Synthetic stand-in for the Deep Learning Matrix Collection (DLMC).

The paper evaluates on 1,536 DLMC sparse matrices — 256 per sparsity in
{0.5, 0.7, 0.8, 0.9, 0.95, 0.98}, drawn from pruned ResNet-50 and
Transformer models — each *dilated* by replacing every nonzero scalar
with a 1-D vector of length V in {2, 4, 8}. Without the dataset (it is
a network download), this package generates a deterministic synthetic
collection with the same shape grid, sparsity levels, per-row nonzero
imbalance, and dilation semantics.
"""

from repro.dlmc.generator import MatrixSpec, generate_pattern, generate_matrix
from repro.dlmc.dataset import dlmc_collection, SPARSITIES, VECTOR_LENGTHS
from repro.dlmc.dilate import dilate_pattern

__all__ = [
    "MatrixSpec",
    "generate_pattern",
    "generate_matrix",
    "dlmc_collection",
    "dilate_pattern",
    "SPARSITIES",
    "VECTOR_LENGTHS",
]
