"""Pattern dilation: scalar nonzeros -> 1-D vectors (paper Sec. V).

"A sparse matrix from DLMC is dilated by replacing each scalar with 1-D
vectors (V = 2, 4, 8)": every row of the base pattern becomes V rows,
and a nonzero at (r, c) becomes the dense vector rows ``rV..rV+V-1`` of
column c.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError


def dilate_pattern(pattern: np.ndarray, vector_length: int) -> np.ndarray:
    """Dilate a boolean (rows, cols) pattern to (rows * V, cols)."""
    if vector_length < 1 or vector_length > 8:
        raise ConfigError(f"vector length must be in [1, 8], got {vector_length}")
    p = np.asarray(pattern, dtype=bool)
    if p.ndim != 2:
        raise ConfigError("pattern must be 2-D")
    return np.repeat(p, vector_length, axis=0)
