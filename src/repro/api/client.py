"""The v1 client facade: one engine handle, three verbs.

:func:`open_engine` stands up a serving engine and returns a
:class:`Client` that accepts every typed request the same three ways::

    import repro
    from repro.api import SpmmRequest, AttentionRequest

    with repro.open_engine(device="A100", warm_start="plans.json") as client:
        r = client.run(SpmmRequest(lhs=A, rhs=x))            # sync
        fut = client.submit(SpmmRequest(lhs=A, rhs=x))       # Future
        handle = client.submit_async(AttentionRequest(1024)) # awaitable

Request classes are prepared lazily and memoized: the first
``SpmmRequest`` carrying a given operand (or ``session=`` name) builds
the prepared session — SR-BCRS conversion, operand-width
classification, backend pinning — and every later request on the same
operand reuses it. Warm-start artifacts, the batcher's admission
policy, and telemetry all thread through :func:`open_engine`'s
constructor, so there is exactly one place to configure a deployment.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.api.requests import (
    AttentionRequest,
    Request,
    Response,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.api.resolution import normalize
from repro.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path
    from typing import Sequence

    from repro.autotune.policy import RetunePolicy
    from repro.autotune.scheduler import RetuneScheduler, RetuneStatus
    from repro.obs.health import HealthReport
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import ProfileConfig, Profiler
    from repro.obs.trace import Tracer
    from repro.serve.batcher import BatchPolicy, RequestHandle
    from repro.serve.cache import PlanCache
    from repro.serve.engine import Engine
    from repro.serve.planner import ExecutionPlanner
    from repro.serve.telemetry import Telemetry

__all__ = ["Client", "open_engine"]


def open_engine(
    device: str = "A100",
    *,
    backend: str | None = None,
    policy: "BatchPolicy | None" = None,
    warm_start: "str | Path | Sequence[str | Path] | None" = None,
    cache: "PlanCache | None" = None,
    planner: "ExecutionPlanner | None" = None,
    telemetry: "Telemetry | None" = None,
    max_workers: int = 4,
    retune: "RetunePolicy | None" = None,
    metrics: "MetricsRegistry | None" = None,
    tracer: "Tracer | None" = None,
    trace: bool = False,
    profile: "ProfileConfig | Profiler | None" = None,
) -> "Client":
    """Open a serving engine and return its :class:`Client` facade.

    ``device`` / ``backend`` pin the execution stack (the registry's
    fallback chain resolves the default), ``warm_start`` preloads
    shipped autotune artifacts into the plan cache, ``policy`` sets the
    micro-batcher's coalescing and admission knobs, and ``telemetry``
    injects a shared collector. ``cache`` / ``planner`` are mutually
    exclusive escape hatches for pre-built planning state. ``retune``
    attaches a background re-tuning scheduler
    (:class:`repro.autotune.RetunePolicy`) that watches the engine's
    telemetry and re-sweeps hot / cold-missed / regressed plan keys —
    see :mod:`repro.autotune.scheduler`.

    ``metrics`` injects a :class:`repro.obs.MetricsRegistry` for the
    engine to publish into (default: the process-wide registry).
    ``trace=True`` enables request tracing — every
    :class:`~repro.api.requests.Response` then carries its span tree
    (``r.trace``) and ``r.request_id`` — and ``tracer`` passes a
    pre-built :class:`repro.obs.Tracer` instead (for custom retention
    or shared collectors); see ``docs/observability.md``.
    ``profile`` attaches a sampling profiler
    (:class:`repro.obs.ProfileConfig`, or a prebuilt
    :class:`~repro.obs.profile.Profiler`): batcher dispatch and backend
    ``execute`` then collect collapsed-stack samples, readable on
    ``client.profiler`` and exportable to flamegraph/speedscope form.

    Example::

        import numpy as np
        import repro
        from repro import api

        A = repro.SparseMatrix.from_dense(
            np.eye(64, dtype=np.int8), vector_length=8
        )
        with repro.open_engine(device="A100") as client:
            r = client.run(api.SpmmRequest(lhs=A, rhs=np.ones((64, 8))))
            assert r.output.shape == (64, 8)
    """
    # imported lazily: the engine module imports repro.api for the
    # typed requests, so a top-level import here would cycle
    from repro.serve.engine import Engine

    if tracer is None and trace:
        from repro.obs.trace import Tracer

        tracer = Tracer(enabled=True)
    engine = Engine(
        device=device,
        planner=planner,
        cache=cache,
        policy=policy,
        max_workers=max_workers,
        backend=backend,
        warm_start=warm_start,
        telemetry=telemetry,
        retune=retune,
        metrics=metrics,
        tracer=tracer,
        profile=profile,
    )
    return Client(engine)


class Client:
    """Typed request intake over one :class:`~repro.serve.engine.Engine`.

    All three verbs accept any request type: :meth:`run` blocks and
    returns the :class:`~repro.api.requests.Response`, :meth:`submit`
    returns a :class:`concurrent.futures.Future`, and
    :meth:`submit_async` an awaitable ticketed
    :class:`~repro.serve.batcher.RequestHandle` (redeemable via
    :meth:`result`, also by integer id).
    """

    def __init__(self, engine: "Engine") -> None:
        self._engine = engine
        # one prepared session per request class, for the client's
        # lifetime: serving assumes a bounded set of request classes
        # (models you deploy), so sessions — and the operands retained
        # to keep id()-based keys valid — are never evicted. Name your
        # classes with `session=` and reuse operands; a client is not a
        # cache for unbounded ad-hoc operands.
        self._sessions: dict[object, object] = {}
        #: operands keyed by id() must stay alive for the key to hold
        self._retained: dict[object, object] = {}
        self._counter = 0

    # -- request routing ------------------------------------------------
    def _next_name(self, kind: str) -> str:
        self._counter += 1
        return f"{kind}#{self._counter}"

    def _key_for(self, request: Request) -> object:
        if request.session is not None:
            return ("named", request.session)
        if isinstance(request, SpmmRequest):
            return ("spmm", id(request.lhs), request.backend)
        if isinstance(request, SddmmRequest):
            return ("sddmm", id(request.mask), request.backend)
        if isinstance(request, TransformerRequest):
            return ("transformer", request.topology)
        return ("attention", request.topology)

    def prepare(self, request: Request):
        """The prepared session serving this request's class, building
        it on first use. Advanced handle — exposes ``plan_for`` and the
        prepared operand; :meth:`run` / :meth:`submit` call this
        implicitly."""
        key = self._key_for(request)
        session = self._sessions.get(key)
        if session is not None:
            return session
        name = request.session or self._next_name(request.op)
        if isinstance(request, SpmmRequest):
            req = normalize(request)
            session = self._engine._make_spmm_session(
                name, req.lhs,
                objective=request.objective,
                backend=request.backend,
            )
            self._retained[key] = request.lhs
        elif isinstance(request, SddmmRequest):
            mask = request.mask
            session = self._engine._make_sddmm_session(
                name, mask,
                objective=request.objective,
                backend=request.backend,
            )
            self._retained[key] = mask
        elif isinstance(request, TransformerRequest):
            session = self._engine._make_transformer_session(
                name,
                mode=request.mode,
                seq_len=request.seq_len,
                d_model=request.d_model,
                num_heads=request.num_heads,
                num_layers=request.num_layers,
                d_ff=request.d_ff,
                vocab=request.vocab,
                num_classes=request.num_classes,
                mask_variant=request.mask_variant,
                sparsity=request.sparsity,
                scheme=request.scheme,
                seed=request.seed,
                vector_length=request.vector_length,
                **(
                    {"backend": request.backend}
                    if request.backend is not None
                    else {}
                ),
            )
        elif isinstance(request, AttentionRequest):
            session = self._engine._make_attention_session(
                name,
                request.seq_len,
                num_heads=request.num_heads,
                sparsity=request.sparsity,
                scheme=request.scheme,
                vector_length=request.vector_length,
                num_layers=request.num_layers,
                d_head=request.d_head,
                num_gpus=request.num_gpus,
                **(
                    {"backend": request.backend}
                    if request.backend is not None
                    else {}
                ),
            )
        else:
            raise ConfigError(f"unknown request type {type(request).__name__}")
        self._sessions[key] = session
        return session

    def _check_operand(self, key, session, operand, prepared, what: str) -> None:
        """A named session serves exactly the operand it was prepared
        with — substituting silently would compute over the wrong
        matrix."""
        if operand is prepared or operand is self._retained.get(key):
            return
        raise ConfigError(
            f"session {session.name!r} was prepared with a different "
            f"{what}; pass the prepared operand (or omit `session=` to "
            f"key by operand identity)"
        )

    def _route(self, request: Request):
        key = self._key_for(request)
        session = self.prepare(request)
        if isinstance(request, SpmmRequest):
            self._check_operand(key, session, request.lhs, session.matrix, "lhs")
            # reuse the session's prepared operand (memoized layouts)
            request = normalize(replace(request, lhs=session.matrix))
        elif isinstance(request, SddmmRequest):
            self._check_operand(
                key, session, request.mask, session.topology, "mask"
            )
            request = normalize(replace(request, mask=session.topology))
        else:
            request = normalize(request)
        return session, request

    # -- the three verbs ------------------------------------------------
    def submit(self, request: Request) -> Future:
        """Enqueue one request; the future resolves to its
        :class:`~repro.api.requests.Response`."""
        session, req = self._route(request)
        return session.submit_request(req)

    def submit_async(self, request: Request) -> "RequestHandle":
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self._engine._track(self.submit(request))

    def run(self, request: Request) -> Response:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result()

    def result(
        self, request: "RequestHandle | int", timeout: float | None = None
    ) -> Response:
        """Redeem a ticket from :meth:`submit_async`."""
        return self._engine.result(request, timeout=timeout)

    # -- engine passthrough ---------------------------------------------
    @property
    def engine(self) -> "Engine":
        return self._engine

    @property
    def telemetry(self) -> "Telemetry":
        return self._engine.telemetry

    @property
    def planner(self) -> "ExecutionPlanner":
        return self._engine.planner

    @property
    def metrics(self) -> "MetricsRegistry":
        """The metrics registry the engine publishes into."""
        return self._engine.metrics

    @property
    def tracer(self) -> "Tracer":
        """The engine's request tracer (disabled unless opened with
        ``trace=True`` / ``tracer=``)."""
        return self._engine.tracer

    @property
    def profiler(self):
        """The engine's sampling profiler (the falsy null profiler
        unless opened with ``profile=``). ``client.profiler.report()``
        snapshots the collapsed-stack samples collected so far."""
        return self._engine.profiler

    def health(self, specs=None) -> "HealthReport":
        """Grade the engine's metrics against SLO objectives, now.

        One-shot evaluation over the engine's registry (see
        :func:`repro.obs.health.evaluate_registry`); ``specs`` defaults
        to :data:`repro.obs.health.DEFAULT_SLOS`. Burn rates publish
        back into the registry under the ``repro_slo_*`` metrics.

        Example::

            import numpy as np
            import repro
            from repro import api
            from repro.obs.metrics import MetricsRegistry

            A = repro.SparseMatrix.from_dense(
                np.eye(32, dtype=np.int8), vector_length=8
            )
            with repro.open_engine(metrics=MetricsRegistry()) as client:
                client.run(api.SpmmRequest(lhs=A, rhs=np.ones((32, 4))))
                report = client.health()
                assert report.status in ("healthy", "degraded", "breach")
        """
        from repro.obs.health import DEFAULT_SLOS, evaluate_registry

        return evaluate_registry(
            self._engine.metrics,
            specs if specs is not None else DEFAULT_SLOS,
            publish=True,
        )

    @property
    def device(self) -> str:
        return self._engine.device

    @property
    def backend(self) -> str:
        return self._engine.backend

    @property
    def closed(self) -> bool:
        """Whether the underlying engine has been closed."""
        return self._engine.closed

    @property
    def retune(self) -> "RetuneScheduler | None":
        """The attached re-tuning scheduler, or ``None`` without one."""
        return self._engine.retune

    def retune_status(self) -> "RetuneStatus":
        """Status of the engine's re-tuning scheduler.

        Raises the typed :class:`~repro.errors.RetuneError` when the
        engine was opened without ``retune=``.

        Example::

            import repro
            from repro.autotune import RetunePolicy

            with repro.open_engine(retune=RetunePolicy()) as client:
                status = client.retune_status()
                assert status.running and status.cycles == 0
        """
        return self._engine.retune_status()

    def flush(self) -> None:
        """Dispatch everything queued without waiting out the policy."""
        self._engine.flush()

    def close(self) -> None:
        """Close the underlying engine (idempotent)."""
        self._engine.close()

    def summary(self) -> dict:
        return self._engine.summary()

    def report(self) -> str:
        return self._engine.report()

    def __enter__(self) -> "Client":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        return (
            f"Client(device={self.device!r}, backend={self.backend!r}, "
            f"sessions={len(self._sessions)}, {state})"
        )
