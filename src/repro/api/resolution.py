"""The one resolution pipeline behind every API surface.

Turning a typed request into something executable always walks the same
four stages, in order:

1. **precision parse / config merge** — either parse the request's
   Table-IV ``precision`` label into a kernel config (rejecting the
   ambiguous combination of an injected ``config`` with named
   precision parameters — the clash check that used to live twice, in
   ``core/api.py`` and per-session in ``serve/engine.py``), or take
   the injected config verbatim;
2. **device resolve** — :meth:`repro.runtime.Device.resolve` turns the
   name into a validated Table-II handle (raising
   :class:`~repro.errors.DeviceError`);
3. **backend resolve** — the :mod:`repro.runtime` registry pins a named
   backend or walks the priority-ordered fallback chain;
4. **plan lookup / injection** — with a planner (the serving path) the
   request class is solved once and memoized in the
   :class:`~repro.serve.cache.PlanCache`; without one (one-shot calls)
   the config from stage 1 is the plan.

:func:`resolve` runs the pipeline and returns a :class:`Resolution`;
:func:`execute` runs a resolution against its operands; :func:`run` is
the one-shot composition of the two. Both :mod:`repro.core.api` (the
legacy kwarg shims) and :mod:`repro.serve.engine` (session intake and
batched dispatch) delegate here, so this module is the only place
precision / device / backend / plan resolution happens.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.api.requests import (
    AttentionRequest,
    Request,
    Response,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.core.matrix import SparseMatrix
from repro.core.precision import parse_precision
from repro.errors import ConfigError, ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.kernels.sddmm import SDDMMConfig
from repro.kernels.spmm import SpMMConfig
from repro.lowp.quantize import int_range
from repro.runtime import DEFAULT_BACKEND, Device, get_backend, resolve_backend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import MetricsRegistry
    from repro.serve.planner import ExecutionPlanner, Plan

__all__ = [
    "Resolution",
    "bits_required",
    "execute",
    "normalize",
    "resolve",
    "run",
]

#: operand widths a request can be classified into (Table IV sides)
_LHS_WIDTHS = (4, 8, 12, 16)
_RHS_WIDTHS = (4, 8, 16)


def bits_required(values: np.ndarray, signed: bool = True) -> int:
    """Smallest Table-IV operand width that holds every value."""
    values = np.asarray(values)
    lo = int(values.min()) if values.size else 0
    hi = int(values.max()) if values.size else 0
    for bits in _LHS_WIDTHS:
        blo, bhi = int_range(bits, signed)
        if blo <= lo and hi <= bhi:
            return bits
    raise ConfigError(f"values [{lo}, {hi}] exceed 16-bit range")


@dataclass(frozen=True)
class Resolution:
    """The executable outcome of the pipeline for one request.

    ``backend`` is the resolved (for plans: winning) registry name;
    ``config`` the concrete Magicube kernel config, or ``None`` when
    the plan routes to a non-Magicube backend (whose execute path
    takes no kernel knobs); ``plan`` the memoized serving plan when a
    planner ran (``None`` for one-shot and config-injected requests).
    """

    op: str
    device: Device
    backend: str
    config: "SpMMConfig | SDDMMConfig | None"
    plan: "Plan | None"
    precision: str

    @property
    def device_label(self) -> str:
        """The device token results/telemetry are recorded under — the
        plan's winning device when a plan routed the request."""
        return self.plan.device if self.plan is not None else self.device.name


# -- stage 0: operand normalization ------------------------------------

def normalize(request: Request) -> Request:
    """A copy of ``request`` with operands in canonical form.

    Dense SpMM LHS operands become prepared
    :class:`~repro.core.matrix.SparseMatrix` instances (conversion
    happens once; pass the same object to reuse its memoized layouts),
    arrays become ``np.ndarray``, and SDDMM masks are type- checked.
    Idempotent — normalizing a normalized request is free.
    """
    if isinstance(request, SpmmRequest):
        lhs = request.lhs
        if not isinstance(lhs, SparseMatrix):
            lhs = SparseMatrix.from_dense(
                np.asarray(lhs), vector_length=request.vector_length
            )
        rhs = request.rhs
        if rhs is not None:  # None = prepare-only (no operand yet)
            rhs = np.asarray(rhs)
            if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
                raise ShapeError(
                    f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}"
                )
        return replace(request, lhs=lhs, rhs=rhs)
    if isinstance(request, SddmmRequest):
        topo = (
            request.mask.bcrs
            if isinstance(request.mask, SparseMatrix)
            else request.mask
        )
        if not isinstance(topo, BCRSMatrix):
            raise ShapeError("mask must be a SparseMatrix or BCRSMatrix")
        return replace(
            request,
            a=np.asarray(request.a) if request.a is not None else None,
            b=np.asarray(request.b) if request.b is not None else None,
            mask=topo,
        )
    if isinstance(request, AttentionRequest):
        if request.batch < 1:
            raise ConfigError(f"batch must be >= 1, got {request.batch}")
        if request.num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {request.num_gpus}")
        if request.num_heads % request.num_gpus != 0:
            raise ConfigError(
                f"{request.num_heads} heads do not shard over "
                f"{request.num_gpus} GPUs"
            )
        return request
    if isinstance(request, TransformerRequest):
        # imported lazily: the transformer stack reaches
        # repro.serve.topology, which this module must not drag in
        from repro.transformer.masks import MASK_ZOO
        from repro.transformer.serving import TRANSFORMER_MODES

        if request.mode not in TRANSFORMER_MODES:
            raise ConfigError(
                f"unknown transformer mode {request.mode!r}; expected one "
                f"of {TRANSFORMER_MODES}"
            )
        if request.mask_variant not in MASK_ZOO:
            raise ConfigError(
                f"unknown mask variant {request.mask_variant!r}; zoo has "
                f"{tuple(sorted(MASK_ZOO))}"
            )
        if request.batch < 1:
            raise ConfigError(f"batch must be >= 1, got {request.batch}")
        if request.seq_len % request.vector_length != 0:
            raise ConfigError(
                f"seq_len {request.seq_len} must divide by the mask "
                f"vector length {request.vector_length}"
            )
        ids = request.ids
        if ids is None:
            return request
        ids = np.asarray(ids)
        if ids.ndim != 2 or ids.shape[1] != request.seq_len:
            raise ShapeError(
                f"ids must be (B, {request.seq_len}), got {ids.shape}"
            )
        return replace(request, ids=ids)
    raise ConfigError(f"unknown request type {type(request).__name__}")


# -- stage 1: precision parse / config merge ---------------------------

def _check_clashes(request, named: dict) -> None:
    """Reject an injected config combined with named kernel params."""
    clashes = sorted(request.knobs)
    clashes += [name for name, value in named.items() if value is not None]
    if clashes:
        raise ConfigError(
            f"`config` already fixes the kernel setup; also passing "
            f"{clashes} is ambiguous"
        )


def _infer_rhs_bits(rhs: np.ndarray) -> int:
    needed = bits_required(rhs, signed=True)
    return next(w for w in _RHS_WIDTHS if w >= needed)


# -- the pipeline ------------------------------------------------------

def resolve(
    request: Request,
    *,
    device: "Device | str | None" = None,
    planner: "ExecutionPlanner | None" = None,
    backend: str | None = None,
) -> Resolution:
    """Run the resolution pipeline for one (normalized) request.

    ``device`` and ``backend`` are the caller's defaults (an engine's
    pinned device and session backend, or the one-shot defaults); the
    request's own ``device`` / ``backend`` fields win when set. With a
    ``planner`` the request class is planned and memoized (the serving
    path); without one the request must carry enough to build a
    concrete config (the one-shot path).
    """
    request = normalize(request)
    dev = Device.resolve(request.device or device or "A100")
    if isinstance(request, SpmmRequest):
        return _resolve_spmm(request, dev, planner, backend)
    if isinstance(request, SddmmRequest):
        return _resolve_sddmm(request, dev, planner, backend)
    if isinstance(request, TransformerRequest):
        return _resolve_transformer(request, dev, backend)
    return _resolve_attention(request, dev, backend)


def _resolve_spmm(
    req: SpmmRequest, dev: Device, planner, default_backend
) -> Resolution:
    name = req.backend if req.backend is not None else default_backend
    if req.config is not None:
        _check_clashes(req, {"precision": req.precision, "l_signed": req.l_signed})
        cfg = req.config
        be = resolve_backend(
            name, op="spmm", device=dev,
            precision=None if planner is not None else f"L{cfg.l_bits}-R{cfg.r_bits}",
        )
        return Resolution(
            "spmm", dev, be.name, cfg, None, f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
    if planner is None:
        p = parse_precision(req.precision or "L8-R8", op="spmm")
        cfg = SpMMConfig(
            l_bits=p.l_bits,
            r_bits=p.r_bits,
            l_signed=req.l_signed if req.l_signed is not None else True,
            **req.knobs,
        )
        be = resolve_backend(
            name, op="spmm", device=dev, precision=f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
        return Resolution(
            "spmm", dev, be.name, cfg, None, f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
    # serving path: plan lookup through the planner's memoized cache
    from repro.serve.planner import Objective

    if req.rhs is None:
        raise ConfigError("SpmmRequest.rhs is required to resolve a plan")
    be = resolve_backend(name, op="spmm", device=dev)
    lhs: SparseMatrix = req.lhs
    m, k = lhs.shape
    if req.precision is not None:
        p = parse_precision(req.precision, op="spmm")
        obj = Objective.fixed(p.l_bits, p.r_bits)
    else:
        l_bits = req.l_bits or bits_required(lhs.bcrs.values, signed=True)
        r_bits = req.r_bits or _infer_rhs_bits(req.rhs)
        obj = (req.objective or Objective.latency()).with_min_bits(l_bits, r_bits)
    plan = planner.plan_spmm(
        m, k, req.rhs.shape[1], lhs.vector_length, lhs.sparsity, obj,
        backend=be.name,
    )
    cfg = None
    if plan.is_magicube:
        overrides = dict(req.knobs)
        if req.l_signed is not None:
            overrides["l_signed"] = req.l_signed
        cfg = plan.spmm_config(**overrides)
    return Resolution("spmm", dev, plan.backend, cfg, plan, plan.precision)


def _resolve_sddmm(
    req: SddmmRequest, dev: Device, planner, default_backend
) -> Resolution:
    name = req.backend if req.backend is not None else default_backend
    if req.config is not None:
        _check_clashes(
            req, {"precision": req.precision, "output_format": req.output_format}
        )
        cfg = req.config
        be = resolve_backend(
            name, op="sddmm", device=dev,
            precision=None if planner is not None else f"L{cfg.l_bits}-R{cfg.r_bits}",
        )
        return Resolution(
            "sddmm", dev, be.name, cfg, None, f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
    if planner is None:
        p = parse_precision(req.precision or "L8-R8", op="sddmm")
        cfg = SDDMMConfig(
            l_bits=p.l_bits,
            r_bits=p.r_bits,
            output_format=req.output_format or "bcrs",
            **req.knobs,
        )
        be = resolve_backend(
            name, op="sddmm", device=dev, precision=f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
        return Resolution(
            "sddmm", dev, be.name, cfg, None, f"L{cfg.l_bits}-R{cfg.r_bits}"
        )
    # serving path
    from repro.serve.planner import Objective

    if req.a is None or req.b is None:
        raise ConfigError("SddmmRequest.a and .b are required to resolve a plan")
    be = resolve_backend(name, op="sddmm", device=dev)
    topo: BCRSMatrix = req.mask
    rows, cols = topo.shape
    if req.precision is not None:
        p = parse_precision(req.precision, op="sddmm")
        obj = Objective.fixed(p.l_bits, p.r_bits)
    else:
        l_bits = req.l_bits or bits_required(req.a, signed=True)
        r_bits = req.r_bits or bits_required(req.b, signed=True)
        obj = (req.objective or Objective.latency()).with_min_bits(l_bits, r_bits)
    plan = planner.plan_sddmm(
        rows, cols, req.a.shape[1], topo.vector_length, topo.sparsity, obj,
        backend=be.name,
    )
    cfg = None
    if plan.is_magicube:
        cfg = plan.sddmm_config(
            output_format=req.output_format or "bcrs", **req.knobs
        )
    return Resolution("sddmm", dev, plan.backend, cfg, plan, plan.precision)


def _resolve_attention(
    req: AttentionRequest, dev: Device, default_backend
) -> Resolution:
    name = req.backend
    if name is None:
        name = (
            default_backend
            if default_backend is not None
            and default_backend.startswith(("magicube", "fastpath"))
            else DEFAULT_BACKEND
        )
    if not name.startswith(("magicube", "fastpath")):
        raise ConfigError(
            f"attention sessions model the Magicube pipeline; backend "
            f"{name!r} cannot plan it"
        )
    precision = f"L{req.scheme[0]}-R{req.scheme[1]}"
    return Resolution("attention", dev, name, None, None, precision)


def _resolve_transformer(
    req: TransformerRequest, dev: Device, default_backend
) -> Resolution:
    name = req.backend
    if name is None:
        name = (
            default_backend
            if default_backend is not None
            and default_backend.startswith(("magicube", "fastpath"))
            else DEFAULT_BACKEND
        )
    if not name.startswith(("magicube", "fastpath")):
        raise ConfigError(
            f"transformer requests run the Magicube attention pipeline; "
            f"backend {name!r} cannot serve it"
        )
    precision = f"L{req.scheme[0]}-R{req.scheme[1]}"
    return Resolution("transformer", dev, name, None, None, precision)


# -- execution ---------------------------------------------------------

def execute(
    res: Resolution,
    request: Request,
    *,
    rhs: np.ndarray | None = None,
    ids: np.ndarray | None = None,
    batch: int | None = None,
    planner: "ExecutionPlanner | None" = None,
    metrics: "MetricsRegistry | None" = None,
    profiler=None,
) -> Response:
    """Run a resolution against its request's operands.

    ``rhs`` / ``ids`` / ``batch`` override the request's own operand —
    the micro-batcher's coalesced launches execute one resolution
    against the concatenated batch. ``planner`` routes the attention
    latency model and the transformer kernel launches through cached
    serving plans (the engine path). ``metrics`` receives the measured
    kernel wall time (the global registry when omitted) — the signal
    backend speedups show up in. ``profiler`` (a
    :class:`repro.obs.profile.Profiler`) samples the backend
    ``execute`` call under the ``backend-execute`` phase.
    """
    if res.op == "spmm":
        the_rhs = rhs if rhs is not None else request.rhs
        if the_rhs is None:
            raise ConfigError("SpmmRequest.rhs is required to execute")
        if res.config is not None:
            r = _timed_execute(
                res, metrics, profiler, config=res.config,
                lhs=request.lhs, rhs=the_rhs, scale=request.scale,
            )
        else:
            # non-Magicube plans (vector-sparse on V100, a pinned
            # baseline...) take no Magicube kernel knobs
            r = _timed_execute(res, metrics, profiler, lhs=request.lhs, rhs=the_rhs)
    elif res.op == "sddmm":
        if request.a is None or request.b is None:
            raise ConfigError("SddmmRequest.a and .b are required to execute")
        if res.config is not None:
            r = _timed_execute(
                res, metrics, profiler, config=res.config,
                a=request.a, b=request.b, mask=request.mask,
            )
        else:
            r = _timed_execute(
                res, metrics, profiler, a=request.a, b=request.b, mask=request.mask
            )
    elif res.op == "transformer":
        return _execute_transformer(
            res, request, ids=ids, batch=batch, planner=planner
        )
    else:
        return _execute_attention(res, request, batch=batch, planner=planner)
    return Response(
        output=r.output,
        time_s=r.time_s,
        tops=r.tops,
        stats=r.stats,
        plan=res.plan,
        backend=res.backend,
        device=res.device_label,
        precision=res.precision,
    )


def _timed_execute(res: Resolution, metrics, profiler=None, **operands):
    """Run the backend and observe the measured wall time.

    ``repro_kernel_wall_seconds`` is the *measured* counterpart of the
    modelled ``repro_request_modelled_seconds`` — it is what makes a
    faster backend (e.g. ``fastpath-vectorized``) visible in telemetry.
    The histogram uses the sub-microsecond ``KERNEL_WALL_BUCKETS_S``
    layout (passed here because the one-shot path's registry may never
    have seen ``declare_standard``): fastpath kernels finish in
    hundreds of nanoseconds, below the default buckets' lowest edge.
    """
    from time import perf_counter

    from repro.obs.metrics import get_registry
    from repro.obs.names import KERNEL_WALL, KERNEL_WALL_BUCKETS_S

    t0 = perf_counter()
    if profiler:
        with profiler.sample("backend-execute"):
            r = get_backend(res.backend).execute(res.op, res.device, **operands)
    else:
        r = get_backend(res.backend).execute(res.op, res.device, **operands)
    wall = perf_counter() - t0
    registry = metrics if metrics is not None else get_registry()
    registry.histogram(
        KERNEL_WALL,
        labels={"op": res.op, "backend": res.backend},
        buckets=KERNEL_WALL_BUCKETS_S,
    ).observe(wall)
    return r


def _execute_attention(
    res: Resolution, req: AttentionRequest, *, batch, planner
) -> Response:
    # imported lazily: repro.transformer.inference imports
    # repro.serve.topology, so a top-level import here would cycle
    from repro.transformer.inference import (
        Backend as InferenceBackend,
        InferenceConfig,
        estimate_latency,
    )

    cfg = InferenceConfig(
        seq_len=req.seq_len,
        num_heads=req.num_heads,
        batch=batch if batch is not None else req.batch,
        sparsity=req.sparsity,
        num_layers=req.num_layers,
        d_head=req.d_head,
        vector_length=req.vector_length,
        device=res.device.name,
    )
    ib = InferenceBackend("magicube", *req.scheme)
    if req.num_gpus > 1:
        # tensor-parallel deployment: each GPU runs the heads/g shard
        # (still planned through the serving cache), plus Megatron-
        # style per-layer all-reduces over NVLink
        from repro.transformer.distributed import (
            TensorParallelConfig,
            estimate_latency_distributed,
        )

        dist = estimate_latency_distributed(
            TensorParallelConfig(base=cfg, num_gpus=req.num_gpus),
            ib,
            planner=planner,
            plan_backend=res.backend,
        )
        return Response(
            output=None,
            time_s=dist["total_s"],
            stats=dist,
            backend=res.backend,
            device=res.device_label,
            precision=res.precision,
        )
    lat = estimate_latency(cfg, ib, planner=planner, plan_backend=res.backend)
    return Response(
        output=None,
        time_s=lat.total_s,
        stats=lat,
        backend=res.backend,
        device=res.device_label,
        precision=res.precision,
    )


def _execute_transformer(
    res: Resolution, req: TransformerRequest, *, ids, batch, planner
) -> Response:
    # imported lazily: repro.transformer.serving reaches
    # repro.serve.topology via the inference latency model
    from repro.transformer.serving import (
        TransformerSpec,
        modelled_latency,
        prepare_transformer,
    )

    spec = TransformerSpec(
        seq_len=req.seq_len,
        d_model=req.d_model,
        num_heads=req.num_heads,
        num_layers=req.num_layers,
        d_ff=req.d_ff,
        vocab=req.vocab,
        num_classes=req.num_classes,
        mask_variant=req.mask_variant,
        sparsity=req.sparsity,
        vector_length=req.vector_length,
        seed=req.seed,
    )
    prepared = prepare_transformer(spec)
    scheme = (int(req.scheme[0]), int(req.scheme[1]))
    if req.mode in ("prefill", "decode"):
        b = batch if batch is not None else req.batch
        lat = modelled_latency(
            prepared, req.mode, b, scheme, res.device.name,
            planner=planner, plan_backend=res.backend,
        )
        return Response(
            output=None,
            time_s=lat.total_s,
            stats=lat,
            backend=res.backend,
            device=res.device_label,
            precision=res.precision,
        )
    the_ids = ids if ids is not None else req.ids
    if the_ids is None:
        raise ConfigError(
            "TransformerRequest.ids is required to execute lra-classify"
        )
    the_ids = np.asarray(the_ids)
    logits, plans = prepared.forward(
        the_ids, scheme=scheme, backend=res.backend, planner=planner
    )
    lat = modelled_latency(
        prepared, "prefill", the_ids.shape[0], scheme, res.device.name,
        planner=planner, plan_backend=res.backend,
    )
    return Response(
        output=logits,
        time_s=lat.total_s,
        stats=lat,
        # the AV SpMM plan is the representative routed plan (the
        # SDDMM plan shares its key topology)
        plan=plans[1] if plans else None,
        backend=res.backend,
        device=res.device_label,
        precision=res.precision,
        batch_size=int(the_ids.shape[0]),
    )


def run(
    request: Request,
    *,
    device: "Device | str | None" = None,
    planner: "ExecutionPlanner | None" = None,
    backend: str | None = None,
) -> Response:
    """One-shot: resolve a request and execute it immediately.

    The direct replacement for the legacy ``repro.core.api.spmm`` /
    ``sddmm`` kwarg calls — no engine, no batching, same pipeline::

        from repro import api

        r = api.run(api.SpmmRequest(lhs=A, rhs=B, precision="L8-R8"))
        r.output, r.time_s, r.tops
    """
    request = normalize(request)
    res = resolve(request, device=device, planner=planner, backend=backend)
    return execute(res, request, planner=planner)
