"""Typed request / response dataclasses — the v1 wire format.

Every way of asking the library for work — a one-shot kernel call, a
batched serving request, a modelled attention forward pass — is one of
three request types, and every answer is one :class:`Response`. The
request carries *what* to compute plus any pinning (precision, backend,
injected config); the :mod:`repro.api.resolution` pipeline turns it
into an executable :class:`~repro.api.resolution.Resolution`.

This module is deliberately dependency-light (dataclasses + numpy +
the prepared operand type) so shims and engines can import it without
dragging in the planner or the runtime registry.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, ClassVar

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.matrix import SparseMatrix
    from repro.formats.bcrs import BCRSMatrix
    from repro.kernels.sddmm import SDDMMConfig
    from repro.kernels.spmm import SpMMConfig
    from repro.runtime import Device
    from repro.serve.planner import Objective, Plan

__all__ = [
    "AttentionRequest",
    "Request",
    "Response",
    "SddmmRequest",
    "SpmmRequest",
    "TransformerRequest",
]


@dataclass(eq=False)
class SpmmRequest:
    """One sparse x dense product: ``lhs @ rhs``.

    ``lhs`` may be a prepared :class:`~repro.core.matrix.SparseMatrix`
    (preferred — conversions are memoized on it) or a dense array that
    is compressed with ``vector_length`` x 1 structure on first use.
    ``precision`` pins a Table-IV pair; ``config`` injects a pre-built
    kernel config verbatim (mutually exclusive with ``precision`` /
    ``l_signed`` / ``knobs``). ``backend`` pins a registered runtime
    backend by name. On a serving client, ``objective`` steers the
    planner search and ``session`` names the request class for
    telemetry; ``l_bits`` / ``r_bits`` override the operand-width
    classification (otherwise measured from the data).

    Example::

        import numpy as np
        from repro import api

        A = np.eye(64, dtype=np.int8)        # dense operands compress
        x = np.ones((64, 8), dtype=np.int8)  # on first use
        r = api.run(api.SpmmRequest(lhs=A, rhs=x, precision="L8-R8"))
        assert (r.output == A.astype(np.int64) @ x).all()
    """

    op: ClassVar[str] = "spmm"

    lhs: "SparseMatrix | np.ndarray"
    #: the dense activations; may be ``None`` for a prepare-only
    #: request (``Client.prepare``), but is required to resolve or run
    rhs: np.ndarray | None = None
    precision: str | None = None
    l_signed: bool | None = None
    scale: float | None = None
    config: "SpMMConfig | None" = None
    backend: str | None = None
    device: "Device | str | None" = None
    objective: "Objective | None" = None
    session: str | None = None
    vector_length: int = 8
    l_bits: int | None = None
    r_bits: int | None = None
    knobs: dict = field(default_factory=dict)


@dataclass(eq=False)
class SddmmRequest:
    """One sampled dense x dense product: ``(a @ b)`` at ``mask``.

    Mirrors :class:`SpmmRequest`: ``mask`` is the sparse topology
    (a :class:`~repro.core.matrix.SparseMatrix` or BCRS matrix),
    ``output_format`` picks ``"bcrs"`` (default) or ``"srbcrs"``, and
    ``config`` injects a pre-built kernel config (mutually exclusive
    with ``precision`` / ``output_format`` / ``knobs``).

    Example::

        import numpy as np
        from repro import SparseMatrix, api

        mask = SparseMatrix.from_dense(np.eye(64, dtype=np.int8),
                                       vector_length=8)
        a = b = np.ones((64, 32), dtype=np.int8)
        r = api.run(api.SddmmRequest(a=a, b=b.T, mask=mask))
        assert r.output.shape == (64, 64)
    """

    op: ClassVar[str] = "sddmm"

    mask: "SparseMatrix | BCRSMatrix"
    #: the dense factors; may be ``None`` for a prepare-only request
    #: (``Client.prepare``), but are required to resolve or run
    a: np.ndarray | None = None
    b: np.ndarray | None = None
    precision: str | None = None
    output_format: str | None = None
    config: "SDDMMConfig | None" = None
    backend: str | None = None
    device: "Device | str | None" = None
    objective: "Objective | None" = None
    session: str | None = None
    l_bits: int | None = None
    r_bits: int | None = None
    knobs: dict = field(default_factory=dict)


@dataclass(eq=False)
class AttentionRequest:
    """One modelled sparse-Transformer forward pass (the paper's
    Fig. 17 latency pipeline).

    The topology fields (``seq_len`` ... ``d_head``) define the request
    class — a serving client reuses one prepared session per distinct
    topology — and ``batch`` is the per-request batch dimension
    (same-topology requests coalesce by summing it). ``backend`` must
    be a Magicube-family runtime backend; the response carries a
    :class:`~repro.transformer.inference.LatencyResult` in ``stats``
    and no ``output``. ``num_gpus > 1`` prices the tensor-parallel
    deployment instead (heads shard evenly, Megatron-style all-reduces
    per layer — :mod:`repro.transformer.distributed`); ``stats`` is
    then the distributed latency breakdown dict.

    Example::

        from repro import api

        r = api.run(api.AttentionRequest(seq_len=256, batch=2))
        assert r.output is None and r.stats.total_s == r.time_s
    """

    op: ClassVar[str] = "attention"

    seq_len: int
    num_heads: int = 4
    sparsity: float = 0.9
    scheme: tuple[int, int] = (8, 8)
    vector_length: int = 8
    num_layers: int = 4
    d_head: int = 64
    num_gpus: int = 1
    batch: int = 1
    backend: str | None = None
    device: "Device | str | None" = None
    session: str | None = None

    @property
    def topology(self) -> tuple:
        """The request-class key: everything but ``batch``."""
        return (
            self.seq_len, self.num_heads, self.sparsity, tuple(self.scheme),
            self.vector_length, self.num_layers, self.d_head, self.num_gpus,
            self.backend,
        )


@dataclass(eq=False)
class TransformerRequest:
    """One whole-model transformer inference through the serving stack.

    ``mode`` picks the deliverable:

    - ``"lra-classify"`` — a real forward of the synthetic-LRA
      :class:`~repro.transformer.model.SparseTransformerClassifier`
      (seeded by ``seed``): ``ids`` of shape ``(B, seq_len)`` in,
      logits of shape ``(B, num_classes)`` out, every attention layer
      executed as planned SDDMM -> quantized-softmax -> SpMM launches.
    - ``"prefill"`` / ``"decode"`` — the Fig. 17 latency model for a
      full-sequence prefill or a single decode step at this topology;
      ``output`` is ``None`` and ``stats`` carries the
      :class:`~repro.transformer.inference.LatencyResult`.

    ``mask_variant`` names a pattern from the
    :data:`repro.transformer.masks.MASK_ZOO` (``local``, ``strided``,
    ``blocked-random``, ``global-local``, ``banded``); ``sparsity`` is
    its density target, and the *realized* mask sparsity is what plans
    are priced at — so mask variants are distinct plan-key dimensions.
    ``scheme`` is the Fig. 17 ``(softmax_bits, qkv_bits)`` pair and
    ``backend`` must be a Magicube-family runtime backend.

    Example::

        import numpy as np
        from repro import api

        ids = np.zeros((1, 128), dtype=np.int64)
        r = api.run(api.TransformerRequest(ids=ids, mask_variant="local"))
        assert r.output.shape == (1, 2)   # (B, num_classes) logits
    """

    op: ClassVar[str] = "transformer"

    mode: str = "lra-classify"
    #: token ids (B, seq_len) for ``lra-classify``; may be ``None`` for
    #: a prepare-only request or the latency-model modes
    ids: np.ndarray | None = None
    seq_len: int = 128
    d_model: int = 64
    num_heads: int = 2
    num_layers: int = 2
    d_ff: int = 128
    vocab: int = 16
    num_classes: int = 2
    mask_variant: str = "strided"
    sparsity: float = 0.9
    scheme: tuple[int, int] = (16, 8)
    seed: int = 0
    vector_length: int = 8
    #: batch dimension for the latency-model modes (``lra-classify``
    #: takes its batch from ``ids.shape[0]``)
    batch: int = 1
    backend: str | None = None
    device: "Device | str | None" = None
    session: str | None = None

    @property
    def topology(self) -> tuple:
        """The request-class key: everything but ``ids`` / ``batch``."""
        return (
            self.mode, self.seq_len, self.d_model, self.num_heads,
            self.num_layers, self.d_ff, self.vocab, self.num_classes,
            self.mask_variant, self.sparsity, tuple(self.scheme),
            self.seed, self.vector_length, self.backend,
        )


#: any v1 request
Request = SpmmRequest | SddmmRequest | AttentionRequest | TransformerRequest


@dataclass(eq=False)
class Response:
    """What any v1 call resolves to — one-shot or served.

    ``time_s`` is the modelled kernel time of the launch that carried
    the request (every batch rider experiences it); ``request_time_s``
    the request's amortized share (equal to ``time_s`` for one-shot
    calls). ``stats`` holds the backend's detail object — per-kernel
    :class:`~repro.gpu.timing.KernelStats` for matrix ops, a
    :class:`~repro.transformer.inference.LatencyResult` for attention
    (whose ``output`` is ``None``). ``plan`` is the serving plan that
    routed the request, when one did.

    This class supersedes the pre-v1 ``OpResult`` / ``ServeResult``
    split; both old names alias it, and their attribute spellings
    (``modelled_time_s``, ``detail``) are kept as properties.

    Example::

        import numpy as np
        from repro import api

        r = api.run(api.SpmmRequest(lhs=np.eye(8, dtype=np.int8),
                                    rhs=np.ones((8, 4)), vector_length=8))
        assert r.request_time_s == r.time_s      # one-shot: no batch
        assert r.modelled_time_s == r.time_s     # pre-v1 spelling
    """

    output: object | None
    time_s: float
    tops: float = 0.0
    stats: object | None = None
    plan: "Plan | None" = None
    backend: str = ""
    device: str = ""
    precision: str = ""
    request_time_s: float | None = None
    queue_wait_s: float = 0.0
    batch_size: int = 1
    #: the engine's monotonic request id (None for one-shot calls)
    request_id: int | None = None
    #: the request's span tree (:meth:`repro.obs.RequestTrace.to_dict`
    #: form) when the engine was opened with tracing enabled
    trace: dict | None = None

    def __post_init__(self) -> None:
        if self.request_time_s is None:
            self.request_time_s = self.time_s

    # -- pre-v1 attribute spellings ------------------------------------
    @property
    def modelled_time_s(self) -> float:
        """Alias of ``time_s`` (the pre-v1 ``ServeResult`` spelling)."""
        return self.time_s

    @property
    def detail(self) -> object | None:
        """Alias of ``stats`` (the pre-v1 ``ServeResult`` spelling)."""
        return self.stats
