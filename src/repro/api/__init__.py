"""repro.api — the v1 typed request/response surface.

One stable entry point for everything the library executes: build a
typed request (:class:`SpmmRequest`, :class:`SddmmRequest`,
:class:`AttentionRequest`, :class:`TransformerRequest`), hand it to
:func:`run` for a one-shot call
or to a :func:`open_engine` client for batched serving, and get back a
uniform :class:`Response`. Every path — one-shot, session, CLI — runs
the same :mod:`~repro.api.resolution` pipeline (precision parse →
device resolve → backend resolve → plan lookup/injection), so results
are bit-identical across surfaces.

One-shot::

    from repro import api

    r = api.run(api.SpmmRequest(lhs=A, rhs=x, precision="L8-R8"))
    r.output, r.time_s, r.tops

Serving::

    import repro

    with repro.open_engine(warm_start="plans.json") as client:
        fut = client.submit(api.SpmmRequest(lhs=A, rhs=x, session="ffn"))
        fut.result().output

The pre-v1 surfaces (``repro.core.api.spmm/sddmm`` kwargs,
``Engine.spmm_session`` / ``attention_session``, the ``repro-serve`` /
``repro-autotune`` / ``repro-bench`` entry points) are deprecation
shims over this module — see ``docs/api.md`` for the migration table.
"""

from repro.api.client import Client, open_engine
from repro.api.requests import (
    AttentionRequest,
    Request,
    Response,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.api.resolution import (
    Resolution,
    bits_required,
    execute,
    normalize,
    resolve,
    run,
)

__all__ = [
    "AttentionRequest",
    "Client",
    "Request",
    "Resolution",
    "Response",
    "SddmmRequest",
    "SpmmRequest",
    "TransformerRequest",
    "bits_required",
    "execute",
    "normalize",
    "open_engine",
    "resolve",
    "run",
]
