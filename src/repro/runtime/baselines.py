"""Comparator libraries exposed as registered execution backends.

Each backend wraps one :mod:`repro.baselines` kernel family behind the
:class:`~repro.runtime.backend.Backend` protocol, carrying its Table I
capability row and its calibrated cost model. Fallback priorities
follow the paper's performance ordering at the evaluation shapes, so
the registry's resolution chain degrades sensibly: a device without
integer Tensor cores (V100) falls back from Magicube to vectorSparse,
a precision no sparse library carries falls back to dense cuBLAS.

The fp16-path backends that have a synthetic-topology accounting
(vectorSparse, Sputnik, scalar CSR, dense cuBLAS) also implement the
planning hook, which lets the serving planner's cross-backend search
discover e.g. that dense GEMM beats every sparse kernel below the
paper's ~0.7 sparsity crossover.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.cublas import CublasGemm
from repro.baselines.cusparse import CusparseBlockedEllSpMM, CusparseCsrSpMM
from repro.baselines.cusparselt import CusparseLt24Gemm
from repro.baselines.sputnik import SputnikSpMM
from repro.baselines.vector_sparse import VectorSparseSDDMM, VectorSparseSpMM
from repro.errors import ConfigError
from repro.runtime.backend import (
    Backend,
    BackendCapabilities,
    Candidate,
    ExecutionResult,
    Problem,
)
from repro.runtime.device import Device


def _dense_of(operand) -> np.ndarray:
    """Dense view of an operand (SparseMatrix / format object / array)."""
    if hasattr(operand, "to_dense"):
        return operand.to_dense()
    return np.asarray(operand)


def _bcrs_of(operand):
    """BCRS view of a SparseMatrix-like operand, or the operand itself."""
    return operand.bcrs if hasattr(operand, "bcrs") else operand


class _BaselineBackend(Backend):
    """Shared glue: result assembly against the calibrated cost model."""

    def _result(self, device: Device, res) -> ExecutionResult:
        cm = self.cost(device)
        return ExecutionResult(
            output=res.output,
            stats=res.stats,
            time_s=cm.time(res.stats),
            tops=cm.tops(res.stats),
        )

    def _reject_op(self, op: str):
        raise ConfigError(f"backend {self.name!r} has no op {op!r}")


class VectorSparseBackend(_BaselineBackend):
    """vectorSparse (SC'21): BCRS fp16 SpMM/SDDMM on Tensor cores."""

    name = "vector-sparse"
    priority = 40
    library_profile = "vector_sparse"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm", "sddmm"),
            precisions=("fp16",),
            granularity="1-D block",
            dl_friendly=True,
            tensor_cores=True,
        )

    def prepare(self, operand, op="spmm", config=None):
        return _bcrs_of(operand)

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        dev = Device.resolve(device)
        if op == "spmm":
            lhs = self.prepare(operands["lhs"], op)
            return self._result(dev, VectorSparseSpMM()(lhs, operands["rhs"]))
        if op == "sddmm":
            mask = self.prepare(operands["mask"], op)
            res = VectorSparseSDDMM()(operands["a"], operands["b"], mask)
            return self._result(dev, res)
        self._reject_op(op)

    def plan_candidates(self, problem: Problem, device, admits=None):
        from repro.serve.topology import UniformBCRSMask

        if admits is not None and not admits(16, 16):
            return []
        dev = Device.resolve(device)
        cm = self.cost(dev)
        mask = UniformBCRSMask(
            problem.rows, problem.cols, problem.vector_length, problem.sparsity
        )
        if problem.op == "spmm":
            stats = VectorSparseSpMM()._account(mask, problem.inner)
        else:
            stats = VectorSparseSDDMM()._account(
                (problem.rows, problem.inner),
                (problem.inner, problem.cols),
                mask,
            )
        return [Candidate("fp16", 16, 16, {}, cm.time(stats))]


class SputnikBackend(_BaselineBackend):
    """Sputnik (SC'20): fine-grained CSR SpMM on CUDA cores."""

    name = "sputnik"
    priority = 75
    library_profile = "sputnik"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm",),
            precisions=("fp32_cuda", "fp16_cuda"),
            granularity="fine-grained",
            dl_friendly=True,
            tensor_cores=False,
        )

    def prepare(self, operand, op="spmm", config=None):
        from repro.formats.csr import CSRMatrix

        if isinstance(operand, CSRMatrix):
            return operand
        return CSRMatrix.from_dense(_dense_of(operand))

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        if op != "spmm":
            self._reject_op(op)
        dev = Device.resolve(device)
        lhs = self.prepare(operands["lhs"], op)
        return self._result(dev, SputnikSpMM()(lhs, operands["rhs"]))

    def plan_candidates(self, problem: Problem, device, admits=None):
        from repro.serve.topology import UniformBCRSMask

        if problem.op != "spmm" or (admits is not None and not admits(16, 16)):
            return []
        dev = Device.resolve(device)
        topo = UniformBCRSMask(
            problem.rows, problem.cols, problem.vector_length, problem.sparsity
        )
        stats = SputnikSpMM()._account(topo, problem.inner)
        return [Candidate("fp32", 16, 16, {}, self.cost(dev).time(stats))]


class CusparseCsrBackend(_BaselineBackend):
    """cuSPARSE scalar-CSR SpMM (CUDA cores, fp16 storage)."""

    name = "cusparse-csr"
    priority = 80
    library_profile = "cusparse_csr"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm",),
            precisions=("fp16_cuda",),
            granularity="fine-grained",
            dl_friendly=False,
            tensor_cores=False,
        )

    def prepare(self, operand, op="spmm", config=None):
        from repro.formats.csr import CSRMatrix

        if isinstance(operand, CSRMatrix):
            return operand
        return CSRMatrix.from_dense(_dense_of(operand))

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        if op != "spmm":
            self._reject_op(op)
        dev = Device.resolve(device)
        lhs = self.prepare(operands["lhs"], op)
        return self._result(dev, CusparseCsrSpMM()(lhs, operands["rhs"]))

    def plan_candidates(self, problem: Problem, device, admits=None):
        from repro.serve.topology import UniformBCRSMask

        if problem.op != "spmm" or (admits is not None and not admits(16, 16)):
            return []
        dev = Device.resolve(device)
        topo = UniformBCRSMask(
            problem.rows, problem.cols, problem.vector_length, problem.sparsity
        )
        stats = CusparseCsrSpMM()._account(topo, problem.inner)
        return [Candidate("fp16", 16, 16, {}, self.cost(dev).time(stats))]


class CusparseBlockedEllBackend(_BaselineBackend):
    """cuSPARSE Blocked-ELL SpMM on Tensor cores (fp16/int8)."""

    name = "cusparse-blocked-ell"
    priority = 70
    library_profile = "cusparse_blocked_ell"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm",),
            precisions=("fp16", "int8"),
            granularity="block",
            dl_friendly=False,
            tensor_cores=True,
        )

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        if op != "spmm":
            self._reject_op(op)
        dev = Device.resolve(device)
        precision = operands.get("precision", "fp16")
        kern = CusparseBlockedEllSpMM(precision)
        return self._result(dev, kern(operands["lhs"], operands["rhs"]))


class CublasFp16Backend(_BaselineBackend):
    """Dense cublasHgemm — the paper's normalization baseline.

    Dense GEMM ignores sparsity entirely, which is exactly why its plan
    candidate wins below the sparsity crossover: the planner's
    cross-backend search reproduces the paper's "sparse beats dense
    above ~0.7" boundary per shape.
    """

    name = "cublas-fp16"
    priority = 60
    library_profile = "cublas_fp16"
    precision = "fp16"
    fidelity = (16, 16)

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm",),
            precisions=(self.precision,),
            granularity="dense",
            dl_friendly=True,
            tensor_cores=True,
        )

    def prepare(self, operand, op="spmm", config=None):
        return _dense_of(operand)

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        if op != "spmm":
            self._reject_op(op)
        dev = Device.resolve(device)
        gemm = CublasGemm(self.precision)
        return self._result(dev, gemm(self.prepare(operands["lhs"]), operands["rhs"]))

    def plan_candidates(self, problem: Problem, device, admits=None):
        l_bits, r_bits = self.fidelity
        if problem.op != "spmm" or (
            admits is not None and not admits(l_bits, r_bits)
        ):
            return []
        dev = Device.resolve(device)
        stats = CublasGemm(self.precision)._account(
            (problem.rows, problem.cols), (problem.cols, problem.inner)
        )
        return [
            Candidate(
                self.precision, l_bits, r_bits, {}, self.cost(dev).time(stats)
            )
        ]


class CublasInt8Backend(CublasFp16Backend):
    """Dense int8 IMMA GEMM (the paper's "worse than fp16" baseline)."""

    name = "cublas-int8"
    priority = 61
    library_profile = "cublas_int8"
    precision = "int8"
    fidelity = (8, 8)


class CusparseLtBackend(_BaselineBackend):
    """cuSPARSELt 2:4 structured-sparsity GEMM.

    Not plannable: its fixed 50% 2:4 pattern does not apply to the
    planner's V x 1 block topologies.
    """

    name = "cusparselt"
    priority = 50
    library_profile = "cusparselt"

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm",),
            precisions=("fp16", "int8", "int4"),
            granularity="2:4 structured",
            dl_friendly=True,
            tensor_cores=True,
        )

    def execute(self, op, device, config=None, **operands) -> ExecutionResult:
        if op != "spmm":
            self._reject_op(op)
        dev = Device.resolve(device)
        precision = operands.get("precision", "fp16")
        kern = CusparseLt24Gemm(precision)
        res = kern(_dense_of(operands["lhs"]), operands["rhs"])
        return self._result(dev, res)
