"""The execution-backend protocol.

A :class:`Backend` is one way of executing a sparse (or dense) matrix
operation: the Magicube kernels in emulation or strict mode, or one of
the paper's comparator libraries. Every backend answers the same five
questions —

- :meth:`Backend.capabilities` — which ops / precisions / sparsity
  granularity it implements (the Table I row, machine-readable),
- :meth:`Backend.supports` — can it run one (device, precision, op)
  combination,
- :meth:`Backend.prepare` — convert an operand into the layout the
  backend executes from (SR-BCRS at the precision's stride, BCRS, CSR,
  dense...),
- :meth:`Backend.execute` — run one op functionally and return the
  output with its cost accounting,
- :meth:`Backend.cost` — the calibrated :class:`~repro.gpu.timing
  .CostModel` for one (device, op),

plus an optional planning hook, :meth:`Backend.plan_candidates`, that
enumerates costed kernel configurations for a :class:`Problem` so the
serving planner can search across backends and devices uniformly.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.gpu.timing import CostModel, KernelStats
from repro.runtime.device import Device


@dataclass(frozen=True)
class BackendCapabilities:
    """What one backend can do (the machine-readable Table I row).

    ``precisions`` are device peak-rate names the backend draws on
    (``"int8"``, ``"fp16"``, ``"fp16_cuda"``...); a device admits the
    backend only if it has a peak rate for at least one of them.
    ``pairs`` are the ``Lx-Ry`` mixed-precision labels (Magicube only).
    """

    ops: tuple[str, ...]
    precisions: tuple[str, ...]
    pairs: tuple[str, ...] = ()
    granularity: str = ""
    mixed_precision: bool = False
    dl_friendly: bool = True
    tensor_cores: bool = True

    @property
    def fp16(self) -> bool:
        return any(p in ("fp16", "fp16_cuda") for p in self.precisions)

    @property
    def int8(self) -> bool:
        return "int8" in self.precisions

    @property
    def int4(self) -> bool:
        return "int4" in self.precisions


@dataclass(frozen=True)
class Problem:
    """One request class the planner costs: shape, sparsity, blocking.

    ``inner`` is the SpMM RHS width N, or the SDDMM reduction dim K —
    the same convention :class:`~repro.serve.planner.PlanKey` uses.
    """

    op: str
    rows: int
    cols: int
    inner: int
    vector_length: int
    sparsity: float


@dataclass(frozen=True)
class Candidate:
    """One costed configuration a backend offers for a :class:`Problem`.

    ``l_bits``/``r_bits`` are the *fidelity* the candidate preserves
    (16/16 for fp16 paths), which the planner's objective bounds filter;
    ``config`` holds backend-specific kernel knobs.
    """

    precision: str
    l_bits: int
    r_bits: int
    config: dict
    time_s: float


@dataclass
class ExecutionResult:
    """What :meth:`Backend.execute` returns: output + accounted cost."""

    output: object
    stats: KernelStats
    time_s: float
    tops: float
    extras: dict = field(default_factory=dict)


class Backend(abc.ABC):
    """One pluggable execution engine for sparse matrix operations."""

    #: registry name (kebab-case, e.g. ``"magicube-emulation"``)
    name: str = ""
    #: deterministic fallback rank: lower resolves first
    priority: int = 100
    #: calibrated cost-model profile in :mod:`repro.baselines.calibration`
    library_profile: str = ""

    # -- protocol -------------------------------------------------------
    @abc.abstractmethod
    def capabilities(self) -> BackendCapabilities:
        """Static description of what the backend implements."""

    def supports(
        self,
        device: Device | str,
        precision: str | None = None,
        op: str | None = None,
    ) -> bool:
        """Whether the backend can run ``op`` at ``precision`` on
        ``device``.

        ``precision`` may be a device peak-rate name (``"int8"``,
        ``"fp16"``) or an ``Lx-Ry`` pair label; ``None`` asks whether
        *any* of the backend's precisions is available on the device.
        """
        caps = self.capabilities()
        dev = Device.resolve(device)
        if op is not None and op not in caps.ops:
            return False
        if precision is None:
            return any(dev.supports(p) for p in caps.precisions)
        if precision in caps.pairs:
            return self._supports_pair(dev, precision, op)
        return precision in caps.precisions and dev.supports(precision)

    def _supports_pair(self, device: Device, pair: str, op: str | None) -> bool:
        """Pair-label support check; only pair-capable backends override."""
        return False

    def cost(self, device: Device | str, op: str = "spmm") -> CostModel:
        """The calibrated cost model for this backend on one device.

        Models are immutable, so one instance per device name is built
        and cached — ``cost`` sits on every execute path and the model
        construction would otherwise dominate small launches.
        """
        dev = Device.resolve(device)
        cache = self.__dict__.setdefault("_cost_models", {})
        model = cache.get(dev.name)
        if model is None:
            # imported here: repro.baselines.__init__ itself queries the
            # registry for Table I, so this import must stay off the
            # module-import path
            from repro.baselines.calibration import cost_model_for

            model = cost_model_for(self.library_profile, dev.spec)
            cache[dev.name] = model
        return model

    def prepare(
        self, operand: object, op: str = "spmm", config: object | None = None
    ) -> object:
        """Convert ``operand`` into the backend's execution layout.

        The default is the identity — backends with a conversion
        (SR-BCRS stride, CSR, dense) override.
        """
        return operand

    @abc.abstractmethod
    def execute(
        self,
        op: str,
        device: Device | str,
        config: object | None = None,
        **operands,
    ) -> ExecutionResult:
        """Run ``op`` functionally and account its cost on ``device``."""

    # -- planning hook --------------------------------------------------
    def plan_candidates(
        self, problem: Problem, device: Device | str, admits=None
    ) -> list[Candidate]:
        """Costed configurations for ``problem`` on ``device``.

        ``admits(l_bits, r_bits)`` is the planner objective's fidelity
        filter (``None`` admits everything). Backends that cannot be
        planned (no synthetic-topology accounting) return ``[]`` — the
        default.
        """
        return []

    @property
    def plannable(self) -> bool:
        """Whether the backend participates in planner searches."""
        return type(self).plan_candidates is not Backend.plan_candidates

    # -- helpers --------------------------------------------------------
    def require_support(
        self,
        device: Device | str,
        precision: str | None = None,
        op: str | None = None,
    ) -> None:
        """Raise :class:`ConfigError` unless :meth:`supports` is true."""
        if not self.supports(device, precision=precision, op=op):
            raise ConfigError(
                f"backend {self.name!r} does not support "
                f"op={op!r} precision={precision!r} on "
                f"{Device.resolve(device).name}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r} priority={self.priority}>"
