"""Typed device handles for the execution runtime.

A :class:`Device` wraps a :class:`~repro.gpu.device.DeviceSpec` (the
paper's Table II capability model: A100/V100 plus the H100 and MI250X
profiles) behind a small, hashable handle that the backend registry,
the planner and the serving engine pass around instead of bare
``"A100"`` strings. :meth:`Device.resolve` is the single choke point
where user-supplied device arguments are validated — unknown names
raise the library's typed :class:`~repro.errors.DeviceError` instead of
surfacing as a downstream ``KeyError``.
"""

from __future__ import annotations

from repro.errors import DeviceError
from repro.gpu.device import DeviceSpec, get_device, list_devices


class Device:
    """A resolved, validated handle on one modelled GPU."""

    __slots__ = ("spec",)

    def __init__(self, spec: DeviceSpec) -> None:
        if not isinstance(spec, DeviceSpec):
            raise DeviceError(
                f"Device wraps a DeviceSpec, got {type(spec).__name__}"
            )
        object.__setattr__(self, "spec", spec)

    # -- resolution -----------------------------------------------------
    @classmethod
    def resolve(cls, device: "Device | DeviceSpec | str") -> "Device":
        """Coerce a device argument into a validated :class:`Device`.

        Accepts an existing handle, a raw :class:`DeviceSpec`, or a
        name. Names are validated against
        :func:`repro.gpu.device.list_devices`; anything unknown raises
        :class:`DeviceError`.
        """
        if isinstance(device, Device):
            return device
        if isinstance(device, DeviceSpec):
            return cls(device)
        if isinstance(device, str):
            if device.upper() not in list_devices():
                raise DeviceError(
                    f"unknown device {device!r}; modelled devices: "
                    f"{list_devices()}"
                )
            return cls(get_device(device))
        raise DeviceError(
            f"cannot resolve a device from {type(device).__name__}"
        )

    @classmethod
    def all(cls) -> "list[Device]":
        """Handles for every modelled device profile."""
        return [cls(get_device(name)) for name in list_devices()]

    # -- views ----------------------------------------------------------
    @property
    def name(self) -> str:
        return self.spec.name

    def supports(self, precision: str) -> bool:
        """Whether the device has a peak rate for ``precision``."""
        return self.spec.supports(precision)

    # -- identity -------------------------------------------------------
    def __setattr__(self, key: str, value: object) -> None:
        raise AttributeError("Device handles are immutable")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Device):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return hash(("repro.runtime.Device", self.name))

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Device({self.name})"
