"""Magicube execution backends: emulation (fast) and strict (bit-level).

Both wrap the :mod:`repro.kernels` SpMM/SDDMM implementations behind the
:class:`~repro.runtime.backend.Backend` protocol. ``magicube-emulation``
computes strips with vectorized matmuls (the production path);
``magicube-strict`` routes every tile through the fragment-level
digit-decomposition algebra (orders of magnitude slower; the ground
truth the fast path is tested against). Their *cost accounting is
identical* — both model the same CUDA kernel — so the strict backend
shares the emulation backend's planning hook.

Device admission follows Table II: an ``Lx-Ry`` pair is admissible only
where the device has a peak rate for the pair's native MMA width
(``int8`` / ``int4``) — e.g. L4-R4 plans exist on A100 but not on H100
or MI250X, which lack int4 Tensor-core paths.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError, ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.srbcrs import SRBCRSMatrix
from repro.kernels.emulation import plan_for, supported_pairs
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig
from repro.runtime.backend import (
    Backend,
    BackendCapabilities,
    Candidate,
    ExecutionResult,
    Problem,
)
from repro.runtime.device import Device

#: SpMM RHS tile widths searched by the planning hook (SpMMConfig range)
BSN_CANDIDATES = (32, 64, 96, 128)
#: SDDMM warps-per-block searched (each warp owns 8 output columns)
WARP_CANDIDATES = (2, 4, 8)
#: tensor-parallel widths the planning hook prices alongside the
#: single-device point (1 = unsharded). The sharded variants split the
#: contraction dimension and pay a ring all-reduce on the output
#: (:func:`repro.transformer.distributed.allreduce_time`), so the 12 us
#: collective floor keeps small problems on one device and only
#: genuinely bandwidth-bound shapes elect a ``{"tp": g}`` plan.
TP_CANDIDATES = (1, 2, 4)


def _pair_labels() -> tuple[str, ...]:
    labels = {f"L{l}-R{r}" for op in ("spmm", "sddmm") for l, r in supported_pairs(op)}
    return tuple(sorted(labels))


class MagicubeEmulationBackend(Backend):
    """The Magicube kernels with vectorized (emulated) strip execution.

    ``spmm_kernel`` / ``sddmm_kernel`` are class attributes so subclasses
    (``magicube-strict``, the :mod:`repro.fastpath` backends) swap the
    arithmetic implementation while inheriting the whole protocol
    surface — capabilities, device admission, cost accounting and the
    planning hook stay identical by construction.
    """

    name = "magicube-emulation"
    priority = 10
    library_profile = "magicube"
    strict = False
    spmm_kernel: type[MagicubeSpMM] = MagicubeSpMM
    sddmm_kernel: type[MagicubeSDDMM] = MagicubeSDDMM

    def capabilities(self) -> BackendCapabilities:
        return BackendCapabilities(
            ops=("spmm", "sddmm"),
            precisions=("int8", "int4"),
            pairs=_pair_labels(),
            granularity="1-D block",
            mixed_precision=True,
            dl_friendly=True,
            tensor_cores=True,
        )

    def _supports_pair(self, device: Device, pair: str, op: str | None) -> bool:
        l_bits, r_bits = (int(p[1:]) for p in pair.split("-"))
        for table_op in (op,) if op else ("spmm", "sddmm"):
            if (l_bits, r_bits) in supported_pairs(table_op):
                plan = plan_for(l_bits, r_bits, op=table_op)
                if device.supports(f"int{plan.native_bits}"):
                    return True
        return False

    # -- execution ------------------------------------------------------
    def prepare(
        self, operand: object, op: str = "spmm", config: object | None = None
    ) -> object:
        """SR-BCRS at the config's stride for SpMM; BCRS for SDDMM."""
        if op == "spmm":
            cfg = config if isinstance(config, SpMMConfig) else SpMMConfig()
            stride = self.spmm_kernel(cfg).required_stride
            if hasattr(operand, "srbcrs_for"):
                return operand.srbcrs_for(stride)
            return operand
        if hasattr(operand, "bcrs"):
            return operand.bcrs
        return operand

    def execute(
        self,
        op: str,
        device: Device | str,
        config: object | None = None,
        **operands,
    ) -> ExecutionResult:
        dev = Device.resolve(device)
        if op == "spmm":
            return self._execute_spmm(dev, config, **operands)
        if op == "sddmm":
            return self._execute_sddmm(dev, config, **operands)
        raise ConfigError(f"backend {self.name!r} has no op {op!r}")

    def _execute_spmm(
        self,
        device: Device,
        config: SpMMConfig | None,
        lhs=None,
        rhs=None,
        scale=None,
        **_,
    ) -> ExecutionResult:
        kern = self.spmm_kernel(config if config is not None else SpMMConfig())
        prepared = self.prepare(lhs, op="spmm", config=kern.config)
        if not isinstance(prepared, SRBCRSMatrix) and not hasattr(prepared, "stride"):
            raise ShapeError("spmm lhs must be a SparseMatrix or SRBCRSMatrix")
        res = kern(prepared, rhs, scale=scale, strict=self.strict)
        cm = self.cost(device, op="spmm")
        output = res.dequantized if res.dequantized is not None else res.output
        return ExecutionResult(
            output=output,
            stats=res.stats,
            time_s=cm.time(res.stats),
            tops=cm.tops(res.stats),
        )

    def _execute_sddmm(
        self,
        device: Device,
        config: SDDMMConfig | None,
        a=None,
        b=None,
        mask=None,
        **_,
    ) -> ExecutionResult:
        kern = self.sddmm_kernel(config if config is not None else SDDMMConfig())
        topo = self.prepare(mask, op="sddmm", config=kern.config)
        if not isinstance(topo, BCRSMatrix):
            raise ShapeError("sddmm mask must be a SparseMatrix or BCRSMatrix")
        res = kern(np.asarray(a), np.asarray(b), topo)
        cm = self.cost(device, op="sddmm")
        return ExecutionResult(
            output=res.output,
            stats=res.stats,
            time_s=cm.time(res.stats),
            tops=cm.tops(res.stats),
        )

    # -- planning hook --------------------------------------------------
    def plan_candidates(
        self, problem: Problem, device: Device | str, admits=None
    ) -> list[Candidate]:
        # imported here: repro.serve.topology is a leaf module shared
        # with the Fig. 17 latency model, and transformer.distributed
        # would cycle back through the registry at module import time
        from repro.serve.topology import UniformBCRSMask, UniformSRBCRS
        from repro.transformer.distributed import (
            NVLINK_BANDWIDTH_GBS,
            allreduce_time,
        )

        dev = Device.resolve(device)
        cm = self.cost(dev, op=problem.op)
        candidates: list[Candidate] = []
        for l_bits, r_bits in supported_pairs(problem.op):
            if admits is not None and not admits(l_bits, r_bits):
                continue
            plan = plan_for(l_bits, r_bits, op=problem.op)
            if not dev.supports(f"int{plan.native_bits}"):
                continue
            if problem.op == "spmm":
                best = None
                for bsn in BSN_CANDIDATES:
                    kern = self.spmm_kernel(
                        SpMMConfig(l_bits=l_bits, r_bits=r_bits, bsn=bsn)
                    )
                    for tp in TP_CANDIDATES:
                        # row-parallel shard: the sparse operand's
                        # columns (the contraction dim) split g ways,
                        # partial outputs all-reduce back together
                        if tp > 1 and problem.cols % (tp * problem.vector_length):
                            continue
                        sr = UniformSRBCRS(
                            problem.rows,
                            problem.cols // tp,
                            problem.vector_length,
                            problem.sparsity,
                            kern.required_stride,
                        )
                        t = cm.time(kern._account(sr, problem.inner))
                        if tp > 1:
                            out_bytes = problem.rows * problem.inner * 2
                            t += allreduce_time(
                                out_bytes, tp, NVLINK_BANDWIDTH_GBS
                            )
                        if best is None or t < best.time_s:
                            config = {"bsn": bsn}
                            if tp > 1:
                                config["tp"] = tp
                            best = Candidate(
                                f"L{l_bits}-R{r_bits}", l_bits, r_bits,
                                config, t,
                            )
                candidates.append(best)
            else:
                mask = UniformBCRSMask(
                    problem.rows,
                    problem.cols,
                    problem.vector_length,
                    problem.sparsity,
                )
                # the sampled output is sparse: only the surviving
                # entries cross NVLink in the sharded variants
                nnz = problem.rows * problem.cols * (1.0 - problem.sparsity)
                best = None
                for warps in WARP_CANDIDATES:
                    kern = self.sddmm_kernel(
                        SDDMMConfig(l_bits=l_bits, r_bits=r_bits, warps=warps)
                    )
                    for tp in TP_CANDIDATES:
                        # shard the dense contraction dim; partial
                        # sampled products all-reduce at the mask
                        if tp > 1 and problem.inner % tp:
                            continue
                        stats = kern._account(
                            (problem.rows, problem.inner // tp),
                            (problem.inner // tp, problem.cols),
                            mask,
                        )
                        t = cm.time(stats)
                        if tp > 1:
                            t += allreduce_time(
                                int(nnz * 2), tp, NVLINK_BANDWIDTH_GBS
                            )
                        if best is None or t < best.time_s:
                            config = {"warps": warps}
                            if tp > 1:
                                config["tp"] = tp
                            best = Candidate(
                                f"L{l_bits}-R{r_bits}", l_bits, r_bits,
                                config, t,
                            )
                candidates.append(best)
        return candidates


class MagicubeStrictBackend(MagicubeEmulationBackend):
    """Fragment-level bit-accurate execution (verification path).

    Same kernels, same accounting, same plans — every strip is computed
    through the digit-decomposition algebra instead of a direct matmul.
    Registered at low priority so it is only chosen when pinned.
    """

    name = "magicube-strict"
    priority = 90
    strict = True
