"""repro.runtime — device-aware execution-backend registry.

The runtime layer unifies the three execution stacks that grew in
parallel — the Magicube kernels, the paper's baseline comparators, and
the serving engine's dispatch — behind one pluggable protocol:

- :class:`~repro.runtime.backend.Backend` — ``capabilities()`` /
  ``supports(device, precision)`` / ``prepare()`` / ``execute()`` /
  ``cost(device, op)``, plus the ``plan_candidates`` hook the serving
  planner searches.
- :class:`~repro.runtime.registry.BackendRegistry` — entry-point-style
  registration (instances, factories, or lazy ``"module:Attr"``
  strings) with deterministic priority-ordered fallback.
- :class:`~repro.runtime.device.Device` — a typed, validated handle
  replacing bare ``"A100"`` strings (A100 / V100 / H100 / MI250X
  profiles from Table II).

Built-in backends (fallback order): ``magicube-emulation``,
``vector-sparse``, ``cusparselt``, ``cublas-fp16``, ``cublas-int8``,
``cusparse-blocked-ell``, ``sputnik``, ``cusparse-csr``,
``magicube-strict``.

Quick start::

    from repro.runtime import get_backend, resolve_backend, Device

    dev = Device.resolve("A100")
    backend = resolve_backend(op="spmm", device=dev, precision="L8-R8")
    result = backend.execute("spmm", dev, config=cfg, lhs=A, rhs=B)
"""

from repro.runtime.backend import (
    Backend,
    BackendCapabilities,
    Candidate,
    ExecutionResult,
    Problem,
)
from repro.runtime.device import Device
from repro.runtime.registry import (
    DEFAULT_BACKEND,
    REGISTRY,
    BackendRegistry,
    get_backend,
    list_backends,
    plannable_backends,
    register_backend,
    resolve_backend,
)

__all__ = [
    "Backend",
    "BackendCapabilities",
    "BackendRegistry",
    "Candidate",
    "DEFAULT_BACKEND",
    "Device",
    "ExecutionResult",
    "Problem",
    "REGISTRY",
    "get_backend",
    "list_backends",
    "plannable_backends",
    "register_backend",
    "resolve_backend",
]
