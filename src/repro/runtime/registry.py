"""Backend registry: entry-point-style registration + ordered fallback.

Backends register under a unique name either as instances, as classes /
factories, or as lazy ``"module.path:Attribute"`` entry-point strings
(resolved on first use, so registering is free and cycle-proof). Lookup
is deterministic: :meth:`BackendRegistry.backends` orders by
``(priority, name)`` and :meth:`BackendRegistry.resolve` walks that
order, returning the first backend that supports the requested
(op, device, precision) — the fallback chain the serving engine and the
``core.api`` shims rely on.
"""

from __future__ import annotations

import importlib
import importlib.util
import threading
from typing import Callable, Iterable

from repro.errors import ConfigError
from repro.runtime.backend import Backend
from repro.runtime.device import Device

#: the backend every shim / migration falls back to
DEFAULT_BACKEND = "magicube-emulation"


class BackendRegistry:
    """Thread-safe name -> :class:`Backend` mapping with lazy factories."""

    def __init__(self) -> None:
        self._factories: dict[str, Callable[[], Backend] | str] = {}
        self._instances: dict[str, Backend] = {}
        self._lock = threading.RLock()

    # -- registration ---------------------------------------------------
    def register(
        self,
        name: str,
        backend: "Backend | Callable[[], Backend] | str",
        replace: bool = False,
    ) -> None:
        """Register a backend under ``name``.

        ``backend`` may be an instance, a zero-argument factory (e.g.
        the class itself), or an entry-point string
        ``"pkg.module:Attr"`` imported on first use. Duplicate names
        raise :class:`ConfigError` unless ``replace=True``.
        """
        with self._lock:
            if not replace and (name in self._factories or name in self._instances):
                raise ConfigError(
                    f"backend {name!r} is already registered; "
                    f"pass replace=True to override"
                )
            self._instances.pop(name, None)
            if isinstance(backend, Backend):
                self._instances[name] = backend
                self._factories.pop(name, None)
            else:
                self._factories[name] = backend

    def unregister(self, name: str) -> None:
        with self._lock:
            had = name in self._factories or name in self._instances
            self._factories.pop(name, None)
            self._instances.pop(name, None)
        if not had:
            raise ConfigError(f"backend {name!r} is not registered")

    # -- lookup ---------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(set(self._factories) | set(self._instances))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._factories or name in self._instances

    def get(self, name: str) -> Backend:
        """The backend registered under ``name`` (instantiating lazily)."""
        with self._lock:
            inst = self._instances.get(name)
            if inst is not None:
                return inst
            factory = self._factories.get(name)
            if factory is None:
                raise ConfigError(
                    f"unknown backend {name!r}; registered: {self.names()}"
                )
            if isinstance(factory, str):
                module_name, _, attr = factory.partition(":")
                if not attr:
                    raise ConfigError(
                        f"bad entry point {factory!r} for backend {name!r}; "
                        f"expected 'module.path:Attribute'"
                    )
                target = getattr(importlib.import_module(module_name), attr)
                inst = target() if callable(target) else target
            else:
                inst = factory()
            if not isinstance(inst, Backend):
                raise ConfigError(
                    f"backend factory for {name!r} produced "
                    f"{type(inst).__name__}, not a Backend"
                )
            inst.name = inst.name or name
            self._instances[name] = inst
            return inst

    def backends(self) -> list[Backend]:
        """Every registered backend in deterministic fallback order."""
        found = [self.get(name) for name in self.names()]
        return sorted(found, key=lambda b: (b.priority, b.name))

    # -- resolution -----------------------------------------------------
    def admissible(
        self,
        op: str,
        device: "Device | str",
        precision: str | None = None,
    ) -> list[Backend]:
        """Backends that support (op, device, precision), in fallback
        order."""
        dev = Device.resolve(device)
        return [
            b
            for b in self.backends()
            if b.supports(dev, precision=precision, op=op)
        ]

    def resolve(
        self,
        name: str | None = None,
        op: str = "spmm",
        device: "Device | str" = "A100",
        precision: str | None = None,
    ) -> Backend:
        """The backend to run (op, precision) on ``device``.

        With ``name`` the choice is pinned (and verified); otherwise the
        priority-ordered fallback chain is walked and the first
        supporting backend wins. No match raises :class:`ConfigError`.
        """
        dev = Device.resolve(device)
        if name is not None:
            backend = self.get(name)
            backend.require_support(dev, precision=precision, op=op)
            return backend
        for backend in self.backends():
            if backend.supports(dev, precision=precision, op=op):
                return backend
        raise ConfigError(
            f"no registered backend supports op={op!r} "
            f"precision={precision!r} on {dev.name}; "
            f"registered: {self.names()}"
        )


#: the process-wide registry, pre-loaded with the built-in backends
REGISTRY = BackendRegistry()

_BUILTINS: tuple[tuple[str, str], ...] = (
    ("magicube-emulation", "repro.runtime.magicube:MagicubeEmulationBackend"),
    ("magicube-strict", "repro.runtime.magicube:MagicubeStrictBackend"),
    ("fastpath-vectorized", "repro.fastpath.backend:FastpathVectorizedBackend"),
    ("vector-sparse", "repro.runtime.baselines:VectorSparseBackend"),
    ("cusparselt", "repro.runtime.baselines:CusparseLtBackend"),
    ("cublas-fp16", "repro.runtime.baselines:CublasFp16Backend"),
    ("cublas-int8", "repro.runtime.baselines:CublasInt8Backend"),
    ("cusparse-blocked-ell", "repro.runtime.baselines:CusparseBlockedEllBackend"),
    ("sputnik", "repro.runtime.baselines:SputnikBackend"),
    ("cusparse-csr", "repro.runtime.baselines:CusparseCsrBackend"),
)

for _name, _entry in _BUILTINS:
    REGISTRY.register(_name, _entry)

# the compiled fastpath tier exists only where its dependency does: no
# numba, no entry — capability discovery stays truthful
if importlib.util.find_spec("numba") is not None:  # pragma: no cover
    REGISTRY.register("fastpath-jit", "repro.fastpath.jit:FastpathJitBackend")


def register_backend(
    name: str,
    backend: "Backend | Callable[[], Backend] | str",
    replace: bool = False,
) -> None:
    """Register a backend with the process-wide registry."""
    REGISTRY.register(name, backend, replace=replace)


def get_backend(name: str) -> Backend:
    """Look up one backend by name in the process-wide registry."""
    return REGISTRY.get(name)


def list_backends() -> list[str]:
    """Names of every registered backend."""
    return REGISTRY.names()


def resolve_backend(
    name: str | None = None,
    op: str = "spmm",
    device: "Device | str" = "A100",
    precision: str | None = None,
) -> Backend:
    """Resolve (op, device, precision) against the process-wide registry."""
    return REGISTRY.resolve(name, op=op, device=device, precision=precision)


def plannable_backends(
    op: str,
    device: "Device | str",
    names: Iterable[str] | None = None,
    registry: BackendRegistry | None = None,
) -> list[Backend]:
    """Admissible backends that implement the planning hook.

    ``names`` restricts (and orders by) an explicit backend list;
    ``None`` takes every admissible plannable backend in fallback
    order. ``registry`` defaults to the process-wide one — the
    autotuner passes its own when enumerating sweep spaces against an
    isolated registry.
    """
    reg = registry if registry is not None else REGISTRY
    dev = Device.resolve(device)
    if names is not None:
        found = [reg.get(n) for n in names]
    else:
        found = reg.backends()
    return [
        b
        for b in found
        if b.plannable and b.supports(dev, op=op)
    ]
