"""The Table I feature matrix, derived from the backend registry.

Each row of the paper's Table I is now a *query* against
:mod:`repro.runtime`: the registered execution backends carry their own
:class:`~repro.runtime.backend.BackendCapabilities`, and this module
folds them into the paper's five library rows (the cuSPARSE row merges
the Blocked-ELL and scalar-CSR backends, as the paper does). The
rendered table therefore can never drift from what the backends
actually implement — the tests pin it against the paper's published
cells.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LibraryCapability:
    """One row of Table I."""

    name: str
    fp16: bool
    int8: bool
    int4: bool
    mixed: bool
    sparsity_granularity: str
    dl_friendly: bool
    tensor_cores: bool


#: Table I row name -> the registered backends that implement it
_TABLE1_BACKENDS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("cuSPARSE", ("cusparse-csr", "cusparse-blocked-ell")),
    ("cuSPARSELt", ("cusparselt",)),
    ("Sputnik", ("sputnik",)),
    ("vectorSparse", ("vector-sparse",)),
    ("Magicube", ("magicube-emulation",)),
)


def _row(name: str, backend_names: tuple[str, ...]) -> LibraryCapability:
    """Fold one or more backends' capabilities into a Table I row."""
    from repro.runtime import get_backend

    caps = [get_backend(b).capabilities() for b in backend_names]
    granularities: list[str] = []
    for c in caps:
        if c.granularity and c.granularity not in granularities:
            granularities.append(c.granularity)
    return LibraryCapability(
        name=name,
        fp16=any(c.fp16 for c in caps),
        int8=any(c.int8 for c in caps),
        int4=any(c.int4 for c in caps),
        mixed=any(c.mixed_precision for c in caps),
        sparsity_granularity=" / ".join(granularities),
        dl_friendly=any(c.dl_friendly for c in caps),
        tensor_cores=any(c.tensor_cores for c in caps),
    )


def library_capabilities() -> tuple[LibraryCapability, ...]:
    """Table I assembled from the live backend registry.

    Computed fresh on every call (backend instances are memoized by
    the registry, so this is cheap) — replacing a registered backend
    is reflected immediately.
    """
    return tuple(_row(name, backends) for name, backends in _TABLE1_BACKENDS)


def __getattr__(name: str):
    # LIBRARIES is resolved lazily (PEP 562): building it queries the
    # backend registry, which imports backend modules — doing that at
    # import time would cycle through repro.baselines.__init__
    if name == "LIBRARIES":
        return library_capabilities()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def capability_table() -> str:
    """Render Table I as aligned text."""
    header = f"{'Library':<14}{'fp16':<6}{'int8':<6}{'int4':<6}{'mixed':<7}{'granularity':<22}{'DL?':<5}{'TC':<4}"
    lines = [header, "-" * len(header)]
    for lib in library_capabilities():
        tick = lambda b: "yes" if b else "-"  # noqa: E731
        lines.append(
            f"{lib.name:<14}{tick(lib.fp16):<6}{tick(lib.int8):<6}"
            f"{tick(lib.int4):<6}{tick(lib.mixed):<7}"
            f"{lib.sparsity_granularity:<22}"
            f"{tick(lib.dl_friendly):<5}{tick(lib.tensor_cores):<4}"
        )
    return "\n".join(lines)
