"""The Table I feature matrix: what each sparse library supports.

Reproduced verbatim from the paper so the Table-I bench can print it and
the tests can pin it against the implemented baselines' actual
capabilities.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LibraryCapability:
    """One row of Table I."""

    name: str
    fp16: bool
    int8: bool
    int4: bool
    mixed: bool
    sparsity_granularity: str
    dl_friendly: bool
    tensor_cores: bool


LIBRARIES: tuple[LibraryCapability, ...] = (
    LibraryCapability(
        name="cuSPARSE",
        fp16=True,
        int8=True,
        int4=False,
        mixed=False,
        sparsity_granularity="fine-grained / block",
        dl_friendly=False,
        tensor_cores=True,  # only the Blocked-ELL path
    ),
    LibraryCapability(
        name="cuSPARSELt",
        fp16=True,
        int8=True,
        int4=True,
        mixed=False,
        sparsity_granularity="2:4 structured",
        dl_friendly=True,
        tensor_cores=True,
    ),
    LibraryCapability(
        name="Sputnik",
        fp16=True,
        int8=False,
        int4=False,
        mixed=False,
        sparsity_granularity="fine-grained",
        dl_friendly=True,
        tensor_cores=False,
    ),
    LibraryCapability(
        name="vectorSparse",
        fp16=True,
        int8=False,
        int4=False,
        mixed=False,
        sparsity_granularity="1-D block",
        dl_friendly=True,
        tensor_cores=True,
    ),
    LibraryCapability(
        name="Magicube",
        fp16=False,
        int8=True,
        int4=True,
        mixed=True,
        sparsity_granularity="1-D block",
        dl_friendly=True,
        tensor_cores=True,
    ),
)


def capability_table() -> str:
    """Render Table I as aligned text."""
    header = f"{'Library':<14}{'fp16':<6}{'int8':<6}{'int4':<6}{'mixed':<7}{'granularity':<22}{'DL?':<5}{'TC':<4}"
    lines = [header, "-" * len(header)]
    for lib in LIBRARIES:
        tick = lambda b: "yes" if b else "-"  # noqa: E731
        lines.append(
            f"{lib.name:<14}{tick(lib.fp16):<6}{tick(lib.int8):<6}"
            f"{tick(lib.int4):<6}{tick(lib.mixed):<7}"
            f"{lib.sparsity_granularity:<22}"
            f"{tick(lib.dl_friendly):<5}{tick(lib.tensor_cores):<4}"
        )
    return "\n".join(lines)
