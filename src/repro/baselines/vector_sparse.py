"""vectorSparse baseline (Chen et al., SC'21): BCRS fp16 on Tensor cores.

The state of the art the paper beats: column-vector (1-D block) sparse
encoding with wmma fp16 kernels. Structurally it is Magicube's sibling —
same 1-D block sparsity, same thread-block decomposition — but fp16-only
(2 B/element of RHS traffic, half the integer peak) and without the
SR-BCRS stride layout, conflict-free staging or prefetch pipeline, which
is where the remaining factor comes from (charged via the calibrated
efficiency and the non-pipelined loop).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div


@dataclass
class VectorSparseResult:
    output: np.ndarray
    stats: KernelStats


class VectorSparseSpMM:
    """BCRS x dense SpMM in fp16."""

    def __init__(self, bsn: int = 64) -> None:
        self.bsn = bsn
        self.precision = "fp16"
        self.library_profile = "vector_sparse"

    def __call__(self, lhs: BCRSMatrix, rhs: np.ndarray) -> VectorSparseResult:
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
            raise ShapeError(f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}")
        m, k = lhs.shape
        n = rhs.shape[1]
        v = lhs.vector_length
        out = np.zeros((m, n), dtype=np.float32)
        rhs16 = rhs.astype(np.float32).astype(np.float16).astype(np.float32)
        for r in range(lhs.num_strips):
            cols, vecs = lhs.strip_vectors(r)
            if cols.size == 0:
                continue
            tile = vecs.T.astype(np.float32)  # (V, nvec), fp16 storage
            tile = tile.astype(np.float16).astype(np.float32)
            out[r * v : (r + 1) * v] = tile @ rhs16[cols]
        return VectorSparseResult(output=out, stats=self._account(lhs, n))

    def _account(self, lhs: BCRSMatrix, n: int) -> KernelStats:
        m, k = lhs.shape
        v = lhs.vector_length
        stride = 16  # wmma fp16 k dim
        col_blocks = ceil_div(n, self.bsn)
        # vectors padded per strip to the wmma step
        padded = int(
            sum(ceil_div(int(c), stride) * stride for c in lhs.vectors_per_strip())
        )
        stats = KernelStats(name="vectorsparse-fp16")
        # vectorSparse programs wmma m16n16k16: at V <= 8 the m dim is at
        # most half used, so every vector is charged 16 MMA rows
        stats.mma_ops["fp16"] = 2 * padded * 16 * n
        stats.useful_ops = 2 * lhs.nnz * n
        t = TrafficCounter()
        lhs_bytes = padded * v * 2
        t.read("lhs_values", lhs_bytes * col_blocks, lhs_bytes)
        t.read("lhs_indices", padded * 4 * col_blocks, padded * 4)
        rhs_access = padded * n * 2
        t.read("rhs", rhs_access, min(k * n * 2, rhs_access))
        t.write("output", m * n * 2)
        stats.traffic = t
        # RHS marshalling through shared memory without the conflict-free
        # padded layout: ~2-way conflicted loads plus the stores
        stats.smem_transaction_cycles = (rhs_access // 4 // 32) * 3
        stats.prefetch = False  # no Alg.-1 pipeline in vectorSparse
        stats.grid = LaunchGrid(
            blocks=max(lhs.num_strips * col_blocks, 1), block=ThreadBlock(warps=2)
        )
        return stats


class VectorSparseSDDMM:
    """SDDMM with BCRS output topology in fp16."""

    def __init__(self, warps: int = 2) -> None:
        self.warps = warps
        self.precision = "fp16"
        self.library_profile = "vector_sparse"

    def __call__(
        self, a: np.ndarray, b: np.ndarray, mask: BCRSMatrix
    ) -> VectorSparseResult:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"incompatible SDDMM shapes {a.shape} @ {b.shape}")
        if mask.shape != (a.shape[0], b.shape[1]):
            raise ShapeError("mask shape mismatch")
        v = mask.vector_length
        a16 = a.astype(np.float32).astype(np.float16).astype(np.float32)
        b16 = b.astype(np.float32).astype(np.float16).astype(np.float32)
        values = np.zeros((mask.num_vectors, v), dtype=np.float32)
        for r in range(mask.num_strips):
            lo, hi = int(mask.row_ptrs[r]), int(mask.row_ptrs[r + 1])
            if hi == lo:
                continue
            cols = mask.col_indices[lo:hi]
            values[lo:hi] = (a16[r * v : (r + 1) * v] @ b16[:, cols]).T
        out = BCRSMatrix(
            shape=mask.shape,
            vector_length=v,
            row_ptrs=mask.row_ptrs.copy(),
            col_indices=mask.col_indices.copy(),
            values=values,
        )
        stats = self._account(a.shape, b.shape, mask)
        return VectorSparseResult(output=out, stats=stats)

    def _account(self, a_shape, b_shape, mask: BCRSMatrix) -> KernelStats:
        m, k = a_shape
        n = b_shape[1]
        v = mask.vector_length
        bsn = 8 * self.warps
        vec_blocks = sum(ceil_div(int(c), bsn) for c in mask.vectors_per_strip())
        padded_vecs = vec_blocks * bsn
        stats = KernelStats(name="vectorsparse-sddmm-fp16")
        stats.mma_ops["fp16"] = 2 * padded_vecs * 16 * k
        stats.useful_ops = 2 * k * mask.nnz
        t = TrafficCounter()
        lhs_access = vec_blocks * v * k * 2
        t.read("lhs", lhs_access, min(m * k * 2, lhs_access))
        rhs_access = padded_vecs * k * 2
        t.read("rhs", rhs_access, min(k * n * 2, rhs_access))
        t.read("mask_indices", mask.num_vectors * 4)
        t.write("output", mask.nnz * 2 + mask.num_vectors * 4)
        stats.traffic = t
        stats.prefetch = True
        stats.serial_bytes = lhs_access // 4
        stats.grid = LaunchGrid(
            blocks=max(vec_blocks, 1), block=ThreadBlock(warps=self.warps)
        )
        return stats
