"""Comparator libraries (paper Table I and Figs. 14-15 baselines).

Each baseline is a functional kernel (computes the true result) plus a
cost accounting matching that library's algorithm and data layout:

- :mod:`repro.baselines.cublas` — dense GEMM, fp16 and int8 (the paper's
  normalization baseline ``cublasHgemm`` and the int8 comparison).
- :mod:`repro.baselines.cusparse` — Blocked-ELL SpMM on Tensor cores
  (fp16/int8) and scalar-CSR SpMM for reference.
- :mod:`repro.baselines.cusparselt` — 2:4 structured sparsity GEMM.
- :mod:`repro.baselines.sputnik` — fine-grained CSR SpMM/SDDMM on CUDA
  cores (fp32/fp16).
- :mod:`repro.baselines.vector_sparse` — BCRS (column-vector) SpMM and
  SDDMM on Tensor cores in fp16: the state of the art the paper beats.
- :mod:`repro.baselines.calibration` — every efficiency constant used by
  the cost models, with its paper-derived justification.
- :mod:`repro.baselines.capabilities` — the Table I feature matrix.
"""

from repro.baselines.calibration import cost_model_for
from repro.baselines.capabilities import (
    LibraryCapability,
    capability_table,
    library_capabilities,
)
from repro.baselines.cublas import CublasGemm
from repro.baselines.cusparse import CusparseBlockedEllSpMM, CusparseCsrSpMM
from repro.baselines.cusparselt import CusparseLt24Gemm
from repro.baselines.sputnik import SputnikSpMM
from repro.baselines.vector_sparse import VectorSparseSDDMM, VectorSparseSpMM

def __getattr__(name: str):
    # LIBRARIES queries the backend registry on first access (see
    # repro.baselines.capabilities); resolving it lazily keeps this
    # package importable from inside a runtime backend module
    if name == "LIBRARIES":
        return library_capabilities()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "cost_model_for",
    "LIBRARIES",
    "LibraryCapability",
    "capability_table",
    "library_capabilities",
    "CublasGemm",
    "CusparseBlockedEllSpMM",
    "CusparseCsrSpMM",
    "CusparseLt24Gemm",
    "SputnikSpMM",
    "VectorSparseSpMM",
    "VectorSparseSDDMM",
]
