"""Calibration constants for every library's cost model.

Absolute GPU performance cannot be measured without the hardware, so
each library's achieved efficiency is a *calibrated constant*. The
values below are chosen once, globally — not per experiment — and the
benchmark suite then reproduces the paper's comparative shapes from the
kernels' analytic op/traffic counts alone. Justifications:

``magicube``
    compute 0.55: hand-tuned PTX mma kernels with the Alg.-1 pipeline;
    the paper's Fig. 12 peaks (~35 TOP/s useful at int4 against a
    1248 TOP/s ceiling) are consistent with mid-50s% of the *issued*
    MMA ops once padding and n-dim underutilization are accounted.
``cublas_fp16``
    compute 0.60: library GEMM at the evaluation's small-to-medium
    shapes (M=256..., K<=2304, N<=512) — far below the >90% of huge
    GEMMs, per the normalization baseline behaviour in Figs. 14-15.
``cublas_int8``
    compute 0.28: the paper observes "cuBLAS (int8) performs even worse
    than cuBLAS (fp16)": IMMA kernels need large tiles; at these shapes
    they underfill SMs and pay an int32->int8 epilogue. 0.28 puts
    cuBLAS-int8 under cuBLAS-fp16 throughout, as in Fig. 14.
``cusparse_blocked_ell``
    compute 0.35: cuSPARSE's Tensor-core Blocked-ELL SpMM; the paper
    (after Chen et al.) notes it needs block size > 8 to ever beat
    dense. ELL padding additionally inflates its op/traffic counts
    (charged by the kernel, not this constant).
``cusparse_csr``
    compute 0.12 on CUDA cores: scalar CSR SpMM, irregular gathers.
``sputnik``
    compute 0.35 of the *CUDA-core* peak: Sputnik's tuned fine-grained
    kernels (SC'20) achieve a large fraction of FPU peak but no Tensor
    cores — which is exactly why it loses at low precision.
``vector_sparse``
    compute 0.45: wmma-based BCRS kernels (SC'21); lacks Magicube's
    conflict-free staging and prefetch pipeline, hence the gap that
    remains even at equal traffic.
``cusparselt``
    compute 0.65 at 2x effective peak for its fixed 2:4 pattern.

Memory-side constants are shared (same DRAM/L2), except the serial
overlap of non-pipelined kernels.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.gpu.device import DeviceSpec, get_device
from repro.gpu.timing import CostModel

#: per-library CostModel keyword arguments (overriding the shared
#: memory-side defaults below where a library's access pattern warrants)
_PROFILES: dict[str, dict] = {
    # conflict-free staging + 64B-coalesced gathers: near-peak L2 use
    "magicube": dict(
        compute_efficiency=0.55, serial_overlap=0.40, l2_efficiency=0.95,
        mem_efficiency=0.90,
    ),
    "cublas_fp16": dict(compute_efficiency=0.60, serial_overlap=0.85),
    # IMMA kernels: good per-tile efficiency but rigid large tiles — the
    # under-occupancy is charged by the kernel's grid model (see
    # cublas.py), which is the paper's "int8 worse than fp16" effect
    "cublas_int8": dict(
        compute_efficiency=0.50, serial_overlap=0.85, blocks_per_sm=1
    ),
    # Blocked-ELL gathers whole block-rows with poorer coalescing and
    # no software pipeline: lower memory efficiencies, exposed loads
    "cusparse_blocked_ell": dict(
        compute_efficiency=0.35,
        serial_overlap=0.50,
        mem_efficiency=0.55,
        l2_efficiency=0.42,
    ),
    "cusparse_csr": dict(
        compute_efficiency=0.12, serial_overlap=0.30, l2_efficiency=0.40
    ),
    "sputnik": dict(compute_efficiency=0.35, serial_overlap=0.50),
    # wmma kernels without the SR-BCRS layout: smem marshalling on the
    # critical path and uncoalesced row gathers
    "vector_sparse": dict(
        compute_efficiency=0.35, serial_overlap=0.50, l2_efficiency=0.60
    ),
    "cusparselt": dict(compute_efficiency=0.65, serial_overlap=0.85),
}

#: shared memory-side defaults
_COMMON = dict(mem_efficiency=0.85, l2_efficiency=0.80)


def profiles() -> list[str]:
    """Names of all calibrated library profiles."""
    return sorted(_PROFILES)


def cost_model_for(library: str, device: DeviceSpec | str = "A100") -> CostModel:
    """The calibrated :class:`CostModel` for one library on one device."""
    if library not in _PROFILES:
        raise ConfigError(
            f"unknown library profile {library!r}; available: {profiles()}"
        )
    if isinstance(device, str):
        device = get_device(device)
    kwargs = {**_COMMON, **_PROFILES[library]}
    return CostModel(device=device, **kwargs)
