"""cuSPARSE baselines: Blocked-ELL SpMM (Tensor cores) and CSR SpMM.

The paper compares against cuSPARSE's Blocked-ELL SpMM in fp16 and int8
(Fig. 14), generating a Blocked-ELL matrix "with the same sparsity and
problem size" as the BCRS input. Blocked-ELL pays two structural taxes
the accounting makes explicit: whole ``bs x bs`` blocks are stored for
any nonzero inside (granularity), and every block-row is padded to the
widest one (ELL). The scalar-CSR kernel is the classic fine-grained
fallback that loses badly at deep-learning sparsities.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError, ShapeError
from repro.formats.blocked_ell import PAD_BLOCK, BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats


@dataclass
class SpMMBaselineResult:
    output: np.ndarray
    stats: KernelStats


class CusparseBlockedEllSpMM:
    """Blocked-ELL SpMM on Tensor cores, fp16 or int8."""

    def __init__(self, precision: str = "fp16") -> None:
        if precision not in ("fp16", "int8"):
            raise PrecisionError(f"Blocked-ELL SpMM models fp16/int8, got {precision}")
        self.precision = precision
        self.library_profile = "cusparse_blocked_ell"

    @property
    def element_bytes(self) -> int:
        return 2 if self.precision == "fp16" else 1

    def __call__(self, lhs: BlockedEllMatrix, rhs: np.ndarray) -> SpMMBaselineResult:
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
            raise ShapeError(f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}")
        bs = lhs.block_size
        m, k = lhs.shape
        n = rhs.shape[1]
        if self.precision == "int8":
            out = np.zeros((m, n), dtype=np.int64)
            rhs_c = rhs.astype(np.int64)
            blocks = lhs.blocks.astype(np.int64)
        else:
            out = np.zeros((m, n), dtype=np.float32)
            rhs_c = rhs.astype(np.float32)
            blocks = lhs.blocks.astype(np.float32)
        # the kernel multiplies every stored block, padding included —
        # padded slots have zero blocks so the result is exact
        for r in range(lhs.block_cols.shape[0]):
            acc = out[r * bs : (r + 1) * bs]
            for s in range(lhs.ell_width):
                c = int(lhs.block_cols[r, s])
                if c == PAD_BLOCK:
                    continue
                acc += blocks[r, s] @ rhs_c[c * bs : (c + 1) * bs]
        return SpMMBaselineResult(output=out, stats=self._account(lhs, n))

    def _account(self, lhs: BlockedEllMatrix, n: int) -> KernelStats:
        bs = lhs.block_size
        m, k = lhs.shape
        eb = self.element_bytes
        stats = KernelStats(name=f"cusparse-bell-{self.precision}")
        # computes on all stored blocks, ELL padding included
        padded_blocks = lhs.block_cols.size
        stats.mma_ops[self.precision] = 2 * padded_blocks * bs * bs * n
        stats.useful_ops = 2 * lhs.nnz * n
        t = TrafficCounter()
        val_bytes = lhs.padded_nnz * eb
        t.read("lhs_values", val_bytes, val_bytes)
        t.read("lhs_indices", lhs.block_cols.size * 4)
        rhs_access = padded_blocks * bs * n * eb  # B rows per stored block
        t.read("rhs", rhs_access, min(k * n * eb, rhs_access))
        t.write("output", m * n * 2)
        stats.traffic = t
        stats.prefetch = True
        stats.notes = {"ell_padding_ratio": lhs.padding_ratio}
        return stats


class CusparseCsrSpMM:
    """Scalar CSR SpMM on CUDA cores (fp16 storage, fp32 math)."""

    def __init__(self) -> None:
        self.precision = "fp16"
        self.library_profile = "cusparse_csr"

    def __call__(self, lhs: CSRMatrix, rhs: np.ndarray) -> SpMMBaselineResult:
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
            raise ShapeError(f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}")
        m, k = lhs.shape
        n = rhs.shape[1]
        out = np.zeros((m, n), dtype=np.float32)
        rows = np.repeat(np.arange(m), np.diff(lhs.row_ptrs))
        contrib = lhs.values[:, None].astype(np.float32) * rhs[lhs.col_indices].astype(
            np.float32
        )
        np.add.at(out, rows, contrib)
        return SpMMBaselineResult(output=out, stats=self._account(lhs, n))

    def _account(self, lhs: CSRMatrix, n: int) -> KernelStats:
        m, k = lhs.shape
        stats = KernelStats(name="cusparse-csr-fp16")
        stats.mma_ops["fp16_cuda"] = 2 * lhs.nnz * n
        stats.useful_ops = 2 * lhs.nnz * n
        t = TrafficCounter()
        t.read("lhs_values", lhs.nnz * 2)
        t.read("lhs_indices", lhs.nnz * 4)
        # scalar gathers: each nonzero pulls a full B row with poor
        # transaction efficiency (no vector reuse)
        rhs_access = lhs.nnz * n * 2
        t.read("rhs", rhs_access, min(k * n * 2, rhs_access))
        t.write("output", m * n * 2)
        stats.traffic = t
        stats.prefetch = False
        return stats
