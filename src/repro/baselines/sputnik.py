"""Sputnik baseline (Gale et al., SC'20): fine-grained CSR on CUDA cores.

Sputnik exploits deep-learning sparsity properties (many nonzeros per
row, row reordering for load balance) to make scalar CSR SpMM fast on
CUDA cores in fp32/fp16. Its structural ceiling is the CUDA-core peak —
no Tensor cores (Table I) — which is why every Tensor-core sparse kernel
passes it at low precision.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError, ShapeError
from repro.formats.csr import CSRMatrix
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats


@dataclass
class SputnikResult:
    output: np.ndarray
    stats: KernelStats


class SputnikSpMM:
    """Fine-grained CSR SpMM, fp32 or fp16 (CUDA cores)."""

    def __init__(self, precision: str = "fp32") -> None:
        if precision not in ("fp32", "fp16"):
            raise PrecisionError(f"Sputnik supports fp32/fp16, got {precision}")
        self.precision = precision
        self.library_profile = "sputnik"

    @property
    def element_bytes(self) -> int:
        return 4 if self.precision == "fp32" else 2

    def __call__(self, lhs: CSRMatrix, rhs: np.ndarray) -> SputnikResult:
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != lhs.shape[1]:
            raise ShapeError(f"RHS must be ({lhs.shape[1]}, N), got {rhs.shape}")
        m, k = lhs.shape
        n = rhs.shape[1]
        out = np.zeros((m, n), dtype=np.float32)
        rows = np.repeat(np.arange(m), np.diff(lhs.row_ptrs))
        vals = lhs.values.astype(np.float32)
        if self.precision == "fp16":
            vals = vals.astype(np.float16).astype(np.float32)
        contrib = vals[:, None] * rhs[lhs.col_indices].astype(np.float32)
        np.add.at(out, rows, contrib)
        return SputnikResult(output=out, stats=self._account(lhs, n))

    def _account(self, lhs: CSRMatrix, n: int) -> KernelStats:
        m, k = lhs.shape
        eb = self.element_bytes
        stats = KernelStats(name=f"sputnik-{self.precision}")
        stats.mma_ops[f"{self.precision}_cuda"] = 2 * lhs.nnz * n
        stats.useful_ops = 2 * lhs.nnz * n
        t = TrafficCounter()
        t.read("lhs_values", lhs.nnz * eb)
        t.read("lhs_indices", lhs.nnz * 4)
        # Sputnik's vector loads reuse B rows within a row's tile: charge
        # one B-row read per nonzero but let the L2 absorb re-reads
        rhs_access = lhs.nnz * n * eb
        t.read("rhs", rhs_access, min(k * n * eb, rhs_access))
        t.write("output", m * n * eb)
        stats.traffic = t
        stats.prefetch = True  # Sputnik uses software pipelining
        return stats
