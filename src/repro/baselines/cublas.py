"""cuBLAS dense GEMM baseline (fp16 ``cublasHgemm`` and int8 IMMA).

Figs. 14-15 normalize every kernel's speedup to ``cublasHgemm`` (dense
fp16). The functional path multiplies the *dense* operands — including
all the zeros the sparse kernels skip — and the accounting charges the
full dense op count and tiled-GEMM traffic, which is exactly what makes
the sparse kernels win above ~0.7 sparsity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import PrecisionError, ShapeError
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock, ceil_div
from repro.lowp.quantize import int_range

#: cuBLAS-style output tile edge used for the traffic model: each tile
#: of C re-reads a row panel of A and a column panel of B
_TILE = 128


@dataclass
class GemmResult:
    output: np.ndarray
    stats: KernelStats


class CublasGemm:
    """Dense GEMM at one precision ("fp16" or "int8")."""

    def __init__(self, precision: str = "fp16") -> None:
        if precision not in ("fp16", "int8"):
            raise PrecisionError(f"cuBLAS baseline models fp16/int8, got {precision}")
        self.precision = precision

    @property
    def element_bytes(self) -> int:
        return 2 if self.precision == "fp16" else 1

    @property
    def library_profile(self) -> str:
        return "cublas_fp16" if self.precision == "fp16" else "cublas_int8"

    def __call__(self, a: np.ndarray, b: np.ndarray) -> GemmResult:
        """C = A @ B on the dense operands."""
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"incompatible GEMM shapes {a.shape} @ {b.shape}")
        if self.precision == "int8":
            lo, hi = int_range(8, signed=True)
            for name, x in (("A", a), ("B", b)):
                if x.size and (x.min() < lo or x.max() > hi):
                    raise PrecisionError(f"{name} exceeds int8 range")
            out = a.astype(np.int64) @ b.astype(np.int64)
        else:
            # fp16 storage, fp32 accumulate (cublasHgemm with fp32 compute)
            a16 = np.asarray(a, dtype=np.float32).astype(np.float16)
            b16 = np.asarray(b, dtype=np.float32).astype(np.float16)
            out = a16.astype(np.float32) @ b16.astype(np.float32)
        return GemmResult(output=out, stats=self._account(a.shape, b.shape))

    def _account(self, a_shape: tuple[int, int], b_shape: tuple[int, int]) -> KernelStats:
        m, k = a_shape
        n = b_shape[1]
        eb = self.element_bytes
        stats = KernelStats(name=f"cublas-{self.precision}")
        stats.mma_ops[self.precision] = 2 * m * n * k
        stats.useful_ops = 2 * m * n * k

        t = TrafficCounter()
        row_panels = ceil_div(n, _TILE)  # times the A panel is re-read
        col_panels = ceil_div(m, _TILE)
        t.read("a", m * k * eb * row_panels, m * k * eb)
        t.read("b", k * n * eb * col_panels, k * n * eb)
        # fp16 out for Hgemm; int8 GEMM writes int32 then converts (the
        # epilogue cost that contributes to its poor showing)
        t.write("c", m * n * (2 if self.precision == "fp16" else 4))
        stats.traffic = t
        stats.prefetch = True  # library GEMMs are software-pipelined
        if self.precision == "int8":
            # IMMA kernels only come in large tiles (>= 128x128) with
            # limited split-K: at the evaluation's shapes the grid is a
            # handful of blocks and most SMs idle — the structural reason
            # the paper finds cuBLAS-int8 *slower* than fp16 (up to 15x
            # behind Magicube on small matrices). fp16 Hgemm has many
            # tile variants and is modelled as well-fitted instead.
            blocks = ceil_div(m, 128) * ceil_div(n, 128) * min(4, max(1, k // 512))
            stats.grid = LaunchGrid(blocks=blocks, block=ThreadBlock(warps=8))
        return stats
