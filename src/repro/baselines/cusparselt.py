"""cuSPARSELt baseline: 2:4 structured sparsity on Sparse Tensor cores.

Ampere's Sparse Tensor cores double the dense peak for matrices in the
2:4 pattern (exactly 2 nonzeros in every group of 4 along K, i.e.
sparsity fixed at 50%). Table I's point: the layout constraint is rigid
— general 1-D block matrices do not qualify, which is Magicube's whole
motivation. The baseline therefore (a) validates the pattern and (b)
runs at 2x the dense peak when it applies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError, PrecisionError, ShapeError
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats


def is_2to4(dense: np.ndarray) -> bool:
    """True iff every group of 4 along K has at most 2 nonzeros."""
    d = np.asarray(dense)
    if d.ndim != 2 or d.shape[1] % 4 != 0:
        return False
    groups = d.reshape(d.shape[0], -1, 4)
    return bool(((groups != 0).sum(axis=2) <= 2).all())


def prune_2to4(dense: np.ndarray) -> np.ndarray:
    """Magnitude-prune a dense matrix to the 2:4 pattern."""
    d = np.asarray(dense).copy()
    if d.shape[1] % 4 != 0:
        raise ShapeError(f"K={d.shape[1]} must be a multiple of 4")
    groups = np.abs(d.reshape(d.shape[0], -1, 4))
    # zero the two smallest of each group
    order = np.argsort(groups, axis=2)
    out = d.reshape(d.shape[0], -1, 4)
    rows, grps = np.indices(order.shape[:2])
    out[rows, grps, order[:, :, 0]] = 0
    out[rows, grps, order[:, :, 1]] = 0
    return out.reshape(d.shape)


@dataclass
class CusparseLtResult:
    output: np.ndarray
    stats: KernelStats


class CusparseLt24Gemm:
    """Structured-sparse GEMM, fp16 or int8, requiring the 2:4 pattern."""

    def __init__(self, precision: str = "fp16") -> None:
        if precision not in ("fp16", "int8", "int4"):
            raise PrecisionError(f"cuSPARSELt models fp16/int8/int4, got {precision}")
        self.precision = precision
        self.library_profile = "cusparselt"

    @property
    def element_bytes(self) -> float:
        return {"fp16": 2, "int8": 1, "int4": 0.5}[self.precision]

    def __call__(self, a: np.ndarray, b: np.ndarray) -> CusparseLtResult:
        a = np.asarray(a)
        b = np.asarray(b)
        if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
            raise ShapeError(f"incompatible shapes {a.shape} @ {b.shape}")
        if not is_2to4(a):
            raise FormatError(
                "cuSPARSELt requires the 2:4 structured-sparsity pattern "
                "(sparsity constrained to 50%)"
            )
        if self.precision in ("int8", "int4"):
            out = a.astype(np.int64) @ b.astype(np.int64)
        else:
            out = (
                a.astype(np.float32).astype(np.float16).astype(np.float32)
                @ b.astype(np.float32).astype(np.float16).astype(np.float32)
            )
        return CusparseLtResult(output=out, stats=self._account(a.shape, b.shape))

    def _account(self, a_shape, b_shape) -> KernelStats:
        m, k = a_shape
        n = b_shape[1]
        eb = self.element_bytes
        base = "fp16" if self.precision == "fp16" else self.precision
        stats = KernelStats(name=f"cusparselt-{self.precision}")
        # sparse tensor cores skip the zero half: half the dense MMA work
        # at the dense peak == "double peak performance"
        stats.mma_ops[base] = m * n * k  # = 2*m*n*k / 2
        stats.useful_ops = m * n * k
        t = TrafficCounter()
        t.read("a_compressed", int(m * k * eb / 2) + m * k // 8)  # values + metadata
        t.read("b", int(k * n * eb))
        t.write("c", m * n * 2)
        stats.traffic = t
        stats.prefetch = True
        return stats
