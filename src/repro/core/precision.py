"""Precision registry for the public API (paper Table IV).

Precisions are spelled ``"Lx-Ry"`` (x-bit LHS times y-bit RHS), matching
the paper's figures. :func:`parse_precision` validates against Table IV
for the requested operation.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PrecisionError
from repro.kernels.emulation import plan_for, supported_pairs

_PATTERN = re.compile(r"^L(\d+)-R(\d+)$")


@dataclass(frozen=True)
class Precision:
    """A validated precision pair for one operation."""

    l_bits: int
    r_bits: int
    op: str

    @property
    def name(self) -> str:
        return f"L{self.l_bits}-R{self.r_bits}"

    @property
    def is_native(self) -> bool:
        return plan_for(self.l_bits, self.r_bits, self.op).is_native

    @property
    def native_bits(self) -> int:
        return plan_for(self.l_bits, self.r_bits, self.op).native_bits


def parse_precision(spec: str, op: str = "spmm") -> Precision:
    """Parse and validate an ``"Lx-Ry"`` string against Table IV."""
    m = _PATTERN.match(spec.strip())
    if not m:
        raise PrecisionError(
            f"precision must look like 'L8-R4', got {spec!r}"
        )
    l_bits, r_bits = int(m.group(1)), int(m.group(2))
    plan_for(l_bits, r_bits, op)  # raises if outside Table IV
    return Precision(l_bits=l_bits, r_bits=r_bits, op=op)


def supported_precisions(op: str = "spmm") -> list[str]:
    """All Table-IV precision names for one operation, highest first."""
    return [f"L{l}-R{r}" for l, r in supported_pairs(op)]
