"""Legacy high-level API — deprecation shims over :mod:`repro.api`.

This module used to own the one-call ``spmm`` / ``sddmm`` kwarg
surface. Since v1 the typed request pipeline in :mod:`repro.api` is
the public entry point; the functions here build the equivalent typed
request, run it through the same resolution pipeline, and emit a
:class:`DeprecationWarning` with the exact replacement. Results are
bit-identical to the v1 path (they *are* the v1 path).

Migrate::

    # before
    from repro import SparseMatrix, spmm
    r = spmm(A, activations, precision="L8-R8")

    # after
    from repro import SparseMatrix, api
    r = api.run(api.SpmmRequest(lhs=A, rhs=activations, precision="L8-R8"))

``SparseMatrix`` now lives in :mod:`repro.core.matrix` (re-exported
here and from :mod:`repro`, unchanged and not deprecated), and the old
``OpResult`` is an alias of the unified
:class:`~repro.api.requests.Response`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.api.requests import Response, SddmmRequest, SpmmRequest
from repro.core.matrix import SparseMatrix
from repro.formats.bcrs import BCRSMatrix
from repro.gpu.device import DeviceSpec
from repro.kernels.sddmm import SDDMMConfig
from repro.kernels.spmm import SpMMConfig
from repro.runtime import Device

__all__ = ["OpResult", "SparseMatrix", "sddmm", "spmm"]

#: pre-v1 name of the unified response type
OpResult = Response


def _warn_legacy(old: str, new: str) -> None:
    warnings.warn(
        f"{old} is deprecated; use {new} instead (see docs/api.md for "
        f"the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )


def spmm(
    lhs: SparseMatrix,
    rhs: np.ndarray,
    precision: str | None = None,
    device: Device | DeviceSpec | str = "A100",
    l_signed: bool | None = None,
    scale: float | None = None,
    config: SpMMConfig | None = None,
    backend: str | None = None,
    **config_kwargs,
) -> Response:
    """Sparse x dense -> dense with Magicube's SpMM.

    .. deprecated:: v1
        Use ``repro.api.run(repro.api.SpmmRequest(...))`` — same
        fields, same results, one typed surface.
    """
    # imported lazily: the resolution pipeline sits above this module
    # in the import graph (it needs repro.core.matrix)
    from repro.api.resolution import run as _run

    _warn_legacy(
        "repro.core.api.spmm(...)",
        "repro.api.run(repro.api.SpmmRequest(lhs=..., rhs=..., ...))",
    )
    return _run(
        SpmmRequest(
            lhs=lhs,
            rhs=rhs,
            precision=precision,
            l_signed=l_signed,
            scale=scale,
            config=config,
            backend=backend,
            knobs=config_kwargs,
        ),
        device=device,
    )


def sddmm(
    a: np.ndarray,
    b: np.ndarray,
    mask: SparseMatrix | BCRSMatrix,
    precision: str | None = None,
    device: Device | DeviceSpec | str = "A100",
    output_format: str | None = None,
    config: SDDMMConfig | None = None,
    backend: str | None = None,
    **config_kwargs,
) -> Response:
    """(dense x dense) sampled at a sparse mask with Magicube's SDDMM.

    .. deprecated:: v1
        Use ``repro.api.run(repro.api.SddmmRequest(...))`` — same
        fields, same results, one typed surface.
    """
    from repro.api.resolution import run as _run

    _warn_legacy(
        "repro.core.api.sddmm(...)",
        "repro.api.run(repro.api.SddmmRequest(a=..., b=..., mask=..., ...))",
    )
    return _run(
        SddmmRequest(
            a=a,
            b=b,
            mask=mask,
            precision=precision,
            output_format=output_format,
            config=config,
            backend=backend,
            knobs=config_kwargs,
        ),
        device=device,
    )
