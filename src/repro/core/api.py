"""High-level API: SparseMatrix + one-call spmm / sddmm.

Typical use::

    import numpy as np
    from repro import SparseMatrix, spmm

    A = SparseMatrix.from_dense(weights, vector_length=8, precision="L8-R4")
    result = spmm(A, activations, precision="L8-R4")
    C = result.output           # exact int64 product
    t = result.time_s           # modelled A100 execution time
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.precision import Precision, parse_precision
from repro.errors import ConfigError, ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import bcrs_to_srbcrs, dense_to_bcrs
from repro.formats.srbcrs import SRBCRSMatrix
from repro.gpu.device import DeviceSpec
from repro.gpu.mma import mma_shape_for
from repro.gpu.timing import KernelStats
from repro.kernels.sddmm import SDDMMConfig
from repro.kernels.spmm import SpMMConfig
from repro.runtime import Device, resolve_backend


class SparseMatrix:
    """A 1-D-block sparse matrix prepared for Magicube kernels.

    Owns both the BCRS view (for SDDMM masks / interchange) and the
    SR-BCRS layout at the stride the requested precision needs. Build it
    once per operand, reuse across calls.
    """

    def __init__(self, bcrs: BCRSMatrix, stride: int) -> None:
        self.bcrs = bcrs
        self.srbcrs: SRBCRSMatrix = bcrs_to_srbcrs(bcrs, stride=stride)
        #: stride -> SR-BCRS layout; conversions happen once per stride
        #: (a serving engine reuses the operand across precisions)
        self._srbcrs_by_stride: dict[int, SRBCRSMatrix] = {stride: self.srbcrs}

    def srbcrs_for(self, stride: int) -> SRBCRSMatrix:
        """The SR-BCRS layout at ``stride``, converting (and caching) on
        first use."""
        layout = self._srbcrs_by_stride.get(stride)
        if layout is None:
            layout = bcrs_to_srbcrs(self.bcrs, stride=stride)
            self._srbcrs_by_stride[stride] = layout
        return layout

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        vector_length: int,
        precision: str = "L8-R8",
    ) -> "SparseMatrix":
        """Compress a dense matrix with V x 1 structured sparsity.

        ``precision`` fixes the SR-BCRS stride (the native MMA k dim of
        that pair).
        """
        p = parse_precision(precision, op="spmm")
        stride = mma_shape_for(p.native_bits).k
        bcrs = dense_to_bcrs(np.asarray(dense), vector_length)
        return cls(bcrs, stride)

    @classmethod
    def from_bcrs(cls, bcrs: BCRSMatrix, precision: str = "L8-R8") -> "SparseMatrix":
        """Wrap an existing BCRS matrix (e.g. an SDDMM output)."""
        p = parse_precision(precision, op="spmm")
        return cls(bcrs, mma_shape_for(p.native_bits).k)

    # -- views ----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.bcrs.shape

    @property
    def vector_length(self) -> int:
        return self.bcrs.vector_length

    @property
    def nnz(self) -> int:
        return self.bcrs.nnz

    @property
    def sparsity(self) -> float:
        return self.bcrs.sparsity

    def to_dense(self) -> np.ndarray:
        return self.bcrs.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, k = self.shape
        return (
            f"SparseMatrix({m}x{k}, V={self.vector_length}, "
            f"sparsity={self.sparsity:.3f})"
        )


@dataclass
class OpResult:
    """Result of a high-level spmm / sddmm call."""

    output: np.ndarray | BCRSMatrix | SRBCRSMatrix
    stats: KernelStats
    time_s: float
    tops: float


def spmm(
    lhs: SparseMatrix,
    rhs: np.ndarray,
    precision: str | None = None,
    device: Device | DeviceSpec | str = "A100",
    l_signed: bool | None = None,
    scale: float | None = None,
    config: SpMMConfig | None = None,
    backend: str | None = None,
    **config_kwargs,
) -> OpResult:
    """Sparse x dense -> dense with Magicube's SpMM.

    ``precision`` is a Table IV pair (``"L16-R8"``..., default
    ``"L8-R8"``); extra keyword arguments reach
    :class:`~repro.kernels.spmm.SpMMConfig` (ablation knobs, BSn...).
    A pre-built ``config`` (e.g. from a serving plan) bypasses
    precision parsing and takes the kernel knobs verbatim — the
    plan-injection hook the :mod:`repro.serve` engine uses; combining
    it with ``precision``/``l_signed``/knob kwargs is an error.

    This function is a thin shim over the :mod:`repro.runtime` backend
    registry: ``backend`` pins one registered backend by name
    (``"magicube-strict"`` for the bit-level verification path), the
    default resolves the priority-ordered fallback chain for
    (precision, device). ``time_s``/``tops`` come from the resolved
    backend's calibrated cost model on the resolved device.
    """
    if config is not None:
        clashes = sorted(config_kwargs)
        clashes += ["precision"] if precision is not None else []
        clashes += ["l_signed"] if l_signed is not None else []
        if clashes:
            raise ConfigError(
                f"`config` already fixes the kernel setup; also passing "
                f"{clashes} is ambiguous"
            )
        cfg = config
    else:
        p: Precision = parse_precision(precision or "L8-R8", op="spmm")
        cfg = SpMMConfig(
            l_bits=p.l_bits,
            r_bits=p.r_bits,
            l_signed=l_signed if l_signed is not None else True,
            **config_kwargs,
        )
    dev = Device.resolve(device)
    be = resolve_backend(
        backend, op="spmm", device=dev, precision=f"L{cfg.l_bits}-R{cfg.r_bits}"
    )
    res = be.execute("spmm", dev, config=cfg, lhs=lhs, rhs=rhs, scale=scale)
    return OpResult(
        output=res.output, stats=res.stats, time_s=res.time_s, tops=res.tops
    )


def sddmm(
    a: np.ndarray,
    b: np.ndarray,
    mask: SparseMatrix | BCRSMatrix,
    precision: str | None = None,
    device: Device | DeviceSpec | str = "A100",
    output_format: str | None = None,
    config: SDDMMConfig | None = None,
    backend: str | None = None,
    **config_kwargs,
) -> OpResult:
    """(dense x dense) sampled at a sparse mask with Magicube's SDDMM.

    As with :func:`spmm`, a pre-built ``config`` injects a serving plan
    directly, bypassing precision parsing (and rejecting the named
    ``precision``/``output_format`` parameters alongside it), and
    ``backend`` pins one registered runtime backend by name.
    """
    if config is not None:
        clashes = sorted(config_kwargs)
        clashes += ["precision"] if precision is not None else []
        clashes += ["output_format"] if output_format is not None else []
        if clashes:
            raise ConfigError(
                f"`config` already fixes the kernel setup; also passing "
                f"{clashes} is ambiguous"
            )
        cfg = config
    else:
        p: Precision = parse_precision(precision or "L8-R8", op="sddmm")
        cfg = SDDMMConfig(
            l_bits=p.l_bits,
            r_bits=p.r_bits,
            output_format=output_format or "bcrs",
            **config_kwargs,
        )
    topo = mask.bcrs if isinstance(mask, SparseMatrix) else mask
    if not isinstance(topo, BCRSMatrix):
        raise ShapeError("mask must be a SparseMatrix or BCRSMatrix")
    dev = Device.resolve(device)
    be = resolve_backend(
        backend, op="sddmm", device=dev, precision=f"L{cfg.l_bits}-R{cfg.r_bits}"
    )
    res = be.execute("sddmm", dev, config=cfg, a=a, b=b, mask=topo)
    return OpResult(
        output=res.output, stats=res.stats, time_s=res.time_s, tops=res.tops
    )
