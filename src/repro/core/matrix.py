"""The prepared sparse operand shared by every API surface.

:class:`SparseMatrix` lives in its own module so the v1 request layer
(:mod:`repro.api`) and the legacy :mod:`repro.core.api` shims can both
import it without cycling through each other.
"""

from __future__ import annotations

import numpy as np

from repro.core.precision import parse_precision
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import bcrs_to_srbcrs, dense_to_bcrs
from repro.formats.srbcrs import SRBCRSMatrix
from repro.gpu.mma import mma_shape_for


class SparseMatrix:
    """A 1-D-block sparse matrix prepared for Magicube kernels.

    Owns both the BCRS view (for SDDMM masks / interchange) and the
    SR-BCRS layout at the stride the requested precision needs. Build it
    once per operand, reuse across calls.
    """

    def __init__(self, bcrs: BCRSMatrix, stride: int) -> None:
        self.bcrs = bcrs
        self.srbcrs: SRBCRSMatrix = bcrs_to_srbcrs(bcrs, stride=stride)
        #: stride -> SR-BCRS layout; conversions happen once per stride
        #: (a serving engine reuses the operand across precisions)
        self._srbcrs_by_stride: dict[int, SRBCRSMatrix] = {stride: self.srbcrs}

    def srbcrs_for(self, stride: int) -> SRBCRSMatrix:
        """The SR-BCRS layout at ``stride``, converting (and caching) on
        first use."""
        layout = self._srbcrs_by_stride.get(stride)
        if layout is None:
            layout = bcrs_to_srbcrs(self.bcrs, stride=stride)
            self._srbcrs_by_stride[stride] = layout
        return layout

    # -- constructors ---------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        dense: np.ndarray,
        vector_length: int,
        precision: str = "L8-R8",
    ) -> "SparseMatrix":
        """Compress a dense matrix with V x 1 structured sparsity.

        ``precision`` fixes the SR-BCRS stride (the native MMA k dim of
        that pair).
        """
        p = parse_precision(precision, op="spmm")
        stride = mma_shape_for(p.native_bits).k
        bcrs = dense_to_bcrs(np.asarray(dense), vector_length)
        return cls(bcrs, stride)

    @classmethod
    def from_bcrs(cls, bcrs: BCRSMatrix, precision: str = "L8-R8") -> "SparseMatrix":
        """Wrap an existing BCRS matrix (e.g. an SDDMM output)."""
        p = parse_precision(precision, op="spmm")
        return cls(bcrs, mma_shape_for(p.native_bits).k)

    # -- views ----------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int]:
        return self.bcrs.shape

    @property
    def vector_length(self) -> int:
        return self.bcrs.vector_length

    @property
    def nnz(self) -> int:
        return self.bcrs.nnz

    @property
    def sparsity(self) -> float:
        return self.bcrs.sparsity

    def to_dense(self) -> np.ndarray:
        return self.bcrs.to_dense()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, k = self.shape
        return (
            f"SparseMatrix({m}x{k}, V={self.vector_length}, "
            f"sparsity={self.sparsity:.3f})"
        )
