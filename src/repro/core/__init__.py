"""Public API of the Magicube reproduction.

The facade a downstream user programs against:

- :class:`repro.core.api.SparseMatrix` — construct once from dense /
  BCRS data, reuse across kernels (it owns the SR-BCRS layout).
- :func:`repro.core.api.spmm` / :func:`repro.core.api.sddmm` — one-call
  sparse kernels with precision strings ("L8-R4") and variant knobs.
- :mod:`repro.core.precision` — the Table IV precision registry.
"""

from repro.core.api import SparseMatrix, spmm, sddmm
from repro.core.precision import Precision, parse_precision, supported_precisions

__all__ = [
    "SparseMatrix",
    "spmm",
    "sddmm",
    "Precision",
    "parse_precision",
    "supported_precisions",
]
