"""Core operand and precision layer of the Magicube reproduction.

- :class:`repro.core.matrix.SparseMatrix` — construct once from dense /
  BCRS data, reuse across kernels (it owns the SR-BCRS layouts).
- :mod:`repro.core.precision` — the Table IV precision registry.
- :mod:`repro.core.api` — the pre-v1 ``spmm`` / ``sddmm`` kwarg calls,
  now deprecation shims over :mod:`repro.api` (the typed v1 surface).
"""

# matrix must load before the api shims: the shims pull in the
# repro.api pipeline, which itself needs the prepared-operand type
from repro.core.matrix import SparseMatrix
from repro.core.api import spmm, sddmm
from repro.core.precision import Precision, parse_precision, supported_precisions

__all__ = [
    "SparseMatrix",
    "spmm",
    "sddmm",
    "Precision",
    "parse_precision",
    "supported_precisions",
]
