"""Packing and unpacking of low-precision integers into 32-bit words.

CUDA exposes no 4-bit scalar type: int4 operands of ``mma.sync`` are
supplied as ``uint32`` registers holding eight 4-bit lanes. The paper's
kernels therefore spend much of their effort marshalling nibbles inside
registers. This module gives bit-exact, vectorized equivalents.

Lane order is *little-endian*: lane ``i`` of a word occupies bits
``[w*i, w*(i+1))`` where ``w`` is the lane width. This matches how a
little-endian byte array reinterprets as ``uint32`` on the GPU.

All functions accept and return NumPy arrays; the packed representation is
always ``uint32``.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError

#: lanes per 32-bit word for each supported lane width
LANES = {4: 8, 8: 4, 16: 2}


def _check_multiple(n: int, lanes: int) -> None:
    if n % lanes != 0:
        raise ShapeError(
            f"flat length {n} is not a multiple of {lanes} lanes per word"
        )


def _to_unsigned(values: np.ndarray, bits: int) -> np.ndarray:
    """Two's-complement encode signed values into the low ``bits`` bits."""
    mask = (1 << bits) - 1
    return (np.asarray(values).astype(np.int64) & mask).astype(np.uint32)


def _from_unsigned(raw: np.ndarray, bits: int, signed: bool) -> np.ndarray:
    """Decode the low ``bits`` bits of ``raw`` as (un)signed integers."""
    mask = (1 << bits) - 1
    v = raw.astype(np.int64) & mask
    if signed:
        sign_bit = 1 << (bits - 1)
        v = np.where(v >= sign_bit, v - (1 << bits), v)
    if bits <= 8:
        dt = np.int8 if signed else np.uint8
    elif bits <= 16:
        dt = np.int16 if signed else np.uint16
    else:
        dt = np.int32 if signed else np.uint32
    return v.astype(dt)


def _pack(values: np.ndarray, bits: int) -> np.ndarray:
    lanes = LANES[bits]
    flat = np.ascontiguousarray(values).reshape(-1)
    _check_multiple(flat.size, lanes)
    enc = _to_unsigned(flat, bits).reshape(-1, lanes)
    shifts = (np.arange(lanes, dtype=np.uint32) * np.uint32(bits))
    words = np.bitwise_or.reduce(enc << shifts, axis=1)
    return words.astype(np.uint32)


def _unpack(words: np.ndarray, bits: int, signed: bool, count: int | None) -> np.ndarray:
    lanes = LANES[bits]
    flat = np.ascontiguousarray(words).reshape(-1).astype(np.uint32)
    shifts = (np.arange(lanes, dtype=np.uint32) * np.uint32(bits))
    raw = (flat[:, None] >> shifts).reshape(-1)
    out = _from_unsigned(raw, bits, signed)
    if count is not None:
        out = out[:count]
    return out


def pack_int4(values: np.ndarray) -> np.ndarray:
    """Pack signed int4 values (range [-8, 7]) into uint32 words, 8 per word."""
    return _pack(values, 4)


def unpack_int4(words: np.ndarray, count: int | None = None) -> np.ndarray:
    """Unpack uint32 words into signed int4 values (as int8)."""
    return _unpack(words, 4, True, count)


def pack_uint4(values: np.ndarray) -> np.ndarray:
    """Pack unsigned int4 values (range [0, 15]) into uint32 words."""
    return _pack(values, 4)


def unpack_uint4(words: np.ndarray, count: int | None = None) -> np.ndarray:
    """Unpack uint32 words into unsigned int4 values (as uint8)."""
    return _unpack(words, 4, False, count)


def pack_int8(values: np.ndarray) -> np.ndarray:
    """Pack signed int8 values into uint32 words, 4 per word."""
    return _pack(values, 8)


def unpack_int8(words: np.ndarray, count: int | None = None) -> np.ndarray:
    """Unpack uint32 words into signed int8 values."""
    return _unpack(words, 8, True, count)


def pack_int16(values: np.ndarray) -> np.ndarray:
    """Pack signed int16 values into uint32 words, 2 per word."""
    return _pack(values, 16)


def unpack_int16(words: np.ndarray, count: int | None = None) -> np.ndarray:
    """Unpack uint32 words into signed int16 values."""
    return _unpack(words, 16, True, count)


def pack_rows(matrix: np.ndarray, bits: int) -> np.ndarray:
    """Pack each row of a 2-D integer matrix into uint32 words.

    Returns an array of shape ``(rows, cols * bits // 32)``. Row length
    must be a multiple of the lane count (8 for int4, 4 for int8, 2 for
    int16) — exactly the alignment the GPU kernels require of their tiles.
    """
    m = np.asarray(matrix)
    if m.ndim != 2:
        raise ShapeError(f"pack_rows expects a 2-D array, got ndim={m.ndim}")
    lanes = LANES[bits]
    _check_multiple(m.shape[1], lanes)
    return _pack(m, bits).reshape(m.shape[0], m.shape[1] // lanes)


def unpack_rows(words: np.ndarray, bits: int, signed: bool = True) -> np.ndarray:
    """Inverse of :func:`pack_rows`: uint32 word rows back to integer rows."""
    w = np.asarray(words)
    if w.ndim != 2:
        raise ShapeError(f"unpack_rows expects a 2-D array, got ndim={w.ndim}")
    lanes = LANES[bits]
    return _unpack(w, bits, signed, None).reshape(w.shape[0], w.shape[1] * lanes)
