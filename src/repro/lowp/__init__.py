"""Low-precision integer toolkit.

This subpackage provides the bit-level machinery that the CUDA kernels of
the paper rely on and that plain NumPy lacks:

- :mod:`repro.lowp.pack` — packing/unpacking of int4/int8/int16 values
  into/out of 32-bit register words (CUDA has no 4-bit type, so int4 data
  always lives packed inside ``uint32`` registers).
- :mod:`repro.lowp.bitops` — vectorized mask/shift/or helpers used by the
  online-transpose tricks (Fig. 5 and Fig. 7 of the paper).
- :mod:`repro.lowp.decompose` — two's-complement digit decomposition used
  by the mixed-precision emulation (Sec. IV-D): a signed integer splits
  into a *signed* top digit and *unsigned* lower digits.
- :mod:`repro.lowp.quantize` — symmetric quantization to signed integers
  and affine quantization to unsigned integers, with dequantization.
"""

from repro.lowp.pack import (
    pack_int4,
    unpack_int4,
    pack_uint4,
    unpack_uint4,
    pack_int8,
    unpack_int8,
    pack_int16,
    unpack_int16,
    pack_rows,
    unpack_rows,
)
from repro.lowp.decompose import (
    split_signed,
    split_unsigned,
    recombine,
    decompose_matrix,
    digit_weights,
)
from repro.lowp.quantize import (
    QuantParams,
    symmetric_quantize,
    unsigned_quantize,
    dequantize,
    quantize_with,
    int_range,
)

__all__ = [
    "pack_int4",
    "unpack_int4",
    "pack_uint4",
    "unpack_uint4",
    "pack_int8",
    "unpack_int8",
    "pack_int16",
    "unpack_int16",
    "pack_rows",
    "unpack_rows",
    "split_signed",
    "split_unsigned",
    "recombine",
    "decompose_matrix",
    "digit_weights",
    "QuantParams",
    "symmetric_quantize",
    "unsigned_quantize",
    "dequantize",
    "quantize_with",
    "int_range",
]
