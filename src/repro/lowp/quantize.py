"""Quantization of real-valued tensors to low-precision integers.

The end-to-end Transformer path (Fig. 16 of the paper) quantizes Q, K, V
symmetrically to signed int8/int4 before the integer kernels, and the
softmax output — which is non-negative — to *unsigned* integers. Both
schemes are per-tensor scale-only (symmetric), as in the integer
quantization literature the paper cites (Wu et al. 2020; Nagel et al.
2021).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import QuantizationError


def int_range(bits: int, signed: bool = True) -> tuple[int, int]:
    """Representable (min, max) for a ``bits``-wide integer."""
    if bits < 1 or bits > 32:
        raise QuantizationError(f"unsupported bit width {bits}")
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


@dataclass(frozen=True)
class QuantParams:
    """Scale-only quantization parameters.

    ``real = scale * quantized`` (symmetric, zero-point 0). ``signed``
    records which integer grid the values live on; ``bits`` the width.
    """

    scale: float
    bits: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not np.isfinite(self.scale) or self.scale <= 0:
            raise QuantizationError(f"scale must be finite and positive, got {self.scale}")
        int_range(self.bits, self.signed)  # validates bits

    @property
    def qmin(self) -> int:
        return int_range(self.bits, self.signed)[0]

    @property
    def qmax(self) -> int:
        return int_range(self.bits, self.signed)[1]


def symmetric_quantize(x: np.ndarray, bits: int) -> tuple[np.ndarray, QuantParams]:
    """Quantize to signed integers with a symmetric per-tensor scale.

    The scale maps ``max(|x|)`` to the largest positive code so that the
    grid is symmetric about zero (the convention for weights and Q/K/V
    activations in the paper's pipeline). Returns ``(q, params)`` with
    ``q`` of dtype int32 (values fit the requested width).
    """
    x = np.asarray(x, dtype=np.float64)
    qmin, qmax = int_range(bits, signed=True)
    amax = float(np.max(np.abs(x))) if x.size else 0.0
    # the smallest-normal floor keeps a subnormal amax from underflowing
    # the division to scale == 0 (which QuantParams rightly rejects)
    scale = max(amax / qmax, float(np.finfo(np.float64).tiny)) if amax > 0 else 1.0
    q = np.clip(np.rint(x / scale), qmin, qmax).astype(np.int32)
    return q, QuantParams(scale=scale, bits=bits, signed=True)


def unsigned_quantize(x: np.ndarray, bits: int) -> tuple[np.ndarray, QuantParams]:
    """Quantize non-negative values to unsigned integers (scale-only).

    Used for the softmax output, which lies in [0, 1]. Negative inputs
    are rejected — they would need a zero-point, which the integer
    kernels do not model.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.size and float(x.min()) < 0:
        raise QuantizationError("unsigned_quantize requires non-negative input")
    _, qmax = int_range(bits, signed=False)
    amax = float(x.max()) if x.size else 0.0
    scale = amax / qmax if amax > 0 else 1.0
    q = np.clip(np.rint(x / scale), 0, qmax).astype(np.int32)
    return q, QuantParams(scale=scale, bits=bits, signed=False)


def quantize_with(x: np.ndarray, params: QuantParams) -> np.ndarray:
    """Quantize using pre-computed parameters (e.g. calibrated offline)."""
    x = np.asarray(x, dtype=np.float64)
    return np.clip(np.rint(x / params.scale), params.qmin, params.qmax).astype(np.int32)


def dequantize(q: np.ndarray, params: QuantParams) -> np.ndarray:
    """Map integer codes back to real values: ``scale * q`` (float32)."""
    return (np.asarray(q, dtype=np.float64) * params.scale).astype(np.float32)
