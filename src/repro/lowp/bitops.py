"""Vectorized 32-bit word manipulation helpers.

These mirror the handful of device-side idioms the paper's kernels use on
``uint32`` registers: byte extraction/assembly (the ``char``-granularity
register transpose of Fig. 5) and nibble mask/shift/OR sequences (the
4-bit transpose of Fig. 7). Keeping them here lets the kernel code read
like the PTX it stands in for, and lets tests count the bitwise ops.
"""

from __future__ import annotations

import numpy as np

U32 = np.uint32
#: masks selecting the even nibbles (bits 0-3 of every byte) and odd
#: nibbles (bits 4-7 of every byte) of a 32-bit word
LOW_NIBBLE_MASK = U32(0x0F0F0F0F)
HIGH_NIBBLE_MASK = U32(0xF0F0F0F0)


def extract_bytes(words: np.ndarray) -> np.ndarray:
    """Split uint32 words into bytes, little-endian.

    Shape ``(...,)`` becomes ``(..., 4)`` with byte 0 = bits 0-7.
    """
    w = np.asarray(words, dtype=U32)
    shifts = np.arange(4, dtype=U32) * U32(8)
    return ((w[..., None] >> shifts) & U32(0xFF)).astype(np.uint8)


def assemble_bytes(bytes_: np.ndarray) -> np.ndarray:
    """Inverse of :func:`extract_bytes`: ``(..., 4)`` uint8 to uint32."""
    b = np.asarray(bytes_, dtype=np.uint8).astype(U32)
    if b.shape[-1] != 4:
        raise ValueError(f"assemble_bytes needs last dim 4, got {b.shape[-1]}")
    shifts = np.arange(4, dtype=U32) * U32(8)
    return np.bitwise_or.reduce(b << shifts, axis=-1).astype(U32)


def transpose_bytes_4x4(words: np.ndarray) -> np.ndarray:
    """Transpose a 4x4 byte block held in four uint32 words.

    ``words[..., i]`` is row ``i`` of the block (4 bytes). The result
    holds the columns: output word ``j`` contains byte ``j`` of each input
    word, in input-word order. This is exactly the per-thread register
    transpose of Fig. 5 (int8 granularity, "cast to char").
    """
    w = np.asarray(words, dtype=U32)
    if w.shape[-1] != 4:
        raise ValueError(f"transpose_bytes_4x4 needs last dim 4, got {w.shape[-1]}")
    b = extract_bytes(w)           # (..., 4 rows, 4 bytes)
    bt = np.swapaxes(b, -1, -2)    # (..., 4 bytes, 4 rows)
    return assemble_bytes(bt)


def split_nibbles(words: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Separate the low and high nibbles of each byte of uint32 words.

    Returns ``(low, high)`` where ``low`` keeps bits 0-3 of every byte in
    place and ``high`` shifts bits 4-7 of every byte down into bits 0-3.
    Two masks and one shift per word — the granularity-int32 bit work the
    Fig. 7 trick is built from.
    """
    w = np.asarray(words, dtype=U32)
    low = w & LOW_NIBBLE_MASK
    high = (w >> U32(4)) & LOW_NIBBLE_MASK
    return low, high


def interleave_nibble_pairs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Merge two low-nibble-only words: ``a`` keeps even lanes, ``b`` odd.

    ``a`` and ``b`` must have only bits 0-3 of each byte set (as produced
    by :func:`split_nibbles`). The result packs ``a``'s nibble of byte k
    into lane 2k and ``b``'s into lane 2k+1 — one shift and one OR.
    """
    return (np.asarray(a, U32) | (np.asarray(b, U32) << U32(4))).astype(U32)


def gather_nibbles(words: np.ndarray, lane_order: np.ndarray) -> np.ndarray:
    """Re-order the 8 nibble lanes of each uint32 word.

    ``lane_order[i]`` names the source lane for destination lane ``i``.
    Used only in *reference* implementations and tests; the production
    kernels avoid per-nibble gathers — that is the whole point of the
    index-shuffling strategy (Fig. 7).
    """
    w = np.asarray(words, dtype=U32)
    order = np.asarray(lane_order)
    if order.shape != (8,):
        raise ValueError(f"lane_order must have shape (8,), got {order.shape}")
    out = np.zeros_like(w)
    for dst in range(8):
        src = int(order[dst])
        nib = (w >> U32(4 * src)) & U32(0xF)
        out |= nib << U32(4 * dst)
    return out
