"""Two's-complement digit decomposition for mixed-precision emulation.

Section IV-D of the paper emulates high-precision integer matrix products
from low-precision MMA primitives by splitting each operand value into
base-``2^w`` digits:

- **unsigned** values split into unsigned digits:
  ``a = sum_i d_i * 2^(w*i)`` with every ``d_i`` in ``[0, 2^w)``;
- **signed** values split so that only the *top* digit is signed: e.g.
  the int8 value ``-19 = 0b11101101`` splits (w=4) into high nibble
  ``0b1110`` read as the *signed* int4 ``-2`` and low nibble ``0b1101``
  read as the *unsigned* uint4 ``13``, since ``-2*16 + 13 = -19``.

Tensor cores support mixed signed×unsigned MMA, which is exactly what
makes this decomposition implementable (Sec. IV-D2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PrecisionError


def digit_weights(src_bits: int, digit_bits: int) -> list[int]:
    """Scale factors ``2^(w*i)`` for each digit, lowest first."""
    if src_bits % digit_bits != 0:
        raise PrecisionError(
            f"{src_bits}-bit values do not split evenly into {digit_bits}-bit digits"
        )
    n = src_bits // digit_bits
    return [1 << (digit_bits * i) for i in range(n)]


def _check_range(a: np.ndarray, src_bits: int, signed: bool) -> np.ndarray:
    a = np.asarray(a, dtype=np.int64)
    if signed:
        lo, hi = -(1 << (src_bits - 1)), (1 << (src_bits - 1)) - 1
    else:
        lo, hi = 0, (1 << src_bits) - 1
    if a.size and (a.min() < lo or a.max() > hi):
        raise PrecisionError(
            f"values outside the {'signed' if signed else 'unsigned'} "
            f"{src_bits}-bit range [{lo}, {hi}]"
        )
    return a


def split_unsigned(a: np.ndarray, src_bits: int, digit_bits: int) -> list[np.ndarray]:
    """Split unsigned values into unsigned digits, lowest digit first."""
    a = _check_range(a, src_bits, signed=False)
    n = src_bits // digit_bits
    mask = (1 << digit_bits) - 1
    return [((a >> (digit_bits * i)) & mask).astype(np.int32) for i in range(n)]


def split_signed(a: np.ndarray, src_bits: int, digit_bits: int) -> list[np.ndarray]:
    """Split signed values into digits; only the top digit is signed.

    Returns ``n = src_bits // digit_bits`` arrays, lowest digit first.
    Digits ``0..n-2`` are unsigned in ``[0, 2^w)``; digit ``n-1`` is
    signed in ``[-2^(w-1), 2^(w-1))``. ``recombine`` restores the input.
    """
    a = _check_range(a, src_bits, signed=True)
    n = src_bits // digit_bits
    mask = (1 << digit_bits) - 1
    raw = a & ((1 << src_bits) - 1)  # two's-complement bit pattern
    digits = []
    for i in range(n):
        d = (raw >> (digit_bits * i)) & mask
        if i == n - 1:  # reinterpret the top digit as signed
            sign_bit = 1 << (digit_bits - 1)
            d = np.where(d >= sign_bit, d - (1 << digit_bits), d)
        digits.append(d.astype(np.int32))
    return digits


def recombine(digits: list[np.ndarray], digit_bits: int) -> np.ndarray:
    """Inverse of the split functions: ``sum_i digits[i] * 2^(w*i)``."""
    acc = np.zeros_like(np.asarray(digits[0], dtype=np.int64))
    for i, d in enumerate(digits):
        acc = acc + np.asarray(d, dtype=np.int64) * (1 << (digit_bits * i))
    return acc


def decompose_matrix(
    a: np.ndarray, src_bits: int, digit_bits: int, signed: bool = True
) -> list[np.ndarray]:
    """Digit-decompose a whole matrix for emulated MMA.

    The returned digit matrices have the same shape as ``a`` and dtype
    int32; feed each to an MMA whose LHS signedness matches (top digit
    signed iff ``signed``), then combine the int32 accumulators with
    :func:`digit_weights`:  ``C = sum_i weights[i] * (D_i @ B)``.
    """
    split = split_signed if signed else split_unsigned
    return split(np.asarray(a), src_bits, digit_bits)
