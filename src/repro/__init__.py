"""repro — reproduction of "Efficient Quantized Sparse Matrix Operations
on Tensor Cores" (Magicube; Li, Osawa, Hoefler; SC 2022).

A production-style Python library implementing the paper's sparse-matrix
system — the SR-BCRS format, quantized SpMM/SDDMM kernels with online
transpose and mixed-precision emulation, the baseline comparators, the
DLMC workload generator, and the quantized sparse-Transformer
application — on a bit-accurate Tensor-core simulator substrate with a
calibrated A100 cost model (see DESIGN.md for the substitution map).

Quick start::

    import numpy as np
    from repro import SparseMatrix, spmm

    A = SparseMatrix.from_dense(pruned_weights, vector_length=8)
    r = spmm(A, activations, precision="L8-R8")
    r.output, r.time_s, r.tops
"""

from repro.core.api import OpResult, SparseMatrix, sddmm, spmm
from repro.core.precision import Precision, parse_precision, supported_precisions
from repro.errors import (
    ConfigError,
    DeviceError,
    FormatError,
    LayoutError,
    MagicubeError,
    PrecisionError,
    QuantizationError,
    ShapeError,
)
from repro.version import __version__

__all__ = [
    "SparseMatrix",
    "spmm",
    "sddmm",
    "OpResult",
    "Precision",
    "parse_precision",
    "supported_precisions",
    "MagicubeError",
    "PrecisionError",
    "FormatError",
    "ShapeError",
    "LayoutError",
    "DeviceError",
    "QuantizationError",
    "ConfigError",
    "__version__",
]
