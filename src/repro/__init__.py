"""repro — reproduction of "Efficient Quantized Sparse Matrix Operations
on Tensor Cores" (Magicube; Li, Osawa, Hoefler; SC 2022).

A production-style Python library implementing the paper's sparse-matrix
system — the SR-BCRS format, quantized SpMM/SDDMM kernels with online
transpose and mixed-precision emulation, the baseline comparators, the
DLMC workload generator, and the quantized sparse-Transformer
application — on a bit-accurate Tensor-core simulator substrate with a
calibrated A100 cost model (see DESIGN.md for the substitution map).

The public surface is :mod:`repro.api` — typed requests, one uniform
:class:`~repro.api.Response`, and one resolution pipeline behind both
one-shot calls and the serving engine:

One-shot::

    import numpy as np
    from repro import SparseMatrix, api

    A = SparseMatrix.from_dense(pruned_weights, vector_length=8)
    r = api.run(api.SpmmRequest(lhs=A, rhs=activations, precision="L8-R8"))
    r.output, r.time_s, r.tops

Serving::

    import repro

    with repro.open_engine(device="A100") as client:
        future = client.submit(api.SpmmRequest(lhs=A, rhs=activations))
        future.result().output

The pre-v1 ``spmm`` / ``sddmm`` kwarg calls still work as deprecation
shims over the same pipeline.
"""

from repro import api
from repro.api import (
    AttentionRequest,
    Client,
    Response,
    SddmmRequest,
    SpmmRequest,
    open_engine,
)
from repro.core.api import OpResult, sddmm, spmm
from repro.core.matrix import SparseMatrix
from repro.core.precision import Precision, parse_precision, supported_precisions
from repro.errors import (
    AdmissionError,
    ConfigError,
    DeviceError,
    EngineClosedError,
    FormatError,
    LayoutError,
    MagicubeError,
    PlanCacheError,
    PrecisionError,
    QuantizationError,
    ReproError,
    RetuneError,
    ShapeError,
)
from repro.version import __version__

__all__ = [
    "AdmissionError",
    "AttentionRequest",
    "Client",
    "ConfigError",
    "DeviceError",
    "EngineClosedError",
    "FormatError",
    "LayoutError",
    "MagicubeError",
    "OpResult",
    "PlanCacheError",
    "Precision",
    "PrecisionError",
    "QuantizationError",
    "ReproError",
    "Response",
    "RetuneError",
    "SddmmRequest",
    "ShapeError",
    "SparseMatrix",
    "SpmmRequest",
    "api",
    "open_engine",
    "parse_precision",
    "sddmm",
    "spmm",
    "supported_precisions",
    "__version__",
]
