"""Multi-head attention: dense, masked-sparse, and quantized (Fig. 16).

Three execution paths over the same weights:

- ``forward`` / ``backward`` — float32 masked attention for training
  (the additive-mask formulation of the sparse pattern).
- ``forward_quantized`` — the Fig. 16 inference pipeline functionally:
  Q/K/V quantized to ``qkv_bits``, integer SDDMM with fused dequantize,
  fp16 softmax with fused quantize to ``softmax_bits`` (unsigned),
  integer SpMM with fused dequantize. Runs either as dense fake-quant
  math (fast; used for the Table V accuracy study) or through the real
  Magicube kernels (``use_kernels=True``; exercised by integration
  tests — identical results up to fp16 rounding).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.errors import ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import bcrs_to_srbcrs
from repro.gpu.mma import mma_shape_for
from repro.kernels.emulation import plan_for
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
from repro.kernels.softmax import sparse_softmax_quantized
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig
from repro.lowp.quantize import int_range, symmetric_quantize
from repro.transformer.layers import Layer, Linear, softmax, softmax_backward


@dataclass(frozen=True)
class KernelPipeline:
    """Injected kernel classes + configs for the Fig. 16 launches.

    The serving layer resolves a backend (whose ``sddmm_kernel`` /
    ``spmm_kernel`` class attributes may be fastpath variants) and a
    plan (whose tile knobs ride in the configs); injecting them here
    makes the model's attention launches use exactly that stack. Tile
    knobs never change the integer numerics — the bit-critical fields
    are re-pinned per launch — so a planned forward stays bit-identical
    to the default pipeline.
    """

    sddmm_cls: type[MagicubeSDDMM] = MagicubeSDDMM
    spmm_cls: type[MagicubeSpMM] = MagicubeSpMM
    sddmm_config: SDDMMConfig | None = None
    spmm_config: SpMMConfig | None = None


class MultiHeadAttention(Layer):
    """Self-attention with an optional sparse mask."""

    def __init__(self, d_model: int, num_heads: int, rng: np.random.Generator) -> None:
        if d_model % num_heads != 0:
            raise ShapeError(f"d_model {d_model} not divisible by heads {num_heads}")
        self.d_model = d_model
        self.num_heads = num_heads
        self.d_head = d_model // num_heads
        self.wq = Linear(d_model, d_model, rng)
        self.wk = Linear(d_model, d_model, rng)
        self.wv = Linear(d_model, d_model, rng)
        self.wo = Linear(d_model, d_model, rng)
        self._cache: tuple | None = None

    # -- shared helpers --------------------------------------------------
    def _split_heads(self, x: np.ndarray) -> np.ndarray:
        b, l, _ = x.shape
        return x.reshape(b, l, self.num_heads, self.d_head).transpose(0, 2, 1, 3)

    def _merge_heads(self, x: np.ndarray) -> np.ndarray:
        b, h, l, d = x.shape
        return x.transpose(0, 2, 1, 3).reshape(b, l, h * d)

    # -- training path ---------------------------------------------------
    def forward(self, x: np.ndarray, additive_mask: np.ndarray | None = None) -> np.ndarray:
        """Float masked attention; ``additive_mask`` is (L, L) with 0/-inf."""
        q = self._split_heads(self.wq.forward(x))
        k = self._split_heads(self.wk.forward(x))
        v = self._split_heads(self.wv.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        scores = np.einsum("bhid,bhjd->bhij", q, k) * scale
        if additive_mask is not None:
            scores = scores + additive_mask
        probs = softmax(scores, axis=-1)
        ctx = np.einsum("bhij,bhjd->bhid", probs, v)
        out = self.wo.forward(self._merge_heads(ctx))
        self._cache = (q, k, v, probs, scale)
        return out

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward before forward")
        q, k, v, probs, scale = self._cache
        dctx_merged = self.wo.backward(dy)
        b, l, _ = dctx_merged.shape
        dctx = self._split_heads(dctx_merged)
        dprobs = np.einsum("bhid,bhjd->bhij", dctx, v)
        dv = np.einsum("bhij,bhid->bhjd", probs, dctx)
        dscores = softmax_backward(probs, dprobs, axis=-1) * scale
        dq = np.einsum("bhij,bhjd->bhid", dscores, k)
        dk = np.einsum("bhij,bhid->bhjd", dscores, q)
        dx = self.wq.backward(self._merge_heads(dq))
        dx = dx + self.wk.backward(self._merge_heads(dk))
        dx = dx + self.wv.backward(self._merge_heads(dv))
        return dx

    # -- quantized inference path (Fig. 16) -------------------------------
    def forward_quantized(
        self,
        x: np.ndarray,
        mask: BCRSMatrix,
        softmax_bits: int = 16,
        qkv_bits: int = 8,
        use_kernels: bool = False,
        kernels: KernelPipeline | None = None,
    ) -> np.ndarray:
        """Quantized sparse attention.

        ``mask`` is the (L, L) BCRS attention topology. ``softmax_bits``
        / ``qkv_bits`` are the Fig. 17 ``xb-yb`` knobs. ``kernels``
        (implies ``use_kernels``) injects the kernel classes and
        plan-derived configs the launches should use.
        """
        if kernels is not None:
            use_kernels = True
        b, l, _ = x.shape
        if mask.shape != (l, l):
            raise ShapeError(f"mask {mask.shape} does not match sequence {l}")
        q = self._split_heads(self.wq.forward(x))
        k = self._split_heads(self.wk.forward(x))
        v = self._split_heads(self.wv.forward(x))
        scale = 1.0 / np.sqrt(self.d_head)
        dense_keep = mask.to_dense() != 0
        if not use_kernels:
            ctx = self._attend_batched_fake_quant(
                q, k, v, dense_keep, scale, softmax_bits, qkv_bits
            )
            return self.wo.forward(self._merge_heads(ctx))
        ctx = np.empty_like(q)
        for bi in range(b):
            for h in range(self.num_heads):
                ctx[bi, h] = self._attend_one_quantized(
                    q[bi, h], k[bi, h], v[bi, h], mask, dense_keep, scale,
                    softmax_bits, qkv_bits, use_kernels, kernels,
                )
        return self.wo.forward(self._merge_heads(ctx))

    def _attend_batched_fake_quant(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        dense_keep: np.ndarray,
        scale: float,
        softmax_bits: int,
        qkv_bits: int,
    ) -> np.ndarray:
        """Vectorized Fig. 16 pipeline over all (batch, head) pairs.

        Per-(batch, head) symmetric scales, as the kernels use —
        numerically identical to the per-head loop (tests assert so),
        just computed with batched einsums.
        """
        qmin, qmax = int_range(qkv_bits, signed=True)

        def quant(t: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
            amax = np.abs(t).max(axis=(2, 3), keepdims=True)
            s = np.where(amax > 0, amax / qmax, 1.0)
            return np.clip(np.rint(t / s), qmin, qmax).astype(np.int64), s

        qq, qs = quant(q)
        kq, ks = quant(k)
        vq, vs = quant(v)
        scores = np.einsum("bhid,bhjd->bhij", qq, kq)
        score_scale = qs * np.swapaxes(ks, 2, 3) * scale  # (b,h,1,1)
        logits = np.where(
            dense_keep, (scores * score_scale).astype(np.float32), -np.inf
        )
        probs = softmax(logits, axis=-1).astype(np.float16).astype(np.float32)
        probs = probs * dense_keep
        _, pmax = int_range(softmax_bits, signed=False)
        probs_q = np.clip(np.rint(probs * pmax), 0, pmax).astype(np.int64)
        ctx = np.einsum("bhij,bhjd->bhid", probs_q, vq)
        return (ctx * (vs / pmax)).astype(np.float32)

    def _attend_one_quantized(
        self,
        q: np.ndarray,
        k: np.ndarray,
        v: np.ndarray,
        mask: BCRSMatrix,
        dense_keep: np.ndarray,
        scale: float,
        softmax_bits: int,
        qkv_bits: int,
        use_kernels: bool,
        kernels: KernelPipeline | None = None,
    ) -> np.ndarray:
        # quantize Q, K, V (Fig. 16 top row)
        qq, qp = symmetric_quantize(q, qkv_bits)
        kq, kp = symmetric_quantize(k, qkv_bits)
        vq, vp = symmetric_quantize(v, qkv_bits)
        score_scale = qp.scale * kp.scale * scale

        if use_kernels:
            return self._attend_kernels(
                qq, kq, vq, mask, score_scale, vp.scale, softmax_bits,
                qkv_bits, kernels,
            )

        # fake-quant dense math — numerically identical to the kernels'
        # integer path up to the fp16 softmax rounding
        scores_int = qq.astype(np.int64) @ kq.astype(np.int64).T
        logits = np.where(
            dense_keep, (scores_int * score_scale).astype(np.float32), -np.inf
        )
        probs = softmax(logits.astype(np.float32), axis=-1)
        probs = probs.astype(np.float16).astype(np.float32) * dense_keep
        _, pmax = int_range(softmax_bits, signed=False)
        probs_q = np.clip(np.rint(probs * pmax), 0, pmax).astype(np.int64)
        ctx_int = probs_q @ vq.astype(np.int64)
        return (ctx_int * (vp.scale / pmax)).astype(np.float32)

    def _attend_kernels(
        self,
        qq: np.ndarray,
        kq: np.ndarray,
        vq: np.ndarray,
        mask: BCRSMatrix,
        score_scale: float,
        v_scale: float,
        softmax_bits: int,
        qkv_bits: int,
        kernels: KernelPipeline | None = None,
    ) -> np.ndarray:
        """The real kernel pipeline: SDDMM -> softmax -> SpMM."""
        pipe = kernels or KernelPipeline()
        sddmm_cfg = pipe.sddmm_config or SDDMMConfig()
        # tile knobs ride along; the bit-critical fields are re-pinned
        # so an injected plan config can never change the numerics
        sddmm_cfg = replace(sddmm_cfg, l_bits=qkv_bits, r_bits=qkv_bits)
        sddmm = pipe.sddmm_cls(sddmm_cfg)
        scores = sddmm(qq, kq.T, mask).output  # BCRS of integer scores
        sm = sparse_softmax_quantized(scores, scale=score_scale, out_bits=softmax_bits)
        spmm_cfg = pipe.spmm_config or SpMMConfig()
        spmm_cfg = replace(
            spmm_cfg,
            l_bits=softmax_bits,
            r_bits=qkv_bits,
            l_signed=False,
            fuse_dequant=True,
        )
        spmm = pipe.spmm_cls(spmm_cfg)
        stride = mma_shape_for(plan_for(softmax_bits, qkv_bits).native_bits).k
        probs_sr = bcrs_to_srbcrs(sm.output, stride=stride)
        res = spmm(probs_sr, vq, scale=sm.params.scale * v_scale)
        return res.dequantized
