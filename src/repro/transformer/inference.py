"""End-to-end sparse-Transformer inference latency (paper Fig. 17).

Models one forward pass of the 4-layer LRA encoder at production scale
(sequence 4096/8192, heads 4/8, batch 2/8) on three backends:

- ``pytorch_dense`` — cuDNN/cuBLAS fp16: dense QK^T and AV GEMMs plus a
  dense masked softmax; its attention buffers grow as b*h*L^2 and blow
  the 40 GB A100 at seq 8192 / batch 8, reproducing the paper's OOMs.
- ``vector_sparse`` — fp16 SDDMM/softmax/SpMM with vectorSparse kernels.
- ``magicube`` — the Fig. 16 quantized pipeline at an ``xb-yb`` scheme
  (softmax output x-bit, Q/K/V y-bit).

All backends share identical dense projections and MLP (cuBLAS fp16),
as in the paper — the backends differ only in the attention path.

Latency is assembled from the same kernel accounting the micro
benchmarks use, applied to *synthetic uniform* sparse topologies (the
attention mask's vectors spread evenly over strips), so Fig. 17 can be
regenerated in milliseconds instead of materializing 8192^2 masks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.baselines.calibration import cost_model_for
from repro.baselines.cublas import CublasGemm
from repro.errors import ConfigError
from repro.gpu.memory import TrafficCounter
from repro.gpu.timing import KernelStats
from repro.gpu.warp import LaunchGrid, ThreadBlock
from repro.serve.topology import UniformBCRSMask, UniformSRBCRS


class DenseOOM(Exception):
    """The dense baseline exceeded device memory (paper's OOM cells)."""


#: host-side dispatch cost per kernel (PyTorch 1.9 eager mode, as the
#: paper's end-to-end harness uses): op setup, launch, stream sync
HOST_OVERHEAD_S = 25e-6


@dataclass(frozen=True)
class Backend:
    """One Fig. 17 legend entry."""

    kind: str  # "pytorch_dense" | "vector_sparse" | "magicube"
    softmax_bits: int = 16
    qkv_bits: int = 8

    @property
    def label(self) -> str:
        if self.kind == "pytorch_dense":
            return "PyTorch (cuDNN, fp16)"
        if self.kind == "vector_sparse":
            return "vectorSparse (fp16)"
        return f"Magicube ({self.softmax_bits}b-{self.qkv_bits}b)"


PYTORCH_DENSE = Backend("pytorch_dense")
VECTOR_SPARSE = Backend("vector_sparse")
MAGICUBE_16_8 = Backend("magicube", 16, 8)
MAGICUBE_8_8 = Backend("magicube", 8, 8)
MAGICUBE_8_4 = Backend("magicube", 8, 4)
MAGICUBE_4_4 = Backend("magicube", 4, 4)
ALL_BACKENDS = (
    PYTORCH_DENSE,
    VECTOR_SPARSE,
    MAGICUBE_16_8,
    MAGICUBE_8_8,
    MAGICUBE_8_4,
    MAGICUBE_4_4,
)


@dataclass(frozen=True)
class InferenceConfig:
    """One Fig. 17 panel point."""

    seq_len: int = 4096
    num_heads: int = 4
    batch: int = 2
    sparsity: float = 0.9
    num_layers: int = 4
    d_head: int = 64
    vector_length: int = 8
    device: str = "A100"

    def __post_init__(self) -> None:
        if self.seq_len % self.vector_length != 0:
            raise ConfigError("seq_len must divide by the mask vector length")

    @property
    def d_model(self) -> int:
        return self.num_heads * self.d_head

    @property
    def nnz_vectors(self) -> int:
        """Attention-mask vectors at the target sparsity (uniform)."""
        per_strip = max(1, round((1.0 - self.sparsity) * self.seq_len))
        return (self.seq_len // self.vector_length) * per_strip

    @property
    def nnz(self) -> int:
        return self.nnz_vectors * self.vector_length


@dataclass
class LatencyResult:
    """Latency breakdown of one (config, backend) point."""

    backend: Backend
    config: InferenceConfig
    total_s: float
    components: dict = field(default_factory=dict)
    peak_attention_bytes: int = 0

    @property
    def total_ms(self) -> float:
        return self.total_s * 1e3


# ----------------------------------------------------------------------
# synthetic uniform topologies for the kernel accounting (shared with
# the serving planner, which costs candidate configs the same way)


def _uniform_srbcrs(cfg: InferenceConfig, stride: int) -> UniformSRBCRS:
    l = cfg.seq_len
    return UniformSRBCRS(l, l, cfg.vector_length, cfg.sparsity, stride)


def _uniform_mask(cfg: InferenceConfig) -> UniformBCRSMask:
    l = cfg.seq_len
    return UniformBCRSMask(l, l, cfg.vector_length, cfg.sparsity)


def _scale_stats(stats: KernelStats, factor: int) -> KernelStats:
    """One batched launch covering ``factor`` (batch x head) instances."""
    for key in stats.mma_ops:
        stats.mma_ops[key] *= factor
    stats.useful_ops *= factor
    t = TrafficCounter()
    for name, (rd, unique, wr) in stats.traffic.by_stream.items():
        t.read(name, rd * factor, unique * factor)
        t.write(name, wr * factor)
    stats.traffic = t
    stats.smem_transaction_cycles *= factor
    stats.epilogue_cycles *= factor
    stats.serial_bytes *= factor
    if stats.grid is not None:
        stats.grid = LaunchGrid(
            blocks=stats.grid.blocks * factor, block=stats.grid.block
        )
    return stats


def _streaming_stats(name: str, read_bytes: int, write_bytes: int) -> KernelStats:
    """A memory-streaming elementwise kernel (layernorm, quantize...)."""
    s = KernelStats(name=name)
    t = TrafficCounter()
    t.read(name, read_bytes)
    t.write(name, write_bytes)
    s.traffic = t
    s.prefetch = True
    s.grid = LaunchGrid(blocks=4096, block=ThreadBlock(warps=4))
    return s


# ----------------------------------------------------------------------
# per-backend attention paths


def _dense_projection_time(cfg: InferenceConfig) -> float:
    """Q/K/V/O projections + MLP per layer (identical on all backends)."""
    cm = cost_model_for("cublas_fp16", cfg.device)
    gemm = CublasGemm("fp16")
    d = cfg.d_model
    rows = cfg.batch * cfg.seq_len
    total = 0.0
    # 4 projections (d x d) and the 2 MLP GEMMs (d x 4d, 4d x d)
    for k_dim, n_dim, count in ((d, d, 4), (d, 4 * d, 1), (4 * d, d, 1)):
        stats = gemm._account((rows, k_dim), (k_dim, n_dim))
        total += cm.time(stats)
    # 2 layernorms + residuals: stream the activations a few times
    act = rows * d * 2
    total += cm.time(_streaming_stats("layernorm", 4 * act, 2 * act))
    return total


def _dense_attention_time(cfg: InferenceConfig) -> tuple[float, int]:
    """cuDNN-style dense attention per layer; returns (time, peak bytes)."""
    cm = cost_model_for("cublas_fp16", cfg.device)
    gemm = CublasGemm("fp16")
    bh = cfg.batch * cfg.num_heads
    l, dh = cfg.seq_len, cfg.d_head
    t = 0.0
    # QK^T and AV as batched GEMMs
    t += cm.time(_scale_stats(gemm._account((l, dh), (dh, l)), bh))
    t += cm.time(_scale_stats(gemm._account((l, l), (l, dh)), bh))
    # cuDNN's fused masked softmax: one read + one write of the L x L
    # score matrix
    score_bytes = bh * l * l * 2
    t += cm.time(_streaming_stats("dense-softmax", score_bytes, score_bytes))
    # PyTorch materializes several L x L temporaries (scores, masked
    # scores, fp32 softmax intermediates, output): ~10 fp16-equivalents
    peak = 10 * score_bytes  # per layer, buffers reused across layers
    return t, peak


def _sparse_attention_time_vectorsparse(cfg: InferenceConfig) -> float:
    from repro.baselines.vector_sparse import VectorSparseSDDMM, VectorSparseSpMM

    cm = cost_model_for("vector_sparse", cfg.device)
    bh = cfg.batch * cfg.num_heads
    l, dh = cfg.seq_len, cfg.d_head
    mask = _uniform_mask(cfg)
    t = 0.0
    sddmm_stats = VectorSparseSDDMM()._account((l, dh), (dh, l), mask)
    t += cm.time(_scale_stats(sddmm_stats, bh))
    # fp16 sparse softmax: stream the nnz scores
    nnz_bytes = mask.nnz * 2
    t += cm.time(_streaming_stats("sparse-softmax", 3 * nnz_bytes * bh, nnz_bytes * bh))
    # the AV SpMM's LHS is the probability matrix with the mask topology
    spmm_stats = VectorSparseSpMM()._account(mask, dh)
    t += cm.time(_scale_stats(spmm_stats, bh))
    return t


def _sparse_attention_time_magicube(
    cfg: InferenceConfig, backend: Backend, planner=None, plan_backend=None
) -> float:
    from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
    from repro.kernels.spmm import MagicubeSpMM, SpMMConfig

    cm = cost_model_for("magicube", cfg.device)
    bh = cfg.batch * cfg.num_heads
    l, dh = cfg.seq_len, cfg.d_head
    sm_bits, qkv_bits = backend.softmax_bits, backend.qkv_bits
    if planner is not None:
        # serving path: kernel configs come from the planner's cached
        # search (same precision scheme; the tile knobs are tuned). The
        # planner should be built for ``cfg.device``. The search is
        # pinned to a Magicube runtime backend — this path models the
        # Magicube attention pipeline specifically.
        from repro.runtime import DEFAULT_BACKEND
        from repro.serve.planner import Objective

        pinned = plan_backend if plan_backend is not None else DEFAULT_BACKEND
        sd_plan = planner.plan_sddmm(
            l, l, dh, cfg.vector_length, cfg.sparsity,
            Objective.fixed(qkv_bits, qkv_bits),
            backend=pinned,
        )
        sp_plan = planner.plan_spmm(
            l, l, dh, cfg.vector_length, cfg.sparsity,
            Objective.fixed(sm_bits, qkv_bits),
            backend=pinned,
        )
        sddmm = MagicubeSDDMM(sd_plan.sddmm_config())
        spmm = MagicubeSpMM(sp_plan.spmm_config(l_signed=False))
    else:
        sddmm = MagicubeSDDMM(SDDMMConfig(l_bits=qkv_bits, r_bits=qkv_bits))
        spmm = MagicubeSpMM(SpMMConfig(l_bits=sm_bits, r_bits=qkv_bits, l_signed=False))
    t = 0.0
    # Q/K/V quantization is fused into the projection epilogues and the
    # dequantizations into SDDMM/SpMM (the Fig. 16 "kernel fusion"
    # boxes) — no separate streaming kernels.
    # SDDMM at Lq-Rq
    mask = _uniform_mask(cfg)
    t += cm.time(_scale_stats(sddmm._account((l, dh), (dh, l), mask), bh))
    # fused fp16 softmax + quantize: stream nnz scores
    nnz_bytes = mask.nnz * 2
    t += cm.time(_streaming_stats("softmax-q", 2 * nnz_bytes * bh, nnz_bytes * bh // 2))
    # SpMM at L<sm>-R<qkv>
    sr = _uniform_srbcrs(cfg, stride=spmm.required_stride)
    t += cm.time(_scale_stats(spmm._account(sr, dh), bh))
    return t


#: kernels dispatched per encoder layer, per backend: 4 projections,
#: 2 MLP GEMMs, 2 layernorm/residual passes, plus the attention path
#: (dense: QK^T, fused mask+softmax, AV; sparse: SDDMM, softmax, SpMM)
_OPS_PER_LAYER = {
    "pytorch_dense": 8 + 3,
    "vector_sparse": 8 + 3,
    "magicube": 8 + 3,
}


def estimate_latency(
    cfg: InferenceConfig, backend: Backend, planner=None, plan_backend=None
) -> LatencyResult:
    """Full-model latency for one Fig. 17 point.

    Raises :class:`DenseOOM` for the dense backend when its attention
    buffers exceed the device's 40 GB. ``planner`` (an
    :class:`~repro.serve.planner.ExecutionPlanner`) routes the magicube
    attention kernels through cached serving plans — the
    :class:`repro.serve.engine.Engine` path; ``plan_backend`` pins
    which Magicube runtime backend those plans are searched on
    (default ``magicube-emulation``).
    """
    components: dict = {}
    proj = _dense_projection_time(cfg)
    components["projections+mlp"] = proj * cfg.num_layers
    peak = 0
    if backend.kind == "pytorch_dense":
        attn, peak = _dense_attention_time(cfg)
        # 40 GB HBM minus ~2 GB for weights, activations and workspace
        if peak > 38e9:
            raise DenseOOM(
                f"dense attention needs {peak / 1e9:.1f} GB > 38 GB usable "
                f"(seq={cfg.seq_len}, batch={cfg.batch}, heads={cfg.num_heads})"
            )
    elif backend.kind == "vector_sparse":
        attn = _sparse_attention_time_vectorsparse(cfg)
    elif backend.kind == "magicube":
        attn = _sparse_attention_time_magicube(
            cfg, backend, planner=planner, plan_backend=plan_backend
        )
    else:
        raise ConfigError(f"unknown backend {backend.kind!r}")
    components["attention"] = attn * cfg.num_layers
    components["host_dispatch"] = (
        HOST_OVERHEAD_S * _OPS_PER_LAYER[backend.kind] * cfg.num_layers
    )
    total = sum(components.values())
    return LatencyResult(
        backend=backend,
        config=cfg,
        total_s=total,
        components=components,
        peak_attention_bytes=peak,
    )


def estimate_decode_latency(
    cfg: InferenceConfig, backend: Backend, planner=None, plan_backend=None
) -> LatencyResult:
    """Latency of one decode step against a ``cfg.seq_len`` KV context.

    Derived from the prefill accounting: a decode step projects one
    V-row query strip instead of the full sequence (projections/MLP
    scale by ``V / L``) and its attention touches one strip's share of
    the mask (``V / L`` of the prefill SDDMM/softmax/SpMM work). The
    kernel *count* is unchanged — every layer still dispatches the same
    launches — so the host-dispatch floor stays, which is exactly why
    small decode steps are dispatch-bound in the paper's eager harness.
    """
    full = estimate_latency(
        cfg, backend, planner=planner, plan_backend=plan_backend
    )
    share = cfg.vector_length / cfg.seq_len
    components = {
        "projections+mlp": full.components["projections+mlp"] * share,
        "attention": full.components["attention"] * share,
        "host_dispatch": full.components["host_dispatch"],
    }
    return LatencyResult(
        backend=backend,
        config=cfg,
        total_s=sum(components.values()),
        components=components,
        peak_attention_bytes=full.peak_attention_bytes,
    )
