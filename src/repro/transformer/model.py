"""Transformer encoder and sequence classifier (the LRA model shape).

Pre-LN encoder layers (attention + 2-layer MLP, residuals), mean
pooling, linear head — matching the paper's 4-encoder-layer LRA setup
structurally, scaled down for NumPy training.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError, MaskError, ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.transformer.attention import MultiHeadAttention
from repro.transformer.masks import MASK_ZOO, build_mask
from repro.transformer.layers import (
    Adam,
    Embedding,
    Layer,
    LayerNorm,
    Linear,
    Parameter,
    ReLU,
)


@dataclass(frozen=True)
class TransformerConfig:
    """Model hyper-parameters."""

    vocab: int = 16
    seq_len: int = 128
    d_model: int = 64
    num_heads: int = 2
    num_layers: int = 2
    d_ff: int = 128
    num_classes: int = 2
    #: named attention pattern from the :data:`repro.transformer.masks.MASK_ZOO`
    mask_variant: str = "strided"

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads != 0:
            raise ConfigError("d_model must divide by num_heads")
        if self.mask_variant not in MASK_ZOO:
            raise MaskError(
                f"unknown mask variant {self.mask_variant!r}; "
                f"zoo has {tuple(sorted(MASK_ZOO))}"
            )

    def attention_mask(
        self, *, sparsity: float = 0.9, vector_length: int = 8, seed: int = 0
    ) -> BCRSMatrix:
        """The config's zoo mask at a density target (see :func:`build_mask`)."""
        return build_mask(
            self.mask_variant,
            self.seq_len,
            vector_length=vector_length,
            sparsity=sparsity,
            seed=seed,
        )


class EncoderLayer(Layer):
    """Pre-LN: x + Attn(LN(x)); x + FFN(LN(x))."""

    def __init__(self, cfg: TransformerConfig, rng: np.random.Generator) -> None:
        self.ln1 = LayerNorm(cfg.d_model)
        self.attn = MultiHeadAttention(cfg.d_model, cfg.num_heads, rng)
        self.ln2 = LayerNorm(cfg.d_model)
        self.ff1 = Linear(cfg.d_model, cfg.d_ff, rng)
        self.relu = ReLU()
        self.ff2 = Linear(cfg.d_ff, cfg.d_model, rng)

    def forward(
        self,
        x: np.ndarray,
        additive_mask: np.ndarray | None,
        quantized: dict | None = None,
    ) -> np.ndarray:
        h = self.ln1.forward(x)
        if quantized is None:
            a = self.attn.forward(h, additive_mask)
        else:
            a = self.attn.forward_quantized(h, **quantized)
        x = x + a
        h2 = self.ln2.forward(x)
        f = self.ff2.forward(self.relu.forward(self.ff1.forward(h2)))
        return x + f

    def backward(self, dy: np.ndarray) -> np.ndarray:
        df = self.ff1.backward(self.relu.backward(self.ff2.backward(dy)))
        dx = dy + self.ln2.backward(df)
        da = self.attn.backward(dx)
        return dx + self.ln1.backward(da)


class SparseTransformerClassifier(Layer):
    """Embedding -> N encoder layers -> mean pool -> linear head."""

    def __init__(self, cfg: TransformerConfig, seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        self.cfg = cfg
        self.embed = Embedding(cfg.vocab, cfg.d_model, rng)
        self.pos = Parameter(rng.normal(0.0, 0.02, size=(cfg.seq_len, cfg.d_model)))
        self.layers = [EncoderLayer(cfg, rng) for _ in range(cfg.num_layers)]
        self.head = Linear(cfg.d_model, cfg.num_classes, rng)
        self._seq_cache: int | None = None

    def forward(
        self,
        ids: np.ndarray,
        additive_mask: np.ndarray | None = None,
        quantized: dict | None = None,
    ) -> np.ndarray:
        """Logits for a batch of token-id sequences (B, L).

        ``quantized`` switches attention to the Fig. 16 path: a dict of
        ``forward_quantized`` kwargs (mask, softmax_bits, qkv_bits).
        """
        ids = np.asarray(ids)
        if ids.ndim != 2 or ids.shape[1] != self.cfg.seq_len:
            raise ShapeError(f"ids must be (B, {self.cfg.seq_len}), got {ids.shape}")
        x = self.embed.forward(ids) + self.pos.value
        for layer in self.layers:
            x = layer.forward(x, additive_mask, quantized)
        self._seq_cache = x.shape[1]
        pooled = x.mean(axis=1)
        return self.head.forward(pooled)

    def backward(self, dlogits: np.ndarray) -> None:
        l = self._seq_cache
        if l is None:
            raise ShapeError("backward before forward")
        dpooled = self.head.backward(dlogits)
        dx = np.repeat(dpooled[:, None, :], l, axis=1) / l
        for layer in reversed(self.layers):
            dx = layer.backward(dx)
        self.pos.grad += dx.sum(axis=0)
        self.embed.backward(dx)

    def optimizer(self, lr: float = 1e-3) -> Adam:
        return Adam(self.parameters(), lr=lr)

    def predict(self, ids: np.ndarray, **forward_kwargs) -> np.ndarray:
        return np.argmax(self.forward(ids, **forward_kwargs), axis=-1)


def make_quantized_kwargs(
    mask: BCRSMatrix,
    softmax_bits: int,
    qkv_bits: int,
    use_kernels: bool = False,
    kernels=None,
) -> dict:
    """The ``quantized=`` dict for one Fig. 17 precision scheme.

    ``kernels`` optionally injects a
    :class:`~repro.transformer.attention.KernelPipeline` (resolved
    backend kernel classes + plan-derived configs) into the launches.
    """
    out = {
        "mask": mask,
        "softmax_bits": softmax_bits,
        "qkv_bits": qkv_bits,
        "use_kernels": use_kernels,
    }
    if kernels is not None:
        out["kernels"] = kernels
    return out
