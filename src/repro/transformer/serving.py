"""Whole-model serving support for ``TransformerRequest``.

:class:`PreparedTransformer` memoizes the seeded LRA classifier and its
zoo attention mask for one request topology, and runs ``lra-classify``
forwards through the real quantized kernel pipeline — one model forward
is a sequence of SDDMM -> quantized-softmax -> SpMM launches whose
kernel classes come from the resolved runtime backend and whose tile
configs come from the execution planner's cached plans. Every layer
shares one (sddmm, spmm) plan pair, so a layer-N launch is a plan-cache
hit for layer-0's key; the plan keys carry the mask variant's
*realized* sparsity, which is what makes mask patterns distinct,
priceable plan-key dimensions.

The ``prefill`` / ``decode`` request modes reuse the Fig. 17 latency
model (:mod:`repro.transformer.inference`) at the same realized
sparsity, so the modelled times an engine reports are consistent with
what the planner priced.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.transformer.attention import KernelPipeline
from repro.transformer.inference import (
    Backend,
    InferenceConfig,
    LatencyResult,
    estimate_decode_latency,
    estimate_latency,
)
from repro.transformer.model import (
    SparseTransformerClassifier,
    TransformerConfig,
    make_quantized_kwargs,
)

#: request modes the serving layer understands
TRANSFORMER_MODES = ("lra-classify", "prefill", "decode")


@dataclass(frozen=True)
class TransformerSpec:
    """Everything that determines the memoized model + mask."""

    seq_len: int = 128
    d_model: int = 64
    num_heads: int = 2
    num_layers: int = 2
    d_ff: int = 128
    vocab: int = 16
    num_classes: int = 2
    mask_variant: str = "strided"
    sparsity: float = 0.9
    vector_length: int = 8
    seed: int = 0

    def model_config(self) -> TransformerConfig:
        return TransformerConfig(
            vocab=self.vocab,
            seq_len=self.seq_len,
            d_model=self.d_model,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            d_ff=self.d_ff,
            num_classes=self.num_classes,
            mask_variant=self.mask_variant,
        )

    @property
    def d_head(self) -> int:
        return self.d_model // self.num_heads

    def latency_config(
        self, batch: int, device: str, sparsity: float | None = None
    ) -> InferenceConfig:
        """The Fig. 17 accounting point for this topology."""
        return InferenceConfig(
            seq_len=self.seq_len,
            num_heads=self.num_heads,
            batch=batch,
            sparsity=self.sparsity if sparsity is None else sparsity,
            num_layers=self.num_layers,
            d_head=self.d_head,
            vector_length=self.vector_length,
            device=device,
        )


class PreparedTransformer:
    """A seeded model + zoo mask, ready to serve forwards."""

    def __init__(self, spec: TransformerSpec) -> None:
        self.spec = spec
        self.config = spec.model_config()
        self.model = SparseTransformerClassifier(self.config, seed=spec.seed)
        self.mask = self.config.attention_mask(
            sparsity=spec.sparsity,
            vector_length=spec.vector_length,
            seed=spec.seed,
        )

    @property
    def realized_sparsity(self) -> float:
        """The mask's actual sparsity (what plans are priced at)."""
        return self.mask.sparsity

    def launches_per_forward(self, batch_rows: int) -> int:
        """Kernel launches one forward dispatches (SDDMM + SpMM pairs)."""
        return 2 * self.spec.num_layers * self.spec.num_heads * batch_rows

    def kernel_pipeline(
        self,
        backend: str | None,
        scheme: tuple[int, int],
        planner=None,
    ) -> tuple[KernelPipeline, tuple]:
        """Resolve the launch stack: backend kernel classes + plan configs.

        Returns ``(pipeline, plans)``; ``plans`` is the (sddmm, spmm)
        plan pair when a planner priced the launches, else empty.
        """
        from repro.runtime import DEFAULT_BACKEND, get_backend

        name = backend if backend is not None else DEFAULT_BACKEND
        resolved = get_backend(name)
        softmax_bits, qkv_bits = scheme
        sddmm_cfg = spmm_cfg = None
        plans: tuple = ()
        if planner is not None:
            from repro.serve.planner import Objective

            spec = self.spec
            l, dh, v = spec.seq_len, spec.d_head, spec.vector_length
            s = self.realized_sparsity
            sd = planner.plan_sddmm(
                l, l, dh, v, s,
                Objective.fixed(qkv_bits, qkv_bits),
                backend=name,
            )
            sp = planner.plan_spmm(
                l, l, dh, v, s,
                Objective.fixed(softmax_bits, qkv_bits),
                backend=name,
            )
            sddmm_cfg = sd.sddmm_config()
            spmm_cfg = sp.spmm_config(l_signed=False)
            plans = (sd, sp)
        pipeline = KernelPipeline(
            sddmm_cls=resolved.sddmm_kernel,
            spmm_cls=resolved.spmm_kernel,
            sddmm_config=sddmm_cfg,
            spmm_config=spmm_cfg,
        )
        return pipeline, plans

    def forward(
        self,
        ids: np.ndarray,
        scheme: tuple[int, int] = (16, 8),
        backend: str | None = None,
        planner=None,
    ) -> tuple[np.ndarray, tuple]:
        """Logits for ``ids`` via the planned quantized kernel path.

        Bit-identical to ``SparseTransformerClassifier.forward`` with
        ``use_kernels=True`` and the same mask/scheme: the injected plan
        configs only carry tile knobs, never numerics.
        """
        pipeline, plans = self.kernel_pipeline(backend, scheme, planner)
        quantized = make_quantized_kwargs(
            self.mask, scheme[0], scheme[1], use_kernels=True, kernels=pipeline
        )
        logits = self.model.forward(np.asarray(ids), quantized=quantized)
        return logits, plans


# ----------------------------------------------------------------------
# memoized preparation: model builds are the expensive part of a
# transformer request class, so the spec -> prepared map is shared by
# one-shot resolution and engine sessions alike

_CACHE: OrderedDict[TransformerSpec, PreparedTransformer] = OrderedDict()
_CACHE_CAPACITY = 8


def prepare_transformer(spec: TransformerSpec) -> PreparedTransformer:
    """Memoized :class:`PreparedTransformer` for one topology."""
    got = _CACHE.get(spec)
    if got is None:
        got = PreparedTransformer(spec)
        _CACHE[spec] = got
        while len(_CACHE) > _CACHE_CAPACITY:
            _CACHE.popitem(last=False)
    else:
        _CACHE.move_to_end(spec)
    return got


def modelled_latency(
    prepared: PreparedTransformer,
    mode: str,
    batch: int,
    scheme: tuple[int, int],
    device: str,
    planner=None,
    plan_backend: str | None = None,
) -> LatencyResult:
    """The Fig. 17 latency model at the mask's realized sparsity."""
    if mode not in TRANSFORMER_MODES:
        raise ConfigError(
            f"unknown transformer mode {mode!r}; expected one of "
            f"{TRANSFORMER_MODES}"
        )
    cfg = prepared.spec.latency_config(
        batch, device, sparsity=round(prepared.realized_sparsity, 3)
    )
    backend = Backend("magicube", scheme[0], scheme[1])
    estimator = estimate_decode_latency if mode == "decode" else estimate_latency
    return estimator(cfg, backend, planner=planner, plan_backend=plan_backend)
