"""NumPy neural-network layers with manual backprop.

Minimal reverse-mode machinery for the Table V accuracy study: each
layer caches what its backward pass needs, ``backward`` returns the
input gradient and accumulates parameter gradients, and ``Adam`` applies
updates. Float32 throughout (training); the quantized paths live in
:mod:`repro.transformer.attention`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError


class Parameter:
    """A trainable tensor with its gradient accumulator."""

    def __init__(self, value: np.ndarray) -> None:
        self.value = np.asarray(value, dtype=np.float32)
        self.grad = np.zeros_like(self.value)

    def zero_grad(self) -> None:
        self.grad[...] = 0.0


class Layer:
    """Base class: parameters() walks the layer tree."""

    def parameters(self) -> list[Parameter]:
        params: list[Parameter] = []
        for v in vars(self).values():
            if isinstance(v, Parameter):
                params.append(v)
            elif isinstance(v, Layer):
                params.extend(v.parameters())
            elif isinstance(v, (list, tuple)):
                for item in v:
                    if isinstance(item, Layer):
                        params.extend(item.parameters())
        return params


class Linear(Layer):
    """y = x @ W + b over the last axis."""

    def __init__(self, d_in: int, d_out: int, rng: np.random.Generator) -> None:
        scale = np.sqrt(2.0 / (d_in + d_out))
        self.w = Parameter(rng.normal(0.0, scale, size=(d_in, d_out)))
        self.b = Parameter(np.zeros(d_out))
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._x = x
        return x @ self.w.value + self.b.value

    def backward(self, dy: np.ndarray) -> np.ndarray:
        x = self._x
        if x is None:
            raise ShapeError("backward before forward")
        flat_x = x.reshape(-1, x.shape[-1])
        flat_dy = dy.reshape(-1, dy.shape[-1])
        self.w.grad += flat_x.T @ flat_dy
        self.b.grad += flat_dy.sum(axis=0)
        return dy @ self.w.value.T


class LayerNorm(Layer):
    """Layer normalization over the last axis."""

    def __init__(self, dim: int, eps: float = 1e-5) -> None:
        self.gamma = Parameter(np.ones(dim))
        self.beta = Parameter(np.zeros(dim))
        self.eps = eps
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        mu = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        inv = 1.0 / np.sqrt(var + self.eps)
        xhat = (x - mu) * inv
        self._cache = (xhat, inv)
        return xhat * self.gamma.value + self.beta.value

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ShapeError("backward before forward")
        xhat, inv = self._cache
        d = xhat.shape[-1]
        flat_xhat = xhat.reshape(-1, d)
        flat_dy = dy.reshape(-1, d)
        self.gamma.grad += (flat_dy * flat_xhat).sum(axis=0)
        self.beta.grad += flat_dy.sum(axis=0)
        dxhat = dy * self.gamma.value
        dx = (
            dxhat
            - dxhat.mean(axis=-1, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=-1, keepdims=True)
        ) * inv
        return dx


class ReLU(Layer):
    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, dy: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ShapeError("backward before forward")
        return dy * self._mask


class Embedding(Layer):
    """Token embedding lookup."""

    def __init__(self, vocab: int, dim: int, rng: np.random.Generator) -> None:
        self.table = Parameter(rng.normal(0.0, 0.02, size=(vocab, dim)))
        self._ids: np.ndarray | None = None

    def forward(self, ids: np.ndarray) -> np.ndarray:
        self._ids = np.asarray(ids)
        return self.table.value[self._ids]

    def backward(self, dy: np.ndarray) -> None:
        if self._ids is None:
            raise ShapeError("backward before forward")
        np.add.at(self.table.grad, self._ids.reshape(-1), dy.reshape(-1, dy.shape[-1]))


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    m = x.max(axis=axis, keepdims=True)
    # guard fully-masked rows (-inf everywhere) against NaN
    m = np.where(np.isfinite(m), m, 0.0)
    e = np.exp(x - m)
    s = e.sum(axis=axis, keepdims=True)
    return e / np.maximum(s, 1e-30)


def softmax_backward(probs: np.ndarray, dy: np.ndarray, axis: int = -1) -> np.ndarray:
    """Jacobian-vector product of softmax at ``probs``."""
    dot = (dy * probs).sum(axis=axis, keepdims=True)
    return probs * (dy - dot)


def cross_entropy(logits: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
    """Mean CE loss and the logits gradient."""
    n = logits.shape[0]
    probs = softmax(logits, axis=-1)
    loss = -float(np.mean(np.log(probs[np.arange(n), labels] + 1e-12)))
    grad = probs.copy()
    grad[np.arange(n), labels] -= 1.0
    return loss, grad / n


class Adam:
    """Adam optimizer over a parameter list."""

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
    ) -> None:
        self.params = params
        self.lr = lr
        self.b1, self.b2 = betas
        self.eps = eps
        self.t = 0
        self.m = [np.zeros_like(p.value) for p in params]
        self.v = [np.zeros_like(p.value) for p in params]

    def step(self) -> None:
        self.t += 1
        for i, p in enumerate(self.params):
            self.m[i] = self.b1 * self.m[i] + (1 - self.b1) * p.grad
            self.v[i] = self.b2 * self.v[i] + (1 - self.b2) * p.grad**2
            mhat = self.m[i] / (1 - self.b1**self.t)
            vhat = self.v[i] / (1 - self.b2**self.t)
            p.value -= self.lr * mhat / (np.sqrt(vhat) + self.eps)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()
