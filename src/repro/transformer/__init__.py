"""Sparse Transformer application (paper Sec. V-C, Figs. 16-17, Table V).

End-to-end use of the Magicube kernels: a Transformer encoder whose
self-attention is sparsified by a 1-D-block attention mask and quantized
per Fig. 16 (int SDDMM -> fp16 softmax -> int SpMM with fused
(de)quantization).

- :mod:`repro.transformer.masks` — sparse attention masks with the 8x1
  vector constraint (strided/local patterns after Child et al.).
- :mod:`repro.transformer.layers` — NumPy layers with manual backprop.
- :mod:`repro.transformer.attention` — dense, masked-sparse, and
  quantized sparse multi-head attention.
- :mod:`repro.transformer.model` — encoder + classifier.
- :mod:`repro.transformer.training` — training loop and post-training
  quantization for the Table V accuracy study.
- :mod:`repro.transformer.lra` — the synthetic long-range classification
  task standing in for LRA text classification.
- :mod:`repro.transformer.inference` — the Fig. 17 end-to-end latency
  model (PyTorch-dense vs vectorSparse vs Magicube, incl. dense OOM).
"""

from repro.transformer.masks import strided_vector_mask, random_vector_mask
from repro.transformer.model import SparseTransformerClassifier, TransformerConfig
from repro.transformer.inference import (
    InferenceConfig,
    estimate_latency,
    Backend,
    DenseOOM,
)

__all__ = [
    "strided_vector_mask",
    "random_vector_mask",
    "SparseTransformerClassifier",
    "TransformerConfig",
    "InferenceConfig",
    "estimate_latency",
    "Backend",
    "DenseOOM",
]
