"""Sparse Transformer application (paper Sec. V-C, Figs. 16-17, Table V).

End-to-end use of the Magicube kernels: a Transformer encoder whose
self-attention is sparsified by a 1-D-block attention mask and quantized
per Fig. 16 (int SDDMM -> fp16 softmax -> int SpMM with fused
(de)quantization).

- :mod:`repro.transformer.masks` — sparse attention masks with the 8x1
  vector constraint (strided/local patterns after Child et al.), plus
  the named :data:`~repro.transformer.masks.MASK_ZOO` variant zoo
  (``local``, ``strided``, ``blocked-random``, ``global-local``,
  ``banded``) behind :func:`~repro.transformer.masks.build_mask`.
- :mod:`repro.transformer.layers` — NumPy layers with manual backprop.
- :mod:`repro.transformer.attention` — dense, masked-sparse, and
  quantized sparse multi-head attention (with
  :class:`~repro.transformer.attention.KernelPipeline` backend/config
  injection for planned serving launches).
- :mod:`repro.transformer.model` — encoder + classifier.
- :mod:`repro.transformer.training` — training loop and post-training
  quantization for the Table V accuracy study.
- :mod:`repro.transformer.lra` — the synthetic long-range classification
  task standing in for LRA text classification.
- :mod:`repro.transformer.inference` — the Fig. 17 end-to-end latency
  model (PyTorch-dense vs vectorSparse vs Magicube, incl. dense OOM),
  plus :func:`~repro.transformer.inference.estimate_decode_latency`
  for single-step decode pricing.
- :mod:`repro.transformer.serving` — whole-model serving support for
  ``TransformerRequest`` (memoized prepared models, planned kernel
  pipelines, modelled prefill/decode latency).
"""

from repro.transformer.masks import (
    MASK_ZOO,
    build_mask,
    global_local_vector_mask,
    local_vector_mask,
    mask_variants,
    random_vector_mask,
    strided_vector_mask,
)
from repro.transformer.model import SparseTransformerClassifier, TransformerConfig
from repro.transformer.inference import (
    InferenceConfig,
    estimate_decode_latency,
    estimate_latency,
    Backend,
    DenseOOM,
)

__all__ = [
    "MASK_ZOO",
    "build_mask",
    "global_local_vector_mask",
    "local_vector_mask",
    "mask_variants",
    "strided_vector_mask",
    "random_vector_mask",
    "SparseTransformerClassifier",
    "TransformerConfig",
    "InferenceConfig",
    "estimate_decode_latency",
    "estimate_latency",
    "Backend",
    "DenseOOM",
]
