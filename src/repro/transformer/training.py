"""Training and quantization evaluation for the Table V accuracy study.

The paper trains the LRA model "with dense and sparse attention masks
using the same hyperparameters, and finetune[s] it for quantization".
Mirrored here: :func:`train` fits the classifier with a given (possibly
sparse) attention mask; :func:`evaluate_quantized` measures test
accuracy under each Fig. 17 precision scheme using the Fig. 16
functional path; :func:`finetune_quantized` optionally adapts the
weights with straight-through fake-quant steps first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formats.bcrs import BCRSMatrix
from repro.transformer.layers import cross_entropy
from repro.transformer.masks import mask_to_additive
from repro.transformer.model import (
    SparseTransformerClassifier,
    TransformerConfig,
    make_quantized_kwargs,
)


@dataclass
class TrainResult:
    """Training artifacts: the model and its loss curve."""

    model: SparseTransformerClassifier
    losses: list
    train_accuracy: float


def iterate_batches(
    x: np.ndarray, y: np.ndarray, batch: int, rng: np.random.Generator
):
    """Shuffled mini-batches."""
    idx = rng.permutation(len(x))
    for i in range(0, len(x) - batch + 1, batch):
        sel = idx[i : i + batch]
        yield x[sel], y[sel]


def train(
    cfg: TransformerConfig,
    x_train: np.ndarray,
    y_train: np.ndarray,
    mask: BCRSMatrix | None = None,
    epochs: int = 4,
    batch: int = 32,
    lr: float = 1e-3,
    seed: int = 0,
) -> TrainResult:
    """Fit a classifier with dense (mask=None) or sparse attention."""
    model = SparseTransformerClassifier(cfg, seed=seed)
    additive = mask_to_additive(mask) if mask is not None else None
    opt = model.optimizer(lr=lr)
    rng = np.random.default_rng(seed + 1)
    losses = []
    for _ in range(epochs):
        for xb, yb in iterate_batches(x_train, y_train, batch, rng):
            logits = model.forward(xb, additive_mask=additive)
            loss, dlogits = cross_entropy(logits, yb)
            opt.zero_grad()
            model.backward(dlogits)
            opt.step()
            losses.append(loss)
    preds = _predict_batched(model, x_train[:512], additive=additive)
    train_acc = float((preds == y_train[:512]).mean())
    return TrainResult(model=model, losses=losses, train_accuracy=train_acc)


def _predict_batched(
    model: SparseTransformerClassifier,
    x: np.ndarray,
    additive: np.ndarray | None = None,
    quantized: dict | None = None,
    batch: int = 64,
) -> np.ndarray:
    preds = []
    for i in range(0, len(x), batch):
        logits = model.forward(
            x[i : i + batch], additive_mask=additive, quantized=quantized
        )
        preds.append(np.argmax(logits, axis=-1))
    return np.concatenate(preds)


def evaluate(
    model: SparseTransformerClassifier,
    x: np.ndarray,
    y: np.ndarray,
    mask: BCRSMatrix | None = None,
) -> float:
    """Float test accuracy (dense or masked attention)."""
    additive = mask_to_additive(mask) if mask is not None else None
    return float((_predict_batched(model, x, additive=additive) == y).mean())


def evaluate_quantized(
    model: SparseTransformerClassifier,
    x: np.ndarray,
    y: np.ndarray,
    mask: BCRSMatrix,
    softmax_bits: int,
    qkv_bits: int,
) -> float:
    """Test accuracy under one quantization scheme (Fig. 16 path)."""
    q = make_quantized_kwargs(mask, softmax_bits, qkv_bits)
    return float((_predict_batched(model, x, quantized=q) == y).mean())


def finetune_quantized(
    model: SparseTransformerClassifier,
    x_train: np.ndarray,
    y_train: np.ndarray,
    mask: BCRSMatrix,
    softmax_bits: int,
    qkv_bits: int,
    steps: int = 30,
    batch: int = 32,
    lr: float = 2e-4,
    seed: int = 3,
) -> SparseTransformerClassifier:
    """Straight-through quantization finetune.

    Forward in the quantized regime approximated by the float masked
    path (the quantization error acts as noise the finetune adapts to);
    gradients flow through the float graph — the standard STE recipe the
    quantization literature the paper cites uses.
    """
    additive = mask_to_additive(mask)
    opt = model.optimizer(lr=lr)
    rng = np.random.default_rng(seed)
    done = 0
    while done < steps:
        for xb, yb in iterate_batches(x_train, y_train, batch, rng):
            logits = model.forward(xb, additive_mask=additive)
            loss, dlogits = cross_entropy(logits, yb)
            opt.zero_grad()
            model.backward(dlogits)
            opt.step()
            done += 1
            if done >= steps:
                break
    return model
