"""Distributed inference extension (paper Discussion b).

The paper positions Magicube as "the backend compute library" for
data/operator/pipeline-parallel systems (Megatron-LM style). This
module models the standard *tensor-parallel* split of the sparse
Transformer: attention heads shard across GPUs, the two all-reduces per
layer (after the attention output projection and after the MLP) ride
NVLink. It composes the single-GPU latency model with an alpha-beta
communication cost, reproducing the expected scaling behaviour: near-
linear while compute dominates, communication-limited beyond.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.transformer.inference import (
    Backend,
    InferenceConfig,
    estimate_latency,
)

#: NVLink 3.0 per-GPU aggregate bandwidth (A100, GB/s each direction)
NVLINK_BANDWIDTH_GBS = 300.0
#: per-collective launch/synchronization latency (NCCL ring setup)
ALLREDUCE_LATENCY_S = 12e-6


@dataclass(frozen=True)
class TensorParallelConfig:
    """A tensor-parallel deployment of the sparse Transformer."""

    base: InferenceConfig
    num_gpus: int = 1
    nvlink_gbs: float = NVLINK_BANDWIDTH_GBS

    def __post_init__(self) -> None:
        if self.num_gpus < 1:
            raise ConfigError(f"num_gpus must be >= 1, got {self.num_gpus}")
        if self.base.num_heads % self.num_gpus != 0:
            raise ConfigError(
                f"{self.base.num_heads} heads do not shard over {self.num_gpus} GPUs"
            )


def allreduce_time(bytes_: int, num_gpus: int, bandwidth_gbs: float) -> float:
    """Ring all-reduce: 2 (g-1)/g of the buffer crosses each link."""
    if num_gpus == 1:
        return 0.0
    volume = 2 * bytes_ * (num_gpus - 1) / num_gpus
    return ALLREDUCE_LATENCY_S + volume / (bandwidth_gbs * 1e9)


def estimate_latency_distributed(
    cfg: TensorParallelConfig, backend: Backend, planner=None, plan_backend=None
) -> dict:
    """Per-forward latency of the tensor-parallel model.

    Heads shard evenly: each GPU runs the single-GPU model at
    ``heads / g`` and the layer ends with an all-reduce of the
    activations (fp16, batch x seq x d_model) — twice per layer
    (attention output + MLP output), as in Megatron-LM.

    ``planner`` / ``plan_backend`` thread through to
    :func:`~repro.transformer.inference.estimate_latency` so the
    per-GPU shard routes through cached serving plans — the path
    :mod:`repro.api.resolution` takes for ``num_gpus > 1`` attention
    requests.
    """
    base = cfg.base
    g = cfg.num_gpus
    shard = InferenceConfig(
        seq_len=base.seq_len,
        num_heads=base.num_heads // g,
        batch=base.batch,
        sparsity=base.sparsity,
        num_layers=base.num_layers,
        d_head=base.d_head,
        vector_length=base.vector_length,
        device=base.device,
    )
    local = estimate_latency(
        shard, backend, planner=planner, plan_backend=plan_backend
    )
    act_bytes = base.batch * base.seq_len * base.d_model * 2  # fp16
    comm = 2 * base.num_layers * allreduce_time(act_bytes, g, cfg.nvlink_gbs)
    total = local.total_s + comm
    return {
        "total_s": total,
        "compute_s": local.total_s,
        "comm_s": comm,
        "speedup_vs_1gpu": (
            None if g == 1
            else _speedup(cfg, backend, total, planner, plan_backend)
        ),
        "comm_fraction": comm / total if total > 0 else 0.0,
    }


def _speedup(
    cfg: TensorParallelConfig, backend: Backend, total: float,
    planner=None, plan_backend=None,
) -> float:
    single = estimate_latency_distributed(
        TensorParallelConfig(base=cfg.base, num_gpus=1, nvlink_gbs=cfg.nvlink_gbs),
        backend, planner=planner, plan_backend=plan_backend,
    )
    return single["total_s"] / total
