"""Synthetic long-range classification task (LRA text stand-in).

The paper trains on LRA text classification (byte-level IMDB, ~57%
two-class accuracy in their Table V). Without the dataset we build a
task with the same two properties that make sparse attention meaningful:

- the label depends on *long-range* token agreement (position i vs
  i + L/2 — a local-window model cannot solve it), and
- irreducible label noise caps the achievable accuracy well below 100%,
  so quantization/sparsification effects show up as the paper's ~0.2-1.5
  point drops rather than vanishing against a saturated task.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError


@dataclass(frozen=True)
class LRATask:
    """Task parameters."""

    vocab: int = 16
    seq_len: int = 128
    label_noise: float = 0.35
    seed: int = 7

    def __post_init__(self) -> None:
        if self.seq_len % 2 != 0:
            raise ConfigError("sequence length must be even")
        if not 0.0 <= self.label_noise < 0.5:
            raise ConfigError("label noise must be in [0, 0.5)")


def _clean_label(ids: np.ndarray, task: LRATask) -> np.ndarray:
    """1 iff the long-range match count exceeds its median expectation."""
    half = task.seq_len // 2
    matches = (ids[:, :half] == ids[:, half:]).sum(axis=1)
    threshold = half / task.vocab  # expected matches under uniformity
    return (matches > threshold).astype(np.int64)


def generate_split(
    task: LRATask, n: int, split_seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """(ids, labels) for one split; deterministic in the seeds."""
    rng = np.random.default_rng(task.seed * 1_000_003 + split_seed)
    ids = rng.integers(0, task.vocab, size=(n, task.seq_len))
    # plant extra long-range matches in half the examples so the signal
    # is learnable above chance
    half = task.seq_len // 2
    planted = rng.random(n) < 0.5
    for i in np.nonzero(planted)[0]:
        pos = rng.choice(half, size=half // 4, replace=False)
        ids[i, pos + half] = ids[i, pos]
    labels = _clean_label(ids, task)
    flip = rng.random(n) < task.label_noise
    labels = np.where(flip, 1 - labels, labels)
    return ids, labels


def dataset(
    task: LRATask, n_train: int = 2048, n_test: int = 512
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """(train_ids, train_labels, test_ids, test_labels)."""
    xtr, ytr = generate_split(task, n_train, split_seed=1)
    xte, yte = generate_split(task, n_test, split_seed=2)
    return xtr, ytr, xte, yte


def bayes_accuracy(task: LRATask) -> float:
    """The accuracy ceiling imposed by the label noise."""
    return 1.0 - task.label_noise
