"""Sparse attention masks with the 1-D-vector constraint.

The paper follows Chen et al. in adding an "8x1 vector sparsity
constraint" to the sparse-Transformer attention mask: the L x L binary
mask is built from V x 1 column vectors so the attention SDDMM/SpMM can
use the 1-D-block kernels. Patterns provided:

- :func:`strided_vector_mask` — the sparse-Transformer pattern (Child et
  al. 2019): each query attends to a local window plus strided global
  positions, rounded to whole V-row strips.
- :func:`random_vector_mask` — uniformly random vector positions at a
  target sparsity (for workload sweeps).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.formats.bcrs import BCRSMatrix
from repro.gpu.warp import ceil_div


def _to_bcrs(keep: np.ndarray, v: int, length: int) -> BCRSMatrix:
    """(strips, L) boolean keep map -> BCRS mask of ones."""
    strips = keep.shape[0]
    counts = keep.sum(axis=1).astype(np.int64)
    row_ptrs = np.zeros(strips + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptrs[1:])
    strip_ids, cols = np.nonzero(keep)
    values = np.ones((cols.size, v), dtype=np.int32)
    return BCRSMatrix(
        shape=(length, length),
        vector_length=v,
        row_ptrs=row_ptrs,
        col_indices=cols.astype(np.int32),
        values=values,
    )


def strided_vector_mask(
    length: int,
    vector_length: int = 8,
    local_window: int = 64,
    stride: int = 64,
    causal: bool = False,
) -> BCRSMatrix:
    """Sparse-Transformer mask rounded to V x 1 vectors.

    Each V-row strip of queries attends to (a) the columns within
    ``local_window`` of the strip and (b) every ``stride``-th column
    (the 'global' heads of Child et al.). ``causal`` removes columns
    after the strip (decoder-style).
    """
    v = vector_length
    if length % v != 0:
        raise ConfigError(f"sequence length {length} not divisible by V={v}")
    strips = length // v
    keep = np.zeros((strips, length), dtype=bool)
    cols = np.arange(length)
    for s in range(strips):
        center = s * v + v // 2
        keep[s, np.abs(cols - center) <= local_window // 2] = True
        keep[s, cols % stride == 0] = True
        if causal:
            keep[s, cols > s * v + v - 1] = False
    # guarantee the diagonal (self-attention) stays
    for s in range(strips):
        keep[s, s * v : s * v + v] = True
    return _to_bcrs(keep, v, length)


def random_vector_mask(
    length: int,
    sparsity: float,
    vector_length: int = 8,
    seed: int = 0,
) -> BCRSMatrix:
    """Random V x 1 mask at a target sparsity (diagonal always kept)."""
    v = vector_length
    if length % v != 0:
        raise ConfigError(f"sequence length {length} not divisible by V={v}")
    if not 0.0 <= sparsity < 1.0:
        raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
    strips = length // v
    rng = np.random.default_rng(seed)
    per_strip = max(1, round((1.0 - sparsity) * length))
    keep = np.zeros((strips, length), dtype=bool)
    for s in range(strips):
        cols = rng.choice(length, size=per_strip, replace=False)
        keep[s, cols] = True
        keep[s, s * v : s * v + v] = True  # self-attention
    return _to_bcrs(keep, v, length)


def banded_vector_mask(
    length: int,
    sparsity: float,
    vector_length: int = 8,
    offsets: tuple[int, ...] = (0,),
    seed: int = 0,
) -> BCRSMatrix:
    """Offset-block mask at a target sparsity.

    Sparse-Transformer masks are chosen to *cover the task's dependency
    structure* (Child et al.'s strided/local patterns). Because of the
    V x 1 vector constraint, a strip's rows share columns, so covering a
    diagonal at a given offset means keeping the whole V-aligned partner
    block. This builder spends the per-strip nonzero budget greedily:
    the partner blocks of ``offsets`` first (possibly *partially* when
    the budget runs out — the structural reason higher sparsity costs
    accuracy), then random columns up to the target sparsity.
    """
    v = vector_length
    if length % v != 0:
        raise ConfigError(f"sequence length {length} not divisible by V={v}")
    if not 0.0 <= sparsity < 1.0:
        raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
    strips = length // v
    rng = np.random.default_rng(seed)
    budget = max(1, round((1.0 - sparsity) * length))
    keep = np.zeros((strips, length), dtype=bool)
    for s in range(strips):
        remaining = budget
        for off in offsets:
            if remaining <= 0:
                break
            block0 = (s * v + off) % length
            take = min(v, remaining)
            keep[s, block0 : block0 + take] = True
            remaining -= take
        if remaining > 0:
            pool = np.nonzero(~keep[s])[0]
            pick = rng.choice(pool, size=min(remaining, pool.size), replace=False)
            keep[s, pick] = True
    return _to_bcrs(keep, v, length)


def mask_to_additive(mask: BCRSMatrix) -> np.ndarray:
    """Dense additive form: 0 where attended, -inf elsewhere.

    Used by the dense training path (masked softmax); the kernels use
    the BCRS topology directly.
    """
    dense = mask.to_dense() != 0
    out = np.where(dense, 0.0, -np.inf).astype(np.float32)
    return out


def mask_statistics(mask: BCRSMatrix) -> dict:
    """Sparsity and load-balance summary of an attention mask."""
    counts = mask.vectors_per_strip()
    return {
        "sparsity": mask.sparsity,
        "vectors": int(mask.num_vectors),
        "min_per_strip": int(counts.min()) if counts.size else 0,
        "max_per_strip": int(counts.max()) if counts.size else 0,
        "mean_per_strip": float(counts.mean()) if counts.size else 0.0,
    }
