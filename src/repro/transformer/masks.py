"""Sparse attention masks with the 1-D-vector constraint.

The paper follows Chen et al. in adding an "8x1 vector sparsity
constraint" to the sparse-Transformer attention mask: the L x L binary
mask is built from V x 1 column vectors so the attention SDDMM/SpMM can
use the 1-D-block kernels. Patterns provided:

- :func:`strided_vector_mask` — the sparse-Transformer pattern (Child et
  al. 2019): each query attends to a local window plus strided global
  positions, rounded to whole V-row strips.
- :func:`random_vector_mask` — uniformly random vector positions at a
  target sparsity (for workload sweeps).
- :func:`local_vector_mask` — pure sliding-window attention (the
  Longformer/xformers ``local`` component), V-rounded.
- :func:`global_local_vector_mask` — sliding window plus a few
  always-attended global token blocks (the Longformer hybrid).

The named zoo (:data:`MASK_ZOO` / :func:`build_mask`) exposes every
pattern behind one ``(length, vector_length, sparsity, seed)``
signature so mask variants can ride in configs, plan keys and
autotune sweep axes by name.

All builders validate their inputs and raise the typed
:class:`~repro.errors.MaskError` (a :class:`~repro.errors.ConfigError`
subclass) on a sequence length not divisible by V, a sparsity outside
``[0, 1)``, or non-positive window/stride parameters.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import MaskError
from repro.formats.bcrs import BCRSMatrix
from repro.gpu.warp import ceil_div


def _validate_grid(length: int, v: int) -> None:
    """The (length, V) pair every mask builder must honour."""
    if v <= 0:
        raise MaskError(f"vector length must be positive, got {v}")
    if length <= 0:
        raise MaskError(f"sequence length must be positive, got {length}")
    if length % v != 0:
        raise MaskError(f"sequence length {length} not divisible by V={v}")


def _validate_sparsity(sparsity: float) -> None:
    if not 0.0 <= sparsity < 1.0:
        raise MaskError(f"sparsity must be in [0, 1), got {sparsity}")


def _to_bcrs(keep: np.ndarray, v: int, length: int) -> BCRSMatrix:
    """(strips, L) boolean keep map -> BCRS mask of ones."""
    strips = keep.shape[0]
    counts = keep.sum(axis=1).astype(np.int64)
    row_ptrs = np.zeros(strips + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptrs[1:])
    strip_ids, cols = np.nonzero(keep)
    values = np.ones((cols.size, v), dtype=np.int32)
    return BCRSMatrix(
        shape=(length, length),
        vector_length=v,
        row_ptrs=row_ptrs,
        col_indices=cols.astype(np.int32),
        values=values,
    )


def strided_vector_mask(
    length: int,
    vector_length: int = 8,
    local_window: int = 64,
    stride: int = 64,
    causal: bool = False,
) -> BCRSMatrix:
    """Sparse-Transformer mask rounded to V x 1 vectors.

    Each V-row strip of queries attends to (a) the columns within
    ``local_window`` of the strip and (b) every ``stride``-th column
    (the 'global' heads of Child et al.). ``causal`` removes columns
    after the strip (decoder-style).
    """
    v = vector_length
    _validate_grid(length, v)
    if local_window <= 0 or stride <= 0:
        raise MaskError(
            f"local_window and stride must be positive, got "
            f"local_window={local_window}, stride={stride}"
        )
    strips = length // v
    keep = np.zeros((strips, length), dtype=bool)
    cols = np.arange(length)
    for s in range(strips):
        center = s * v + v // 2
        keep[s, np.abs(cols - center) <= local_window // 2] = True
        keep[s, cols % stride == 0] = True
        if causal:
            keep[s, cols > s * v + v - 1] = False
    # guarantee the diagonal (self-attention) stays
    for s in range(strips):
        keep[s, s * v : s * v + v] = True
    return _to_bcrs(keep, v, length)


def random_vector_mask(
    length: int,
    sparsity: float,
    vector_length: int = 8,
    seed: int = 0,
) -> BCRSMatrix:
    """Random V x 1 mask at a target sparsity (diagonal always kept)."""
    v = vector_length
    _validate_grid(length, v)
    _validate_sparsity(sparsity)
    strips = length // v
    rng = np.random.default_rng(seed)
    per_strip = max(1, round((1.0 - sparsity) * length))
    keep = np.zeros((strips, length), dtype=bool)
    for s in range(strips):
        cols = rng.choice(length, size=per_strip, replace=False)
        keep[s, cols] = True
        keep[s, s * v : s * v + v] = True  # self-attention
    return _to_bcrs(keep, v, length)


def banded_vector_mask(
    length: int,
    sparsity: float,
    vector_length: int = 8,
    offsets: tuple[int, ...] = (0,),
    seed: int = 0,
) -> BCRSMatrix:
    """Offset-block mask at a target sparsity.

    Sparse-Transformer masks are chosen to *cover the task's dependency
    structure* (Child et al.'s strided/local patterns). Because of the
    V x 1 vector constraint, a strip's rows share columns, so covering a
    diagonal at a given offset means keeping the whole V-aligned partner
    block. This builder spends the per-strip nonzero budget greedily:
    the partner blocks of ``offsets`` first (possibly *partially* when
    the budget runs out — the structural reason higher sparsity costs
    accuracy), then random columns up to the target sparsity.
    """
    v = vector_length
    _validate_grid(length, v)
    _validate_sparsity(sparsity)
    strips = length // v
    rng = np.random.default_rng(seed)
    budget = max(1, round((1.0 - sparsity) * length))
    keep = np.zeros((strips, length), dtype=bool)
    for s in range(strips):
        remaining = budget
        for off in offsets:
            if remaining <= 0:
                break
            block0 = (s * v + off) % length
            take = min(v, remaining)
            keep[s, block0 : block0 + take] = True
            remaining -= take
        if remaining > 0:
            pool = np.nonzero(~keep[s])[0]
            pick = rng.choice(pool, size=min(remaining, pool.size), replace=False)
            keep[s, pick] = True
    return _to_bcrs(keep, v, length)


def local_vector_mask(
    length: int,
    vector_length: int = 8,
    window: int = 64,
    causal: bool = False,
) -> BCRSMatrix:
    """Pure sliding-window attention, rounded to V x 1 vectors.

    The Longformer / xformers ``local`` component: each V-row strip of
    queries attends only to the ``window`` columns centred on it (plus
    its own diagonal block). ``causal`` removes columns after the strip.
    """
    v = vector_length
    _validate_grid(length, v)
    if window <= 0:
        raise MaskError(f"window must be positive, got {window}")
    strips = length // v
    keep = np.zeros((strips, length), dtype=bool)
    cols = np.arange(length)
    for s in range(strips):
        center = s * v + v // 2
        keep[s, np.abs(cols - center) <= window // 2] = True
        if causal:
            keep[s, cols > s * v + v - 1] = False
        keep[s, s * v : s * v + v] = True  # self-attention
    return _to_bcrs(keep, v, length)


def global_local_vector_mask(
    length: int,
    vector_length: int = 8,
    window: int = 64,
    num_global: int = 2,
    causal: bool = False,
) -> BCRSMatrix:
    """Sliding window plus always-attended global token blocks.

    The Longformer hybrid: every strip keeps its local ``window`` and
    additionally attends to ``num_global`` evenly-spaced V-aligned
    column blocks (the "global tokens" every position can read).
    """
    v = vector_length
    _validate_grid(length, v)
    if window <= 0:
        raise MaskError(f"window must be positive, got {window}")
    if num_global < 0:
        raise MaskError(f"num_global must be non-negative, got {num_global}")
    strips = length // v
    keep = np.zeros((strips, length), dtype=bool)
    cols = np.arange(length)
    global_starts = [
        (i * strips // max(1, num_global)) * v for i in range(num_global)
    ]
    for s in range(strips):
        center = s * v + v // 2
        keep[s, np.abs(cols - center) <= window // 2] = True
        for g0 in global_starts:
            keep[s, g0 : g0 + v] = True
        if causal:
            keep[s, cols > s * v + v - 1] = False
        keep[s, s * v : s * v + v] = True  # self-attention
    return _to_bcrs(keep, v, length)


def _column_budget(length: int, sparsity: float) -> int:
    """Kept columns per strip implied by a density target."""
    return max(1, round((1.0 - sparsity) * length))


def _zoo_local(length: int, v: int, sparsity: float, seed: int) -> BCRSMatrix:
    return local_vector_mask(length, v, window=_column_budget(length, sparsity))


def _zoo_strided(length: int, v: int, sparsity: float, seed: int) -> BCRSMatrix:
    budget = _column_budget(length, sparsity)
    window = max(v, budget // 2)
    stride = max(v, length // max(1, budget - window))
    return strided_vector_mask(length, v, local_window=window, stride=stride)


def _zoo_blocked_random(
    length: int, v: int, sparsity: float, seed: int
) -> BCRSMatrix:
    return random_vector_mask(length, sparsity, v, seed=seed)


def _zoo_global_local(
    length: int, v: int, sparsity: float, seed: int
) -> BCRSMatrix:
    budget = _column_budget(length, sparsity)
    window = max(v, budget // 2)
    num_global = max(1, (budget - window) // v)
    return global_local_vector_mask(
        length, v, window=window, num_global=num_global
    )


def _zoo_banded(length: int, v: int, sparsity: float, seed: int) -> BCRSMatrix:
    return banded_vector_mask(
        length, sparsity, v, offsets=(0, v, length - v), seed=seed
    )


#: the named variant zoo: every builder behind one
#: ``(length, vector_length, sparsity, seed)`` signature, so a variant
#: name can ride in a ``TransformerConfig``, a plan key or a sweep axis
MASK_ZOO: dict[str, Callable[[int, int, float, int], BCRSMatrix]] = {
    "local": _zoo_local,
    "strided": _zoo_strided,
    "blocked-random": _zoo_blocked_random,
    "global-local": _zoo_global_local,
    "banded": _zoo_banded,
}


def mask_variants() -> tuple[str, ...]:
    """The zoo's variant names, stable-sorted."""
    return tuple(sorted(MASK_ZOO))


def build_mask(
    name: str,
    length: int,
    *,
    vector_length: int = 8,
    sparsity: float = 0.9,
    seed: int = 0,
) -> BCRSMatrix:
    """Build a zoo mask by variant name.

    ``sparsity`` is the density *target*; the realized sparsity of the
    returned mask depends on the variant's structure (window rounding,
    forced diagonal, global blocks) — read it back from
    ``mask.sparsity`` when pricing plans.
    """
    try:
        builder = MASK_ZOO[name]
    except KeyError:
        raise MaskError(
            f"unknown mask variant {name!r}; zoo has {mask_variants()}"
        ) from None
    _validate_grid(length, vector_length)
    _validate_sparsity(sparsity)
    return builder(length, vector_length, sparsity, seed)


def mask_to_additive(mask: BCRSMatrix) -> np.ndarray:
    """Dense additive form: 0 where attended, -inf elsewhere.

    Used by the dense training path (masked softmax); the kernels use
    the BCRS topology directly.
    """
    dense = mask.to_dense() != 0
    out = np.where(dense, 0.0, -np.inf).astype(np.float32)
    return out


def mask_statistics(mask: BCRSMatrix) -> dict:
    """Sparsity and load-balance summary of an attention mask."""
    counts = mask.vectors_per_strip()
    return {
        "sparsity": mask.sparsity,
        "vectors": int(mask.num_vectors),
        "min_per_strip": int(counts.min()) if counts.size else 0,
        "max_per_strip": int(counts.max()) if counts.size else 0,
        "mean_per_strip": float(counts.mean()) if counts.size else 0.0,
    }
