"""``repro serve`` — serving demo and planner inspection.

Usage::

    repro serve --demo                  # mixed-workload demo
    repro serve --demo --requests 200   # heavier run
    repro serve --demo --json           # machine-readable
    repro serve --plan spmm:512x512x256:v=8:s=0.9
    repro serve --demo --cache plans.json   # persist PlanCache

(``python -m repro.serve`` accepts the same flags.) The demo opens a
:func:`repro.open_engine` client with two prepared SpMM request
classes (a pruned Transformer FFN and a pruned ResNet layer) and one
sparse-attention class, then fires a shuffled stream of typed mixed
requests through the micro-batcher. It verifies one served SpMM
against the direct :func:`repro.api.run` path bit-for-bit and prints
per-session latency percentiles, throughput and the plan-cache hit
rate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

import numpy as np


def demo(
    num_requests: int = 128,
    seed: int = 0,
    device: str = "A100",
    cache_path: str | None = None,
    quiet: bool = False,
    backend: str | None = None,
) -> dict:
    """Run the mixed serving demo; returns the engine summary dict."""
    from repro import api
    from repro.core.matrix import SparseMatrix
    from repro.dlmc.generator import MatrixSpec, generate_matrix
    from repro.serve.batcher import BatchPolicy
    from repro.serve.cache import PlanCache
    from repro.serve.planner import Objective

    def say(msg: str) -> None:
        if not quiet:
            print(msg)

    rng = np.random.default_rng(seed)
    cache = PlanCache(cache_path) if cache_path else None
    client = api.open_engine(
        device=device,
        cache=cache,
        policy=BatchPolicy(max_batch_size=8, max_wait_s=0.005),
        backend=backend,
    )
    say(f"engine: device={client.device} backend={client.backend}")
    with client:
        # -- prepared request classes ----------------------------------
        # operands are converted once (the client memoizes the session
        # per `session=` name); the typed requests below just reuse them
        ffn_spec = MatrixSpec("transformer", 512, 512, sparsity=0.9, seed=seed + 1)
        ffn_matrix = SparseMatrix.from_dense(
            generate_matrix(ffn_spec, vector_length=8, bits=8), vector_length=8
        )
        conv_spec = MatrixSpec("rn50", 256, 1024, sparsity=0.95, seed=seed + 2)
        conv_matrix = SparseMatrix.from_dense(
            generate_matrix(conv_spec, vector_length=8, bits=4), vector_length=8
        )
        attn_req = api.AttentionRequest(
            seq_len=1024, num_heads=4, sparsity=0.9, scheme=(8, 8),
            session="attention-8b8b",
        )

        def ffn_req(rhs):
            return api.SpmmRequest(
                lhs=ffn_matrix, rhs=rhs, session="ffn-int8",
                objective=Objective.latency(),
            )

        def conv_req(rhs):
            return api.SpmmRequest(
                lhs=conv_matrix, rhs=rhs, session="conv-int4",
                objective=Objective.latency(),
            )

        attn = client.prepare(attn_req)
        say(f"sessions: ffn-int8 {ffn_matrix!r}")
        say(f"          conv-int4 {conv_matrix!r}")
        say(f"          {attn.name} seq={attn.seq_len} heads={attn.num_heads}")

        # -- a shuffled stream of mixed requests over a few shapes -----
        # payloads are generated up front so the submit loop is tight
        # and the micro-batcher sees a realistic burst to coalesce
        ffn_widths = (64, 128, 256)
        conv_widths = (64, 128)
        kinds = rng.choice(3, size=num_requests, p=(0.45, 0.35, 0.2))
        stream = []
        for kind in kinds:
            if kind == 0:
                n = int(rng.choice(ffn_widths))
                stream.append(ffn_req(rng.integers(-128, 128, size=(512, n))))
            elif kind == 1:
                n = int(rng.choice(conv_widths))
                stream.append(conv_req(rng.integers(-8, 8, size=(1024, n))))
            else:
                stream.append(
                    api.AttentionRequest(
                        seq_len=1024, num_heads=4, sparsity=0.9, scheme=(8, 8),
                        session="attention-8b8b", batch=int(rng.integers(1, 4)),
                    )
                )
        futures = [(req, client.submit(req)) for req in stream]
        client.flush()
        results = [f.result() for _, f in futures]
        say(f"served {len(results)} requests "
            f"({int((kinds != 2).sum())} spmm, {int((kinds == 2).sum())} attention)")

        # -- bit-identical check vs the direct one-shot path -----------
        first_ffn = next(
            (
                (r, req.rhs)
                for (req, _), r in zip(futures, results)
                if isinstance(req, api.SpmmRequest) and req.session == "ffn-int8"
            ),
            None,
        )
        if first_ffn is None:
            say("no ffn requests in this stream; bit-identical check skipped")
        else:
            served, rhs = first_ffn
            direct = api.run(
                api.SpmmRequest(
                    lhs=ffn_matrix, rhs=rhs, precision=served.plan.precision
                ),
                device=device,
            )
            if not np.array_equal(served.output, direct.output):
                raise AssertionError(
                    "served SpMM output differs from the direct path"
                )
            say(f"bit-identical: served {served.plan.precision} output == direct "
                f"repro.api.run "
                f"({served.output.shape[0]}x{served.output.shape[1]})")

        # -- whole-model lra-classify through the same engine ----------
        # one TransformerRequest: every attention layer runs as planned
        # SDDMM -> quantized-softmax -> SpMM launches; the logits must
        # match the direct (unserved) model forward exactly
        ids = rng.integers(0, 16, size=(2, 64))
        xf_req = api.TransformerRequest(
            ids=ids, seq_len=64, d_model=32, num_heads=2, num_layers=1,
            mask_variant="local", session="lra-classify",
        )
        xf = client.run(xf_req)
        from repro.transformer.serving import TransformerSpec, prepare_transformer

        prepared = prepare_transformer(TransformerSpec(
            seq_len=64, d_model=32, num_heads=2, num_layers=1,
            mask_variant="local",
        ))
        direct_logits, _ = prepared.forward(
            ids, scheme=(16, 8), backend=xf.backend, planner=client.planner
        )
        if not np.array_equal(xf.output, direct_logits):
            raise AssertionError(
                "served lra-classify logits differ from the direct model"
            )
        say(f"transformer: lra-classify logits {xf.output.shape} == direct "
            f"model forward (mask=local, backend={xf.backend})")

        say("")
        say(client.report())
        plans = client.planner.cache
        if not quiet:
            from repro.bench.report import render_table

            rows = []
            for p in (plans.peek(k) for k in plans.keys()):
                # key: op|MxK|n=N|v=V|s=S|device|objective
                parts = p.key.split("|")
                rows.append([
                    p.op, parts[1], parts[2], parts[4], p.precision,
                    ", ".join(f"{k}={v}" for k, v in sorted(p.config.items())),
                    f"{p.predicted_time_s * 1e6:.2f}",
                ])
            print(render_table(
                ["op", "shape", "n", "sparsity", "precision", "knobs",
                 "predicted us"],
                rows, title="-- plan cache --",
            ))
        if cache_path:
            plans.save()
            say(f"plan cache persisted to {cache_path}")
        summary = client.summary()
    hit_rate = summary["plan_cache"]["hit_rate"]
    # the acceptance gate only makes sense once the stream is long
    # enough to amortize the first-time planning misses
    if num_requests >= 32 and hit_rate <= 0.5:
        raise AssertionError(f"plan-cache hit rate {hit_rate:.1%} <= 50%")
    return summary


_PLAN_SPEC = re.compile(
    r"^(spmm|sddmm):(\d+)x(\d+)x(\d+):v=(\d+):s=([0-9.]+)$"
)


def _run_plan(spec: str, device: str, objective: str) -> int:
    from repro.serve.planner import ExecutionPlanner, Objective

    m = _PLAN_SPEC.match(spec)
    if not m:
        print(
            f"bad plan spec {spec!r}; expected op:MxKxN:v=V:s=S "
            "(e.g. spmm:512x512x256:v=8:s=0.9)",
            file=sys.stderr,
        )
        return 2
    op, rows, cols, inner, v, s = (
        m.group(1), int(m.group(2)), int(m.group(3)), int(m.group(4)),
        int(m.group(5)), float(m.group(6)),
    )
    obj = Objective.latency() if objective == "latency" else Objective.accuracy()
    planner = ExecutionPlanner(device=device)
    plan_fn = planner.plan_spmm if op == "spmm" else planner.plan_sddmm
    plan = plan_fn(rows, cols, inner, v, s, obj)
    print(f"key:       {plan.key}")
    print(f"precision: {plan.precision}")
    print(f"knobs:     {plan.config}")
    print(f"predicted: {plan.predicted_time_s * 1e6:.2f} us")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro serve", description=__doc__)
    parser.add_argument("--demo", action="store_true", help="run the serving demo")
    parser.add_argument("--requests", type=int, default=128,
                        help="demo request count (default 128)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--device", default="A100")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="pin a registered runtime backend "
                             "(e.g. magicube-strict); default resolves "
                             "the registry's fallback chain")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="persist the PlanCache to this JSON file")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable summary")
    parser.add_argument("--plan", default=None, metavar="SPEC",
                        help="plan one request class (op:MxKxN:v=V:s=S) and exit")
    parser.add_argument("--objective", choices=("latency", "accuracy"),
                        default="latency", help="objective for --plan")
    args = parser.parse_args(argv)

    if args.plan:
        return _run_plan(args.plan, args.device, args.objective)
    if not args.demo:
        parser.print_help()
        return 2
    summary = demo(
        num_requests=args.requests,
        seed=args.seed,
        device=args.device,
        cache_path=args.cache,
        quiet=args.json,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
