"""``python -m repro.serve`` — serving demo and planner inspection.

Usage::

    python -m repro.serve --demo                  # mixed-workload demo
    python -m repro.serve --demo --requests 200   # heavier run
    python -m repro.serve --demo --json           # machine-readable
    python -m repro.serve --plan spmm:512x512x256:v=8:s=0.9
    python -m repro.serve --demo --cache plans.json   # persist PlanCache

The demo stands up an :class:`~repro.serve.engine.Engine` with two
prepared SpMM sessions (a pruned Transformer FFN and a pruned ResNet
layer) and one sparse-attention session, then fires a shuffled stream of
mixed requests through the micro-batcher. It verifies one served SpMM
against the direct :func:`repro.core.api.spmm` path bit-for-bit and
prints per-session latency percentiles, throughput and the plan-cache
hit rate.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

import numpy as np


def demo(
    num_requests: int = 128,
    seed: int = 0,
    device: str = "A100",
    cache_path: str | None = None,
    quiet: bool = False,
    backend: str | None = None,
) -> dict:
    """Run the mixed serving demo; returns the engine summary dict."""
    from repro.core.api import spmm as direct_spmm
    from repro.dlmc.generator import MatrixSpec, generate_matrix
    from repro.serve.batcher import BatchPolicy
    from repro.serve.cache import PlanCache
    from repro.serve.engine import Engine
    from repro.serve.planner import Objective

    def say(msg: str) -> None:
        if not quiet:
            print(msg)

    rng = np.random.default_rng(seed)
    cache = PlanCache(cache_path) if cache_path else None
    engine = Engine(
        device=device,
        cache=cache,
        policy=BatchPolicy(max_batch_size=8, max_wait_s=0.005),
        backend=backend,
    )
    say(f"engine: device={engine.device} backend={engine.backend}")
    with engine:
        # -- prepared sessions -----------------------------------------
        ffn_spec = MatrixSpec("transformer", 512, 512, sparsity=0.9, seed=seed + 1)
        ffn_weights = generate_matrix(ffn_spec, vector_length=8, bits=8)
        ffn = engine.spmm_session(
            "ffn-int8", ffn_weights, vector_length=8, objective=Objective.latency()
        )
        conv_spec = MatrixSpec("rn50", 256, 1024, sparsity=0.95, seed=seed + 2)
        conv_weights = generate_matrix(conv_spec, vector_length=8, bits=4)
        conv = engine.spmm_session(
            "conv-int4", conv_weights, vector_length=8, objective=Objective.latency()
        )
        attn = engine.attention_session(
            "attention-8b8b", seq_len=1024, num_heads=4, sparsity=0.9, scheme=(8, 8)
        )
        say(f"sessions: {ffn.name} {ffn.matrix!r}")
        say(f"          {conv.name} {conv.matrix!r}")
        say(f"          {attn.name} seq={attn.seq_len} heads={attn.num_heads}")

        # -- a shuffled stream of mixed requests over a few shapes -----
        # payloads are generated up front so the submit loop is tight
        # and the micro-batcher sees a realistic burst to coalesce
        ffn_widths = (64, 128, 256)
        conv_widths = (64, 128)
        kinds = rng.choice(3, size=num_requests, p=(0.45, 0.35, 0.2))
        stream = []
        for kind in kinds:
            if kind == 0:
                n = int(rng.choice(ffn_widths))
                stream.append((ffn, rng.integers(-128, 128, size=(512, n))))
            elif kind == 1:
                n = int(rng.choice(conv_widths))
                stream.append((conv, rng.integers(-8, 8, size=(1024, n))))
            else:
                stream.append((attn, int(rng.integers(1, 4))))
        futures = [
            (s, s.submit(payload), payload if s is not attn else None)
            for s, payload in stream
        ]
        engine.flush()
        results = [f.result() for _, f, _ in futures]
        say(f"served {len(results)} requests "
            f"({int((kinds != 2).sum())} spmm, {int((kinds == 2).sum())} attention)")

        # -- bit-identical check vs the direct kernel path -------------
        first_ffn = next(
            ((r, rhs) for (s, _, rhs), r in zip(futures, results) if s is ffn),
            None,
        )
        if first_ffn is None:
            say("no ffn requests in this stream; bit-identical check skipped")
        else:
            served, rhs = first_ffn
            direct = direct_spmm(
                ffn.matrix, rhs, precision=served.plan.precision, device=device
            )
            if not np.array_equal(served.output, direct.output):
                raise AssertionError(
                    "served SpMM output differs from the direct path"
                )
            say(f"bit-identical: served {served.plan.precision} output == direct "
                f"repro.core.api.spmm "
                f"({served.output.shape[0]}x{served.output.shape[1]})")

        say("")
        say(engine.report())
        plans = engine.planner.cache
        if not quiet:
            from repro.bench.report import render_table

            rows = []
            for p in (plans.peek(k) for k in plans.keys()):
                # key: op|MxK|n=N|v=V|s=S|device|objective
                parts = p.key.split("|")
                rows.append([
                    p.op, parts[1], parts[2], parts[4], p.precision,
                    ", ".join(f"{k}={v}" for k, v in sorted(p.config.items())),
                    f"{p.predicted_time_s * 1e6:.2f}",
                ])
            print(render_table(
                ["op", "shape", "n", "sparsity", "precision", "knobs",
                 "predicted us"],
                rows, title="-- plan cache --",
            ))
        if cache_path:
            plans.save()
            say(f"plan cache persisted to {cache_path}")
        summary = engine.summary()
    hit_rate = summary["plan_cache"]["hit_rate"]
    # the acceptance gate only makes sense once the stream is long
    # enough to amortize the first-time planning misses
    if num_requests >= 32 and hit_rate <= 0.5:
        raise AssertionError(f"plan-cache hit rate {hit_rate:.1%} <= 50%")
    return summary


_PLAN_SPEC = re.compile(
    r"^(spmm|sddmm):(\d+)x(\d+)x(\d+):v=(\d+):s=([0-9.]+)$"
)


def _run_plan(spec: str, device: str, objective: str) -> int:
    from repro.serve.planner import ExecutionPlanner, Objective

    m = _PLAN_SPEC.match(spec)
    if not m:
        print(
            f"bad plan spec {spec!r}; expected op:MxKxN:v=V:s=S "
            "(e.g. spmm:512x512x256:v=8:s=0.9)",
            file=sys.stderr,
        )
        return 2
    op, rows, cols, inner, v, s = (
        m.group(1), int(m.group(2)), int(m.group(3)), int(m.group(4)),
        int(m.group(5)), float(m.group(6)),
    )
    obj = Objective.latency() if objective == "latency" else Objective.accuracy()
    planner = ExecutionPlanner(device=device)
    plan_fn = planner.plan_spmm if op == "spmm" else planner.plan_sddmm
    plan = plan_fn(rows, cols, inner, v, s, obj)
    print(f"key:       {plan.key}")
    print(f"precision: {plan.precision}")
    print(f"knobs:     {plan.config}")
    print(f"predicted: {plan.predicted_time_s * 1e6:.2f} us")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.serve", description=__doc__)
    parser.add_argument("--demo", action="store_true", help="run the serving demo")
    parser.add_argument("--requests", type=int, default=128,
                        help="demo request count (default 128)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--device", default="A100")
    parser.add_argument("--backend", default=None, metavar="NAME",
                        help="pin a registered runtime backend "
                             "(e.g. magicube-strict); default resolves "
                             "the registry's fallback chain")
    parser.add_argument("--cache", default=None, metavar="PATH",
                        help="persist the PlanCache to this JSON file")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable summary")
    parser.add_argument("--plan", default=None, metavar="SPEC",
                        help="plan one request class (op:MxKxN:v=V:s=S) and exit")
    parser.add_argument("--objective", choices=("latency", "accuracy"),
                        default="latency", help="objective for --plan")
    args = parser.parse_args(argv)

    if args.plan:
        return _run_plan(args.plan, args.device, args.objective)
    if not args.demo:
        parser.print_help()
        return 2
    summary = demo(
        num_requests=args.requests,
        seed=args.seed,
        device=args.device,
        cache_path=args.cache,
        quiet=args.json,
        backend=args.backend,
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
