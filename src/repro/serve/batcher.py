"""Dynamic micro-batching scheduler.

Requests enter per-group queues (the group key encodes everything that
must match for requests to share a kernel launch — session, shape,
precision), gated by the policy's optional admission control
(queue-depth and latency-budget checks that raise
:class:`~repro.errors.AdmissionError` instead of letting a backlog grow
without bound). A scheduler thread flushes a group as soon as it reaches
``max_batch_size`` or its oldest request has waited ``max_wait_s``, and
hands the batch to a :class:`~concurrent.futures.ThreadPoolExecutor`
worker that runs the caller-supplied ``execute`` function once for the
whole batch. Each request's :class:`~concurrent.futures.Future` resolves
to its slice of the batch result.

Two client APIs sit on top of :meth:`MicroBatcher.submit`:

- the raw :class:`~concurrent.futures.Future` it returns, and
- :meth:`MicroBatcher.submit_async`, which wraps the future in a
  ticketed :class:`RequestHandle` — pollable (``done()``), blocking
  (``result(timeout)`` / :meth:`MicroBatcher.result`), and *awaitable*
  from asyncio code (``await handle``).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from repro.errors import AdmissionError, EngineClosedError
from repro.obs.profile import NULL_PROFILER


@dataclass(frozen=True)
class BatchPolicy:
    """When a group of queued requests is flushed to a worker.

    The two admission knobs gate :meth:`MicroBatcher.submit` *before* a
    request enters its queue: ``max_queue_depth`` bounds a group's
    pending backlog outright, and ``admission_budget_s`` rejects a
    request whose estimated queue delay —
    ``max_wait_s * (1 + depth // max_batch_size)``, one wait window per
    full batch already ahead of it — would exceed the budget. Both
    raise the typed :class:`~repro.errors.AdmissionError` and bump the
    batcher's rejection counters; ``None`` (the default) admits
    everything, preserving the PR 1 behaviour.
    """

    max_batch_size: int = 8
    max_wait_s: float = 0.002
    max_queue_depth: int | None = None
    admission_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")
        if self.max_wait_s < 0:
            raise ValueError("max_wait_s must be >= 0")
        if self.max_queue_depth is not None and self.max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if self.admission_budget_s is not None and self.admission_budget_s < 0:
            raise ValueError("admission_budget_s must be >= 0 (or None)")

    def estimated_queue_delay_s(self, depth: int) -> float:
        """Conservative queue-delay model for a request entering at
        ``depth``: every full batch ahead of it costs one wait window."""
        return self.max_wait_s * (1 + depth // self.max_batch_size)


@dataclass
class _Pending:
    payload: object
    future: Future
    enqueued_at: float


@dataclass
class BatchItem:
    """One request as the execute function sees it."""

    payload: object
    queue_wait_s: float


@dataclass
class _Group:
    pending: list[_Pending] = field(default_factory=list)

    @property
    def deadline(self) -> float:
        return self.pending[0].enqueued_at if self.pending else float("inf")


class RequestHandle:
    """Ticket for one in-flight request.

    Wraps the request's :class:`~concurrent.futures.Future` behind a
    stable integer ``id`` (the cross-process-style ticket the engine's
    ``submit()``/``result()`` client API hands out) and is directly
    awaitable from asyncio code::

        handle = session.submit_async(rhs)
        result = await handle          # or handle.result(timeout=...)
    """

    __slots__ = ("id", "_future")

    def __init__(self, request_id: int, future: Future) -> None:
        self.id = request_id
        self._future = future

    def done(self) -> bool:
        return self._future.done()

    def cancelled(self) -> bool:
        return self._future.cancelled()

    def result(self, timeout: float | None = None):
        return self._future.result(timeout)

    def exception(self, timeout: float | None = None):
        return self._future.exception(timeout)

    def __await__(self):
        import asyncio

        return asyncio.wrap_future(self._future).__await__()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "done" if self.done() else "pending"
        return f"RequestHandle(id={self.id}, {state})"


class MicroBatcher:
    """Coalesces same-group requests into single batched executions.

    ``execute(key, items)`` receives the group key and the batch's
    :class:`BatchItem` list and must return one result per item, in
    order. It runs on a pool worker; multiple groups execute
    concurrently.
    """

    def __init__(
        self,
        execute: Callable[[Hashable, Sequence[BatchItem]], Sequence[object]],
        policy: BatchPolicy | None = None,
        max_workers: int = 4,
        profiler=None,
    ) -> None:
        self._execute = execute
        self.policy = policy if policy is not None else BatchPolicy()
        # the engine threads its (possibly null) sampling profiler in;
        # a bare batcher runs unprofiled
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._groups: dict[Hashable, _Group] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-serve"
        )
        self._closed = False
        #: requests refused by admission control, total and per group key
        self.rejected = 0
        self._rejected_by_key: dict[Hashable, int] = {}
        self._ticket_counter = itertools.count(1)
        self._thread = threading.Thread(
            target=self._scheduler_loop, name="repro-serve-scheduler", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    def submit(self, key: Hashable, payload: object) -> Future:
        """Queue one request; the future resolves to its own result.

        Raises :class:`~repro.errors.AdmissionError` when the policy's
        admission gates refuse the request (see :class:`BatchPolicy`)
        and :class:`~repro.errors.EngineClosedError` (a
        ``RuntimeError`` subclass) once :meth:`close` has run.
        """
        future: Future = Future()
        with self._wakeup:
            if self._closed:
                raise EngineClosedError("MicroBatcher is closed")
            self._admit(key)
            self._groups.setdefault(key, _Group()).pending.append(
                _Pending(payload, future, time.monotonic())
            )
            self._wakeup.notify()
        return future

    def _admit(self, key: Hashable) -> None:
        """Apply the policy's admission gates (call with lock held)."""
        policy = self.policy
        if policy.max_queue_depth is None and policy.admission_budget_s is None:
            return
        group = self._groups.get(key)
        depth = len(group.pending) if group is not None else 0
        if policy.max_queue_depth is not None and depth >= policy.max_queue_depth:
            self._reject(key)
            raise AdmissionError(
                f"group {key!r} queue depth {depth} is at max_queue_depth="
                f"{policy.max_queue_depth}"
            )
        if policy.admission_budget_s is not None:
            estimate = policy.estimated_queue_delay_s(depth)
            if estimate > policy.admission_budget_s:
                self._reject(key)
                raise AdmissionError(
                    f"group {key!r} estimated queue delay {estimate:.6f}s "
                    f"exceeds admission_budget_s={policy.admission_budget_s}"
                )

    def _reject(self, key: Hashable) -> None:
        self.rejected += 1
        self._rejected_by_key[key] = self._rejected_by_key.get(key, 0) + 1

    def rejections(self, key: Hashable | None = None) -> int:
        """Requests refused by admission control (one group, or all)."""
        with self._lock:
            if key is None:
                return self.rejected
            return self._rejected_by_key.get(key, 0)

    def queue_depth(self, key: Hashable | None = None) -> int:
        """Requests currently queued (one group, or all groups)."""
        with self._lock:
            if key is None:
                return sum(len(g.pending) for g in self._groups.values())
            group = self._groups.get(key)
            return len(group.pending) if group is not None else 0

    def submit_async(self, key: Hashable, payload: object) -> RequestHandle:
        """Queue one request and return its awaitable ticket."""
        return self.wrap(self.submit(key, payload))

    def wrap(self, future: Future) -> RequestHandle:
        """Issue a ticketed :class:`RequestHandle` for ``future``."""
        return RequestHandle(next(self._ticket_counter), future)

    @staticmethod
    def result(handle: RequestHandle, timeout: float | None = None):
        """Block until the ticketed request resolves; return its result."""
        return handle.result(timeout)

    def flush(self) -> None:
        """Dispatch every queued request immediately (no wait policy)."""
        with self._wakeup:
            batches = self._take_batches(force=True)
        self._dispatch(batches)

    def close(self) -> None:
        """Flush remaining work and stop the scheduler and pool."""
        with self._wakeup:
            if self._closed:
                return
            self._closed = True
            batches = self._take_batches(force=True)
            self._wakeup.notify()
        self._dispatch(batches)
        self._thread.join(timeout=5.0)
        self._pool.shutdown(wait=True)

    def __enter__(self) -> "MicroBatcher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _take_batches(self, force: bool = False) -> list[tuple[Hashable, list[_Pending]]]:
        """Pop every group that is ready to run (call with lock held)."""
        now = time.monotonic()
        size = self.policy.max_batch_size
        ready = []
        for key, group in list(self._groups.items()):
            while group.pending:
                full = len(group.pending) >= size
                expired = now - group.deadline >= self.policy.max_wait_s
                if not (force or full or expired):
                    break
                ready.append((key, group.pending[:size]))
                group.pending = group.pending[size:]
            if not group.pending:
                del self._groups[key]
        return ready

    def _next_deadline(self) -> float | None:
        """Earliest flush deadline across groups (call with lock held)."""
        deadlines = [
            g.deadline + self.policy.max_wait_s
            for g in self._groups.values()
            if g.pending
        ]
        return min(deadlines) if deadlines else None

    def _scheduler_loop(self) -> None:
        while True:
            with self._wakeup:
                if self._closed:
                    return
                deadline = self._next_deadline()
                timeout = (
                    None if deadline is None else max(deadline - time.monotonic(), 0.0)
                )
                if timeout is None or timeout > 0:
                    self._wakeup.wait(timeout=timeout)
                if self._closed:
                    return
                batches = self._take_batches()
            self._dispatch(batches)

    def _dispatch(self, batches: list[tuple[Hashable, list[_Pending]]]) -> None:
        for key, pending in batches:
            self._pool.submit(self._run_batch, key, pending)

    def _run_batch(self, key: Hashable, pending: list[_Pending]) -> None:
        started = time.monotonic()
        items = [
            BatchItem(payload=p.payload, queue_wait_s=started - p.enqueued_at)
            for p in pending
        ]
        try:
            with self.profiler.sample("batcher-dispatch"):
                results = self._execute(key, items)
            if len(results) != len(pending):
                raise RuntimeError(
                    f"execute returned {len(results)} results for "
                    f"{len(pending)} requests"
                )
        except BaseException as exc:  # propagate to every waiter
            for p in pending:
                if not p.future.cancelled():
                    p.future.set_exception(exc)
            return
        for p, result in zip(pending, results):
            if not p.future.cancelled():
                p.future.set_result(result)
