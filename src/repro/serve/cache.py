"""Keyed, JSON-persistable cache of execution plans.

The cache is the serving layer's memory: the first request of a class
pays the planner search, every later one reuses the stored decision.
Hit/miss counters feed the telemetry (the demo asserts a > 50% hit
rate), and :meth:`save` / :meth:`load` round-trip the whole cache
through JSON so tuned plans survive process restarts.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner uses us)
    from repro.serve.planner import Plan

_FORMAT_VERSION = 1


class PlanCache:
    """Thread-safe mapping of plan-key strings to :class:`Plan` objects."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._plans: dict[str, "Plan"] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: str) -> bool:
        return key in self._plans

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._plans)

    def peek(self, key: str) -> "Plan | None":
        """Look up a plan without touching the hit/miss counters."""
        with self._lock:
            return self._plans.get(key)

    def get(self, key: str) -> "Plan | None":
        """Look up a plan, counting the hit or miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
            return plan

    def put(self, key: str, plan: "Plan") -> None:
        with self._lock:
            self._plans[key] = plan

    def get_or_build(self, key: str, builder: Callable[[], "Plan"]) -> "Plan":
        """Return the cached plan or build, store and return a new one.

        The builder runs outside the lock (a planner search can take a
        while); concurrent misses of the same key may build twice, last
        write wins — plans for one key are interchangeable.
        """
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "plans": {k: p.to_dict() for k, p in sorted(self._plans.items())},
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, path: str | Path | None = None) -> Path:
        """Persist every plan to JSON; returns the path written."""
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(self.to_json())
        return target

    def load(self, path: str | Path) -> int:
        """Merge plans from a JSON file; returns how many were loaded."""
        from repro.serve.planner import Plan

        payload = json.loads(Path(path).read_text())
        if payload.get("version") != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported plan-cache version {payload.get('version')!r}"
            )
        plans = {k: Plan.from_dict(d) for k, d in payload["plans"].items()}
        with self._lock:
            self._plans.update(plans)
        return len(plans)
