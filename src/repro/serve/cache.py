"""Keyed, JSON-persistable cache of execution plans.

The cache is the serving layer's memory: the first request of a class
pays the planner search, every later one reuses the stored decision.
Hit/miss counters feed the telemetry (the demo asserts a > 50% hit
rate), and :meth:`save` / :meth:`load` round-trip the whole cache
through JSON so tuned plans survive process restarts.

The JSON file is shared *across processes*: :meth:`save` writes through
a temporary sibling and an atomic ``os.replace`` so a reader never
observes a torn file, and the payload carries a schema version.
Version 2 added the ``backend@device`` runtime segment to plan keys;
v1 files still load — their keys are migrated onto the default
``magicube-emulation`` backend (the only runtime v1 plans could have
meant), and entries that cannot be migrated are dropped rather than
served under a stale key.
"""

from __future__ import annotations

import json
import threading
import warnings
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.errors import PlanCacheError
from repro.ioutil import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (planner uses us)
    from repro.serve.planner import Plan

#: current schema: plan keys carry a ``backend@device`` segment
_FORMAT_VERSION = 2
#: oldest schema :meth:`PlanCache.load` can migrate
_OLDEST_SUPPORTED_VERSION = 1


class PlanCache:
    """Thread-safe mapping of plan-key strings to :class:`Plan` objects."""

    def __init__(self, path: str | Path | None = None) -> None:
        self._plans: dict[str, "Plan"] = {}
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._metrics = None
        self.path = Path(path) if path is not None else None
        if self.path is not None and self.path.exists():
            # startup auto-load is forgiving: a corrupt shared cache
            # file degrades to a cold start, never a crashed server
            self.load(self.path, strict=False)

    def bind_metrics(self, registry) -> None:
        """Publish hit/miss/promotion counts into a
        :class:`repro.obs.MetricsRegistry` alongside the local
        counters (the engine binds its registry at construction)."""
        self._metrics = registry
        self._publish_entries()

    def _publish_entries(self) -> None:
        if self._metrics is not None:
            from repro.obs import names

            self._metrics.gauge(names.CACHE_ENTRIES).set(len(self._plans))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._plans)

    def __contains__(self, key: str) -> bool:
        return key in self._plans

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._plans)

    def peek(self, key: str) -> "Plan | None":
        """Look up a plan without touching the hit/miss counters."""
        with self._lock:
            return self._plans.get(key)

    def get(self, key: str) -> "Plan | None":
        """Look up a plan, counting the hit or miss."""
        with self._lock:
            plan = self._plans.get(key)
            if plan is None:
                self.misses += 1
            else:
                self.hits += 1
        if self._metrics is not None:
            from repro.obs import names

            self._metrics.counter(
                names.CACHE_HITS if plan is not None else names.CACHE_MISSES
            ).inc()
        return plan

    def put(self, key: str, plan: "Plan") -> None:
        with self._lock:
            self._plans[key] = plan
        self._publish_entries()

    def promote(self, plans: "dict[str, Plan]") -> int:
        """Atomically install a batch of (re-tuned) plans into the live
        cache.

        All entries land under **one** lock acquisition, so a
        concurrent reader (an engine resolving requests mid-promote)
        sees either the old set or the new set of a promotion — never
        a half-applied mix. Returns how many entries actually changed
        (new keys, or keys whose plan differs from the cached one).
        """
        with self._lock:
            changed = 0
            for key, plan in plans.items():
                old = self._plans.get(key)
                if old is None or old.to_dict() != plan.to_dict():
                    changed += 1
                self._plans[key] = plan
        if self._metrics is not None and plans:
            from repro.obs import names

            self._metrics.counter(names.CACHE_PROMOTIONS).inc(len(plans))
        self._publish_entries()
        return changed

    def get_or_build(self, key: str, builder: Callable[[], "Plan"]) -> "Plan":
        """Return the cached plan or build, store and return a new one.

        The builder runs outside the lock (a planner search can take a
        while); concurrent misses of the same key may build twice, last
        write wins — plans for one key are interchangeable.
        """
        plan = self.get(key)
        if plan is None:
            plan = builder()
            self.put(key, plan)
        return plan

    # ------------------------------------------------------------------
    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._plans),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
            }

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = 0
            self.misses = 0

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        with self._lock:
            payload = {
                "version": _FORMAT_VERSION,
                "plans": {k: p.to_dict() for k, p in sorted(self._plans.items())},
            }
        return json.dumps(payload, indent=2, sort_keys=True)

    def save(self, path: str | Path | None = None) -> Path:
        """Persist every plan to JSON atomically; returns the path written.

        The payload lands in a temporary sibling first and is moved
        into place with ``os.replace``, so a concurrent reader (another
        serving process sharing the cache file) sees either the old or
        the new cache, never a partial write.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path given and the cache has no default path")
        return atomic_write_text(target, self.to_json())

    def load(self, path: str | Path, strict: bool = True) -> int:
        """Merge plans from a JSON file; returns how many were loaded.

        Accepts the current schema and every migratable older one
        (see :func:`_migrate_v1`). A corrupt, truncated or
        wrong-schema file raises the typed
        :class:`~repro.errors.PlanCacheError` (also a ``ValueError``)
        when ``strict``; with ``strict=False`` it is reported via
        ``warnings.warn`` and the cache simply stays as it was — the
        behaviour of the constructor's auto-load, where a shared cache
        file torn by another writer must not take the server down.
        """
        try:
            return self._load(path)
        except PlanCacheError as exc:
            if strict:
                raise
            warnings.warn(
                f"ignoring unreadable plan cache: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )
            return 0

    def _load(self, path: str | Path) -> int:
        from repro.serve.planner import Plan

        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PlanCacheError(f"cannot read plan cache {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise PlanCacheError(
                f"plan cache {path} holds {type(payload).__name__}, not an object"
            )
        version = payload.get("version")
        if (
            not isinstance(version, int)
            or not _OLDEST_SUPPORTED_VERSION <= version <= _FORMAT_VERSION
        ):
            raise PlanCacheError(
                f"unsupported plan-cache version {version!r} "
                f"(supported: {_OLDEST_SUPPORTED_VERSION}..{_FORMAT_VERSION})"
            )
        raw = payload.get("plans")
        if not isinstance(raw, dict):
            raise PlanCacheError(f"plan cache {path} has no 'plans' object")
        if version < 2:
            raw = _migrate_v1(raw)
        try:
            plans = {k: Plan.from_dict(d) for k, d in raw.items()}
        except (KeyError, TypeError, ValueError, AttributeError) as exc:
            raise PlanCacheError(
                f"plan cache {path} holds a malformed plan entry: {exc!r}"
            ) from exc
        with self._lock:
            self._plans.update(plans)
        self._publish_entries()
        return len(plans)


def _migrate_v1(raw: dict) -> dict:
    """Re-key v1 plan dicts onto the runtime (``backend@device``) schema.

    v1 keys look like ``op|MxK|n=N|v=V|s=S|device|objective`` and could
    only have meant the Magicube emulation path on that device; the
    migration inserts the default backend into the key and stamps the
    plan dict's ``backend``/``device`` fields. Keys that do not match
    the v1 shape are dropped — an unmappable cached decision must be
    re-planned, not guessed at.
    """
    from repro.runtime import DEFAULT_BACKEND

    migrated: dict = {}
    for key, plan_dict in raw.items():
        parts = key.split("|")
        if len(parts) != 7 or "@" in parts[5] or "x" not in parts[1]:
            continue  # not a v1 plan key: invalidate
        device = parts[5]
        new_key = "|".join(
            parts[:5] + [f"{DEFAULT_BACKEND}@{device}"] + parts[6:]
        )
        migrated[new_key] = {
            **plan_dict,
            "key": new_key,
            "backend": plan_dict.get("backend", DEFAULT_BACKEND),
            "device": plan_dict.get("device", device),
        }
    return migrated
