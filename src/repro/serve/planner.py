"""Cost-model-guided execution planning.

Given an operand's shape / sparsity / vector length and an
:class:`Objective` (minimize latency, or maximize fidelity under an
optional latency budget), the :class:`ExecutionPlanner` searches

- the Table-IV precision pairs admissible for the operands (which fixes
  the SR-BCRS stride: the native MMA reduction dim of the pair),
- the SpMM RHS tile width ``BSn`` (32 / 64 / 96 / 128), and
- the SDDMM warps-per-block knob,

costing every candidate with the kernels' exact accounting applied to a
uniform synthetic topology and the calibrated Magicube cost model. The
winning configuration is memoized in a :class:`~repro.serve.cache
.PlanCache` keyed by the rounded problem signature, so repeated requests
skip the search entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.baselines.calibration import cost_model_for
from repro.errors import ConfigError
from repro.kernels.emulation import supported_pairs
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig
from repro.serve.cache import PlanCache
from repro.serve.topology import UniformBCRSMask, UniformSRBCRS

#: SpMM RHS tile widths searched (elements; SpMMConfig's legal range)
BSN_CANDIDATES = (32, 64, 96, 128)
#: SDDMM warps-per-block searched (each warp owns 8 output columns)
WARP_CANDIDATES = (2, 4, 8)


@dataclass(frozen=True)
class Objective:
    """What the planner optimizes for one request class.

    ``kind`` is ``"latency"`` (fastest admissible configuration) or
    ``"accuracy"`` (highest-fidelity precision pair, optionally the
    highest that still meets ``latency_budget_s``). The bit bounds
    restrict the admissible Table-IV pairs — raise the minima to the
    operands' actual bit widths so a plan never underflows the data.
    """

    kind: str = "latency"
    min_l_bits: int = 4
    min_r_bits: int = 4
    max_l_bits: int = 16
    max_r_bits: int = 16
    latency_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "accuracy"):
            raise ConfigError(f"unknown objective kind {self.kind!r}")
        if self.min_l_bits > self.max_l_bits or self.min_r_bits > self.max_r_bits:
            raise ConfigError("objective bit bounds are empty")

    # -- constructors ---------------------------------------------------
    @classmethod
    def latency(cls, min_l_bits: int = 4, min_r_bits: int = 4) -> "Objective":
        """Fastest plan whose precision covers the operand ranges."""
        return cls(kind="latency", min_l_bits=min_l_bits, min_r_bits=min_r_bits)

    @classmethod
    def accuracy(
        cls,
        latency_budget_s: float | None = None,
        min_l_bits: int = 4,
        min_r_bits: int = 4,
    ) -> "Objective":
        """Highest-fidelity plan, optionally under a latency budget."""
        return cls(
            kind="accuracy",
            min_l_bits=min_l_bits,
            min_r_bits=min_r_bits,
            latency_budget_s=latency_budget_s,
        )

    @classmethod
    def fixed(cls, l_bits: int, r_bits: int) -> "Objective":
        """Pin one exact precision pair; only the tile knobs are searched."""
        return cls(
            kind="latency",
            min_l_bits=l_bits,
            max_l_bits=l_bits,
            min_r_bits=r_bits,
            max_r_bits=r_bits,
        )

    # -- planner hooks --------------------------------------------------
    def admits(self, l_bits: int, r_bits: int) -> bool:
        return (
            self.min_l_bits <= l_bits <= self.max_l_bits
            and self.min_r_bits <= r_bits <= self.max_r_bits
        )

    def with_min_bits(self, l_bits: int, r_bits: int) -> "Objective":
        """Tighten the minima to the operands' actual bit widths."""
        return replace(
            self,
            min_l_bits=max(self.min_l_bits, l_bits),
            min_r_bits=max(self.min_r_bits, r_bits),
        )

    @property
    def token(self) -> str:
        """Short cache-key token identifying this objective."""
        budget = (
            f"@{self.latency_budget_s:.3e}" if self.latency_budget_s is not None else ""
        )
        return (
            f"{self.kind}{budget}"
            f"[L{self.min_l_bits}-{self.max_l_bits},"
            f"R{self.min_r_bits}-{self.max_r_bits}]"
        )


@dataclass(frozen=True)
class PlanKey:
    """Memoization key: one request class the planner solves once."""

    op: str  # "spmm" | "sddmm"
    rows: int
    cols: int
    inner: int  # SpMM: RHS columns N; SDDMM: reduction dim K
    vector_length: int
    sparsity: float  # rounded to 3 decimals (the planning bucket)
    device: str
    objective: str  # Objective.token

    def __str__(self) -> str:
        return (
            f"{self.op}|{self.rows}x{self.cols}|n={self.inner}"
            f"|v={self.vector_length}|s={self.sparsity:.3f}"
            f"|{self.device}|{self.objective}"
        )


@dataclass
class Plan:
    """One memoized execution decision.

    ``config`` holds the non-default kernel-config kwargs; rebuild the
    concrete config with :meth:`spmm_config` / :meth:`sddmm_config`
    (overrides allowed for value-only knobs such as signedness).
    """

    op: str
    l_bits: int
    r_bits: int
    config: dict = field(default_factory=dict)
    predicted_time_s: float = 0.0
    key: str = ""

    @property
    def precision(self) -> str:
        return f"L{self.l_bits}-R{self.r_bits}"

    @property
    def stride(self) -> int:
        """SR-BCRS stride the plan's precision requires (SpMM only)."""
        return MagicubeSpMM(self.spmm_config()).required_stride

    def spmm_config(self, **overrides) -> SpMMConfig:
        if self.op != "spmm":
            raise ConfigError(f"plan is for {self.op}, not spmm")
        return SpMMConfig(
            l_bits=self.l_bits, r_bits=self.r_bits, **{**self.config, **overrides}
        )

    def sddmm_config(self, **overrides) -> SDDMMConfig:
        if self.op != "sddmm":
            raise ConfigError(f"plan is for {self.op}, not sddmm")
        return SDDMMConfig(
            l_bits=self.l_bits, r_bits=self.r_bits, **{**self.config, **overrides}
        )

    # -- JSON persistence ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "l_bits": self.l_bits,
            "r_bits": self.r_bits,
            "config": dict(self.config),
            "predicted_time_s": self.predicted_time_s,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Plan":
        return cls(
            op=d["op"],
            l_bits=int(d["l_bits"]),
            r_bits=int(d["r_bits"]),
            config=dict(d.get("config", {})),
            predicted_time_s=float(d.get("predicted_time_s", 0.0)),
            key=d.get("key", ""),
        )


class ExecutionPlanner:
    """Searches kernel configurations against the calibrated cost model."""

    def __init__(self, device: str = "A100", cache: PlanCache | None = None) -> None:
        self.device = device
        self.cache = cache if cache is not None else PlanCache()
        self._cost_model = cost_model_for("magicube", device)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_problem(rows: int, vector_length: int, sparsity: float) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
        if rows % vector_length != 0:
            raise ConfigError(
                f"rows ({rows}) must divide by the vector length ({vector_length})"
            )

    def plan_spmm(
        self,
        rows: int,
        cols: int,
        n: int,
        vector_length: int,
        sparsity: float,
        objective: Objective | None = None,
    ) -> Plan:
        """Best SpMM plan for a (rows x cols) @ (cols x n) request class."""
        self._check_problem(rows, vector_length, sparsity)
        obj = objective if objective is not None else Objective.latency()
        key = PlanKey(
            "spmm", rows, cols, n, vector_length, round(sparsity, 3),
            self.device, obj.token,
        )
        return self.cache.get_or_build(
            str(key), lambda: self._search_spmm(key, obj)
        )

    def plan_sddmm(
        self,
        rows: int,
        cols: int,
        k: int,
        vector_length: int,
        sparsity: float,
        objective: Objective | None = None,
    ) -> Plan:
        """Best SDDMM plan for a (rows x k) @ (k x cols) sampled product."""
        self._check_problem(rows, vector_length, sparsity)
        obj = objective if objective is not None else Objective.latency()
        key = PlanKey(
            "sddmm", rows, cols, k, vector_length, round(sparsity, 3),
            self.device, obj.token,
        )
        return self.cache.get_or_build(
            str(key), lambda: self._search_sddmm(key, obj)
        )

    # ------------------------------------------------------------------
    def _admissible_pairs(self, op: str, obj: Objective) -> list[tuple[int, int]]:
        pairs = [p for p in supported_pairs(op) if obj.admits(*p)]
        if not pairs:
            raise ConfigError(
                f"no Table-IV {op} pair satisfies objective {obj.token}"
            )
        return pairs

    def _select(
        self, candidates: list[tuple[tuple[int, int], dict, float]], obj: Objective
    ) -> tuple[tuple[int, int], dict, float]:
        """Pick the winning (pair, config, time) per the objective."""
        if obj.kind == "latency":
            # fastest; ties broken toward higher fidelity
            return min(candidates, key=lambda c: (c[2], -(c[0][0] + c[0][1])))
        by_fidelity = sorted(
            candidates, key=lambda c: (c[0][0] + c[0][1], c[0][0]), reverse=True
        )
        if obj.latency_budget_s is not None:
            for cand in by_fidelity:
                if cand[2] <= obj.latency_budget_s:
                    return cand
            # nothing meets the budget: degrade to the fastest plan
            return min(candidates, key=lambda c: c[2])
        return by_fidelity[0]

    def _search_spmm(self, key: PlanKey, obj: Objective) -> Plan:
        candidates = []
        for l_bits, r_bits in self._admissible_pairs("spmm", obj):
            best = None
            for bsn in BSN_CANDIDATES:
                cfg = SpMMConfig(l_bits=l_bits, r_bits=r_bits, bsn=bsn)
                kern = MagicubeSpMM(cfg)
                sr = UniformSRBCRS(
                    key.rows, key.cols, key.vector_length, key.sparsity,
                    kern.required_stride,
                )
                t = self._cost_model.time(kern._account(sr, key.inner))
                if best is None or t < best[1]:
                    best = ({"bsn": bsn}, t)
            candidates.append(((l_bits, r_bits), best[0], best[1]))
        pair, config, t = self._select(candidates, obj)
        return Plan(
            op="spmm", l_bits=pair[0], r_bits=pair[1], config=config,
            predicted_time_s=t, key=str(key),
        )

    def _search_sddmm(self, key: PlanKey, obj: Objective) -> Plan:
        mask = UniformBCRSMask(key.rows, key.cols, key.vector_length, key.sparsity)
        candidates = []
        for l_bits, r_bits in self._admissible_pairs("sddmm", obj):
            best = None
            for warps in WARP_CANDIDATES:
                cfg = SDDMMConfig(l_bits=l_bits, r_bits=r_bits, warps=warps)
                kern = MagicubeSDDMM(cfg)
                stats = kern._account(
                    (key.rows, key.inner), (key.inner, key.cols), mask
                )
                t = self._cost_model.time(stats)
                if best is None or t < best[1]:
                    best = ({"warps": warps}, t)
            candidates.append(((l_bits, r_bits), best[0], best[1]))
        pair, config, t = self._select(candidates, obj)
        return Plan(
            op="sddmm", l_bits=pair[0], r_bits=pair[1], config=config,
            predicted_time_s=t, key=str(key),
        )
