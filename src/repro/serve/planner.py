"""Cost-model-guided execution planning across backends and devices.

Given an operand's shape / sparsity / vector length and an
:class:`Objective` (minimize latency, or maximize fidelity under an
optional latency budget), the :class:`ExecutionPlanner` searches the
cross-product of

- the admissible **runtime backends** (every registered
  :class:`~repro.runtime.backend.Backend` that implements the planning
  hook — the Magicube kernels, vectorSparse, Sputnik, dense cuBLAS...),
- the **devices** the planner was given (Table II profiles: A100,
  H100, MI250X, V100), and
- each backend's own configuration space (Table-IV precision pairs,
  SpMM ``BSn`` tile widths, SDDMM warps-per-block),

costing every candidate with that backend's calibrated cost model. The
winner is memoized in a :class:`~repro.serve.cache.PlanCache` under a
:class:`PlanKey` that carries the searched ``(backend, device)``
tokens, so repeated requests skip the search entirely.

By default the planner pins the registry's fallback backend for its
device (``magicube-emulation`` wherever integer Tensor cores exist), so
single-backend planning behaves exactly as before; pass ``backends=``
(or per-call ``backend=``) and ``devices=`` to open the search.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Sequence

from repro.errors import ConfigError
from repro.kernels.sddmm import SDDMMConfig
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig
from repro.runtime import (
    DEFAULT_BACKEND,
    Candidate,
    Device,
    Problem,
    plannable_backends,
)
from repro.runtime.magicube import BSN_CANDIDATES, WARP_CANDIDATES
from repro.serve.cache import PlanCache

__all__ = [
    "BSN_CANDIDATES",
    "WARP_CANDIDATES",
    "ExecutionPlanner",
    "Objective",
    "Plan",
    "PlanKey",
]


#: the shape of :attr:`Objective.token`, e.g.
#: ``latency[L8-16,R8-16]`` or ``accuracy@1.000e-03[L4-16,R4-16]``
_OBJECTIVE_TOKEN = re.compile(
    r"^(latency|accuracy)(?:@([0-9.eE+-]+))?"
    r"\[L(\d+)-(\d+),R(\d+)-(\d+)\]$"
)


@dataclass(frozen=True)
class Objective:
    """What the planner optimizes for one request class.

    ``kind`` is ``"latency"`` (fastest admissible configuration) or
    ``"accuracy"`` (highest-fidelity precision pair, optionally the
    highest that still meets ``latency_budget_s``). The bit bounds
    restrict the admissible Table-IV pairs — raise the minima to the
    operands' actual bit widths so a plan never underflows the data.
    """

    kind: str = "latency"
    min_l_bits: int = 4
    min_r_bits: int = 4
    max_l_bits: int = 16
    max_r_bits: int = 16
    latency_budget_s: float | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("latency", "accuracy"):
            raise ConfigError(f"unknown objective kind {self.kind!r}")
        if self.min_l_bits > self.max_l_bits or self.min_r_bits > self.max_r_bits:
            raise ConfigError("objective bit bounds are empty")

    # -- constructors ---------------------------------------------------
    @classmethod
    def latency(cls, min_l_bits: int = 4, min_r_bits: int = 4) -> "Objective":
        """Fastest plan whose precision covers the operand ranges."""
        return cls(kind="latency", min_l_bits=min_l_bits, min_r_bits=min_r_bits)

    @classmethod
    def accuracy(
        cls,
        latency_budget_s: float | None = None,
        min_l_bits: int = 4,
        min_r_bits: int = 4,
    ) -> "Objective":
        """Highest-fidelity plan, optionally under a latency budget."""
        return cls(
            kind="accuracy",
            min_l_bits=min_l_bits,
            min_r_bits=min_r_bits,
            latency_budget_s=latency_budget_s,
        )

    @classmethod
    def fixed(cls, l_bits: int, r_bits: int) -> "Objective":
        """Pin one exact precision pair; only the tile knobs are searched."""
        return cls(
            kind="latency",
            min_l_bits=l_bits,
            max_l_bits=l_bits,
            min_r_bits=r_bits,
            max_r_bits=r_bits,
        )

    # -- planner hooks --------------------------------------------------
    def admits(self, l_bits: int, r_bits: int) -> bool:
        return (
            self.min_l_bits <= l_bits <= self.max_l_bits
            and self.min_r_bits <= r_bits <= self.max_r_bits
        )

    def with_min_bits(self, l_bits: int, r_bits: int) -> "Objective":
        """Tighten the minima to the operands' actual bit widths."""
        return replace(
            self,
            min_l_bits=max(self.min_l_bits, l_bits),
            min_r_bits=max(self.min_r_bits, r_bits),
        )

    @property
    def token(self) -> str:
        """Short cache-key token identifying this objective."""
        budget = (
            f"@{self.latency_budget_s:.3e}" if self.latency_budget_s is not None else ""
        )
        return (
            f"{self.kind}{budget}"
            f"[L{self.min_l_bits}-{self.max_l_bits},"
            f"R{self.min_r_bits}-{self.max_r_bits}]"
        )

    @classmethod
    def parse(cls, token: str) -> "Objective":
        """Rebuild an :class:`Objective` from its cache-key token.

        The inverse of :attr:`token` — ``Objective.parse(obj.token) ==
        obj`` (budgets round-trip at the token's 3 significant digits).
        Raises ``ValueError`` on malformed tokens; the re-tuning
        scheduler uses this to turn observed plan keys back into
        sweepable objectives.
        """
        m = _OBJECTIVE_TOKEN.match(token)
        if not m:
            raise ValueError(f"malformed objective token {token!r}")
        kind, budget, min_l, max_l, min_r, max_r = m.groups()
        return cls(
            kind=kind,
            min_l_bits=int(min_l),
            max_l_bits=int(max_l),
            min_r_bits=int(min_r),
            max_r_bits=int(max_r),
            latency_budget_s=float(budget) if budget is not None else None,
        )


@dataclass(frozen=True)
class PlanKey:
    """Memoization key: one request class the planner solves once.

    ``backend`` and ``device`` are the *searched* sets — ``+``-joined
    tokens when the planner spans several — so plans found under
    different search spaces never alias.
    """

    op: str  # "spmm" | "sddmm"
    rows: int
    cols: int
    inner: int  # SpMM: RHS columns N; SDDMM: reduction dim K
    vector_length: int
    sparsity: float  # rounded to 3 decimals (the planning bucket)
    backend: str
    device: str
    objective: str  # Objective.token

    def __str__(self) -> str:
        return (
            f"{self.op}|{self.rows}x{self.cols}|n={self.inner}"
            f"|v={self.vector_length}|s={self.sparsity:.3f}"
            f"|{self.backend}@{self.device}|{self.objective}"
        )

    @classmethod
    def parse(cls, key: str) -> "PlanKey":
        """Rebuild a :class:`PlanKey` from its string form.

        Raises ``ValueError`` for malformed keys — including the
        pre-runtime (v1) format whose runtime segment lacks the
        ``backend@device`` shape.
        """
        parts = key.split("|")
        if len(parts) != 7:
            raise ValueError(f"plan key {key!r} does not have 7 segments")
        op, shape, inner, v, s, runtime_part, objective = parts
        backend, sep, device = runtime_part.partition("@")
        if not sep or not backend or not device:
            raise ValueError(
                f"plan key {key!r} lacks the backend@device segment"
            )
        try:
            rows, cols = (int(x) for x in shape.split("x"))
            return cls(
                op=op,
                rows=rows,
                cols=cols,
                inner=int(inner.removeprefix("n=")),
                vector_length=int(v.removeprefix("v=")),
                sparsity=float(s.removeprefix("s=")),
                backend=backend,
                device=device,
                objective=objective,
            )
        except ValueError as exc:
            raise ValueError(f"malformed plan key {key!r}: {exc}") from None


@dataclass
class Plan:
    """One memoized execution decision.

    ``backend``/``device`` identify the *winning* backend and device of
    the search. ``config`` holds the backend-specific kernel knobs;
    for Magicube plans, rebuild the concrete config with
    :meth:`spmm_config` / :meth:`sddmm_config` (overrides allowed for
    value-only knobs such as signedness).
    """

    op: str
    l_bits: int
    r_bits: int
    config: dict = field(default_factory=dict)
    predicted_time_s: float = 0.0
    key: str = ""
    backend: str = DEFAULT_BACKEND
    device: str = "A100"
    precision_label: str = ""

    @property
    def precision(self) -> str:
        return self.precision_label or f"L{self.l_bits}-R{self.r_bits}"

    @property
    def is_magicube(self) -> bool:
        # the fastpath backends run the Magicube kernels (same configs,
        # same accounting) — their plans carry Magicube knobs too
        return self.backend.startswith(("magicube", "fastpath"))

    @property
    def shards(self) -> int:
        """Tensor-parallel width the search elected (1 = one device).

        A sharded plan carries ``{"tp": g}`` in its config — the
        planner priced the contraction-dim split plus its all-reduce
        (:mod:`repro.transformer.distributed`) and it won. The ``tp``
        knob is placement metadata, not a kernel parameter: each shard
        runs the plan's ordinary kernel config on its slice.
        """
        return int(self.config.get("tp", 1))

    @property
    def stride(self) -> int:
        """SR-BCRS stride the plan's precision requires (SpMM only)."""
        return MagicubeSpMM(self.spmm_config()).required_stride

    def _require_magicube(self) -> None:
        if not self.is_magicube:
            raise ConfigError(
                f"plan executes on backend {self.backend!r}; it has no "
                f"Magicube kernel config"
            )

    def _kernel_knobs(self) -> dict:
        """``config`` minus placement metadata (the ``tp`` width)."""
        return {k: v for k, v in self.config.items() if k != "tp"}

    def spmm_config(self, **overrides) -> SpMMConfig:
        if self.op != "spmm":
            raise ConfigError(f"plan is for {self.op}, not spmm")
        self._require_magicube()
        return SpMMConfig(
            l_bits=self.l_bits, r_bits=self.r_bits,
            **{**self._kernel_knobs(), **overrides},
        )

    def sddmm_config(self, **overrides) -> SDDMMConfig:
        if self.op != "sddmm":
            raise ConfigError(f"plan is for {self.op}, not sddmm")
        self._require_magicube()
        return SDDMMConfig(
            l_bits=self.l_bits, r_bits=self.r_bits,
            **{**self._kernel_knobs(), **overrides},
        )

    # -- JSON persistence ----------------------------------------------
    def to_dict(self) -> dict:
        return {
            "op": self.op,
            "l_bits": self.l_bits,
            "r_bits": self.r_bits,
            "config": dict(self.config),
            "predicted_time_s": self.predicted_time_s,
            "key": self.key,
            "backend": self.backend,
            "device": self.device,
            "precision_label": self.precision_label,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Plan":
        return cls(
            op=d["op"],
            l_bits=int(d["l_bits"]),
            r_bits=int(d["r_bits"]),
            config=dict(d.get("config", {})),
            predicted_time_s=float(d.get("predicted_time_s", 0.0)),
            key=d.get("key", ""),
            backend=d.get("backend", DEFAULT_BACKEND),
            device=d.get("device", "A100"),
            precision_label=d.get("precision_label", ""),
        )


@dataclass(frozen=True)
class _Scored:
    """One (backend, device, candidate) triple of the search space."""

    backend: str
    device: str
    candidate: Candidate

    @property
    def fidelity(self) -> int:
        return self.candidate.l_bits + self.candidate.r_bits

    @property
    def time_s(self) -> float:
        return self.candidate.time_s


class ExecutionPlanner:
    """Searches (backend x device x config) against calibrated cost models."""

    def __init__(
        self,
        device: "Device | str" = "A100",
        cache: PlanCache | None = None,
        backends: Sequence[str] | None = None,
        devices: Sequence["Device | str"] | None = None,
        warm_start: "str | Sequence[str] | None" = None,
    ) -> None:
        self._device = Device.resolve(device)
        extra = [Device.resolve(d) for d in (devices or ())]
        self._devices: list[Device] = [self._device]
        for dev in extra:
            if dev not in self._devices:
                self._devices.append(dev)
        self.backends = tuple(backends) if backends is not None else None
        self.cache = cache if cache is not None else PlanCache()
        if warm_start is not None:
            self.warm_start(warm_start)

    def warm_start(self, artifacts: "str | Sequence[str]") -> int:
        """Preload shipped autotune artifacts into the plan cache.

        ``artifacts`` is one path or a sequence of paths to plan-cache
        JSON files written by ``repro-autotune sweep``/``export``. Each
        sibling manifest (when present) is checked against the live
        backend registry and device table; drift is surfaced as
        warnings — stale plans still load, they just re-lose the
        planner search when their keys no longer match. Returns the
        number of plans loaded.
        """
        # imported lazily: repro.autotune imports this module
        from repro.autotune.artifact import warm_start_cache

        return warm_start_cache(self.cache, artifacts)

    # -- views ----------------------------------------------------------
    @property
    def device(self) -> str:
        """Primary device name (the planner's home profile)."""
        return self._device.name

    @property
    def devices(self) -> tuple[str, ...]:
        """Names of every device the search spans."""
        return tuple(d.name for d in self._devices)

    # ------------------------------------------------------------------
    @staticmethod
    def _check_problem(rows: int, vector_length: int, sparsity: float) -> None:
        if not 0.0 <= sparsity < 1.0:
            raise ConfigError(f"sparsity must be in [0, 1), got {sparsity}")
        if rows % vector_length != 0:
            raise ConfigError(
                f"rows ({rows}) must divide by the vector length ({vector_length})"
            )

    def _search_backends(self, op: str, backend: str | None) -> list:
        """The backend set one plan call searches, in fallback order."""
        if backend is not None:
            names: Sequence[str] | None = (backend,)
        elif self.backends is not None:
            names = self.backends
        else:
            # default: pin the registry's fallback backend for the
            # primary device, preserving single-backend behaviour
            chain = plannable_backends(op, self._device)
            if not chain:
                raise ConfigError(
                    f"no plannable backend supports {op} on {self.device}"
                )
            names = (chain[0].name,)
        found = plannable_backends(op, self._device, names)
        # a multi-device search keeps backends admissible on *any*
        # searched device (the per-device filter happens per candidate)
        if not found and len(self._devices) > 1:
            for dev in self._devices[1:]:
                found = plannable_backends(op, dev, names)
                if found:
                    break
        if not found:
            raise ConfigError(
                f"none of the backends {list(names)} can plan {op} on "
                f"{list(self.devices)}"
            )
        return found

    def _plan(
        self,
        op: str,
        rows: int,
        cols: int,
        inner: int,
        vector_length: int,
        sparsity: float,
        objective: Objective | None,
        backend: str | None,
    ) -> Plan:
        self._check_problem(rows, vector_length, sparsity)
        obj = objective if objective is not None else Objective.latency()
        search = self._search_backends(op, backend)
        key = PlanKey(
            op,
            rows,
            cols,
            inner,
            vector_length,
            round(sparsity, 3),
            "+".join(b.name for b in search),
            "+".join(self.devices),
            obj.token,
        )
        problem = Problem(op, rows, cols, inner, vector_length, round(sparsity, 3))
        return self.cache.get_or_build(
            str(key), lambda: self._search(key, problem, obj, search)
        )

    def plan_spmm(
        self,
        rows: int,
        cols: int,
        n: int,
        vector_length: int,
        sparsity: float,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> Plan:
        """Best SpMM plan for a (rows x cols) @ (cols x n) request class."""
        return self._plan(
            "spmm", rows, cols, n, vector_length, sparsity, objective, backend
        )

    def plan_sddmm(
        self,
        rows: int,
        cols: int,
        k: int,
        vector_length: int,
        sparsity: float,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> Plan:
        """Best SDDMM plan for a (rows x k) @ (k x cols) sampled product."""
        return self._plan(
            "sddmm", rows, cols, k, vector_length, sparsity, objective, backend
        )

    # ------------------------------------------------------------------
    def _search(
        self, key: PlanKey, problem: Problem, obj: Objective, search: list
    ) -> Plan:
        scored: list[_Scored] = []
        for backend in search:
            for dev in self._devices:
                if not backend.supports(dev, op=problem.op):
                    continue
                for cand in backend.plan_candidates(problem, dev, obj.admits):
                    scored.append(_Scored(backend.name, dev.name, cand))
        if not scored:
            raise ConfigError(
                f"no (backend, device, config) candidate satisfies objective "
                f"{obj.token} for {key}"
            )
        winner = self._select(scored, obj)
        cand = winner.candidate
        return Plan(
            op=problem.op,
            l_bits=cand.l_bits,
            r_bits=cand.r_bits,
            config=dict(cand.config),
            predicted_time_s=cand.time_s,
            key=str(key),
            backend=winner.backend,
            device=winner.device,
            precision_label=cand.precision,
        )

    @staticmethod
    def _select(scored: list[_Scored], obj: Objective) -> _Scored:
        """Pick the winning candidate per the objective.

        Candidate order is deterministic (backends in fallback order,
        devices in planner order), so stable sorts break ties toward
        higher-priority backends.
        """
        if obj.kind == "latency":
            # fastest; ties broken toward higher fidelity
            return min(scored, key=lambda c: (c.time_s, -c.fidelity))
        by_fidelity = sorted(
            scored,
            key=lambda c: (c.fidelity, c.candidate.l_bits),
            reverse=True,
        )
        if obj.latency_budget_s is not None:
            for cand in by_fidelity:
                if cand.time_s <= obj.latency_budget_s:
                    return cand
            # nothing meets the budget: degrade to the fastest plan
            return min(scored, key=lambda c: c.time_s)
        return by_fidelity[0]
