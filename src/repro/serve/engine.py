"""The serving engine: prepared sessions + planned, batched dispatch.

An :class:`Engine` owns

- an :class:`~repro.serve.planner.ExecutionPlanner` (with its
  :class:`~repro.serve.cache.PlanCache`),
- a :class:`~repro.serve.batcher.MicroBatcher` + thread pool, and
- :class:`~repro.serve.telemetry.Telemetry` (injectable via the
  constructor's ``telemetry=`` for shared collectors).

The engine is **device- and backend-aware**: its ``device`` argument is
validated into a :class:`~repro.runtime.Device` handle, and each
session pins one resolved :mod:`repro.runtime` backend. All request
intake runs the :mod:`repro.api.resolution` pipeline — the same
precision → device → backend → plan stages a one-shot
:func:`repro.api.run` call walks — so served outputs are bit-identical
to the direct path; batching concatenates RHS columns, which the
integer kernels process independently.

The typed front door is :func:`repro.open_engine` /
:class:`repro.api.Client`: submit :class:`~repro.api.SpmmRequest` /
:class:`~repro.api.SddmmRequest` / :class:`~repro.api.AttentionRequest`
and get uniform :class:`~repro.api.Response` objects back. Sessions
remain the prepared-request-class handles underneath (an
:class:`SpmmSession` wraps a SparseMatrix converted **once**), and the
pre-v1 factories :meth:`Engine.spmm_session` /
:meth:`Engine.attention_session` are deprecation shims over them.
"""

from __future__ import annotations

import itertools
import threading
import time
import warnings
from collections import deque
from concurrent.futures import Future
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.api.requests import (
    AttentionRequest,
    Response,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.api.resolution import (
    Resolution,
    bits_required,
    execute as execute_resolution,
    normalize,
    resolve as resolve_request,
)
from repro.core.matrix import SparseMatrix
from repro.errors import AdmissionError, ConfigError, EngineClosedError, RetuneError
from repro.formats.bcrs import BCRSMatrix
from repro.obs import names as metric_names
from repro.obs.metrics import get_registry
from repro.obs.names import declare_standard
from repro.obs.profile import NULL_PROFILER, ProfileConfig, Profiler
from repro.obs.trace import NULL_TRACE, Tracer
from repro.runtime import Device, resolve_backend
from repro.serve.batcher import BatchItem, BatchPolicy, MicroBatcher, RequestHandle
from repro.serve.cache import PlanCache
from repro.serve.planner import ExecutionPlanner, Objective, Plan
from repro.serve.telemetry import Telemetry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.autotune.policy import RetunePolicy
    from repro.autotune.scheduler import RetuneStatus

__all__ = [
    "AttentionSession",
    "Engine",
    "SddmmSession",
    "ServeResult",
    "SpmmSession",
    "TransformerSession",
    "bits_required",
]

#: pre-v1 name of the unified response type (superseded by
#: :class:`repro.api.Response`)
ServeResult = Response


class SpmmSession:
    """A prepared sparse operand serving SpMM requests on one backend."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        matrix: SparseMatrix,
        objective: Objective,
        backend: str,
    ) -> None:
        self.engine = engine
        self.name = name
        self.matrix = matrix
        self.objective = objective
        self.backend = backend
        self.weight_bits = bits_required(matrix.bcrs.values, signed=True)

    def plan_for(self, n: int, r_bits: int) -> Plan:
        """The (cached) plan serving requests with an (K, n) RHS."""
        probe = SpmmRequest(
            lhs=self.matrix,
            rhs=np.empty((self.matrix.shape[1], n), dtype=np.int8),
            l_bits=self.weight_bits,
            r_bits=r_bits,
            objective=self.objective,
        )
        return self._resolve(probe).plan

    def _resolve(self, req: SpmmRequest) -> Resolution:
        return resolve_request(
            req,
            device=self.engine._device,
            planner=self.engine.planner,
            backend=self.backend,
        )

    def submit_request(self, req: SpmmRequest) -> Future:
        """Enqueue one typed request; resolves to a :class:`Response`."""
        request_id, trace = self.engine._begin_request(self.name, "spmm")
        req = normalize(
            replace(
                req,
                objective=req.objective if req.objective is not None else self.objective,
                l_bits=req.l_bits if req.l_bits is not None else self.weight_bits,
            )
        )
        with trace.span("plan-resolution") as span:
            res = self._resolve(req)
        if trace:
            span.set(
                plan_key=res.plan.key if res.plan is not None else None,
                backend=res.backend,
                device=res.device_label,
            )
        # the group key carries everything that must match for requests
        # to share one kernel launch — a batch executes under a single
        # resolution, so riders with a different backend/device/config
        # must never coalesce
        key = (
            "spmm", self.name, req.rhs.shape[1], res.precision,
            res.backend, res.device_label, req.scale, req.l_signed,
            tuple(sorted(req.knobs.items())), repr(res.config),
        )
        return self.engine._enqueue(
            self.name, key, {"request": req, "resolution": res},
            request_id=request_id, trace=trace,
        )

    def submit(self, rhs: np.ndarray, r_bits: int | None = None) -> Future:
        """Enqueue one SpMM request; resolves to a :class:`Response`."""
        return self.submit_request(
            SpmmRequest(lhs=self.matrix, rhs=rhs, r_bits=r_bits)
        )

    def submit_async(
        self, rhs: np.ndarray, r_bits: int | None = None
    ) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(rhs, r_bits=r_bits))

    def run(self, rhs: np.ndarray, r_bits: int | None = None) -> Response:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(rhs, r_bits=r_bits).result()


class SddmmSession:
    """A prepared sparse topology serving SDDMM requests.

    Same-class requests share the batcher's dispatch (and telemetry
    group) but execute item-by-item — sampled products carry their own
    dense operands, so there is no column concatenation to exploit.
    """

    def __init__(
        self,
        engine: "Engine",
        name: str,
        mask: "SparseMatrix | BCRSMatrix",
        objective: Objective,
        backend: str,
    ) -> None:
        self.engine = engine
        self.name = name
        self.topology = mask
        self.objective = objective
        self.backend = backend

    def _resolve(self, req: SddmmRequest) -> Resolution:
        return resolve_request(
            req,
            device=self.engine._device,
            planner=self.engine.planner,
            backend=self.backend,
        )

    def submit_request(self, req: SddmmRequest) -> Future:
        """Enqueue one typed request; resolves to a :class:`Response`."""
        request_id, trace = self.engine._begin_request(self.name, "sddmm")
        req = normalize(
            replace(
                req,
                objective=req.objective if req.objective is not None else self.objective,
            )
        )
        with trace.span("plan-resolution") as span:
            res = self._resolve(req)
        if trace:
            span.set(
                plan_key=res.plan.key if res.plan is not None else None,
                backend=res.backend,
                device=res.device_label,
            )
        key = (
            "sddmm", self.name, req.a.shape[1], res.precision,
            res.backend, res.device_label, req.output_format or "bcrs",
            tuple(sorted(req.knobs.items())), repr(res.config),
        )
        return self.engine._enqueue(
            self.name, key, {"request": req, "resolution": res},
            request_id=request_id, trace=trace,
        )

    def submit(
        self, a: np.ndarray, b: np.ndarray, precision: str | None = None
    ) -> Future:
        """Enqueue one SDDMM request; resolves to a :class:`Response`."""
        return self.submit_request(
            SddmmRequest(a=a, b=b, mask=self.topology, precision=precision)
        )

    def submit_async(
        self, a: np.ndarray, b: np.ndarray, precision: str | None = None
    ) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(a, b, precision=precision))

    def run(
        self, a: np.ndarray, b: np.ndarray, precision: str | None = None
    ) -> Response:
        return self.submit(a, b, precision=precision).result()


class AttentionSession:
    """A sparse-Transformer attention block served via planner routing.

    Requests are modelled forward passes (the paper's Fig. 17 latency
    pipeline); same-(seq, heads) requests coalesce by summing their
    batch dimensions into one launch.
    """

    def __init__(
        self,
        engine: "Engine",
        name: str,
        seq_len: int,
        num_heads: int = 4,
        sparsity: float = 0.9,
        scheme: tuple[int, int] = (8, 8),
        vector_length: int = 8,
        num_layers: int = 4,
        d_head: int = 64,
        num_gpus: int = 1,
        backend: str = "magicube-emulation",
    ) -> None:
        self.engine = engine
        self.name = name
        self.seq_len = seq_len
        self.num_heads = num_heads
        self.sparsity = sparsity
        self.scheme = scheme
        self.vector_length = vector_length
        self.num_layers = num_layers
        self.d_head = d_head
        self.num_gpus = num_gpus
        self.backend = backend

    def request(self, batch: int = 1) -> AttentionRequest:
        """This session's topology as a typed request."""
        return AttentionRequest(
            seq_len=self.seq_len,
            num_heads=self.num_heads,
            sparsity=self.sparsity,
            scheme=self.scheme,
            vector_length=self.vector_length,
            num_layers=self.num_layers,
            d_head=self.d_head,
            num_gpus=self.num_gpus,
            batch=batch,
            backend=self.backend,
        )

    def submit_request(self, req: AttentionRequest) -> Future:
        """Enqueue one typed request; resolves to a :class:`Response`.

        The request's topology must match this prepared session — the
        coalesced launch executes one topology, so serving a mismatch
        would price the wrong forward pass.
        """
        request_id, trace = self.engine._begin_request(self.name, "attention")
        # attention resolves at execute time (the coalesced launch owns
        # one topology); the validation below is this op's plan stage
        with trace.span("plan-resolution") as span:
            req = normalize(req)
            mine = self.request().topology
            theirs = replace(
                req, backend=req.backend if req.backend is not None else self.backend
            ).topology
        if trace:
            span.set(backend=self.backend, device=self.engine.device)
        if theirs != mine:
            raise ConfigError(
                f"session {self.name!r} serves topology {mine}, not "
                f"{theirs}; use a different session name (or let the "
                f"client key by topology)"
            )
        key = ("attention", self.name)
        return self.engine._enqueue(
            self.name, key, {"batch": req.batch},
            request_id=request_id, trace=trace,
        )

    def submit(self, batch: int = 1) -> Future:
        """Enqueue one forward-pass request of ``batch`` sequences."""
        return self.submit_request(self.request(batch))

    def submit_async(self, batch: int = 1) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(batch=batch))

    def run(self, batch: int = 1) -> Response:
        return self.submit(batch=batch).result()


class TransformerSession:
    """A whole-model transformer request class served via planner routing.

    The prepared state is the seeded model + zoo mask (built once at
    session creation, shared through the
    :mod:`repro.transformer.serving` memo). ``lra-classify`` requests
    coalesce by concatenating their ``ids`` rows into one planned
    forward — every layer's SDDMM/SpMM launch is a plan-cache hit on
    the session's (variant-priced) plan pair — and the ``prefill`` /
    ``decode`` latency modes coalesce by summing batch dimensions,
    like attention.
    """

    def __init__(
        self,
        engine: "Engine",
        name: str,
        mode: str = "lra-classify",
        seq_len: int = 128,
        d_model: int = 64,
        num_heads: int = 2,
        num_layers: int = 2,
        d_ff: int = 128,
        vocab: int = 16,
        num_classes: int = 2,
        mask_variant: str = "strided",
        sparsity: float = 0.9,
        scheme: tuple[int, int] = (16, 8),
        seed: int = 0,
        vector_length: int = 8,
        backend: str = "magicube-emulation",
    ) -> None:
        # imported lazily: the transformer stack reaches
        # repro.serve.topology via the inference latency model
        from repro.transformer.serving import TransformerSpec, prepare_transformer

        self.engine = engine
        self.name = name
        self.mode = mode
        self.seq_len = seq_len
        self.d_model = d_model
        self.num_heads = num_heads
        self.num_layers = num_layers
        self.d_ff = d_ff
        self.vocab = vocab
        self.num_classes = num_classes
        self.mask_variant = mask_variant
        self.sparsity = sparsity
        self.scheme = scheme
        self.seed = seed
        self.vector_length = vector_length
        self.backend = backend
        self.prepared = prepare_transformer(TransformerSpec(
            seq_len=seq_len,
            d_model=d_model,
            num_heads=num_heads,
            num_layers=num_layers,
            d_ff=d_ff,
            vocab=vocab,
            num_classes=num_classes,
            mask_variant=mask_variant,
            sparsity=sparsity,
            vector_length=vector_length,
            seed=seed,
        ))

    def request(
        self, ids: np.ndarray | None = None, batch: int = 1
    ) -> TransformerRequest:
        """This session's topology as a typed request."""
        return TransformerRequest(
            mode=self.mode,
            ids=ids,
            seq_len=self.seq_len,
            d_model=self.d_model,
            num_heads=self.num_heads,
            num_layers=self.num_layers,
            d_ff=self.d_ff,
            vocab=self.vocab,
            num_classes=self.num_classes,
            mask_variant=self.mask_variant,
            sparsity=self.sparsity,
            scheme=self.scheme,
            seed=self.seed,
            vector_length=self.vector_length,
            batch=batch,
            backend=self.backend,
        )

    def submit_request(self, req: TransformerRequest) -> Future:
        """Enqueue one typed request; resolves to a :class:`Response`.

        The request's topology (mode, shape, mask variant, scheme,
        seed) must match this prepared session — the coalesced forward
        runs one model, so serving a mismatch would return the wrong
        logits.
        """
        request_id, trace = self.engine._begin_request(self.name, "transformer")
        with trace.span("plan-resolution") as span:
            req = normalize(req)
            mine = self.request().topology
            theirs = replace(
                req, backend=req.backend if req.backend is not None else self.backend
            ).topology
        if trace:
            span.set(backend=self.backend, device=self.engine.device)
        if theirs != mine:
            raise ConfigError(
                f"session {self.name!r} serves topology {mine}, not "
                f"{theirs}; use a different session name (or let the "
                f"client key by topology)"
            )
        if self.mode == "lra-classify" and req.ids is None:
            raise ConfigError(
                "TransformerRequest.ids is required for an lra-classify "
                "session"
            )
        key = ("transformer", self.name)
        return self.engine._enqueue(
            self.name, key, {"ids": req.ids, "batch": req.batch},
            request_id=request_id, trace=trace,
        )

    def submit(
        self, ids: np.ndarray | None = None, batch: int = 1
    ) -> Future:
        """Enqueue one forward (``ids``) or latency-model request."""
        return self.submit_request(self.request(ids=ids, batch=batch))

    def submit_async(
        self, ids: np.ndarray | None = None, batch: int = 1
    ) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(ids=ids, batch=batch))

    def run(
        self, ids: np.ndarray | None = None, batch: int = 1
    ) -> Response:
        return self.submit(ids=ids, batch=batch).result()


class Engine:
    """Batched serving engine over the runtime backend registry."""

    def __init__(
        self,
        device: "Device | str" = "A100",
        planner: ExecutionPlanner | None = None,
        cache: PlanCache | None = None,
        policy: BatchPolicy | None = None,
        max_workers: int = 4,
        backend: str | None = None,
        warm_start: "str | Path | Sequence[str | Path] | None" = None,
        telemetry: Telemetry | None = None,
        retune: "RetunePolicy | None" = None,
        metrics=None,
        tracer: Tracer | None = None,
        profile: "ProfileConfig | Profiler | None" = None,
    ) -> None:
        """``warm_start`` preloads one or more shipped autotune
        artifacts (see :mod:`repro.autotune`) into the planner's plan
        cache, so swept request classes skip the cold planner search on
        first contact. Manifest drift against the live backend registry
        is reported as warnings, never an error. ``telemetry`` injects
        a shared collector (the default builds a fresh one). ``retune``
        attaches (and starts) a background
        :class:`~repro.autotune.scheduler.RetuneScheduler` driven by
        the given :class:`~repro.autotune.policy.RetunePolicy`, closing
        the serve → autotune loop in-process. ``metrics`` injects a
        :class:`repro.obs.MetricsRegistry` (default: the process-wide
        one); the telemetry, plan cache and scheduler all publish into
        it. ``tracer`` attaches a :class:`repro.obs.Tracer` — requests
        then carry their span tree on ``Response.trace``; the default
        is a disabled tracer (near-zero overhead). ``profile`` attaches
        a sampling profiler (a
        :class:`~repro.obs.profile.ProfileConfig`, or a prebuilt
        :class:`~repro.obs.profile.Profiler` to share across engines):
        batcher dispatch and backend ``execute`` calls then collect
        collapsed-stack samples on ``engine.profiler``; the default is
        the null profiler (one no-op method call per dispatch)."""
        if planner is not None and cache is not None:
            raise ConfigError("pass either a planner or a cache, not both")
        self._device = Device.resolve(device)
        self.backend = resolve_backend(
            backend, op="spmm", device=self._device
        ).name
        self.planner = (
            planner
            if planner is not None
            else ExecutionPlanner(device=self._device, cache=cache)
        )
        #: the warm-start artifact paths (the re-tuning scheduler
        #: drift-checks their manifests against the live registry)
        self.warm_start_paths: tuple[Path, ...] = ()
        if warm_start is not None:
            if isinstance(warm_start, (str, Path)):
                warm_start = [warm_start]
            self.warm_start_paths = tuple(Path(p) for p in warm_start)
            self.planner.warm_start(self.warm_start_paths)
        self.metrics = metrics if metrics is not None else get_registry()
        declare_standard(self.metrics)
        self.tracer = tracer if tracer is not None else Tracer(enabled=False)
        if profile is None:
            self.profiler = NULL_PROFILER
        elif isinstance(profile, Profiler):
            self.profiler = profile
        else:
            self.profiler = Profiler(profile)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.telemetry.bind_metrics(self.metrics)
        self.planner.cache.bind_metrics(self.metrics)
        #: monotonic request ids (also the ticket ids `submit` hands out)
        self._request_ids = itertools.count(1)
        self._batch_ids = itertools.count(1)
        self._sessions: dict[
            str,
            SpmmSession | SddmmSession | AttentionSession | TransformerSession,
        ] = {}
        self._batcher = MicroBatcher(
            self._execute_batch, policy=policy, max_workers=max_workers,
            profiler=self.profiler,
        )
        self._closed = False
        self._inflight: dict[int, RequestHandle] = {}
        self._completed_ids: deque[int] = deque()
        self._inflight_lock = threading.Lock()
        self.retune = None
        if retune is not None:
            # imported lazily: repro.autotune imports the serve modules
            from repro.autotune.scheduler import RetuneScheduler

            self.retune = RetuneScheduler(self, retune)
            self.retune.start()

    #: completed-but-unredeemed tickets kept redeemable by integer id;
    #: beyond this, the oldest are forgotten (callers holding the
    #: RequestHandle itself are unaffected) — bounds the ticket registry
    #: for clients that await handles and never call result()
    COMPLETED_TICKET_LIMIT = 1024

    @property
    def device(self) -> str:
        """Name of the engine's (validated) device profile."""
        return self._device.name

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (closing is irreversible)."""
        return self._closed

    # -- session management --------------------------------------------
    def _make_spmm_session(
        self,
        name: str,
        weights: "np.ndarray | SparseMatrix",
        vector_length: int = 8,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> SpmmSession:
        """Prepare a sparse operand once and serve SpMM against it."""
        self._check_name(name)
        resolved = resolve_backend(
            backend if backend is not None else self.backend,
            op="spmm",
            device=self._device,
        ).name
        if not isinstance(weights, SparseMatrix):
            weights = SparseMatrix.from_dense(
                np.asarray(weights), vector_length=vector_length
            )
        session = SpmmSession(
            self, name, weights,
            objective if objective is not None else Objective.latency(),
            backend=resolved,
        )
        self._sessions[name] = session
        return session

    def _make_sddmm_session(
        self,
        name: str,
        mask: "np.ndarray | SparseMatrix | BCRSMatrix",
        vector_length: int = 8,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> SddmmSession:
        """Prepare a sparse topology once and serve SDDMM against it."""
        self._check_name(name)
        resolved = resolve_backend(
            backend if backend is not None else self.backend,
            op="sddmm",
            device=self._device,
        ).name
        if isinstance(mask, np.ndarray):
            mask = SparseMatrix.from_dense(mask, vector_length=vector_length)
        session = SddmmSession(
            self, name, mask,
            objective if objective is not None else Objective.latency(),
            backend=resolved,
        )
        self._sessions[name] = session
        return session

    def _make_attention_session(
        self, name: str, seq_len: int, **kwargs
    ) -> AttentionSession:
        """Prepare an attention-block latency session.

        The attention path models the paper's quantized Magicube
        pipeline, so its plans must come from a Magicube-family
        backend; the default inherits the engine's backend when that is
        one, else ``magicube-emulation``. Validation runs through the
        shared resolution pipeline.
        """
        self._check_name(name)
        probe = resolve_request(
            AttentionRequest(
                seq_len=seq_len,
                num_heads=kwargs.get("num_heads", 4),
                num_gpus=kwargs.get("num_gpus", 1),
                backend=kwargs.get("backend"),
            ),
            device=self._device,
            backend=self.backend,
        )
        kwargs["backend"] = probe.backend
        session = AttentionSession(self, name, seq_len, **kwargs)
        self._sessions[name] = session
        return session

    def _make_transformer_session(
        self, name: str, **kwargs
    ) -> TransformerSession:
        """Prepare a whole-model transformer session.

        The model + zoo mask are built once here (and memoized across
        sessions with the same spec); the backend must be a
        Magicube-family one — validation runs through the shared
        resolution pipeline, exactly like attention.
        """
        self._check_name(name)
        probe = resolve_request(
            TransformerRequest(
                mode=kwargs.get("mode", "lra-classify"),
                seq_len=kwargs.get("seq_len", 128),
                mask_variant=kwargs.get("mask_variant", "strided"),
                backend=kwargs.get("backend"),
            ),
            device=self._device,
            backend=self.backend,
        )
        kwargs["backend"] = probe.backend
        session = TransformerSession(self, name, **kwargs)
        self._sessions[name] = session
        return session

    def spmm_session(
        self,
        name: str,
        weights: "np.ndarray | SparseMatrix",
        vector_length: int = 8,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> SpmmSession:
        """Prepare a sparse operand once and serve SpMM against it.

        .. deprecated:: v1
            Open a client with ``repro.open_engine(...)`` and submit
            ``repro.api.SpmmRequest(lhs=..., rhs=..., session=name)``;
            the client prepares and reuses the session for you.
        """
        warnings.warn(
            "Engine.spmm_session(...) is deprecated; use "
            "repro.open_engine(...) and submit "
            "repro.api.SpmmRequest(lhs=..., rhs=..., session=...) instead "
            "(see docs/api.md for the migration table)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._make_spmm_session(
            name, weights, vector_length=vector_length,
            objective=objective, backend=backend,
        )

    def attention_session(self, name: str, seq_len: int, **kwargs) -> AttentionSession:
        """Prepare an attention-block latency session.

        .. deprecated:: v1
            Open a client with ``repro.open_engine(...)`` and submit
            ``repro.api.AttentionRequest(seq_len=..., session=name)``;
            the client prepares and reuses the session for you.
        """
        warnings.warn(
            "Engine.attention_session(...) is deprecated; use "
            "repro.open_engine(...) and submit "
            "repro.api.AttentionRequest(seq_len=..., session=...) instead "
            "(see docs/api.md for the migration table)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._make_attention_session(name, seq_len, **kwargs)

    def session(
        self, name: str
    ) -> "SpmmSession | SddmmSession | AttentionSession | TransformerSession":
        return self._sessions[name]

    def _check_name(self, name: str) -> None:
        if name in self._sessions:
            raise ConfigError(f"session {name!r} already exists")

    # -- request intake -------------------------------------------------
    def _begin_request(self, session: str, op: str):
        """Assign the next request id and open its trace (the id is
        also the ticket id ``submit`` hands out, so a trace, a log line
        and a redeemable ticket all name the same request)."""
        request_id = next(self._request_ids)
        return request_id, self.tracer.request(
            op=op, session=session, request_id=request_id
        )

    def _enqueue(
        self,
        session: str,
        key: tuple,
        payload: dict,
        request_id: int | None = None,
        trace=None,
    ) -> Future:
        """Submit to the micro-batcher, accounting admission rejections."""
        if self._closed:
            raise EngineClosedError(
                f"engine is closed; request for session {session!r} refused"
            )
        payload["request_id"] = request_id
        span = None
        if trace:
            payload["trace"] = trace
            span = trace.span(
                "admission", queue_depth=self._batcher.queue_depth(key)
            )
        try:
            future = self._batcher.submit(key, payload)
        except AdmissionError as exc:
            if span is not None:
                span.set(rejected=True).end()
                self.tracer.finish(trace)
            self.telemetry.record_rejection(session)
            if request_id is not None:
                # name the shed request so rejection logs line up with
                # traces and the per-session rejection counters
                raise AdmissionError(f"request #{request_id}: {exc}") from exc
            raise
        if span is not None:
            span.end()
        self.metrics.gauge(
            metric_names.QUEUE_DEPTH, {"session": session}
        ).set(self._batcher.queue_depth(key))
        future._repro_request_id = request_id
        return future

    # -- ticketed client API -------------------------------------------
    def _track(self, future: Future) -> RequestHandle:
        request_id = getattr(future, "_repro_request_id", None)
        if request_id is not None:
            # the ticket id IS the engine's request id
            handle = RequestHandle(request_id, future)
        else:
            handle = self._batcher.wrap(future)
        with self._inflight_lock:
            self._inflight[handle.id] = handle
        future.add_done_callback(
            lambda _f, ticket=handle.id: self._note_completed(ticket)
        )
        return handle

    def _note_completed(self, ticket: int) -> None:
        """Move a resolved ticket to the bounded completed window."""
        with self._inflight_lock:
            if ticket not in self._inflight:
                return  # already redeemed
            self._completed_ids.append(ticket)
            while len(self._completed_ids) > self.COMPLETED_TICKET_LIMIT:
                evicted = self._completed_ids.popleft()
                self._inflight.pop(evicted, None)

    def submit(self, session: str, *args, **kwargs) -> RequestHandle:
        """Enqueue one request on a named session; returns its ticket.

        The ticket is an awaitable :class:`RequestHandle`; redeem it
        with :meth:`result` (also accepted by integer id), ``await`` it
        from asyncio code, or poll ``handle.done()``. Raises
        :class:`~repro.errors.EngineClosedError` once :meth:`close`
        has run.
        """
        if self._closed:
            raise EngineClosedError(
                f"engine is closed; submit({session!r}, ...) refused"
            )
        return self._sessions[session].submit_async(*args, **kwargs)

    def result(
        self, request: "RequestHandle | int", timeout: float | None = None
    ) -> Response:
        """Redeem a ticket from :meth:`submit`; blocks until resolved.

        Tickets that resolved before :meth:`close` stay redeemable;
        unknown tickets raise
        :class:`~repro.errors.EngineClosedError` after close (they can
        never resolve) and :class:`~repro.errors.ConfigError` before.
        """
        if isinstance(request, RequestHandle):
            handle = request
        else:
            with self._inflight_lock:
                handle = self._inflight.get(request)
            if handle is None:
                if self._closed:
                    raise EngineClosedError(
                        f"engine is closed; ticket {request!r} cannot resolve"
                    )
                raise ConfigError(f"unknown request ticket {request!r}")
        try:
            return handle.result(timeout)
        finally:
            if handle.done():
                with self._inflight_lock:
                    self._inflight.pop(handle.id, None)

    def pending_requests(self) -> int:
        """Outstanding tickets issued but not yet redeemed."""
        with self._inflight_lock:
            return sum(1 for h in self._inflight.values() if not h.done())

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Dispatch everything queued without waiting out the policy."""
        self._batcher.flush()

    def retune_status(self) -> "RetuneStatus":
        """The attached re-tuning scheduler's point-in-time status.

        Raises the typed :class:`~repro.errors.RetuneError` when the
        engine was opened without ``retune=`` — polling a scheduler
        that does not exist is a deployment bug, not an empty status.
        """
        if self.retune is None:
            raise RetuneError(
                "engine has no re-tuning scheduler; open it with "
                "repro.open_engine(retune=RetunePolicy(...))"
            )
        return self.retune.status()

    def close(self) -> None:
        """Drain queued work and shut down; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        if self.retune is not None:
            self.retune.stop()
        self._batcher.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- batched execution ---------------------------------------------
    def _finalize_item(
        self,
        item: BatchItem,
        *,
        wall_s: float,
        modelled_s: float,
        batch_id: int,
        batch_size: int,
        plan_key: str | None = None,
        backend: str = "",
        device: str = "",
    ) -> tuple[int | None, dict | None]:
        """Close out one rider's trace: synthesize the queue span (its
        wait was measured by the batcher) and the kernel-launch span,
        retire the trace, and return ``(request_id, span tree)`` for
        the rider's :class:`Response`."""
        payload = item.payload
        request_id = payload.get("request_id")
        trace = payload.get("trace")
        if not trace:
            return request_id, None
        now = trace.now()
        trace.add_span(
            "queue",
            now - wall_s - item.queue_wait_s,
            now - wall_s,
            queue_wait_s=item.queue_wait_s,
            batch_id=batch_id,
        )
        trace.add_span(
            "kernel-launch",
            now - wall_s,
            now,
            modelled_time_s=modelled_s,
            plan_key=plan_key,
            backend=backend,
            device=device,
            batch_id=batch_id,
            batch_size=batch_size,
        )
        self.tracer.finish(trace)
        return request_id, trace.to_dict()

    def _execute_batch(
        self, key: tuple, items: Sequence[BatchItem]
    ) -> list[Response]:
        kind, name = key[0], key[1]
        session = self._sessions[name]
        if kind == "spmm":
            return self._execute_spmm(session, items)
        if kind == "sddmm":
            return self._execute_sddmm(session, items)
        if kind == "attention":
            return self._execute_attention(session, items)
        if kind == "transformer":
            return self._execute_transformer(session, items)
        raise ConfigError(f"unknown request kind {kind!r}")

    def _execute_spmm(
        self, session: SpmmSession, items: Sequence[BatchItem]
    ) -> list[Response]:
        req: SpmmRequest = items[0].payload["request"]
        res: Resolution = items[0].payload["resolution"]
        widths = [item.payload["request"].rhs.shape[1] for item in items]
        rhs = np.concatenate(
            [item.payload["request"].rhs for item in items], axis=1
        )
        if len(items) > 1 and res.plan is not None:
            # the request-level plan fixed the precision; re-tune the
            # tile knobs for the width the coalesced launch actually has
            # (also memoized, keyed by the realized batch width)
            res = session._resolve(
                replace(
                    req,
                    rhs=rhs,
                    precision=None,
                    objective=Objective.fixed(res.plan.l_bits, res.plan.r_bits),
                    l_bits=res.plan.l_bits,
                    r_bits=res.plan.r_bits,
                )
            )
        t0 = time.perf_counter()
        r = execute_resolution(
            res, req, rhs=rhs, metrics=self.metrics, profiler=self.profiler
        )
        wall_s = time.perf_counter() - t0
        batch_id = next(self._batch_ids)
        self.telemetry.record_batch(
            session.name, "spmm", r.time_s, [i.queue_wait_s for i in items],
            backend=res.backend, device=res.device_label,
            plan_key=res.plan.key if res.plan is not None else None,
            predicted_time_s=(
                res.plan.predicted_time_s if res.plan is not None else None
            ),
            shards=res.plan.shards if res.plan is not None else 1,
            wall_time_s=wall_s,
        )
        offsets = np.concatenate([[0], np.cumsum(widths)])
        share = r.time_s / len(items)
        responses = []
        for i, item in enumerate(items):
            request_id, trace = self._finalize_item(
                item, wall_s=wall_s, modelled_s=r.time_s,
                batch_id=batch_id, batch_size=len(items),
                plan_key=res.plan.key if res.plan is not None else None,
                backend=res.backend, device=res.device_label,
            )
            responses.append(Response(
                output=r.output[:, offsets[i]: offsets[i + 1]],
                time_s=r.time_s,
                tops=r.tops,
                stats=r.stats,
                plan=res.plan,
                backend=res.backend,
                device=res.device_label,
                precision=res.precision,
                request_time_s=share,
                queue_wait_s=item.queue_wait_s,
                batch_size=len(items),
                request_id=request_id,
                trace=trace,
            ))
        return responses

    def _execute_sddmm(
        self, session: SddmmSession, items: Sequence[BatchItem]
    ) -> list[Response]:
        # sampled products carry their own dense operands; execute
        # item-by-item under one dispatch (shared telemetry group)
        batch_id = next(self._batch_ids)
        t0 = time.perf_counter()
        results = []
        for item in items:
            req: SddmmRequest = item.payload["request"]
            res: Resolution = item.payload["resolution"]
            item_t0 = time.perf_counter()
            r = execute_resolution(
                res, req, metrics=self.metrics, profiler=self.profiler
            )
            request_id, trace = self._finalize_item(
                item, wall_s=time.perf_counter() - item_t0,
                modelled_s=r.time_s, batch_id=batch_id,
                batch_size=len(items),
                plan_key=res.plan.key if res.plan is not None else None,
                backend=res.backend, device=res.device_label,
            )
            results.append(
                Response(
                    output=r.output,
                    time_s=r.time_s,
                    tops=r.tops,
                    stats=r.stats,
                    plan=res.plan,
                    backend=res.backend,
                    device=res.device_label,
                    precision=res.precision,
                    queue_wait_s=item.queue_wait_s,
                    batch_size=len(items),
                    request_id=request_id,
                    trace=trace,
                )
            )
        res0: Resolution = items[0].payload["resolution"]
        self.telemetry.record_batch(
            session.name, "sddmm", sum(r.time_s for r in results),
            [i.queue_wait_s for i in items],
            backend=res0.backend, device=res0.device_label,
            plan_key=res0.plan.key if res0.plan is not None else None,
            predicted_time_s=(
                res0.plan.predicted_time_s if res0.plan is not None else None
            ),
            shards=res0.plan.shards if res0.plan is not None else 1,
            launches=len(items),  # sampled products execute item-by-item
            wall_time_s=time.perf_counter() - t0,
        )
        return results

    def _execute_attention(
        self, session: AttentionSession, items: Sequence[BatchItem]
    ) -> list[Response]:
        batches = [item.payload["batch"] for item in items]
        total = sum(batches)
        req = session.request(batch=total)
        t0 = time.perf_counter()
        res = resolve_request(req, device=self._device, backend=session.backend)
        r = execute_resolution(
            res, req, batch=total, planner=self.planner, metrics=self.metrics,
            profiler=self.profiler,
        )
        wall_s = time.perf_counter() - t0
        batch_id = next(self._batch_ids)
        self.telemetry.record_batch(
            session.name, "attention", r.time_s,
            [i.queue_wait_s for i in items],
            backend=session.backend, device=self.device,
            wall_time_s=wall_s,
        )
        responses = []
        for b, item in zip(batches, items):
            request_id, trace = self._finalize_item(
                item, wall_s=wall_s, modelled_s=r.time_s,
                batch_id=batch_id, batch_size=len(items),
                backend=res.backend, device=res.device_label,
            )
            responses.append(Response(
                output=None,
                time_s=r.time_s,
                stats=r.stats,
                backend=res.backend,
                device=res.device_label,
                precision=res.precision,
                request_time_s=r.time_s * b / total,
                queue_wait_s=item.queue_wait_s,
                batch_size=len(items),
                request_id=request_id,
                trace=trace,
            ))
        return responses

    def _execute_transformer(
        self, session: TransformerSession, items: Sequence[BatchItem]
    ) -> list[Response]:
        t0 = time.perf_counter()
        if session.mode == "lra-classify":
            ids_list = [item.payload["ids"] for item in items]
            rows = [a.shape[0] for a in ids_list]
            ids = np.concatenate(ids_list, axis=0)
            total = int(ids.shape[0])
            req = session.request(ids=ids)
            res = resolve_request(
                req, device=self._device, backend=session.backend
            )
            r = execute_resolution(
                res, req, ids=ids, planner=self.planner,
                metrics=self.metrics, profiler=self.profiler,
            )
        else:
            rows = [item.payload["batch"] for item in items]
            total = sum(rows)
            req = session.request(batch=total)
            res = resolve_request(
                req, device=self._device, backend=session.backend
            )
            r = execute_resolution(
                res, req, batch=total, planner=self.planner,
                metrics=self.metrics, profiler=self.profiler,
            )
        wall_s = time.perf_counter() - t0
        batch_id = next(self._batch_ids)
        plan_key = r.plan.key if r.plan is not None else None
        launches = (
            session.prepared.launches_per_forward(total)
            if session.mode == "lra-classify"
            else 1
        )
        self.telemetry.record_batch(
            session.name, "transformer", r.time_s,
            [i.queue_wait_s for i in items],
            backend=res.backend, device=res.device_label,
            plan_key=plan_key,
            launches=launches,
            wall_time_s=wall_s,
        )
        offsets = np.concatenate([[0], np.cumsum(rows)])
        responses = []
        for i, item in enumerate(items):
            request_id, trace = self._finalize_item(
                item, wall_s=wall_s, modelled_s=r.time_s,
                batch_id=batch_id, batch_size=len(items),
                plan_key=plan_key,
                backend=res.backend, device=res.device_label,
            )
            output = (
                r.output[offsets[i]: offsets[i + 1]]
                if r.output is not None
                else None
            )
            responses.append(Response(
                output=output,
                time_s=r.time_s,
                stats=r.stats,
                plan=r.plan,
                backend=res.backend,
                device=res.device_label,
                precision=res.precision,
                request_time_s=r.time_s * rows[i] / total,
                queue_wait_s=item.queue_wait_s,
                batch_size=len(items),
                request_id=request_id,
                trace=trace,
            ))
        return responses

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Machine-readable engine state (telemetry + plan cache)."""
        return {
            "device": self.device,
            "backend": self.backend,
            "sessions": {
                name: self.telemetry.summary(name).to_dict()
                for name in self.telemetry.sessions()
            },
            "backends": {
                f"{backend}@{device}":
                    self.telemetry.backend_summary(backend, device).to_dict()
                for backend, device in self.telemetry.backends()
            },
            "rejected": self.telemetry.rejections(),
            "total": self.telemetry.summary().to_dict(),
            "plan_cache": self.planner.cache.stats(),
            "plans": {
                key: self.planner.cache.peek(key).to_dict()
                for key in self.planner.cache.keys()
            },
        }

    def report(self) -> str:
        """The human-readable telemetry block."""
        return self.telemetry.render(self.planner.cache.stats())
