"""The serving engine: prepared sessions + planned, batched dispatch.

An :class:`Engine` owns

- an :class:`~repro.serve.planner.ExecutionPlanner` (with its
  :class:`~repro.serve.cache.PlanCache`),
- a :class:`~repro.serve.batcher.MicroBatcher` + thread pool, and
- :class:`~repro.serve.telemetry.Telemetry`.

The engine is **device- and backend-aware**: its ``device`` argument is
validated into a :class:`~repro.runtime.Device` handle, and each
session pins one resolved :mod:`repro.runtime` backend (the registry's
priority-ordered fallback for the device unless named explicitly), so
every plan and every launch of that session stays on one execution
stack — ``backend="magicube-strict"`` serves bit-level verified
outputs, for example.

Sessions are the prepared-model handles: an :class:`SpmmSession` wraps a
:class:`~repro.core.api.SparseMatrix` built **once** (the SR-BCRS
conversions are memoized per stride on the matrix itself), an
:class:`AttentionSession` a sparse-Transformer attention block routed
through the planner. ``session.submit(...)`` enqueues a request and
returns a future; ``session.submit_async(...)`` (or the engine-level
``engine.submit(name, ...)`` / ``engine.result(ticket)`` client API)
returns an awaitable ticketed :class:`~repro.serve.batcher
.RequestHandle`. Same-shape requests coalesce into one batched kernel
launch. Outputs are bit-identical to the direct
:func:`repro.core.api.spmm` path — batching concatenates RHS columns,
which the integer kernels process independently.
"""

from __future__ import annotations

import threading
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.api import SparseMatrix, spmm as api_spmm
from repro.errors import AdmissionError, ConfigError, ShapeError
from repro.lowp.quantize import int_range
from repro.runtime import DEFAULT_BACKEND, Device, get_backend, resolve_backend
from repro.serve.batcher import BatchItem, BatchPolicy, MicroBatcher, RequestHandle
from repro.serve.cache import PlanCache
from repro.serve.planner import ExecutionPlanner, Objective, Plan
from repro.serve.telemetry import Telemetry

#: operand widths a request can be classified into (Table IV sides)
_LHS_WIDTHS = (4, 8, 12, 16)
_RHS_WIDTHS = (4, 8, 16)


def bits_required(values: np.ndarray, signed: bool = True) -> int:
    """Smallest Table-IV operand width that holds every value."""
    values = np.asarray(values)
    lo = int(values.min()) if values.size else 0
    hi = int(values.max()) if values.size else 0
    for bits in _LHS_WIDTHS:
        blo, bhi = int_range(bits, signed)
        if blo <= lo and hi <= bhi:
            return bits
    raise ConfigError(f"values [{lo}, {hi}] exceed 16-bit range")


@dataclass
class ServeResult:
    """What one served request resolves to.

    ``modelled_time_s`` is the batched launch's modelled kernel time
    (every rider experiences it); ``request_time_s`` the request's
    amortized share. ``output`` is None for attention requests (the
    attention path is the paper's latency model — its deliverable is
    ``detail``, a :class:`~repro.transformer.inference.LatencyResult`).
    """

    output: np.ndarray | None
    plan: Plan | None
    modelled_time_s: float
    request_time_s: float
    queue_wait_s: float
    batch_size: int
    detail: object = None


class SpmmSession:
    """A prepared sparse operand serving SpMM requests on one backend."""

    def __init__(
        self,
        engine: "Engine",
        name: str,
        matrix: SparseMatrix,
        objective: Objective,
        backend: str,
    ) -> None:
        self.engine = engine
        self.name = name
        self.matrix = matrix
        self.objective = objective
        self.backend = backend
        self.weight_bits = bits_required(matrix.bcrs.values, signed=True)

    def plan_for(self, n: int, r_bits: int) -> Plan:
        """The (cached) plan serving requests with an (K, n) RHS."""
        m, k = self.matrix.shape
        obj = self.objective.with_min_bits(self.weight_bits, r_bits)
        return self.engine.planner.plan_spmm(
            m, k, n, self.matrix.vector_length, self.matrix.sparsity, obj,
            backend=self.backend,
        )

    def submit(self, rhs: np.ndarray, r_bits: int | None = None) -> Future:
        """Enqueue one SpMM request; resolves to a :class:`ServeResult`."""
        rhs = np.asarray(rhs)
        if rhs.ndim != 2 or rhs.shape[0] != self.matrix.shape[1]:
            raise ShapeError(
                f"RHS must be ({self.matrix.shape[1]}, N), got {rhs.shape}"
            )
        if r_bits is None:
            needed = bits_required(rhs, signed=True)
            r_bits = next(w for w in _RHS_WIDTHS if w >= needed)
        plan = self.plan_for(rhs.shape[1], r_bits)
        key = ("spmm", self.name, rhs.shape[1], plan.precision)
        return self.engine._enqueue(self.name, key, {"rhs": rhs, "plan": plan})

    def submit_async(
        self, rhs: np.ndarray, r_bits: int | None = None
    ) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(rhs, r_bits=r_bits))

    def run(self, rhs: np.ndarray, r_bits: int | None = None) -> ServeResult:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(rhs, r_bits=r_bits).result()


class AttentionSession:
    """A sparse-Transformer attention block served via planner routing.

    Requests are modelled forward passes (the paper's Fig. 17 latency
    pipeline); same-(seq, heads) requests coalesce by summing their
    batch dimensions into one launch.
    """

    def __init__(
        self,
        engine: "Engine",
        name: str,
        seq_len: int,
        num_heads: int = 4,
        sparsity: float = 0.9,
        scheme: tuple[int, int] = (8, 8),
        vector_length: int = 8,
        num_layers: int = 4,
        d_head: int = 64,
        backend: str = "magicube-emulation",
    ) -> None:
        self.engine = engine
        self.name = name
        self.seq_len = seq_len
        self.num_heads = num_heads
        self.sparsity = sparsity
        self.scheme = scheme
        self.vector_length = vector_length
        self.num_layers = num_layers
        self.d_head = d_head
        self.backend = backend

    def submit(self, batch: int = 1) -> Future:
        """Enqueue one forward-pass request of ``batch`` sequences."""
        if batch < 1:
            raise ConfigError(f"batch must be >= 1, got {batch}")
        key = ("attention", self.name)
        return self.engine._enqueue(self.name, key, {"batch": batch})

    def submit_async(self, batch: int = 1) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle."""
        return self.engine._track(self.submit(batch=batch))

    def run(self, batch: int = 1) -> ServeResult:
        return self.submit(batch=batch).result()


class Engine:
    """Batched serving engine over the runtime backend registry."""

    def __init__(
        self,
        device: "Device | str" = "A100",
        planner: ExecutionPlanner | None = None,
        cache: PlanCache | None = None,
        policy: BatchPolicy | None = None,
        max_workers: int = 4,
        backend: str | None = None,
        warm_start: "str | Path | Sequence[str | Path] | None" = None,
    ) -> None:
        """``warm_start`` preloads one or more shipped autotune
        artifacts (see :mod:`repro.autotune`) into the planner's plan
        cache, so swept request classes skip the cold planner search on
        first contact. Manifest drift against the live backend registry
        is reported as warnings, never an error."""
        if planner is not None and cache is not None:
            raise ConfigError("pass either a planner or a cache, not both")
        self._device = Device.resolve(device)
        self.backend = resolve_backend(
            backend, op="spmm", device=self._device
        ).name
        self.planner = (
            planner
            if planner is not None
            else ExecutionPlanner(device=self._device, cache=cache)
        )
        if warm_start is not None:
            self.planner.warm_start(warm_start)
        self.telemetry = Telemetry()
        self._sessions: dict[str, SpmmSession | AttentionSession] = {}
        self._batcher = MicroBatcher(
            self._execute_batch, policy=policy, max_workers=max_workers
        )
        self._inflight: dict[int, RequestHandle] = {}
        self._completed_ids: deque[int] = deque()
        self._inflight_lock = threading.Lock()

    #: completed-but-unredeemed tickets kept redeemable by integer id;
    #: beyond this, the oldest are forgotten (callers holding the
    #: RequestHandle itself are unaffected) — bounds the ticket registry
    #: for clients that await handles and never call result()
    COMPLETED_TICKET_LIMIT = 1024

    @property
    def device(self) -> str:
        """Name of the engine's (validated) device profile."""
        return self._device.name

    # -- session management --------------------------------------------
    def spmm_session(
        self,
        name: str,
        weights: np.ndarray | SparseMatrix,
        vector_length: int = 8,
        objective: Objective | None = None,
        backend: str | None = None,
    ) -> SpmmSession:
        """Prepare a sparse operand once and serve SpMM against it.

        ``backend`` pins a registered runtime backend for every plan and
        launch of this session; the default inherits the engine's
        resolved backend.
        """
        self._check_name(name)
        resolved = resolve_backend(
            backend if backend is not None else self.backend,
            op="spmm",
            device=self._device,
        ).name
        if not isinstance(weights, SparseMatrix):
            weights = SparseMatrix.from_dense(
                np.asarray(weights), vector_length=vector_length
            )
        session = SpmmSession(
            self, name, weights,
            objective if objective is not None else Objective.latency(),
            backend=resolved,
        )
        self._sessions[name] = session
        return session

    def attention_session(self, name: str, seq_len: int, **kwargs) -> AttentionSession:
        """Prepare an attention-block latency session.

        The attention path models the paper's quantized Magicube
        pipeline, so its plans must come from a Magicube-family
        backend; the default inherits the engine's backend when that is
        one, else ``magicube-emulation``.
        """
        self._check_name(name)
        kwargs.setdefault(
            "backend",
            self.backend if self.backend.startswith("magicube") else DEFAULT_BACKEND,
        )
        if not kwargs["backend"].startswith("magicube"):
            raise ConfigError(
                f"attention sessions model the Magicube pipeline; backend "
                f"{kwargs['backend']!r} cannot plan it"
            )
        session = AttentionSession(self, name, seq_len, **kwargs)
        self._sessions[name] = session
        return session

    def session(self, name: str) -> SpmmSession | AttentionSession:
        return self._sessions[name]

    def _check_name(self, name: str) -> None:
        if name in self._sessions:
            raise ConfigError(f"session {name!r} already exists")

    # -- request intake -------------------------------------------------
    def _enqueue(self, session: str, key: tuple, payload: dict) -> Future:
        """Submit to the micro-batcher, accounting admission rejections."""
        try:
            return self._batcher.submit(key, payload)
        except AdmissionError:
            self.telemetry.record_rejection(session)
            raise

    # -- ticketed client API -------------------------------------------
    def _track(self, future: Future) -> RequestHandle:
        handle = self._batcher.wrap(future)
        with self._inflight_lock:
            self._inflight[handle.id] = handle
        future.add_done_callback(
            lambda _f, ticket=handle.id: self._note_completed(ticket)
        )
        return handle

    def _note_completed(self, ticket: int) -> None:
        """Move a resolved ticket to the bounded completed window."""
        with self._inflight_lock:
            if ticket not in self._inflight:
                return  # already redeemed
            self._completed_ids.append(ticket)
            while len(self._completed_ids) > self.COMPLETED_TICKET_LIMIT:
                evicted = self._completed_ids.popleft()
                self._inflight.pop(evicted, None)

    def submit(self, session: str, *args, **kwargs) -> RequestHandle:
        """Enqueue one request on a named session; returns its ticket.

        The ticket is an awaitable :class:`RequestHandle`; redeem it
        with :meth:`result` (also accepted by integer id), ``await`` it
        from asyncio code, or poll ``handle.done()``.
        """
        return self._sessions[session].submit_async(*args, **kwargs)

    def result(
        self, request: "RequestHandle | int", timeout: float | None = None
    ) -> ServeResult:
        """Redeem a ticket from :meth:`submit`; blocks until resolved."""
        if isinstance(request, RequestHandle):
            handle = request
        else:
            with self._inflight_lock:
                handle = self._inflight.get(request)
            if handle is None:
                raise ConfigError(f"unknown request ticket {request!r}")
        try:
            return handle.result(timeout)
        finally:
            if handle.done():
                with self._inflight_lock:
                    self._inflight.pop(handle.id, None)

    def pending_requests(self) -> int:
        """Outstanding tickets issued but not yet redeemed."""
        with self._inflight_lock:
            return sum(1 for h in self._inflight.values() if not h.done())

    # -- lifecycle ------------------------------------------------------
    def flush(self) -> None:
        """Dispatch everything queued without waiting out the policy."""
        self._batcher.flush()

    def close(self) -> None:
        self._batcher.close()

    def __enter__(self) -> "Engine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- batched execution ---------------------------------------------
    def _execute_batch(
        self, key: tuple, items: Sequence[BatchItem]
    ) -> list[ServeResult]:
        kind, name = key[0], key[1]
        session = self._sessions[name]
        if kind == "spmm":
            return self._execute_spmm(session, items)
        if kind == "attention":
            return self._execute_attention(session, items)
        raise ConfigError(f"unknown request kind {kind!r}")

    def _execute_spmm(
        self, session: SpmmSession, items: Sequence[BatchItem]
    ) -> list[ServeResult]:
        plan: Plan = items[0].payload["plan"]
        widths = [item.payload["rhs"].shape[1] for item in items]
        rhs = np.concatenate([item.payload["rhs"] for item in items], axis=1)
        if len(items) > 1:
            # the request-level plan fixed the precision; re-tune the
            # tile knobs for the width the coalesced launch actually has
            # (also memoized, keyed by the realized batch width)
            m, k = session.matrix.shape
            plan = self.planner.plan_spmm(
                m, k, rhs.shape[1], session.matrix.vector_length,
                session.matrix.sparsity,
                Objective.fixed(plan.l_bits, plan.r_bits),
                backend=session.backend,
            )
        if plan.is_magicube:
            res = api_spmm(
                session.matrix, rhs, device=self._device,
                config=plan.spmm_config(), backend=plan.backend,
            )
        else:
            # non-magicube plans (vector-sparse on V100, a pinned
            # baseline...) dispatch through the Backend protocol; their
            # configs carry no Magicube kernel knobs
            res = get_backend(plan.backend).execute(
                "spmm", self._device, lhs=session.matrix, rhs=rhs
            )
        self.telemetry.record_batch(
            session.name, "spmm", res.time_s, [i.queue_wait_s for i in items],
            backend=plan.backend, device=plan.device,
        )
        offsets = np.concatenate([[0], np.cumsum(widths)])
        share = res.time_s / len(items)
        return [
            ServeResult(
                output=res.output[:, offsets[i]: offsets[i + 1]],
                plan=plan,
                modelled_time_s=res.time_s,
                request_time_s=share,
                queue_wait_s=item.queue_wait_s,
                batch_size=len(items),
                detail=res.stats,
            )
            for i, item in enumerate(items)
        ]

    def _execute_attention(
        self, session: AttentionSession, items: Sequence[BatchItem]
    ) -> list[ServeResult]:
        # imported lazily: repro.transformer.inference imports
        # repro.serve.topology, so a top-level import here would cycle
        from repro.transformer.inference import (
            Backend,
            InferenceConfig,
            estimate_latency,
        )

        batches = [item.payload["batch"] for item in items]
        total = sum(batches)
        cfg = InferenceConfig(
            seq_len=session.seq_len,
            num_heads=session.num_heads,
            batch=total,
            sparsity=session.sparsity,
            num_layers=session.num_layers,
            d_head=session.d_head,
            vector_length=session.vector_length,
            device=self.device,
        )
        backend = Backend("magicube", *session.scheme)
        res = estimate_latency(
            cfg, backend, planner=self.planner, plan_backend=session.backend
        )
        self.telemetry.record_batch(
            session.name, "attention", res.total_s,
            [i.queue_wait_s for i in items],
            backend=session.backend, device=self.device,
        )
        return [
            ServeResult(
                output=None,
                plan=None,
                modelled_time_s=res.total_s,
                request_time_s=res.total_s * b / total,
                queue_wait_s=item.queue_wait_s,
                batch_size=len(items),
                detail=res,
            )
            for b, item in zip(batches, items)
        ]

    # -- reporting ------------------------------------------------------
    def summary(self) -> dict:
        """Machine-readable engine state (telemetry + plan cache)."""
        return {
            "device": self.device,
            "backend": self.backend,
            "sessions": {
                name: self.telemetry.summary(name).to_dict()
                for name in self.telemetry.sessions()
            },
            "backends": {
                f"{backend}@{device}":
                    self.telemetry.backend_summary(backend, device).to_dict()
                for backend, device in self.telemetry.backends()
            },
            "rejected": self.telemetry.rejections(),
            "total": self.telemetry.summary().to_dict(),
            "plan_cache": self.planner.cache.stats(),
            "plans": {
                key: self.planner.cache.peek(key).to_dict()
                for key in self.planner.cache.keys()
            },
        }

    def report(self) -> str:
        """The human-readable telemetry block."""
        return self.telemetry.render(self.planner.cache.stats())
