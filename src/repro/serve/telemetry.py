"""Serving telemetry: latency percentiles, throughput, batch occupancy.

Latencies are the *modelled* kernel times (the library's calibrated
A100 cost model) — every request in a batch experiences its batch's
launch time. Throughput comes in two flavours: modelled (requests per
second of modelled GPU busy time, the number a real deployment would
see from the device) and wall (requests per second of host wall time in
this process, dominated by the Python execution of the kernels).

Batches are aggregated along three axes: per *session* (the serving
view), per ``(backend, device)`` (the runtime view) — the same axes
the autotuner sweeps on, so an offline sweep report and a live serving
report line up column for column — and per *plan key* (the tuning
view the re-tuning scheduler consumes). Admission-control rejections
are counted per session alongside the served requests.

:meth:`Telemetry.snapshot` exports the deterministic part of all three
views as a :class:`TelemetrySnapshot` — the stable contract the
:mod:`repro.autotune.scheduler` (and the offline ``repro autotune
watch`` command) make re-tuning decisions from.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.ioutil import atomic_write_text


class _Reservoir:
    """A bounded, deterministic sample of an unbounded value stream.

    Running ``count``/``total`` stay exact forever. The retained
    ``values`` are a systematic sample: every ``stride``-th observation
    is kept, and when the buffer exceeds ``cap`` it is thinned to every
    other element (``values[::2]``) and the stride doubles — kept
    positions stay multiples of the new stride, so two identical
    recordings always retain identical samples. While ``stride == 1``
    (up to ``cap`` observations) the sample *is* the full stream and
    percentiles computed from it are exact — which keeps
    :class:`TelemetrySnapshot` byte-identical to the historical
    unbounded-list behaviour for every bounded workload; past the cap,
    percentiles degrade gracefully to estimates over ~``cap/2`` evenly
    spaced observations instead of the process growing without bound.
    """

    __slots__ = ("cap", "stride", "count", "total", "values")

    #: retained samples stay in (CAP/2, CAP]; at 4096 float64s that is
    #: at most 32 KiB per series, forever
    CAP = 4096

    def __init__(self, cap: int = CAP) -> None:
        self.cap = cap
        self.stride = 1
        self.count = 0
        self.total = 0.0
        self.values: list[float] = []

    def add(self, v: float) -> None:
        if self.count % self.stride == 0:
            self.values.append(v)
            if len(self.values) > self.cap:
                self.values = self.values[::2]
                self.stride *= 2
        self.count += 1
        self.total += v

    @property
    def exact(self) -> bool:
        """Whether ``values`` still holds every observation."""
        return self.stride == 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class _SessionStats:
    latencies_s: _Reservoir = field(default_factory=_Reservoir)  # per request
    queue_waits_s: _Reservoir = field(default_factory=_Reservoir)  # per request
    batch_sizes: _Reservoir = field(default_factory=_Reservoir)  # per batch
    batch_times_s: _Reservoir = field(default_factory=_Reservoir)  # per batch
    ops: set = field(default_factory=set)


@dataclass
class _PlanStats:
    """Traffic served under one plan key (the scheduler's unit)."""

    requests: int = 0
    batches: int = 0
    launches: int = 0  # kernel launches (SDDMM batches run item-by-item)
    modelled_busy_s: float = 0.0
    predicted_time_s: float = 0.0  # the plan's recorded cost estimate
    backend: str = ""
    device: str = ""
    shards: int = 1  # tensor-parallel width the plan elected (1 = unsharded)

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "launches": self.launches,
            "modelled_busy_s": self.modelled_busy_s,
            "predicted_time_s": self.predicted_time_s,
            "backend": self.backend,
            "device": self.device,
            "shards": self.shards,
        }


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated view of one session (or the whole engine)."""

    requests: int
    batches: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch_size: float
    mean_queue_wait_ms: float
    modelled_busy_s: float
    modelled_throughput_rps: float
    wall_s: float
    wall_throughput_rps: float

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_batch_size": self.mean_batch_size,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "modelled_busy_s": self.modelled_busy_s,
            "modelled_throughput_rps": self.modelled_throughput_rps,
            "wall_s": self.wall_s,
            "wall_throughput_rps": self.wall_throughput_rps,
        }


#: LatencySummary fields that depend only on what was *recorded* (the
#: wall-clock fields change between two snapshot() calls and are
#: therefore excluded from the deterministic export)
_STABLE_FIELDS = (
    "requests", "batches", "p50_ms", "p95_ms", "p99_ms",
    "mean_batch_size", "mean_queue_wait_ms", "modelled_busy_s",
    "modelled_throughput_rps",
)


def _stable(summary: LatencySummary) -> dict:
    """The deterministic subset of one summary (no wall-clock fields)."""
    d = summary.to_dict()
    return {k: d[k] for k in _STABLE_FIELDS}


@dataclass(frozen=True)
class TelemetrySnapshot:
    """A deterministic, JSON-round-trippable export of one telemetry
    state — the re-tuning scheduler's input contract.

    ``sessions`` / ``backends`` hold the same aggregates the rendered
    summary tables show (``backends`` keyed ``backend@device``),
    *minus* the wall-clock fields, so the same recorded batches always
    produce an identical snapshot. ``plans`` breaks traffic out per
    plan key — requests, batches, modelled busy time, and the plan's
    recorded cost estimate (``predicted_time_s``), which is what lets
    a scheduler spot latency regressions. :attr:`fingerprint` is a
    short content hash; promotion manifests use it to name the
    snapshot that triggered a re-tune.

    Example::

        telemetry = Telemetry()
        telemetry.record_batch("ffn", "spmm", 1e-3, [0.0, 0.0])
        snap = telemetry.snapshot()
        assert TelemetrySnapshot.from_json(snap.to_json()) == snap
    """

    requests: int
    sessions: dict
    backends: dict
    plans: dict
    rejections: dict
    total: dict

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "sessions": dict(self.sessions),
            "backends": dict(self.backends),
            "plans": dict(self.plans),
            "rejections": dict(self.rejections),
            "total": dict(self.total),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "TelemetrySnapshot":
        return cls(
            requests=int(d.get("requests", 0)),
            sessions=dict(d.get("sessions", {})),
            backends=dict(d.get("backends", {})),
            plans=dict(d.get("plans", {})),
            rejections=dict(d.get("rejections", {})),
            total=dict(d.get("total", {})),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TelemetrySnapshot":
        return cls.from_dict(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the snapshot as JSON (the ``repro autotune watch``
        input file); returns the path written.

        The write is atomic (:func:`repro.ioutil.atomic_write_text`):
        a watcher polling the file from another process sees the old
        or the new snapshot, never a torn one — the same contract as
        :meth:`~repro.serve.cache.PlanCache.save`.
        """
        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: "str | Path") -> "TelemetrySnapshot":
        return cls.from_json(Path(path).read_text())

    # -- identity --------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Short content hash naming this snapshot in provenance
        manifests (identical recorded state ⇒ identical fingerprint)."""
        canon = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode()).hexdigest()[:12]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TelemetrySnapshot):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self) -> int:  # frozen dataclass with dict fields
        return hash(self.fingerprint)


class Telemetry:
    """Thread-safe per-session aggregation of serving metrics.

    ``metrics`` (or a later :meth:`bind_metrics`) attaches a
    :class:`repro.obs.MetricsRegistry`; every recorded batch and
    rejection is then also published as the standard counters and
    histograms (see :mod:`repro.obs.names`), which is how the scrape /
    replay-bench view stays consistent with the rendered tables.
    """

    def __init__(self, metrics=None) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, _SessionStats] = {}
        self._backends: dict[tuple[str, str], _SessionStats] = {}
        self._plans: dict[str, _PlanStats] = {}
        self._rejections: dict[str, int] = {}
        self._started_at = time.monotonic()
        self.metrics = metrics

    def bind_metrics(self, registry) -> None:
        """Publish all future recordings into ``registry`` as well."""
        self.metrics = registry

    # ------------------------------------------------------------------
    def record_batch(
        self,
        session: str,
        op: str,
        modelled_time_s: float,
        queue_waits_s: list[float],
        backend: str | None = None,
        device: str | None = None,
        plan_key: str | None = None,
        predicted_time_s: float | None = None,
        launches: int = 1,
        wall_time_s: float | None = None,
        shards: int = 1,
    ) -> None:
        """Record one batched launch serving ``len(queue_waits_s)`` requests.

        ``backend``/``device`` attribute the launch to one runtime
        execution stack; batches recorded without them only show up in
        the per-session view. ``plan_key`` attributes it to the serving
        plan that routed it (with ``predicted_time_s``, the plan's cost
        estimate) — the per-plan view the re-tuning scheduler consumes.
        ``launches`` is how many kernel launches ``modelled_time_s``
        spans (SDDMM dispatches execute item-by-item), so observed
        per-launch time stays comparable to the plan's estimate.
        ``wall_time_s`` is the host wall time of the batch execution;
        when given (and a metrics registry is bound), each rider's
        wall latency — queue wait + execution — feeds the
        ``repro_request_wall_seconds`` histogram. ``shards`` is the
        plan's tensor-parallel width (``Plan.shards``; 1 = unsharded),
        recorded per plan key so the scheduler view shows which keys a
        sharded plan is carrying.
        """
        n = len(queue_waits_s)
        with self._lock:
            buckets = [self._sessions.setdefault(session, _SessionStats())]
            if backend is not None and device is not None:
                buckets.append(
                    self._backends.setdefault((backend, device), _SessionStats())
                )
            for s in buckets:
                s.ops.add(op)
                s.batch_sizes.add(n)
                s.batch_times_s.add(modelled_time_s)
                for w in queue_waits_s:
                    s.latencies_s.add(modelled_time_s)
                    s.queue_waits_s.add(w)
            if plan_key is not None:
                p = self._plans.setdefault(plan_key, _PlanStats())
                p.requests += n
                p.batches += 1
                p.launches += max(1, launches)
                p.modelled_busy_s += modelled_time_s
                if predicted_time_s is not None:
                    p.predicted_time_s = predicted_time_s
                if backend is not None:
                    p.backend = backend
                if device is not None:
                    p.device = device
                p.shards = max(1, shards)
        if self.metrics is not None:
            self._publish_batch(
                session, n, modelled_time_s, queue_waits_s, launches,
                wall_time_s,
            )

    def _publish_batch(
        self, session, n, modelled_time_s, queue_waits_s, launches, wall_time_s
    ) -> None:
        """Mirror one recorded batch into the bound metrics registry."""
        from repro.obs import names

        m = self.metrics
        m.counter(names.REQUESTS, {"session": session}).inc(n)
        m.counter(names.BATCHES, {"session": session}).inc()
        m.counter(names.LAUNCHES, {"session": session}).inc(max(1, launches))
        m.histogram(names.BATCH_SIZE).observe(n)
        modelled = m.histogram(names.REQUEST_MODELLED)
        waits = m.histogram(names.QUEUE_WAIT)
        wall = m.histogram(names.REQUEST_WALL)
        for w in queue_waits_s:
            modelled.observe(modelled_time_s)
            waits.observe(w)
            if wall_time_s is not None:
                wall.observe(w + wall_time_s)

    def record_rejection(self, session: str, count: int = 1) -> None:
        """Count ``count`` admission-control rejections against a session."""
        with self._lock:
            self._rejections[session] = self._rejections.get(session, 0) + count
        if self.metrics is not None:
            from repro.obs import names

            self.metrics.counter(
                names.REJECTIONS, {"session": session}
            ).inc(count)

    def rejections(self, session: str | None = None) -> int:
        """Rejected requests for one session, or in total."""
        with self._lock:
            if session is None:
                return sum(self._rejections.values())
            return self._rejections.get(session, 0)

    # ------------------------------------------------------------------
    def sessions(self) -> list[str]:
        """Every session seen — including ones whose every request was
        rejected, so a fully-throttled session stays visible in the
        report instead of vanishing while the TOTAL rejected count
        grows."""
        with self._lock:
            return sorted(set(self._sessions) | set(self._rejections))

    def backends(self) -> list[tuple[str, str]]:
        """Every ``(backend, device)`` pair that served at least one batch."""
        with self._lock:
            return sorted(self._backends)

    def plans(self) -> list[str]:
        """Every plan key that routed at least one batch."""
        with self._lock:
            return sorted(self._plans)

    def reset_plans(self, keys: Iterable[str]) -> None:
        """Drop the per-plan stats for ``keys`` (session/backend views
        are untouched). The re-tuning scheduler calls this when a
        promotion *changes* a key's plan: the old observations describe
        the replaced plan, so regression decisions must restart from
        post-promotion traffic."""
        with self._lock:
            for key in keys:
                self._plans.pop(key, None)

    def snapshot(self) -> TelemetrySnapshot:
        """Export the deterministic state as a :class:`TelemetrySnapshot`.

        The snapshot carries exactly the values the rendered summary
        tables show (minus the wall-clock columns) plus the per-plan
        traffic breakdown — identical recorded batches always produce
        an identical snapshot, so schedulers can compare fingerprints
        across polls.
        """
        with self._lock:
            sessions = {
                name: _stable(self._summarize([stats]))
                for name, stats in self._sessions.items()
            }
            backends = {
                f"{backend}@{device}": _stable(self._summarize([stats]))
                for (backend, device), stats in self._backends.items()
            }
            plans = {key: p.to_dict() for key, p in self._plans.items()}
            rejections = dict(self._rejections)
            total = _stable(self._summarize(list(self._sessions.values())))
        return TelemetrySnapshot(
            requests=total["requests"],
            sessions=sessions,
            backends=backends,
            plans=plans,
            rejections=rejections,
            total=total,
        )

    def summary(self, session: str | None = None) -> LatencySummary:
        """Aggregate one session, or everything when ``session`` is None."""
        with self._lock:
            if session is None:
                stats = list(self._sessions.values())
            else:
                stats = [self._sessions.get(session, _SessionStats())]
            return self._summarize(stats)

    def backend_summary(self, backend: str, device: str) -> LatencySummary:
        """Aggregate everything one ``(backend, device)`` pair served."""
        with self._lock:
            stats = [self._backends.get((backend, device), _SessionStats())]
            return self._summarize(stats)

    @staticmethod
    def _mean(reservoirs: list[_Reservoir]) -> float:
        """Exact mean while every reservoir is complete (the historical
        ``np.mean`` over the raw lists, bit for bit), running-total mean
        once any stream has been thinned."""
        if not reservoirs or not any(r.count for r in reservoirs):
            return 0.0
        if all(r.exact for r in reservoirs):
            return float(np.mean([v for r in reservoirs for v in r.values]))
        total = sum(r.total for r in reservoirs)
        count = sum(r.count for r in reservoirs)
        return float(total / count)

    def _summarize(self, stats: list[_SessionStats]) -> LatencySummary:
        """Aggregate a list of stat buckets (call with lock held).

        Request/batch counts and totals come from the reservoirs'
        running aggregates (exact at any traffic volume); percentiles
        come from the retained samples — the full stream below the
        reservoir cap, an evenly spaced sample above it.
        """
        latencies = np.array(
            [t for s in stats for t in s.latencies_s.values], dtype=np.float64
        )
        n = sum(s.latencies_s.count for s in stats)
        batches = sum(s.batch_sizes.count for s in stats)
        busy = float(sum(s.batch_times_s.total for s in stats))
        wall = time.monotonic() - self._started_at
        if n == 0:
            return LatencySummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, wall, 0.0)
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99]) * 1e3
        return LatencySummary(
            requests=int(n),
            batches=batches,
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            mean_batch_size=self._mean([s.batch_sizes for s in stats]),
            mean_queue_wait_ms=self._mean(
                [s.queue_waits_s for s in stats]
            ) * 1e3,
            modelled_busy_s=busy,
            modelled_throughput_rps=float(n / busy) if busy > 0 else 0.0,
            wall_s=wall,
            wall_throughput_rps=float(n / wall) if wall > 0 else 0.0,
        )

    def render(self, plan_cache_stats: dict | None = None) -> str:
        """Plain-text report (the ``--demo`` output)."""
        from repro.bench.report import render_table

        headers = [
            "session", "requests", "rejected", "batches", "mean batch",
            "p50 ms", "p95 ms", "p99 ms", "model req/s",
        ]
        rows = []
        for name in self.sessions() + [None]:
            s = self.summary(name)
            rows.append([
                name if name is not None else "TOTAL",
                s.requests,
                self.rejections(name),
                s.batches,
                f"{s.mean_batch_size:.2f}",
                f"{s.p50_ms:.4f}",
                f"{s.p95_ms:.4f}",
                f"{s.p99_ms:.4f}",
                f"{s.modelled_throughput_rps:.0f}",
            ])
        lines = [render_table(headers, rows, title="-- serving telemetry --")]
        pairs = self.backends()
        if pairs:
            brows = []
            for backend, device in pairs:
                s = self.backend_summary(backend, device)
                brows.append([
                    backend,
                    device,
                    s.requests,
                    s.batches,
                    f"{s.p50_ms:.4f}",
                    f"{s.p95_ms:.4f}",
                    f"{s.p99_ms:.4f}",
                    f"{s.modelled_throughput_rps:.0f}",
                ])
            lines.append(render_table(
                ["backend", "device", "requests", "batches",
                 "p50 ms", "p95 ms", "p99 ms", "model req/s"],
                brows, title="-- per-backend telemetry --",
            ))
        total = self.summary()
        lines.append(
            f"wall: {total.wall_s:.2f}s ({total.wall_throughput_rps:.0f} req/s host); "
            f"modelled GPU busy: {total.modelled_busy_s * 1e3:.3f} ms"
        )
        if plan_cache_stats is not None:
            lines.append(
                "plan cache: {entries} plans, {hits} hits / {misses} misses "
                "(hit rate {hit_rate:.1%})".format(**plan_cache_stats)
            )
        return "\n".join(lines)
