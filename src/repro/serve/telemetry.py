"""Serving telemetry: latency percentiles, throughput, batch occupancy.

Latencies are the *modelled* kernel times (the library's calibrated
A100 cost model) — every request in a batch experiences its batch's
launch time. Throughput comes in two flavours: modelled (requests per
second of modelled GPU busy time, the number a real deployment would
see from the device) and wall (requests per second of host wall time in
this process, dominated by the Python execution of the kernels).

Batches are aggregated along two axes: per *session* (the serving
view) and per ``(backend, device)`` (the runtime view) — the same axes
the autotuner sweeps on, so an offline sweep report and a live serving
report line up column for column. Admission-control rejections are
counted per session alongside the served requests.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np


@dataclass
class _SessionStats:
    latencies_s: list = field(default_factory=list)  # per request
    queue_waits_s: list = field(default_factory=list)  # per request
    batch_sizes: list = field(default_factory=list)  # per batch
    batch_times_s: list = field(default_factory=list)  # per batch (modelled)
    ops: set = field(default_factory=set)


@dataclass(frozen=True)
class LatencySummary:
    """Aggregated view of one session (or the whole engine)."""

    requests: int
    batches: int
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch_size: float
    mean_queue_wait_ms: float
    modelled_busy_s: float
    modelled_throughput_rps: float
    wall_s: float
    wall_throughput_rps: float

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "batches": self.batches,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_batch_size": self.mean_batch_size,
            "mean_queue_wait_ms": self.mean_queue_wait_ms,
            "modelled_busy_s": self.modelled_busy_s,
            "modelled_throughput_rps": self.modelled_throughput_rps,
            "wall_s": self.wall_s,
            "wall_throughput_rps": self.wall_throughput_rps,
        }


class Telemetry:
    """Thread-safe per-session aggregation of serving metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[str, _SessionStats] = {}
        self._backends: dict[tuple[str, str], _SessionStats] = {}
        self._rejections: dict[str, int] = {}
        self._started_at = time.monotonic()

    # ------------------------------------------------------------------
    def record_batch(
        self,
        session: str,
        op: str,
        modelled_time_s: float,
        queue_waits_s: list[float],
        backend: str | None = None,
        device: str | None = None,
    ) -> None:
        """Record one batched launch serving ``len(queue_waits_s)`` requests.

        ``backend``/``device`` attribute the launch to one runtime
        execution stack; batches recorded without them only show up in
        the per-session view.
        """
        n = len(queue_waits_s)
        with self._lock:
            buckets = [self._sessions.setdefault(session, _SessionStats())]
            if backend is not None and device is not None:
                buckets.append(
                    self._backends.setdefault((backend, device), _SessionStats())
                )
            for s in buckets:
                s.ops.add(op)
                s.batch_sizes.append(n)
                s.batch_times_s.append(modelled_time_s)
                s.latencies_s.extend([modelled_time_s] * n)
                s.queue_waits_s.extend(queue_waits_s)

    def record_rejection(self, session: str, count: int = 1) -> None:
        """Count ``count`` admission-control rejections against a session."""
        with self._lock:
            self._rejections[session] = self._rejections.get(session, 0) + count

    def rejections(self, session: str | None = None) -> int:
        """Rejected requests for one session, or in total."""
        with self._lock:
            if session is None:
                return sum(self._rejections.values())
            return self._rejections.get(session, 0)

    # ------------------------------------------------------------------
    def sessions(self) -> list[str]:
        """Every session seen — including ones whose every request was
        rejected, so a fully-throttled session stays visible in the
        report instead of vanishing while the TOTAL rejected count
        grows."""
        with self._lock:
            return sorted(set(self._sessions) | set(self._rejections))

    def backends(self) -> list[tuple[str, str]]:
        """Every ``(backend, device)`` pair that served at least one batch."""
        with self._lock:
            return sorted(self._backends)

    def summary(self, session: str | None = None) -> LatencySummary:
        """Aggregate one session, or everything when ``session`` is None."""
        with self._lock:
            if session is None:
                stats = list(self._sessions.values())
            else:
                stats = [self._sessions.get(session, _SessionStats())]
            return self._summarize(stats)

    def backend_summary(self, backend: str, device: str) -> LatencySummary:
        """Aggregate everything one ``(backend, device)`` pair served."""
        with self._lock:
            stats = [self._backends.get((backend, device), _SessionStats())]
            return self._summarize(stats)

    def _summarize(self, stats: list[_SessionStats]) -> LatencySummary:
        """Aggregate a list of stat buckets (call with lock held)."""
        latencies = np.array(
            [t for s in stats for t in s.latencies_s], dtype=np.float64
        )
        waits = [w for s in stats for w in s.queue_waits_s]
        sizes = [b for s in stats for b in s.batch_sizes]
        busy = float(sum(t for s in stats for t in s.batch_times_s))
        wall = time.monotonic() - self._started_at
        n = latencies.size
        if n == 0:
            return LatencySummary(0, 0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, wall, 0.0)
        p50, p95, p99 = np.percentile(latencies, [50, 95, 99]) * 1e3
        return LatencySummary(
            requests=int(n),
            batches=len(sizes),
            p50_ms=float(p50),
            p95_ms=float(p95),
            p99_ms=float(p99),
            mean_batch_size=float(np.mean(sizes)) if sizes else 0.0,
            mean_queue_wait_ms=float(np.mean(waits) * 1e3) if waits else 0.0,
            modelled_busy_s=busy,
            modelled_throughput_rps=float(n / busy) if busy > 0 else 0.0,
            wall_s=wall,
            wall_throughput_rps=float(n / wall) if wall > 0 else 0.0,
        )

    def render(self, plan_cache_stats: dict | None = None) -> str:
        """Plain-text report (the ``--demo`` output)."""
        from repro.bench.report import render_table

        headers = [
            "session", "requests", "rejected", "batches", "mean batch",
            "p50 ms", "p95 ms", "p99 ms", "model req/s",
        ]
        rows = []
        for name in self.sessions() + [None]:
            s = self.summary(name)
            rows.append([
                name if name is not None else "TOTAL",
                s.requests,
                self.rejections(name),
                s.batches,
                f"{s.mean_batch_size:.2f}",
                f"{s.p50_ms:.4f}",
                f"{s.p95_ms:.4f}",
                f"{s.p99_ms:.4f}",
                f"{s.modelled_throughput_rps:.0f}",
            ])
        lines = [render_table(headers, rows, title="-- serving telemetry --")]
        pairs = self.backends()
        if pairs:
            brows = []
            for backend, device in pairs:
                s = self.backend_summary(backend, device)
                brows.append([
                    backend,
                    device,
                    s.requests,
                    s.batches,
                    f"{s.p50_ms:.4f}",
                    f"{s.p95_ms:.4f}",
                    f"{s.p99_ms:.4f}",
                    f"{s.modelled_throughput_rps:.0f}",
                ])
            lines.append(render_table(
                ["backend", "device", "requests", "batches",
                 "p50 ms", "p95 ms", "p99 ms", "model req/s"],
                brows, title="-- per-backend telemetry --",
            ))
        total = self.summary()
        lines.append(
            f"wall: {total.wall_s:.2f}s ({total.wall_throughput_rps:.0f} req/s host); "
            f"modelled GPU busy: {total.modelled_busy_s * 1e3:.3f} ms"
        )
        if plan_cache_stats is not None:
            lines.append(
                "plan cache: {entries} plans, {hits} hits / {misses} misses "
                "(hit rate {hit_rate:.1%})".format(**plan_cache_stats)
            )
        return "\n".join(lines)
