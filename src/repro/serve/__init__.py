"""repro.serve — batched inference serving on top of the Magicube kernels.

The serving layer turns the one-shot kernel API into a production-style
engine:

- :class:`~repro.serve.planner.ExecutionPlanner` searches the Table-IV
  precision pairs, SR-BCRS strides and kernel tile knobs against the
  calibrated cost model and memoizes the winner per (op, shape,
  sparsity, objective) key in a JSON-persistable
  :class:`~repro.serve.cache.PlanCache`.
- :class:`~repro.serve.engine.Engine` owns prepared-model sessions that
  convert weights to SR-BCRS once and dispatch spmm / attention-block
  requests through cached plans.
- :class:`~repro.serve.batcher.MicroBatcher` coalesces same-shape
  requests into one batched kernel launch under a max-batch-size /
  max-wait policy (plus optional queue-depth / latency-budget
  admission control raising :class:`~repro.errors.AdmissionError`),
  executing concurrently on a thread pool.
- :class:`~repro.serve.telemetry.Telemetry` aggregates p50/p95/p99
  modelled latency, throughput, batch occupancy and admission
  rejections, per session, per ``(backend, device)`` *and* per plan
  key; :meth:`~repro.serve.telemetry.Telemetry.snapshot` exports the
  deterministic :class:`~repro.serve.telemetry.TelemetrySnapshot` the
  :mod:`repro.autotune` re-tuning scheduler consumes.

``Engine(warm_start="plans.json")`` preloads a shipped
:mod:`repro.autotune` artifact so swept request classes hit the plan
cache on first contact.

Quick start (the typed v1 surface — see :mod:`repro.api`)::

    import repro
    from repro.api import SpmmRequest

    with repro.open_engine() as client:
        future = client.submit(SpmmRequest(lhs=weights, rhs=activations,
                                           session="ffn"))
        result = future.result()
        result.output, result.plan.precision, result.time_s

``repro serve --demo`` (or ``python -m repro.serve --demo``) runs a
self-contained serving demo.
"""

from repro.serve.batcher import BatchPolicy, MicroBatcher, RequestHandle
from repro.serve.cache import PlanCache
from repro.serve.engine import (
    AttentionSession,
    Engine,
    SddmmSession,
    ServeResult,
    SpmmSession,
)
from repro.serve.planner import ExecutionPlanner, Objective, Plan, PlanKey
from repro.serve.telemetry import Telemetry, TelemetrySnapshot

__all__ = [
    "AttentionSession",
    "BatchPolicy",
    "Engine",
    "ExecutionPlanner",
    "MicroBatcher",
    "Objective",
    "Plan",
    "PlanCache",
    "PlanKey",
    "RequestHandle",
    "SddmmSession",
    "ServeResult",
    "SpmmSession",
    "Telemetry",
    "TelemetrySnapshot",
]
