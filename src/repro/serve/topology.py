"""Synthetic uniform sparse topologies for cost estimation.

The planner (and the Fig. 17 latency model) needs the *accounting* view
of a sparse operand — strip counts, padded vectors, nnz — without
materializing values. These classes duck-type exactly the attributes the
kernels' ``_account`` methods read, with the mask's nonzero vectors
spread uniformly over strips, so a candidate kernel configuration can be
costed in microseconds for any (shape, sparsity, vector length).
"""

from __future__ import annotations

import numpy as np

from repro.gpu.warp import ceil_div


class UniformSRBCRS:
    """Duck-typed SR-BCRS stats: nonzero vectors spread uniformly.

    Mirrors the attributes :meth:`MagicubeSpMM._account` reads from a
    real :class:`~repro.formats.srbcrs.SRBCRSMatrix`.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        vector_length: int,
        sparsity: float,
        stride: int,
    ) -> None:
        self.shape = (rows, cols)
        self.vector_length = vector_length
        self.stride = stride
        self.num_strips = rows // vector_length
        per_strip = max(1, round((1.0 - sparsity) * cols))
        padded = ceil_div(per_strip, stride) * stride
        self.num_vectors = self.num_strips * per_strip
        self.num_padded_vectors = self.num_strips * padded
        self.nnz = self.num_vectors * vector_length
        self.padding_ratio = padded / per_strip


class UniformBCRSMask:
    """Duck-typed BCRS mask stats for the SDDMM accounting."""

    def __init__(
        self, rows: int, cols: int, vector_length: int, sparsity: float
    ) -> None:
        self.shape = (rows, cols)
        self.vector_length = vector_length
        self.num_strips = rows // vector_length
        self._per_strip = max(1, round((1.0 - sparsity) * cols))
        self.num_vectors = self.num_strips * self._per_strip
        self.nnz = self.num_vectors * vector_length

    def vectors_per_strip(self) -> np.ndarray:
        return np.full(self.num_strips, self._per_strip, dtype=np.int64)
