"""Vectorized sparse softmax, bucketed by segment length.

The emulated :func:`~repro.kernels.softmax.sparse_softmax_quantized`
loops strips in Python. Strips cannot be batched naively — segments
have ragged lengths and the fp16 modelling makes the reduction order
observable — but strips *of the same length* can be stacked into one
``(S, L, V)`` slab and reduced along axis 1, which NumPy evaluates with
the same pairwise-summation blocking as the per-strip
``sum(axis=0)``. Bucketing by length therefore keeps the result
bit-exact while collapsing the loop to ``O(distinct lengths)``
iterations (uniform attention topologies have exactly one).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.formats.bcrs import BCRSMatrix
from repro.kernels.softmax import SoftmaxResult, _account
from repro.lowp.quantize import QuantParams, int_range

__all__ = ["sparse_softmax_quantized_fast"]


def sparse_softmax_quantized_fast(
    scores: BCRSMatrix,
    scale: float,
    out_bits: int = 8,
) -> SoftmaxResult:
    """Bit-exact, batched variant of
    :func:`repro.kernels.softmax.sparse_softmax_quantized`.

    Same contract, same fp16 rounding points, same quantization — the
    per-strip loop is replaced by one pass per distinct segment length.
    """
    if out_bits not in (8, 16):
        raise ShapeError(f"softmax output must be 8 or 16 bits, got {out_bits}")
    m, n = scores.shape
    v = scores.vector_length
    _, qmax = int_range(out_bits, signed=False)
    params = QuantParams(scale=1.0 / qmax, bits=out_bits, signed=False)

    logits = np.float16(
        np.asarray(scores.values, dtype=np.float32) * np.float32(scale)
    )
    out_values = np.zeros_like(scores.values, dtype=np.int64)
    ptrs = np.asarray(scores.row_ptrs)
    counts = np.diff(ptrs)
    for length in np.unique(counts):
        if length == 0:
            continue
        los = ptrs[:-1][counts == length]
        idx = los[:, None] + np.arange(int(length))[None, :]  # (S, L)
        batch = logits[idx].astype(np.float32)  # (S, L, V)
        mx = batch.max(axis=1, keepdims=True)
        ex = np.exp(batch - mx)
        sm = np.float16(ex / ex.sum(axis=1, keepdims=True))
        out_values[idx] = np.clip(
            np.rint(sm.astype(np.float32) / params.scale), 0, qmax
        ).astype(np.int64)

    out = BCRSMatrix(
        shape=(m, n),
        vector_length=v,
        row_ptrs=scores.row_ptrs.copy(),
        col_indices=scores.col_indices.copy(),
        values=out_values,
    )
    return SoftmaxResult(output=out, params=params, stats=_account(scores, out_bits))
