"""Vectorized SDDMM: one batched row gather, BLAS per strip.

The emulation kernel gathers RHS *columns* per strip
(``b64[:, cols]`` — a strided copy) and multiplies in ``int64``, which
NumPy executes without BLAS. This path restages the operands once per
call so the remaining per-strip work is a single compiled GEMM:

- ``B`` is cast and transposed into a C-contiguous ``(N, K)`` buffer,
  so the mask's column gather becomes one contiguous *row* gather for
  every strip at once (``bT[cols]``);
- ``A`` is viewed as ``(strips, V, K)`` and each non-empty strip runs
  ``rows[lo:hi] @ a3[r].T`` straight into the output slab via
  ``np.matmul(..., out=...)``.

Exactness mirrors the SpMM argument: each output element is a K-term
dot of integers bounded by the configured operand ranges, so float32
is exact iff ``K * max|a| * max|b| < 2^24`` and float64 always is.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.fastpath.plans import sddmm_plan
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import bcrs_to_srbcrs
from repro.formats.srbcrs import SRBCRSMatrix
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMResult
from repro.lowp.quantize import int_range

__all__ = ["FastpathSDDMM"]

_F32_EXACT_BOUND = float(2**24)


class FastpathSDDMM(MagicubeSDDMM):
    """Drop-in :class:`~repro.kernels.sddmm.MagicubeSDDMM` with the
    gather hoisted out of the strip loop and BLAS-backed products.

    Validation, cost accounting, output formats and the strict path are
    inherited unchanged.
    """

    def _accum_dtype(self, k: int) -> np.dtype:
        cfg = self.config
        lo, hi = int_range(cfg.l_bits, cfg.l_signed)
        amax = max(abs(lo), abs(hi))
        lo, hi = int_range(cfg.r_bits, cfg.r_signed)
        bmax = max(abs(lo), abs(hi))
        if k * amax * bmax < _F32_EXACT_BOUND:
            return np.dtype(np.float32)
        return np.dtype(np.float64)

    def __call__(
        self,
        a: np.ndarray,
        b: np.ndarray,
        mask: BCRSMatrix,
        strict: bool = False,
    ) -> SDDMMResult:
        if strict:
            return super().__call__(a, b, mask, strict=True)
        cfg = self.config
        a = np.asarray(a)
        b = np.asarray(b)
        self._validate(a, b, mask)
        plan = sddmm_plan(mask)
        v = mask.vector_length
        k = a.shape[1]
        dtype = self._accum_dtype(k)
        a3 = a.astype(dtype).reshape(-1, v, k)
        # C-contiguous (N, K): the transpose must be materialized —
        # ``b.T.astype(...)`` keeps F-order and the gather goes strided
        bt = np.ascontiguousarray(b.astype(dtype).T)
        rows = bt[plan.cols]  # (num_vectors, K), one gather for all strips
        vals = np.empty((plan.num_vectors, v), dtype=dtype)
        for r, lo, hi in plan.strips:
            np.matmul(rows[lo:hi], a3[r].T, out=vals[lo:hi])
        out = BCRSMatrix(
            shape=(mask.shape[0], mask.shape[1]),
            vector_length=v,
            row_ptrs=mask.row_ptrs.copy(),
            col_indices=mask.col_indices.copy(),
            values=np.rint(vals).astype(np.int64),
        )
        result: BCRSMatrix | SRBCRSMatrix = out
        if cfg.output_format == "srbcrs":
            result = bcrs_to_srbcrs(out, stride=16)
        key = (cfg, a.shape, b.shape)
        cached = plan.stats_cache.get(key)
        if cached is None:
            cached = plan.stats_cache[key] = self._account(a.shape, b.shape, mask)
        return SDDMMResult(output=result, stats=copy.deepcopy(cached))
