"""The ``fastpath-vectorized`` backend.

A subclass of :class:`~repro.runtime.magicube.MagicubeEmulationBackend`
that swaps in the :mod:`repro.fastpath` kernels — everything else
(capabilities, Table-II device admission, cost accounting,
``plan_candidates``) is inherited, so the planner sees the same
modelled costs under a different backend name and plans route through
the same ``(backend, device)`` plan keys.

Priority sits *above* the emulation backend's (higher number = later in
the fallback chain), so the default resolution order is unchanged:
callers opt in by pinning ``backend="fastpath-vectorized"`` or by
handing the planner the backend list to search.
"""

from __future__ import annotations

from repro.fastpath.sddmm import FastpathSDDMM
from repro.fastpath.spmm import FastpathSpMM
from repro.runtime.magicube import MagicubeEmulationBackend

__all__ = ["FastpathVectorizedBackend"]


class FastpathVectorizedBackend(MagicubeEmulationBackend):
    """Bit-exact Magicube execution with fully vectorized inner loops."""

    name = "fastpath-vectorized"
    priority = 15
    spmm_kernel = FastpathSpMM
    sddmm_kernel = FastpathSDDMM
