"""The optional ``fastpath-jit`` tier: numba-compiled strip loops.

This module demonstrates the registry absorbing a *compiled* backend
with zero planner changes: when numba is importable the registry
registers ``fastpath-jit`` (see :mod:`repro.runtime.registry`); when it
is not, the entry simply never exists — no stub backend, no capability
lies. The backend itself subclasses ``fastpath-vectorized``, replacing
only the SpMM accumulation with an ``@njit`` CSR loop; priority is
below the vectorized tier by default (a compiled loop only wins once
warm, and the first call pays compilation).

The container this reproduction grows in has no numba, so the jitted
path is exercised only where the dependency exists — the test suite
skips it otherwise.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigError
from repro.fastpath.backend import FastpathVectorizedBackend
from repro.fastpath.plans import spmm_plan
from repro.fastpath.spmm import FastpathSpMM
from repro.kernels.spmm import SpMMResult

try:  # pragma: no cover - exercised only where numba is installed
    import numba

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover - the common container case
    numba = None
    HAVE_NUMBA = False

__all__ = ["FastpathJitBackend", "HAVE_NUMBA"]


if HAVE_NUMBA:  # pragma: no cover - exercised only where numba is installed

    @numba.njit(cache=True)
    def _csr_spmm(indptr, indices, data, rhs, out):
        for i in range(out.shape[0]):
            for p in range(indptr[i], indptr[i + 1]):
                a = data[p]
                row = indices[p]
                for j in range(out.shape[1]):
                    out[i, j] += a * rhs[row, j]


class JitSpMM(FastpathSpMM):
    """SpMM with the CSR accumulation compiled by numba."""

    def __call__(self, lhs, rhs, scale=None, strict=False):
        if strict or not HAVE_NUMBA:
            return super().__call__(lhs, rhs, scale=scale, strict=strict)
        cfg = self.config
        self._validate(lhs, rhs)
        plan = spmm_plan(lhs)
        csr = plan.csr(np.dtype(np.float64))
        acc = np.zeros((lhs.shape[0], rhs.shape[1]), dtype=np.float64)
        _csr_spmm(
            csr.indptr, csr.indices, csr.data,
            np.asarray(rhs, dtype=np.float64), acc,
        )
        out = np.rint(acc).astype(np.int64)
        deq = None
        if scale is not None and cfg.fuse_dequant:
            deq = (out * scale).astype(np.float32)
        return SpMMResult(
            output=out, stats=self._account(lhs, rhs.shape[1]), dequantized=deq
        )


class FastpathJitBackend(FastpathVectorizedBackend):
    """Compiled tier of the fastpath family (requires numba)."""

    name = "fastpath-jit"
    priority = 20
    spmm_kernel = JitSpMM

    def __init__(self) -> None:
        if not HAVE_NUMBA:
            raise ConfigError(
                "backend 'fastpath-jit' requires numba, which is not "
                "installed; use 'fastpath-vectorized'"
            )
