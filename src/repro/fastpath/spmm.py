"""Vectorized SpMM: the strip loop as one sparse x dense product.

Bit-exactness argument: the emulation kernel accumulates in ``int64``,
which is exact. A floating-point accumulation of the same integer data
is exact — in *any* summation order — as long as every partial sum is
exactly representable, i.e. below the mantissa capacity. Each output
element is a dot product of at most ``max_nnz_row`` terms, each bounded
by ``max|lhs| * max|rhs|`` (the configured Table-IV operand ranges), so

- ``float64`` is always exact here (the bound never approaches 2^53);
- ``float32`` is exact iff ``max_nnz_row * max|lhs| * max|rhs| < 2^24``,
  which holds for the low-bit pairs that dominate serving traffic.

The kernel picks the narrowest exact dtype per call, runs one compiled
CSR x dense product against the plan's memoized CSR view, and rounds
back to ``int64`` — identical bits to the emulated result, asserted by
``tests/fastpath`` across the full equivalence grid.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.fastpath.plans import spmm_plan
from repro.formats.srbcrs import SRBCRSMatrix
from repro.kernels.spmm import MagicubeSpMM, SpMMResult
from repro.lowp.quantize import int_range

__all__ = ["FastpathSpMM"]

#: largest integer magnitude float32 accumulates exactly (24-bit mantissa)
_F32_EXACT_BOUND = float(2**24)


class FastpathSpMM(MagicubeSpMM):
    """Drop-in :class:`~repro.kernels.spmm.MagicubeSpMM` with the strip
    loop replaced by one memoized-CSR sparse x dense product.

    Validation, cost accounting and the strict (digit-decomposition)
    path are inherited unchanged — only the arithmetic hot path
    differs, and only in speed.
    """

    def _accum_dtype(self, max_nnz_row: int) -> np.dtype:
        """Narrowest float dtype whose accumulation is provably exact."""
        cfg = self.config
        lo, hi = int_range(cfg.l_bits, cfg.l_signed)
        amax = max(abs(lo), abs(hi))
        lo, hi = int_range(cfg.r_bits, cfg.r_signed)
        bmax = max(abs(lo), abs(hi))
        if max_nnz_row * amax * bmax < _F32_EXACT_BOUND:
            return np.dtype(np.float32)
        return np.dtype(np.float64)

    def __call__(
        self,
        lhs: SRBCRSMatrix,
        rhs: np.ndarray,
        scale: float | None = None,
        strict: bool = False,
    ) -> SpMMResult:
        if strict:
            # verification path: the fragment-level algebra is the point
            return super().__call__(lhs, rhs, scale=scale, strict=True)
        cfg = self.config
        self._validate(lhs, rhs)
        plan = spmm_plan(lhs)
        dtype = self._accum_dtype(plan.max_nnz_row)
        acc = plan.csr(dtype) @ np.asarray(rhs, dtype=dtype)
        out = np.rint(acc).astype(np.int64)
        deq = None
        if scale is not None and cfg.fuse_dequant:
            # fused dequant epilogue: one array expression over the tile
            deq = (out * scale).astype(np.float32)
        return SpMMResult(
            output=out, stats=self._stats(plan, lhs, rhs.shape[1]), dequantized=deq
        )

    def _stats(self, plan, lhs, n: int):
        """Memoized cost accounting: the model is a pure function of
        (layout, config, N), so it is computed once per request class
        and deep-copied out (results must not alias each other)."""
        key = (self.config, n)
        cached = plan.stats_cache.get(key)
        if cached is None:
            cached = plan.stats_cache[key] = self._account(lhs, n)
        return copy.deepcopy(cached)
