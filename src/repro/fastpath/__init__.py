"""Wall-clock fast paths for the Magicube kernels.

:mod:`repro.kernels` is *functional + accounted*: it computes the true
quantized result and models the CUDA kernel's cost, but its hot path
walks Python loops per row strip. This package provides bit-exact
replacements whose inner loops are fully vectorized — batched gathers
built from layout plans memoized on the operand (:mod:`.plans`), the
SpMM strip loop collapsed into one compiled sparse x dense product
(:mod:`.spmm`), the SDDMM gather hoisted out of the strip loop
(:mod:`.sddmm`), and the quantized softmax bucketed by segment length
(:mod:`.softmax`).

Two backends expose them through the runtime registry:

- ``fastpath-vectorized`` (:class:`.backend.FastpathVectorizedBackend`)
  — pure NumPy/SciPy, always available;
- ``fastpath-jit`` (:class:`.jit.FastpathJitBackend`) — numba-compiled
  strip loops, registered only when numba is importable.

Both share ``magicube-emulation``'s capabilities, cost accounting and
``plan_candidates``, so plans route through the same planner with only
the backend name differing in the plan key. Results are bit-exact
against the emulation backend (asserted by ``tests/fastpath`` and the
``repro bench kernels --wall`` gate).
"""

from repro.fastpath.sddmm import FastpathSDDMM
from repro.fastpath.softmax import sparse_softmax_quantized_fast
from repro.fastpath.spmm import FastpathSpMM

__all__ = [
    "FastpathSDDMM",
    "FastpathSpMM",
    "sparse_softmax_quantized_fast",
]
