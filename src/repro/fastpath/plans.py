"""Gather plans memoized on the sparse operands.

The fastpath kernels trade the per-strip Python loops of
:mod:`repro.kernels` for batched array operations. What makes that a
*win per call* is that the index arithmetic — expanding the SR-BCRS
group layout into scalar-row gather indices, or flattening the BCRS
strip pointers into plain int bounds — happens **once per operand** and
is cached on the matrix object itself, the same way
:class:`~repro.core.matrix.SparseMatrix` memoizes its per-stride
SR-BCRS conversions. A serving engine reuses the prepared operand
across thousands of requests, so every request after the first pays
only the arithmetic, none of the layout work.

Cached state is keyed on identity (an attribute on the matrix), which
is safe because the format dataclasses are treated as immutable after
construction everywhere in the codebase.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.formats.bcrs import BCRSMatrix
from repro.formats.srbcrs import PAD_INDEX, SRBCRSMatrix

__all__ = ["SpmmGatherPlan", "SddmmGatherPlan", "spmm_plan", "sddmm_plan"]

_SPMM_ATTR = "_fastpath_spmm_plan"
_SDDMM_ATTR = "_fastpath_sddmm_plan"


class SpmmGatherPlan:
    """Scalar-row CSR views of one SR-BCRS operand.

    The SR-BCRS layout stores stride groups vector-major (each group is
    a ``(V, stride)`` tile); the emulation kernel re-gathers RHS rows
    per group on every call. This plan expands the layout *once* into a
    scalar CSR matrix, so each SpMM becomes a single compiled
    sparse x dense product. Two dtype views are built lazily:
    ``float64`` (exact for every Table-IV pair — products are bounded
    well under 2^53) and ``float32`` (exact only when the per-row
    accumulation bound fits the 24-bit mantissa; see
    :meth:`FastpathSpMM._accum_dtype <repro.fastpath.spmm.FastpathSpMM>`).
    """

    def __init__(self, lhs: SRBCRSMatrix) -> None:
        v = lhs.vector_length
        stride = lhs.stride
        cols = np.asarray(lhs.col_indices)
        counts = np.asarray(lhs.row_ends) - np.asarray(lhs.row_starts)
        #: densest scalar row: bounds the f32 accumulation guard
        self.max_nnz_row = int(counts.max()) if counts.size else 0
        self.shape = lhs.shape
        num_padded = cols.size
        if num_padded == 0:
            base = sp.csr_matrix(lhs.shape, dtype=np.float64)
        else:
            groups = num_padded // stride
            valid = cols != PAD_INDEX
            # padded vector -> owning strip (strips are back-to-back)
            gcounts = -(-counts // stride)
            strip_of = np.repeat(np.arange(counts.size), gcounts * stride)
            # group tiles are (V, stride) row-major: transpose to get the
            # V lane values of each padded vector contiguously
            vecvals = (
                np.asarray(lhs.values)
                .reshape(groups, v, stride)
                .transpose(0, 2, 1)
                .reshape(num_padded, v)
            )
            rows = (strip_of[valid, None] * v + np.arange(v)).ravel()
            ccols = np.repeat(cols[valid], v)
            data = vecvals[valid].ravel().astype(np.float64)
            base = sp.csr_matrix(
                (data, (rows, ccols)), shape=lhs.shape, dtype=np.float64
            )
        self._csr: dict[np.dtype, sp.csr_matrix] = {np.dtype(np.float64): base}
        #: memoized cost accounting, keyed ``(config, n)`` — the model
        #: depends only on layout + config, not on the operand values
        self.stats_cache: dict = {}

    def csr(self, dtype: np.dtype) -> sp.csr_matrix:
        """The CSR view at ``dtype``, converting (and caching) on first
        use."""
        key = np.dtype(dtype)
        view = self._csr.get(key)
        if view is None:
            view = self._csr[np.dtype(np.float64)].astype(key)
            self._csr[key] = view
        return view


class SddmmGatherPlan:
    """Flattened strip bounds of one BCRS mask.

    ``cols`` drives the one batched RHS row gather; ``strips`` lists the
    non-empty strips as plain ``(strip, lo, hi)`` ints so the per-strip
    BLAS calls spend nothing on numpy scalar conversion.
    """

    def __init__(self, mask: BCRSMatrix) -> None:
        ptrs = np.asarray(mask.row_ptrs)
        self.cols = np.asarray(mask.col_indices)
        self.num_vectors = int(self.cols.size)
        bounds = [
            (r, int(ptrs[r]), int(ptrs[r + 1]))
            for r in range(len(ptrs) - 1)
        ]
        self.strips: list[tuple[int, int, int]] = [
            (r, lo, hi) for r, lo, hi in bounds if hi > lo
        ]
        #: memoized cost accounting, keyed ``(config, a_shape, b_shape)``
        self.stats_cache: dict = {}


def spmm_plan(lhs: SRBCRSMatrix) -> SpmmGatherPlan:
    """The memoized :class:`SpmmGatherPlan` of ``lhs`` (built once)."""
    plan = getattr(lhs, _SPMM_ATTR, None)
    if plan is None:
        plan = SpmmGatherPlan(lhs)
        setattr(lhs, _SPMM_ATTR, plan)
    return plan


def sddmm_plan(mask: BCRSMatrix) -> SddmmGatherPlan:
    """The memoized :class:`SddmmGatherPlan` of ``mask`` (built once)."""
    plan = getattr(mask, _SDDMM_ATTR, None)
    if plan is None:
        plan = SddmmGatherPlan(mask)
        setattr(mask, _SDDMM_ATTR, plan)
    return plan
