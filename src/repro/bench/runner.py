"""Shared workload builders and per-library executors for the benches."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.calibration import cost_model_for
from repro.baselines.cublas import CublasGemm
from repro.baselines.cusparse import CusparseBlockedEllSpMM
from repro.baselines.vector_sparse import VectorSparseSDDMM, VectorSparseSpMM
from repro.dlmc.generator import MatrixSpec, generate_blocked_ell, generate_matrix
from repro.formats.bcrs import BCRSMatrix
from repro.formats.convert import (
    dense_to_bcrs,
    dense_to_blocked_ell,
    dense_to_srbcrs,
)
from repro.kernels.sddmm import MagicubeSDDMM, SDDMMConfig
from repro.kernels.spmm import MagicubeSpMM, SpMMConfig


def geomean(values) -> float:
    """Geometric mean (the paper's averaging convention)."""
    v = np.asarray(list(values), dtype=np.float64)
    if v.size == 0:
        return float("nan")
    return float(np.exp(np.log(v).mean()))


@dataclass
class SpmmWorkload:
    """All operand views one SpMM comparison point needs."""

    spec: MatrixSpec
    vector_length: int
    dense8: np.ndarray  # int8-valued LHS
    dense4: np.ndarray  # int4-valued LHS (same pattern)
    srbcrs16: object  # stride-16 layout (int8-path kernels)
    srbcrs32: object  # stride-32 layout (int4-path kernels)
    bcrs: BCRSMatrix
    bell_dense: np.ndarray  # same-sparsity blocked matrix for cuSPARSE
    rhs8: np.ndarray
    rhs4: np.ndarray

    @property
    def n(self) -> int:
        return self.rhs8.shape[1]


def build_spmm_workload(spec: MatrixSpec, v: int, n: int) -> SpmmWorkload:
    """Materialize every format/operand for one (matrix, V, N) point."""
    dense8 = generate_matrix(spec, v, bits=8)
    dense4 = generate_matrix(spec, v, bits=4)
    rng = np.random.default_rng(spec.seed + 99)
    return SpmmWorkload(
        spec=spec,
        vector_length=v,
        dense8=dense8,
        dense4=dense4,
        srbcrs16=dense_to_srbcrs(dense8, v, 16),
        srbcrs32=dense_to_srbcrs(dense4, v, 32),
        bcrs=dense_to_bcrs(dense8, v),
        bell_dense=generate_blocked_ell(spec, block_size=8),
        rhs8=rng.integers(-128, 128, size=(spec.cols, n)),
        rhs4=rng.integers(-8, 8, size=(spec.cols, n)),
    )


# ---------------------------------------------------------------------------
# per-library timed runs (seconds on the modelled A100)


def time_magicube_spmm(
    w: SpmmWorkload, l_bits: int, r_bits: int, device: str = "A100", **cfg
) -> float:
    kern = MagicubeSpMM(SpMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg))
    lhs = w.srbcrs16 if kern.required_stride == 16 else w.srbcrs32
    rhs = w.rhs8 if r_bits >= 8 else w.rhs4
    stats = kern(lhs, rhs).stats
    return cost_model_for("magicube", device).time(stats)


def tops_magicube_spmm(
    w: SpmmWorkload, l_bits: int, r_bits: int, device: str = "A100", **cfg
) -> float:
    kern = MagicubeSpMM(SpMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg))
    lhs = w.srbcrs16 if kern.required_stride == 16 else w.srbcrs32
    rhs = w.rhs8 if r_bits >= 8 else w.rhs4
    stats = kern(lhs, rhs).stats
    return cost_model_for("magicube", device).tops(stats)


def time_cublas(w: SpmmWorkload, precision: str, device: str = "A100") -> float:
    gemm = CublasGemm(precision)
    a = w.dense8.astype(np.float32) if precision == "fp16" else w.dense8
    b = w.rhs8.astype(np.float32) if precision == "fp16" else w.rhs8
    stats = gemm(a, b).stats
    return cost_model_for(gemm.library_profile, device).time(stats)


def time_cusparse_bell(w: SpmmWorkload, precision: str, device: str = "A100") -> float:
    ell = dense_to_blocked_ell(w.bell_dense, 8)
    kern = CusparseBlockedEllSpMM(precision)
    rhs = w.rhs8.astype(np.float32) if precision == "fp16" else w.rhs8
    stats = kern(ell, rhs).stats
    return cost_model_for(kern.library_profile, device).time(stats)


def time_vectorsparse_spmm(w: SpmmWorkload, device: str = "A100") -> float:
    kern = VectorSparseSpMM()
    stats = kern(w.bcrs, w.rhs8.astype(np.float32)).stats
    return cost_model_for(kern.library_profile, device).time(stats)


# ---------------------------------------------------------------------------
# SDDMM workloads


@dataclass
class SddmmWorkload:
    """Operands for one SDDMM comparison point."""

    spec: MatrixSpec
    vector_length: int
    a8: np.ndarray
    b8: np.ndarray
    a16: np.ndarray
    b16: np.ndarray
    a4: np.ndarray
    b4: np.ndarray
    mask: BCRSMatrix

    @property
    def k(self) -> int:
        return self.a8.shape[1]


def build_sddmm_workload(spec: MatrixSpec, v: int, k: int) -> SddmmWorkload:
    """SDDMM point: dense A (M x K), B (K x N), mask from the spec."""
    pattern = generate_matrix(spec, v, bits=2)
    mask = dense_to_bcrs((pattern != 0).astype(np.int32), v)
    rng = np.random.default_rng(spec.seed + 7)
    m, n = spec.rows, spec.cols
    return SddmmWorkload(
        spec=spec,
        vector_length=v,
        a8=rng.integers(-128, 128, size=(m, k)),
        b8=rng.integers(-128, 128, size=(k, n)),
        a16=rng.integers(-(1 << 15), 1 << 15, size=(m, k)),
        b16=rng.integers(-(1 << 15), 1 << 15, size=(k, n)),
        a4=rng.integers(-8, 8, size=(m, k)),
        b4=rng.integers(-8, 8, size=(k, n)),
        mask=mask,
    )


def time_magicube_sddmm(
    w: SddmmWorkload, l_bits: int, r_bits: int, device: str = "A100", **cfg
) -> float:
    kern = MagicubeSDDMM(SDDMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg))
    a, b = {16: (w.a16, w.b16), 8: (w.a8, w.b8), 4: (w.a4, w.b4)}[l_bits]
    stats = kern(a, b, w.mask).stats
    return cost_model_for("magicube", device).time(stats)


def tops_magicube_sddmm(
    w: SddmmWorkload, l_bits: int, r_bits: int, device: str = "A100", **cfg
) -> float:
    kern = MagicubeSDDMM(SDDMMConfig(l_bits=l_bits, r_bits=r_bits, **cfg))
    a, b = {16: (w.a16, w.b16), 8: (w.a8, w.b8), 4: (w.a4, w.b4)}[l_bits]
    stats = kern(a, b, w.mask).stats
    return cost_model_for("magicube", device).tops(stats)


def time_cublas_sddmm_dense(w: SddmmWorkload, precision: str, device: str = "A100") -> float:
    """Dense baseline for SDDMM: the full A @ B GEMM."""
    gemm = CublasGemm(precision)
    stats = gemm._account(w.a8.shape, w.b8.shape)
    return cost_model_for(gemm.library_profile, device).time(stats)


def time_vectorsparse_sddmm(w: SddmmWorkload, device: str = "A100") -> float:
    kern = VectorSparseSDDMM()
    stats = kern(
        w.a8.astype(np.float32), w.b8.astype(np.float32), w.mask
    ).stats
    return cost_model_for(kern.library_profile, device).time(stats)
