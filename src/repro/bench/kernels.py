"""Kernel wall-clock bench: emulation vs fastpath, asserted.

``repro bench kernels --wall`` measures *measured seconds*, not modelled
ones: every grid cell builds one (op x precision x topology) problem,
verifies the two backends produce **bit-identical** results, then times
``backend.execute`` for the baseline (``magicube-emulation``) and the
candidate (``fastpath-vectorized``) and reports the wall-clock speedup.

The gate is the pooled median speedup over the gated (SpMM + SDDMM)
cells: below ``--floor`` (default 10x) the run exits non-zero, so CI
*asserts* the fast path stays fast instead of trusting a claim in a
commit message. Per-op medians are reported alongside — SpMM clears the
floor on its own; SDDMM is structurally capped lower on one CPU core
(an int64 NumPy matmul baseline against BLAS tops out around 4-7x) and
rides inside the pool. Softmax cells are measured and reported but not
gated.

Results are written to ``BENCH_kernels.json`` (schema-versioned, like
``BENCH_serve.json``) so the perf trajectory is a committed artifact.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from statistics import median

import numpy as np

__all__ = [
    "KERNELS_SCHEMA",
    "Cell",
    "DEFAULT_GRID",
    "REDUCED_GRID",
    "kernels_main",
    "render_kernel_report",
    "run_kernel_bench",
]

KERNELS_SCHEMA = 1

#: default wall-clock gate: pooled median speedup over gated cells
DEFAULT_FLOOR = 10.0


@dataclass(frozen=True)
class Cell:
    """One (op x precision x topology) bench cell.

    ``rows x cols`` is the sparse operand's shape; ``inner`` is the RHS
    width N for SpMM and the reduction dim K for SDDMM (unused for
    softmax). ``gated`` cells contribute to the asserted pooled median.
    """

    op: str
    precision: str
    rows: int
    cols: int
    inner: int
    vector_length: int
    sparsity: float
    gated: bool = True

    @property
    def label(self) -> str:
        return (
            f"{self.op} {self.precision} {self.rows}x{self.cols}"
            f"/{self.inner} V={self.vector_length} s={self.sparsity}"
        )


#: the committed-artifact grid: Table-IV pairs over attention-shaped
#: (V=2) and FFN-shaped (V=4/8) topologies at DLMC sparsities
DEFAULT_GRID: tuple[Cell, ...] = (
    Cell("spmm", "L8-R8", 256, 256, 64, 2, 0.90),
    Cell("spmm", "L8-R8", 512, 512, 64, 2, 0.90),
    Cell("spmm", "L8-R8", 512, 512, 64, 2, 0.95),
    Cell("spmm", "L8-R8", 640, 640, 80, 2, 0.95),
    Cell("spmm", "L8-R8", 768, 768, 64, 2, 0.95),
    Cell("spmm", "L8-R8", 1024, 1024, 64, 2, 0.95),
    Cell("spmm", "L8-R4", 512, 512, 64, 2, 0.95),
    Cell("spmm", "L12-R4", 512, 512, 128, 2, 0.90),
    Cell("spmm", "L12-R4", 512, 512, 96, 2, 0.95),
    Cell("spmm", "L4-R4", 384, 384, 64, 2, 0.90),
    Cell("spmm", "L4-R4", 1024, 1024, 128, 4, 0.95),
    Cell("spmm", "L16-R16", 512, 512, 64, 2, 0.90),
    Cell("sddmm", "L8-R8", 512, 512, 256, 8, 0.90),
    Cell("sddmm", "L8-R8", 512, 512, 512, 8, 0.90),
    Cell("sddmm", "L4-R4", 512, 512, 128, 4, 0.90),
    Cell("sddmm", "L16-R16", 512, 512, 256, 8, 0.90),
    Cell("softmax", "q8", 512, 512, 0, 2, 0.90, gated=False),
    Cell("softmax", "q16", 512, 512, 0, 8, 0.95, gated=False),
)

#: the CI grid: the stablest cells, sized for a noisy hosted runner
REDUCED_GRID: tuple[Cell, ...] = (
    Cell("spmm", "L8-R8", 512, 512, 64, 2, 0.95),
    Cell("spmm", "L8-R8", 768, 768, 64, 2, 0.95),
    Cell("spmm", "L8-R4", 512, 512, 64, 2, 0.95),
    Cell("spmm", "L12-R4", 512, 512, 128, 2, 0.90),
    Cell("spmm", "L4-R4", 384, 384, 64, 2, 0.90),
    Cell("sddmm", "L8-R8", 512, 512, 256, 8, 0.90),
    Cell("sddmm", "L8-R8", 512, 512, 512, 8, 0.90),
)


def _pair_bits(precision: str) -> tuple[int, int]:
    l_str, r_str = precision.split("-")
    return int(l_str[1:]), int(r_str[1:])


def _median_wall(fn, repeats: int) -> float:
    fn()  # warm: memoized plans/layouts build on first contact
    samples = []
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return float(median(samples))


def _bench_cell(cell: Cell, repeats: int, seed: int, device: str) -> dict:
    from repro.core.matrix import SparseMatrix
    from repro.dlmc.generator import MatrixSpec, generate_matrix
    from repro.formats.convert import dense_to_bcrs
    from repro.lowp.quantize import int_range
    from repro.runtime import get_backend

    rng = np.random.default_rng(seed)
    emu = get_backend("magicube-emulation")
    fast = get_backend("fastpath-vectorized")
    spec = MatrixSpec(
        "transformer", cell.rows, cell.cols, sparsity=cell.sparsity, seed=seed
    )

    if cell.op == "spmm":
        from repro.kernels.spmm import SpMMConfig

        l_bits, r_bits = _pair_bits(cell.precision)
        dense = generate_matrix(spec, vector_length=cell.vector_length, bits=l_bits)
        lhs = SparseMatrix.from_dense(
            dense, vector_length=cell.vector_length, precision=cell.precision
        )
        lo, hi = int_range(r_bits, True)
        rhs = rng.integers(lo, hi + 1, size=(cell.cols, cell.inner), dtype=np.int64)
        cfg = SpMMConfig(l_bits=l_bits, r_bits=r_bits)

        def run(backend):
            return backend.execute(
                "spmm", device, config=cfg, lhs=lhs, rhs=rhs, scale=0.0125
            )

        exact = np.array_equal(run(emu).output, run(fast).output)
    elif cell.op == "sddmm":
        from repro.kernels.sddmm import SDDMMConfig

        l_bits, r_bits = _pair_bits(cell.precision)
        mask = dense_to_bcrs(
            generate_matrix(spec, vector_length=cell.vector_length, bits=8),
            cell.vector_length,
        )
        lo, hi = int_range(l_bits, True)
        a = rng.integers(lo, hi + 1, size=(cell.rows, cell.inner), dtype=np.int64)
        lo, hi = int_range(r_bits, True)
        b = rng.integers(lo, hi + 1, size=(cell.inner, cell.cols), dtype=np.int64)
        cfg = SDDMMConfig(l_bits=l_bits, r_bits=r_bits)

        def run(backend):
            return backend.execute("sddmm", device, config=cfg, a=a, b=b, mask=mask)

        exact = np.array_equal(
            np.asarray(run(emu).output.values), np.asarray(run(fast).output.values)
        )
    elif cell.op == "softmax":
        from repro.fastpath import sparse_softmax_quantized_fast
        from repro.formats.bcrs import BCRSMatrix
        from repro.kernels.softmax import sparse_softmax_quantized

        out_bits = int(cell.precision.lstrip("q"))
        topo = dense_to_bcrs(
            generate_matrix(spec, vector_length=cell.vector_length, bits=8),
            cell.vector_length,
        )
        scores = BCRSMatrix(
            shape=topo.shape,
            vector_length=topo.vector_length,
            row_ptrs=topo.row_ptrs,
            col_indices=topo.col_indices,
            values=rng.integers(
                -127, 128, size=(topo.num_vectors, topo.vector_length)
            ).astype(np.int64),
        )

        def run(backend):
            fn = (
                sparse_softmax_quantized_fast
                if backend is fast
                else sparse_softmax_quantized
            )
            return fn(scores, scale=0.02, out_bits=out_bits)

        exact = np.array_equal(run(emu).output.values, run(fast).output.values)
    else:  # pragma: no cover - grid cells are op-checked at definition
        raise ValueError(f"unknown bench op {cell.op!r}")

    baseline_s = _median_wall(lambda: run(emu), repeats)
    candidate_s = _median_wall(lambda: run(fast), repeats)
    return {
        "op": cell.op,
        "precision": cell.precision,
        "rows": cell.rows,
        "cols": cell.cols,
        "inner": cell.inner,
        "vector_length": cell.vector_length,
        "sparsity": cell.sparsity,
        "gated": cell.gated,
        "bit_exact": bool(exact),
        "baseline_ms": baseline_s * 1e3,
        "candidate_ms": candidate_s * 1e3,
        "speedup": baseline_s / candidate_s if candidate_s > 0 else float("inf"),
    }


def run_kernel_bench(
    cells: tuple[Cell, ...] | None = None,
    repeats: int = 5,
    floor: float = DEFAULT_FLOOR,
    out: "str | Path | None" = None,
    seed: int = 7,
    device: str = "A100",
) -> dict:
    """Measure every cell; return the schema-versioned report dict.

    The report's ``passed`` is the asserted property: every gated cell
    bit-exact *and* the pooled gated median speedup at or above
    ``floor``. Callers decide whether to raise (the CLI exits 1).
    """
    cells = DEFAULT_GRID if cells is None else cells
    rows = [_bench_cell(c, repeats, seed, device) for c in cells]
    per_op: dict[str, list[float]] = {}
    for row in rows:
        per_op.setdefault(row["op"], []).append(row["speedup"])
    gated = [r["speedup"] for r in rows if r["gated"]]
    pooled = float(median(gated)) if gated else 0.0
    report = {
        "schema": KERNELS_SCHEMA,
        "baseline": "magicube-emulation",
        "candidate": "fastpath-vectorized",
        "device": device,
        "repeats": repeats,
        "floor": floor,
        "median_speedup": {op: float(median(v)) for op, v in sorted(per_op.items())},
        "gated_median_speedup": pooled,
        "all_bit_exact": all(r["bit_exact"] for r in rows),
        "passed": bool(
            gated and pooled >= floor and all(r["bit_exact"] for r in rows)
        ),
        "cells": rows,
    }
    if out is not None:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
    return report


def render_kernel_report(report: dict) -> str:
    from repro.bench.report import render_table

    rows = [
        [
            r["op"],
            r["precision"],
            f"{r['rows']}x{r['cols']}/{r['inner']}",
            r["vector_length"],
            r["sparsity"],
            f"{r['baseline_ms']:.2f}",
            f"{r['candidate_ms']:.2f}",
            f"{r['speedup']:.1f}x" + ("" if r["gated"] else " (ungated)"),
            "yes" if r["bit_exact"] else "NO",
        ]
        for r in report["cells"]
    ]
    table = render_table(
        ["op", "pair", "shape", "V", "s", "emulation ms", "fastpath ms",
         "speedup", "bit-exact"],
        rows,
    )
    medians = ", ".join(
        f"{op} {v:.1f}x" for op, v in report["median_speedup"].items()
    )
    verdict = "PASS" if report["passed"] else "FAIL"
    return (
        f"{table}\n"
        f"median speedup: {medians}\n"
        f"gated (spmm+sddmm) median: {report['gated_median_speedup']:.1f}x "
        f"(floor {report['floor']:.1f}x) -> {verdict}"
    )


def kernels_main(argv: list[str] | None = None) -> int:
    """``repro bench kernels --wall`` — the asserted kernel speedup gate."""
    parser = argparse.ArgumentParser(
        prog="repro bench kernels",
        description="measure emulation vs fastpath wall-clock per grid cell",
    )
    parser.add_argument(
        "--wall", action="store_true",
        help="measure wall-clock time (required; modelled time has no "
        "baseline/candidate difference)",
    )
    parser.add_argument(
        "--reduced", action="store_true",
        help="run the reduced CI grid instead of the full one",
    )
    parser.add_argument("--repeats", type=int, default=5, help="timing repeats")
    parser.add_argument(
        "--floor", type=float, default=DEFAULT_FLOOR,
        help="minimum pooled median speedup (default: %(default)sx)",
    )
    parser.add_argument(
        "--out", default="BENCH_kernels.json", help="report artifact path"
    )
    parser.add_argument("--seed", type=int, default=7, help="topology seed")
    args = parser.parse_args(argv)
    if not args.wall:
        print(
            "repro bench kernels: pass --wall (both backends share the "
            "modelled cost; only wall-clock differs)",
            file=sys.stderr,
        )
        return 2
    report = run_kernel_bench(
        cells=REDUCED_GRID if args.reduced else DEFAULT_GRID,
        repeats=args.repeats,
        floor=args.floor,
        out=args.out,
        seed=args.seed,
    )
    print(render_kernel_report(report))
    print(f"wrote {args.out}")
    return 0 if report["passed"] else 1
