"""Benchmark harness: workload construction, sweeps, and reporting.

Each figure/table of the paper's evaluation has an experiment function
in :mod:`repro.bench.figures` returning structured rows; the
``benchmarks/`` pytest-benchmark targets drive them and print the same
rows the paper reports. :mod:`repro.bench.runner` holds the shared
workload builders (format construction, RHS generation, per-library
execution), :mod:`repro.bench.report` the text renderers.
"""

from repro.bench.runner import SpmmWorkload, build_spmm_workload, geomean
from repro.bench.report import render_table, render_series

__all__ = [
    "SpmmWorkload",
    "build_spmm_workload",
    "geomean",
    "render_table",
    "render_series",
]
