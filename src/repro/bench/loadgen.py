"""Traffic-replay load generator: the serving stack under open-loop load.

This is the bench that finally exercises the *whole* runtime path the
way a deployment does — typed requests arriving on a clock, admission
control pushing back, the micro-batcher coalescing, the planner
resolving, telemetry and the :mod:`repro.obs` metrics registry keeping
score — and writes the numbers down as a schema-versioned
``BENCH_serve.json`` artifact, with the full observability triad next
to it: the raw metrics snapshot, the span-tree trace log, an SLO
health report (``BENCH_serve.health.json``, graded over
:data:`repro.obs.health.DEFAULT_SLOS`), and the sampling profiler's
flamegraph exports (``BENCH_serve.profile.json`` speedscope +
``BENCH_serve.folded.txt``).

Three arrival processes are built in (all seeded, all deterministic in
their *schedules*; wall-clock numbers naturally vary per host):

- ``poisson`` — exponential inter-arrivals at ``rate_rps``;
- ``bursty``  — Poisson bursts of ``burst_size`` back-to-back arrivals;
- ``uniform`` — a fixed ``1 / rate_rps`` tick;
- ``trace``   — replay explicit arrival offsets from a JSON file.

The request mix is drawn per-arrival from ``mix`` (SpMM / SDDMM /
attention / whole-model transformer classes over fixed prepared
operands), so plan-cache and batching behaviour matches a
bounded-request-class deployment.

CLI::

    python -m repro.bench serve --replay --requests 200 --arrival bursty
    python -m repro.bench compare BENCH_serve.json baseline.json
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AdmissionError, ConfigError
from repro.ioutil import atomic_write_text

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.metrics import Histogram, MetricsRegistry

__all__ = [
    "BENCH_SCHEMA",
    "ReplayConfig",
    "arrival_offsets",
    "compare_main",
    "compare_reports",
    "run_replay",
]

#: schema version stamped into ``BENCH_serve.json``
BENCH_SCHEMA = 1

#: default artifact paths (repo root when run from it)
DEFAULT_OUT = "BENCH_serve.json"
DEFAULT_METRICS_OUT = "BENCH_serve.metrics.json"
DEFAULT_TRACE_OUT = "BENCH_serve.trace.jsonl"
DEFAULT_HEALTH_OUT = "BENCH_serve.health.json"
DEFAULT_PROFILE_OUT = "BENCH_serve.profile.json"
DEFAULT_FOLDED_OUT = "BENCH_serve.folded.txt"


@dataclass(frozen=True)
class ReplayConfig:
    """One replay run: how much load, shaped how, over which mix."""

    requests: int = 120
    arrival: str = "poisson"  # poisson | bursty | uniform | trace
    rate_rps: float = 400.0
    burst_size: int = 8
    seed: int = 0
    #: (request class, weight) pairs the generator draws from
    mix: tuple[tuple[str, float], ...] = (
        ("spmm", 0.6), ("sddmm", 0.25), ("attention", 0.15),
    )
    #: JSON file holding a list of arrival offsets (s) for ``trace``
    trace_path: str | Path | None = None
    device: str = "A100"
    #: queue-depth admission bound (None admits everything)
    max_queue_depth: int | None = 64
    #: route through a :class:`repro.fleet.Gateway` with this many
    #: worker processes instead of a single in-process engine
    #: (None = direct engine, the historical path)
    gateway_workers: int | None = None

    def __post_init__(self) -> None:
        if self.requests < 1:
            raise ConfigError("replay needs at least 1 request")
        if self.rate_rps <= 0:
            raise ConfigError("rate_rps must be > 0")
        if self.arrival not in ("poisson", "bursty", "uniform", "trace"):
            raise ConfigError(f"unknown arrival process {self.arrival!r}")
        if self.arrival == "trace" and self.trace_path is None:
            raise ConfigError("arrival='trace' needs trace_path=")
        if not self.mix or not any(w > 0 for _, w in self.mix):
            raise ConfigError("mix must carry at least one positive weight")
        if self.gateway_workers is not None and self.gateway_workers < 1:
            raise ConfigError(
                f"gateway_workers must be >= 1, got {self.gateway_workers}"
            )

    def to_dict(self) -> dict:
        return {
            "requests": self.requests,
            "arrival": self.arrival,
            "rate_rps": self.rate_rps,
            "burst_size": self.burst_size,
            "seed": self.seed,
            "mix": [[name, w] for name, w in self.mix],
            "trace_path": str(self.trace_path) if self.trace_path else None,
            "device": self.device,
            "max_queue_depth": self.max_queue_depth,
            "gateway_workers": self.gateway_workers,
        }


def arrival_offsets(config: ReplayConfig) -> list[float]:
    """Deterministic arrival offsets (seconds from replay start)."""
    rng = np.random.default_rng(config.seed)
    n, rate = config.requests, config.rate_rps
    if config.arrival == "uniform":
        return [i / rate for i in range(n)]
    if config.arrival == "poisson":
        gaps = rng.exponential(1.0 / rate, size=n)
        gaps[0] = 0.0
        return np.cumsum(gaps).tolist()
    if config.arrival == "bursty":
        # bursts of back-to-back arrivals, exponential gaps *between*
        # bursts at the same average rate
        offsets: list[float] = []
        t = 0.0
        while len(offsets) < n:
            burst = min(config.burst_size, n - len(offsets))
            offsets.extend([t] * burst)
            t += float(rng.exponential(burst / rate))
        return offsets[:n]
    # trace: explicit offsets from a JSON list, cycled / truncated to n
    try:
        raw = json.loads(Path(config.trace_path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigError(
            f"cannot read arrival trace {config.trace_path}: {exc}"
        ) from exc
    if not isinstance(raw, list) or not raw:
        raise ConfigError(
            f"arrival trace {config.trace_path} must be a non-empty JSON list"
        )
    offsets = [float(x) for x in raw]
    base = offsets[0]
    offsets = [x - base for x in offsets]
    while len(offsets) < n:  # cycle the trace to fill the request count
        span = offsets[-1] + 1.0 / rate
        offsets.extend(x + span for x in offsets[: n - len(offsets)])
    return offsets[:n]


@dataclass
class _Workload:
    """The fixed request classes a replay draws from."""

    classes: list[str] = field(default_factory=list)
    weights: list[float] = field(default_factory=list)
    spmm_lhs: object = None
    sddmm_mask: object = None
    spmm_rhs: object = None
    sddmm_a: object = None
    sddmm_b: object = None
    transformer_ids: object = None


def _build_workload(config: ReplayConfig) -> _Workload:
    from repro.dlmc.generator import MatrixSpec, generate_matrix

    w = _Workload()
    for name, weight in config.mix:
        if name not in ("spmm", "sddmm", "attention", "transformer"):
            raise ConfigError(f"unknown request class {name!r} in mix")
        if weight > 0:
            w.classes.append(name)
            w.weights.append(float(weight))
    total = sum(w.weights)
    w.weights = [x / total for x in w.weights]
    rng = np.random.default_rng(config.seed + 1)
    if "spmm" in w.classes:
        spec = MatrixSpec("transformer", 256, 256, sparsity=0.9, seed=config.seed)
        w.spmm_lhs = generate_matrix(spec, vector_length=8, bits=8)
        w.spmm_rhs = rng.integers(-8, 8, size=(256, 64), dtype=np.int8)
    if "sddmm" in w.classes:
        spec = MatrixSpec("transformer", 256, 256, sparsity=0.95, seed=config.seed)
        w.sddmm_mask = generate_matrix(spec, vector_length=8, bits=8)
        w.sddmm_a = rng.integers(-8, 8, size=(256, 32), dtype=np.int8)
        w.sddmm_b = rng.integers(-8, 8, size=(32, 256), dtype=np.int8)
    if "transformer" in w.classes:
        # one row of token ids per arrival; the batcher coalesces rows
        # across same-class arrivals into one planned forward
        w.transformer_ids = rng.integers(0, 16, size=(1, 64), dtype=np.int64)
    return w


def _make_request(kind: str, w: _Workload):
    from repro import api

    if kind == "spmm":
        return api.SpmmRequest(
            lhs=w.spmm_lhs, rhs=w.spmm_rhs, session="replay-spmm"
        )
    if kind == "sddmm":
        return api.SddmmRequest(
            mask=w.sddmm_mask, a=w.sddmm_a, b=w.sddmm_b, session="replay-sddmm"
        )
    if kind == "transformer":
        return api.TransformerRequest(
            ids=w.transformer_ids, seq_len=64, d_model=32, num_heads=2,
            num_layers=1, mask_variant="local", session="replay-xf",
        )
    return api.AttentionRequest(seq_len=128, num_layers=1, session="replay-attn")


def _merged_histogram(registry: "MetricsRegistry", name: str) -> "Histogram | None":
    """One histogram with every label set's observations folded in."""
    import threading

    from repro.obs.metrics import Histogram

    samples = [h for _, h in registry.samples(name) if h.count]
    if not samples:
        return None
    merged = Histogram(threading.Lock(), samples[0].buckets)
    for h in samples:
        if h.buckets != merged.buckets:  # pragma: no cover - defensive
            raise ConfigError(f"family {name!r} mixes bucket layouts")
        merged.counts = [a + b for a, b in zip(merged.counts, h.counts)]
        merged.count += h.count
        merged.sum += h.sum
        merged.min = min(merged.min, h.min)
        merged.max = max(merged.max, h.max)
    return merged


def _latency_stats(registry: "MetricsRegistry", name: str) -> dict:
    h = _merged_histogram(registry, name)
    if h is None:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0}
    return {
        "count": h.count,
        "mean": h.mean,
        "p50": h.quantile(0.50),
        "p95": h.quantile(0.95),
        "p99": h.quantile(0.99),
    }


def _counter_total(registry: "MetricsRegistry", name: str) -> float:
    if name not in registry.names():
        return 0.0
    return sum(c.value for _, c in registry.samples(name))


def run_replay(
    config: ReplayConfig | None = None,
    *,
    out: str | Path | None = DEFAULT_OUT,
    metrics_out: str | Path | None = DEFAULT_METRICS_OUT,
    trace_out: str | Path | None = DEFAULT_TRACE_OUT,
    health_out: str | Path | None = DEFAULT_HEALTH_OUT,
    profile_out: str | Path | None = DEFAULT_PROFILE_OUT,
    folded_out: str | Path | None = DEFAULT_FOLDED_OUT,
) -> dict:
    """Replay one arrival schedule against a live engine; return (and
    optionally write) the ``BENCH_serve.json`` report dict.

    Beyond the report itself, a run leaves the full observability triad
    behind: the metrics snapshot (``metrics_out``), the span-tree trace
    log (``trace_out``), an SLO health report graded over the default
    objectives (``health_out``), and the sampling profiler's speedscope
    + folded-stack flamegraph exports (``profile_out`` /
    ``folded_out``). Pass ``out=None`` (etc.) to skip writing one.
    """
    from repro import api
    from repro.obs import names
    from repro.obs.export import write_snapshot
    from repro.obs.health import DEFAULT_SLOS, evaluate_registry
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.profile import ProfileConfig, render_folded
    from repro.obs.trace import Tracer
    from repro.serve.batcher import BatchPolicy

    config = config if config is not None else ReplayConfig()
    if config.gateway_workers is not None:
        return _run_replay_gateway(
            config, out=out, metrics_out=metrics_out, trace_out=trace_out,
            health_out=health_out, profile_out=profile_out,
            folded_out=folded_out,
        )
    offsets = arrival_offsets(config)
    workload = _build_workload(config)
    rng = np.random.default_rng(config.seed + 2)
    kinds = rng.choice(
        workload.classes, size=config.requests, p=workload.weights
    ).tolist()

    registry = MetricsRegistry()
    tracer = Tracer(enabled=True, keep=config.requests)
    policy = BatchPolicy(max_queue_depth=config.max_queue_depth)
    futures = []
    rejected = 0
    with api.open_engine(
        device=config.device, policy=policy, metrics=registry, tracer=tracer,
        profile=ProfileConfig(),
    ) as client:
        # prepare every class up front so session build cost (operand
        # conversion, backend pinning) is not billed to the first arrival
        for kind in workload.classes:
            client.prepare(_make_request(kind, workload))
        t0 = time.perf_counter()
        for offset, kind in zip(offsets, kinds):
            delay = t0 + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append(client.submit(_make_request(kind, workload)))
            except AdmissionError:
                rejected += 1
        for f in futures:
            f.result()
        duration_s = time.perf_counter() - t0
        snapshot = client.telemetry.snapshot()
        cache_stats = client.planner.cache.stats()
        profile_report = client.profiler.report()

    health = evaluate_registry(registry, DEFAULT_SLOS)
    completed = len(futures)
    total = snapshot.total
    modelled_busy_s = float(total.get("modelled_busy_s", 0.0))
    wall = _latency_stats(registry, names.REQUEST_WALL)
    modelled = _latency_stats(registry, names.REQUEST_MODELLED)
    queue_wait = _latency_stats(registry, names.QUEUE_WAIT)
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "serve-replay",
        "config": config.to_dict(),
        "results": {
            "requests": {
                "submitted": config.requests,
                "completed": completed,
                "rejected": rejected,
                "rejected_metric": _counter_total(registry, names.REJECTIONS),
            },
            "latency_s": {
                "wall": wall,
                "modelled": modelled,
                "queue_wait": queue_wait,
            },
            "throughput": {
                "offered_rps": (
                    config.requests / offsets[-1] if offsets[-1] > 0
                    else float(config.rate_rps)
                ),
                "completed_rps": completed / duration_s if duration_s else 0.0,
                # what the modelled device could sustain at 100% busy:
                # completed requests per modelled-busy second
                "saturation_rps": (
                    completed / modelled_busy_s if modelled_busy_s else 0.0
                ),
            },
            "batching": {
                "batches": int(total.get("batches", 0)),
                "mean_batch_size": float(total.get("mean_batch_size", 0.0)),
            },
            "plan_cache": {
                "hits": cache_stats["hits"],
                "misses": cache_stats["misses"],
                "hit_rate": cache_stats["hit_rate"],
            },
            "health": {
                "status": health.status,
                "objectives": len(health.results),
                "breaches": [r.spec.name for r in health.breaches],
            },
            "profile": {
                "sampled": profile_report.sampled,
                "phases": profile_report.phase_totals(),
            },
            "duration_s": duration_s,
        },
    }
    if out is not None:
        atomic_write_text(
            Path(out), json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if metrics_out is not None:
        write_snapshot(registry, Path(metrics_out))
    if trace_out is not None:
        tracer.export_jsonl(Path(trace_out))
    if health_out is not None:
        health.save(Path(health_out))
    if profile_out is not None:
        profile_report.save(Path(profile_out))
    if folded_out is not None:
        atomic_write_text(Path(folded_out), render_folded(profile_report))
    return report


def _run_replay_gateway(
    config: ReplayConfig,
    *,
    out: str | Path | None,
    metrics_out: str | Path | None,
    trace_out: str | Path | None,
    health_out: str | Path | None,
    profile_out: str | Path | None,
    folded_out: str | Path | None,
) -> dict:
    """Replay the same schedule through a :class:`repro.fleet.Gateway`.

    Same ``BENCH_serve.json`` shape as the direct-engine path (so
    ``repro bench compare`` gates the two against each other), with the
    per-worker rollups — telemetry totals, plan-cache hits — summed
    across the fleet and an extra ``results.gateway`` section recording
    the fleet topology and shed/retry counters. Latency stats come from
    the gateway's merged metrics snapshot, which aggregates every
    worker's histograms. The in-process sampling profiler and tracer
    live inside the workers, so ``profile_out`` / ``folded_out`` are
    not written in this mode and ``trace_out`` is an empty log.
    """
    from repro.fleet.gateway import FleetConfig, open_fleet
    from repro.obs import names
    from repro.obs.export import write_snapshot
    from repro.obs.trace import Tracer
    from repro.serve.batcher import BatchPolicy

    offsets = arrival_offsets(config)
    workload = _build_workload(config)
    rng = np.random.default_rng(config.seed + 2)
    kinds = rng.choice(
        workload.classes, size=config.requests, p=workload.weights
    ).tolist()

    fleet_config = FleetConfig(
        workers=config.gateway_workers,
        device=config.device,
        policy=BatchPolicy(max_queue_depth=config.max_queue_depth),
    )
    futures = []
    rejected = 0
    with open_fleet(fleet_config) as gateway:
        for kind in workload.classes:  # priming pass (build placements)
            gateway.run(_make_request(kind, workload))
        t0 = time.perf_counter()
        for offset, kind in zip(offsets, kinds):
            delay = t0 + offset - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                futures.append(gateway.submit(_make_request(kind, workload)))
            except AdmissionError:
                rejected += 1
        gateway.flush()
        for f in futures:
            f.result(fleet_config.rpc_timeout_s)
        duration_s = time.perf_counter() - t0
        registry = gateway.metrics_snapshot()
        health = gateway.health()
        status = gateway.status()
        worker_totals = []
        cache_hits = cache_misses = 0
        for stats in gateway.worker_stats().values():
            summary = stats.get("summary", {})
            worker_totals.append(summary.get("total", {}))
            cache = summary.get("plan_cache", {})
            cache_hits += int(cache.get("hits", 0))
            cache_misses += int(cache.get("misses", 0))

    completed = len(futures)
    modelled_busy_s = float(
        sum(t.get("modelled_busy_s", 0.0) for t in worker_totals)
    )
    batches = int(sum(t.get("batches", 0) for t in worker_totals))
    batched_requests = int(sum(t.get("requests", 0) for t in worker_totals))
    cache_lookups = cache_hits + cache_misses
    wall = _latency_stats(registry, names.REQUEST_WALL)
    modelled = _latency_stats(registry, names.REQUEST_MODELLED)
    queue_wait = _latency_stats(registry, names.QUEUE_WAIT)
    report = {
        "schema": BENCH_SCHEMA,
        "bench": "serve-replay",
        "config": config.to_dict(),
        "results": {
            "requests": {
                "submitted": config.requests,
                "completed": completed,
                "rejected": rejected,
                "rejected_metric": _counter_total(registry, names.REJECTIONS),
            },
            "latency_s": {
                "wall": wall,
                "modelled": modelled,
                "queue_wait": queue_wait,
            },
            "throughput": {
                "offered_rps": (
                    config.requests / offsets[-1] if offsets[-1] > 0
                    else float(config.rate_rps)
                ),
                "completed_rps": completed / duration_s if duration_s else 0.0,
                "saturation_rps": (
                    completed / modelled_busy_s if modelled_busy_s else 0.0
                ),
            },
            "batching": {
                "batches": batches,
                "mean_batch_size": (
                    batched_requests / batches if batches else 0.0
                ),
            },
            "plan_cache": {
                "hits": cache_hits,
                "misses": cache_misses,
                "hit_rate": (
                    cache_hits / cache_lookups if cache_lookups else 0.0
                ),
            },
            "health": {
                "status": health.status,
                "objectives": len(health.results),
                "breaches": [r.spec.name for r in health.breaches],
            },
            "gateway": {
                "workers": len(status["workers"]),
                "restarts": sum(
                    w["restarts"] for w in status["workers"].values()
                ),
                "shed": _counter_total(registry, names.FLEET_SHED),
                "retries": _counter_total(registry, names.FLEET_RETRIES),
            },
            "duration_s": duration_s,
        },
    }
    if out is not None:
        atomic_write_text(
            Path(out), json.dumps(report, indent=2, sort_keys=True) + "\n"
        )
    if metrics_out is not None:
        write_snapshot(registry, Path(metrics_out))
    if trace_out is not None:
        Tracer(enabled=False).export_jsonl(Path(trace_out))
    if health_out is not None:
        health.save(Path(health_out))
    return report


def render_replay_report(report: dict) -> str:
    """The human-readable summary ``repro bench serve --replay`` prints."""
    from repro.bench.report import render_table

    r = report["results"]
    lat = r["latency_s"]

    def ms(x: float) -> str:
        return f"{x * 1e3:.3f}"

    rows = [
        [name, stats["count"], ms(stats["mean"]), ms(stats["p50"]),
         ms(stats["p95"]), ms(stats["p99"])]
        for name, stats in (
            ("wall", lat["wall"]),
            ("modelled", lat["modelled"]),
            ("queue wait", lat["queue_wait"]),
        )
    ]
    lines = [
        render_table(
            ["latency (ms)", "n", "mean", "p50", "p95", "p99"], rows,
            title="-- traffic replay --",
        ),
        (
            f"requests: {r['requests']['completed']}/"
            f"{r['requests']['submitted']} completed, "
            f"{r['requests']['rejected']} rejected by admission"
        ),
        (
            f"throughput: {r['throughput']['offered_rps']:.1f} rps offered, "
            f"{r['throughput']['completed_rps']:.1f} rps completed, "
            f"{r['throughput']['saturation_rps']:.1f} rps at modelled "
            f"saturation"
        ),
        (
            f"batching: {r['batching']['batches']} batches, "
            f"mean size {r['batching']['mean_batch_size']:.2f}; "
            f"plan cache {r['plan_cache']['hit_rate']:.1%} hit rate"
        ),
    ]
    health = r.get("health")
    if health:  # artifacts from older runs predate the health section
        breaches = (
            f" (breaching: {', '.join(health['breaches'])})"
            if health.get("breaches") else ""
        )
        lines.append(
            f"health: {health['status']} over {health['objectives']} "
            f"objective(s){breaches}"
        )
    gateway = r.get("gateway")
    if gateway:  # fleet-routed replay (config.gateway_workers)
        lines.append(
            f"gateway: {gateway['workers']} worker(s), "
            f"{gateway['restarts']} restart(s), {gateway['shed']:.0f} shed, "
            f"{gateway['retries']:.0f} retried"
        )
    profile = r.get("profile")
    if profile:
        phases = ", ".join(
            f"{name} {t['wall_s'] * 1e3:.1f}ms/{t['count']}"
            for name, t in sorted(profile["phases"].items())
        )
        lines.append(
            f"profile: {profile['sampled']} sample(s){': ' if phases else ''}"
            f"{phases}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# regression compare


#: (json-path into results, higher-is-better) pairs the gate checks
_GATE_METRICS: tuple[tuple[tuple[str, ...], bool], ...] = (
    (("latency_s", "wall", "p50"), False),
    (("latency_s", "wall", "p99"), False),
    (("latency_s", "modelled", "p50"), False),
    (("throughput", "completed_rps"), True),
    (("plan_cache", "hit_rate"), True),
)


def _dig(d: dict, path: tuple[str, ...]):
    for part in path:
        d = d[part]
    return d


def compare_reports(
    current: dict, baseline: dict, threshold: float = 0.25
) -> list[str]:
    """Regressions of ``current`` vs ``baseline`` (empty list = clean).

    A metric regresses when it is worse than baseline by more than
    ``threshold`` (relative). Latencies regress upward, throughput and
    hit rate regress downward.
    """
    for name, report in (("current", current), ("baseline", baseline)):
        if report.get("schema") != BENCH_SCHEMA:
            raise ConfigError(
                f"{name} report has schema {report.get('schema')!r}, "
                f"expected {BENCH_SCHEMA}"
            )
    regressions = []
    for path, higher_is_better in _GATE_METRICS:
        try:
            cur = float(_dig(current["results"], path))
            base = float(_dig(baseline["results"], path))
        except (KeyError, TypeError):
            continue  # older artifact without this metric: skip, don't fail
        if base <= 0:
            continue
        delta = (cur - base) / base
        worse = -delta if higher_is_better else delta
        if worse > threshold:
            arrow = "fell" if higher_is_better else "rose"
            regressions.append(
                f"{'.'.join(path)} {arrow} {abs(delta):.1%} "
                f"(baseline {base:.6g} -> current {cur:.6g}, "
                f"threshold {threshold:.0%})"
            )
    return regressions


def compare_main(argv: list[str] | None = None) -> int:
    """``repro bench compare CURRENT [BASELINE]`` — the regression gate.

    Warn-only by default: regressions print but exit 0 unless
    ``--strict``. A missing baseline is a clean pass (first run on a
    branch has nothing to compare against).
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench compare",
        description="compare a BENCH_serve.json against a baseline artifact",
    )
    parser.add_argument("current", help="current BENCH_serve.json")
    parser.add_argument(
        "baseline", nargs="?", default="BENCH_serve.baseline.json",
        help="baseline artifact (default: %(default)s)",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="relative regression tolerance (default: %(default)s)",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="exit 1 on regression instead of warning",
    )
    args = parser.parse_args(argv)

    current_path, baseline_path = Path(args.current), Path(args.baseline)
    if not baseline_path.exists():
        print(f"no baseline at {baseline_path}: nothing to compare (ok)")
        return 0
    if not current_path.exists():
        print(f"current artifact {current_path} does not exist")
        return 2
    current = json.loads(current_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    regressions = compare_reports(current, baseline, threshold=args.threshold)
    if not regressions:
        print(
            f"no regressions vs {baseline_path} "
            f"(threshold {args.threshold:.0%})"
        )
        return 0
    for line in regressions:
        print(f"regression: {line}")
    if args.strict:
        return 1
    print(f"{len(regressions)} regression(s) — warn-only (pass --strict to fail)")
    return 0
