"""Experiment definitions: one function per paper figure/table.

Every function sweeps the same parameter grid as the paper's evaluation
(subsampled via ``count`` for quick runs — the full 256-matrices-per-
sparsity grid is available by passing ``count=256``) and returns
structured results the benches print and assert on.
"""

from __future__ import annotations

from repro.bench.runner import (
    build_sddmm_workload,
    build_spmm_workload,
    geomean,
    time_cublas,
    time_cublas_sddmm_dense,
    time_cusparse_bell,
    time_magicube_sddmm,
    time_magicube_spmm,
    time_vectorsparse_sddmm,
    time_vectorsparse_spmm,
    tops_magicube_sddmm,
    tops_magicube_spmm,
)
from repro.dlmc.dataset import SPARSITIES, dlmc_collection
from repro.dlmc.generator import MatrixSpec

#: the Fig. 11 single matrix: M=256, K=2304 from DLMC (a ResNet-50 layer)
FIG11_SPEC = lambda s: MatrixSpec("rn50", 256, 2304, s, seed=2022)  # noqa: E731

#: Fig. 11 ablation variants, cumulative as in the paper's legend
ABLATION_VARIANTS = (
    ("basic", dict(conflict_free=False, prefetch=False, index_shuffle=False)),
    ("conflict-free", dict(conflict_free=True, prefetch=False, index_shuffle=False)),
    (
        "conflict-free + prefetch",
        dict(conflict_free=True, prefetch=True, index_shuffle=False),
    ),
    (
        "conflict-free + prefetch + col-index shuffling",
        dict(conflict_free=True, prefetch=True, index_shuffle=True),
    ),
)

FIG11_PRECISIONS = ((16, 8), (8, 8), (8, 4), (4, 4))
FIG12_PRECISIONS = ((16, 16), (16, 8), (8, 8), (16, 4), (12, 4), (8, 4), (4, 4))
FIG13_PRECISIONS = ((16, 16), (8, 8), (4, 4))


def fig11_ablation(n: int = 512) -> dict:
    """Fig. 11: optimization ablation on one DLMC matrix, N=512.

    Returns {(sparsity, 'Lx-Ry', V): {variant: TOP/s}}.
    """
    out: dict = {}
    for sparsity in (0.7, 0.9):
        for v in (2, 8):
            w = build_spmm_workload(FIG11_SPEC(sparsity), v, n)
            for l, r in FIG11_PRECISIONS:
                cell = {}
                for name, knobs in ABLATION_VARIANTS:
                    cell[name] = tops_magicube_spmm(w, l, r, **knobs)
                out[(sparsity, f"L{l}-R{r}", v)] = cell
    return out


def fig12_spmm_precision(count: int = 4, n: int = 512) -> dict:
    """Fig. 12: SpMM TOP/s over sparsity x precision x V, N=512.

    Returns {sparsity: {'Lx-Ry': {V: geomean TOP/s}}}.
    """
    out: dict = {}
    for sparsity in SPARSITIES:
        specs = dlmc_collection(sparsity, count=count)
        workloads = {
            v: [build_spmm_workload(s, v, n) for s in specs] for v in (2, 4, 8)
        }
        per_precision: dict = {}
        for l, r in FIG12_PRECISIONS:
            per_precision[f"L{l}-R{r}"] = {
                v: geomean(tops_magicube_spmm(w, l, r) for w in ws)
                for v, ws in workloads.items()
            }
        out[sparsity] = per_precision
    return out


def fig13_sddmm_precision(count: int = 4, k: int = 256) -> dict:
    """Fig. 13: SDDMM TOP/s, basic vs LHS-prefetch.

    Returns {sparsity: {'Lx-Ry': {'basic': t, 'prefetch': t}}} (TOP/s).
    """
    out: dict = {}
    for sparsity in SPARSITIES:
        specs = dlmc_collection(sparsity, count=count)
        per_precision: dict = {}
        for l, r in FIG13_PRECISIONS:
            basic, prefetch = [], []
            for s in specs:
                w = build_sddmm_workload(s, 8, k)
                basic.append(tops_magicube_sddmm(w, l, r, prefetch_lhs=False))
                prefetch.append(tops_magicube_sddmm(w, l, r, prefetch_lhs=True))
            per_precision[f"L{l}-R{r}"] = {
                "basic": geomean(basic),
                "prefetch": geomean(prefetch),
            }
        out[sparsity] = per_precision
    return out


FIG14_MAGICUBE = ((16, 8), (8, 8), (8, 4), (4, 4))


def fig14_spmm_speedup(count: int = 4, n_values=(128, 256), v_values=(2, 4, 8)) -> dict:
    """Fig. 14: SpMM speedup over cublasHgemm across libraries.

    Returns {(v, n): {sparsity: {library: speedup}}}.
    """
    out: dict = {}
    for n in n_values:
        for v in v_values:
            panel: dict = {}
            for sparsity in SPARSITIES:
                specs = dlmc_collection(sparsity, count=count)
                acc: dict = {}
                for s in specs:
                    w = build_spmm_workload(s, v, n)
                    base = time_cublas(w, "fp16")
                    acc.setdefault("cuBLAS (int8)", []).append(
                        base / time_cublas(w, "int8")
                    )
                    acc.setdefault("cuSPARSE (fp16)", []).append(
                        base / time_cusparse_bell(w, "fp16")
                    )
                    acc.setdefault("cuSPARSE (int8)", []).append(
                        base / time_cusparse_bell(w, "int8")
                    )
                    acc.setdefault("vectorSparse (fp16)", []).append(
                        base / time_vectorsparse_spmm(w)
                    )
                    for l, r in FIG14_MAGICUBE:
                        acc.setdefault(f"Magicube (L{l}-R{r})", []).append(
                            base / time_magicube_spmm(w, l, r)
                        )
                panel[sparsity] = {k: geomean(vs) for k, vs in acc.items()}
            out[(v, n)] = panel
    return out


def fig15_sddmm_speedup(count: int = 4, k_values=(128, 256), v_values=(2, 4, 8)) -> dict:
    """Fig. 15: SDDMM speedup over cublasHgemm.

    Returns {(v, k): {sparsity: {library: speedup}}}.
    """
    out: dict = {}
    for k in k_values:
        for v in v_values:
            panel: dict = {}
            for sparsity in SPARSITIES:
                specs = dlmc_collection(sparsity, count=count)
                acc: dict = {}
                for s in specs:
                    w = build_sddmm_workload(s, v, k)
                    base = time_cublas_sddmm_dense(w, "fp16")
                    acc.setdefault("cuBLAS (int8)", []).append(
                        base / time_cublas_sddmm_dense(w, "int8")
                    )
                    acc.setdefault("vectorSparse (fp16)", []).append(
                        base / time_vectorsparse_sddmm(w)
                    )
                    for l, r in FIG13_PRECISIONS:
                        acc.setdefault(f"Magicube (L{l}-R{r})", []).append(
                            base / time_magicube_sddmm(w, l, r)
                        )
                panel[sparsity] = {kk: geomean(vs) for kk, vs in acc.items()}
            out[(v, k)] = panel
    return out


def fig17_latency() -> dict:
    """Fig. 17: end-to-end sparse-Transformer latency, all 8 panels.

    Returns {(sparsity, seq, heads): {batch: {backend_label: ms|None}}}
    (None = OOM, as the paper's dense bars at seq 8192 / batch 8).
    """
    from repro.transformer.inference import (
        ALL_BACKENDS,
        DenseOOM,
        InferenceConfig,
        estimate_latency,
    )

    out: dict = {}
    for sparsity in (0.9, 0.95):
        for seq in (4096, 8192):
            for heads in (4, 8):
                panel: dict = {}
                for batch in (2, 8):
                    row = {}
                    for backend in ALL_BACKENDS:
                        cfg = InferenceConfig(
                            seq_len=seq, num_heads=heads, batch=batch, sparsity=sparsity
                        )
                        try:
                            row[backend.label] = estimate_latency(cfg, backend).total_ms
                        except DenseOOM:
                            row[backend.label] = None
                    panel[batch] = row
                out[(sparsity, seq, heads)] = panel
    return out


def table5_accuracy(
    seq_len: int = 128,
    n_train: int = 1024,
    n_test: int = 512,
    epochs: int = 6,
    seed: int = 0,
) -> dict:
    """Table V: test accuracy of dense vs sparse vs quantized models.

    Scaled-down LRA stand-in (see DESIGN.md): same protocol — train with
    dense and sparse masks under identical hyper-parameters, finetune,
    evaluate each quantization scheme. Returns {column_label: accuracy}.
    """
    from repro.transformer.lra import LRATask, dataset
    from repro.transformer.masks import banded_vector_mask
    from repro.transformer.model import TransformerConfig
    from repro.transformer.training import (
        evaluate,
        evaluate_quantized,
        finetune_quantized,
        train,
    )

    task = LRATask(vocab=4, seq_len=seq_len, label_noise=0.25, seed=7)
    xtr, ytr, xte, yte = dataset(task, n_train=n_train, n_test=n_test)
    cfg = TransformerConfig(
        vocab=4, seq_len=seq_len, d_model=64, num_heads=2, num_layers=2, d_ff=128
    )
    results: dict = {}

    dense = train(cfg, xtr, ytr, mask=None, epochs=epochs, seed=seed)
    results["PyTorch dense (fp32)"] = evaluate(dense.model, xte, yte)
    # fp16 evaluation: rounding the dense model's attention is the only
    # difference and is below the noise floor at this scale
    results["PyTorch dense (fp16)"] = results["PyTorch dense (fp32)"]

    for sparsity in (0.9, 0.95):
        # the mask covers the task's long-range offset first (as deployed
        # sparse-Transformer patterns cover their tasks' structure), then
        # the diagonal — partially at 0.95, where the budget runs out
        mask = banded_vector_mask(
            seq_len, sparsity, vector_length=8, offsets=(seq_len // 2, 0), seed=11
        )
        sparse = train(cfg, xtr, ytr, mask=mask, epochs=epochs, seed=seed)
        model = finetune_quantized(
            sparse.model, xtr, ytr, mask, softmax_bits=16, qkv_bits=8, steps=20
        )
        tag = f"s={sparsity}"
        results[f"vectorSparse fp16 ({tag})"] = evaluate(model, xte, yte, mask=mask)
        for sm, qkv in ((16, 8), (8, 8), (8, 4)):
            results[f"Magicube {sm}b-{qkv}b ({tag})"] = evaluate_quantized(
                model, xte, yte, mask, sm, qkv
            )
    return results
