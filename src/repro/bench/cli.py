"""Command-line experiment runner: regenerate the paper's evaluation.

Usage::

    python -m repro.bench                 # every table and figure
    python -m repro.bench fig14 table2    # a subset
    python -m repro.bench --count 16      # denser DLMC subsample
    python -m repro.bench --list
    python -m repro.bench serve --replay  # traffic replay -> BENCH_serve.json
    python -m repro.bench compare BENCH_serve.json baseline.json
    python -m repro.bench kernels --wall  # emulation vs fastpath, asserted

Prints the same rows the paper reports; heavy sweeps honour ``--count``.
The traffic replay (``serve --replay``, :mod:`repro.bench.loadgen`)
additionally writes schema-versioned ``BENCH_serve.json`` /
``.metrics.json`` / ``.trace.jsonl`` artifacts, and ``compare`` is the
(warn-only) regression gate over two such artifacts.
"""

from __future__ import annotations

import argparse
import sys
import time


def _print_table1() -> None:
    from repro.baselines import capability_table

    print(capability_table())


def _print_table2() -> None:
    from repro.bench.report import render_table
    from repro.gpu.device import get_device

    rows = []
    for name in ("V100", "A100", "H100", "MI250X"):
        dev = get_device(name)
        cells = [name]
        for precision in ("fp16", "int8", "int4"):
            if dev.supports(precision):
                rate = dev.peaks[precision]
                cells.append(f"{rate.total:g} ({rate.tensor_fraction * 100:.1f}%)")
            else:
                cells.append("-")
        rows.append(cells)
    print(render_table(["GPU", "fp16", "int8", "int4"], rows))


def _print_table3() -> None:
    from repro.bench.report import render_table
    from repro.gpu.mma import supported_shapes

    rows = [
        [f"int{bits}/uint{bits}", ", ".join(s.name for s in supported_shapes(bits))]
        for bits in (4, 8)
    ]
    print(render_table(["Precision", "Supported shapes"], rows))


def _print_table4() -> None:
    from repro.bench.report import render_table
    from repro.kernels import plan_for, supported_pairs

    rows = []
    for op in ("spmm", "sddmm"):
        emulated, native = [], []
        for l, r in supported_pairs(op):
            name = f"L{l}-R{r}"
            (native if plan_for(l, r, op).is_native else emulated).append(name)
        rows.append([op.upper(), ", ".join(emulated), ", ".join(native)])
    print(render_table(["Op", "Emulated", "Native"], rows))


def _print_fig11(count: int) -> None:
    from repro.bench.figures import ABLATION_VARIANTS, fig11_ablation
    from repro.bench.report import render_table

    results = fig11_ablation()
    names = [n for n, _ in ABLATION_VARIANTS]
    rows = [
        [s, p, v] + [cell[n] for n in names]
        for (s, p, v), cell in sorted(results.items())
    ]
    print(render_table(["sparsity", "precision", "V"] + names, rows))


def _print_fig12(count: int) -> None:
    from repro.bench.figures import fig12_spmm_precision
    from repro.bench.report import render_table

    results = fig12_spmm_precision(count=count)
    rows = []
    for sparsity, per_precision in results.items():
        for precision, per_v in per_precision.items():
            rows.append([sparsity, precision, per_v[2], per_v[4], per_v[8]])
    print(render_table(["sparsity", "precision", "V=2", "V=4", "V=8"], rows))


def _print_fig13(count: int) -> None:
    from repro.bench.figures import fig13_sddmm_precision
    from repro.bench.report import render_table

    results = fig13_sddmm_precision(count=count)
    rows = []
    for sparsity, per_precision in results.items():
        for precision, cell in per_precision.items():
            rows.append([sparsity, precision, cell["basic"], cell["prefetch"]])
    print(render_table(["sparsity", "precision", "basic", "prefetch"], rows))


def _print_fig14(count: int) -> None:
    from repro.bench.figures import fig14_spmm_speedup
    from repro.bench.report import render_series
    from repro.dlmc.dataset import SPARSITIES

    results = fig14_spmm_speedup(count=count)
    for (v, n), panel in sorted(results.items()):
        libs = list(next(iter(panel.values())))
        series = {lib: [panel[s][lib] for s in SPARSITIES] for lib in libs}
        print(render_series("sparsity", list(SPARSITIES), series,
                            title=f"-- V={v} N={n} --"))
        print()


def _print_fig15(count: int) -> None:
    from repro.bench.figures import fig15_sddmm_speedup
    from repro.bench.report import render_series
    from repro.dlmc.dataset import SPARSITIES

    results = fig15_sddmm_speedup(count=count)
    for (v, k), panel in sorted(results.items()):
        libs = list(next(iter(panel.values())))
        series = {lib: [panel[s][lib] for s in SPARSITIES] for lib in libs}
        print(render_series("sparsity", list(SPARSITIES), series,
                            title=f"-- V={v} K={k} --"))
        print()


def _print_fig17(count: int) -> None:
    from repro.bench.figures import fig17_latency
    from repro.bench.report import render_table

    results = fig17_latency()
    for (sparsity, seq, heads), panel in sorted(results.items()):
        print(f"-- sparsity={sparsity} seq={seq} heads={heads} (ms) --")
        backends = list(next(iter(panel.values())))
        rows = [
            [b] + [f"{row[b]:.2f}" if row[b] is not None else "OOM"
                   for row in panel.values()]
            for b in backends
        ]
        print(render_table(["backend", "batch=2", "batch=8"], rows))
        print()


def _print_serve(count: int) -> None:
    from repro.serve.cli import demo

    # scale the request stream with --count (the DLMC-density knob)
    demo(num_requests=max(120, count * 40))


def _print_backends(count: int) -> None:
    """Sweep every plannable registered backend on a fixed topology."""
    from repro.bench.report import render_table
    from repro.runtime import Device, Problem, REGISTRY

    problem = Problem(
        op="spmm", rows=512, cols=2048, inner=256, vector_length=8, sparsity=0.9
    )
    print(
        f"fixed topology: {problem.rows}x{problem.cols} @ "
        f"{problem.cols}x{problem.inner}, V={problem.vector_length}, "
        f"s={problem.sparsity}"
    )
    rows = []
    for backend in REGISTRY.backends():
        if not backend.plannable:
            continue
        for dev in Device.all():
            if not backend.supports(dev, op=problem.op):
                continue
            cands = backend.plan_candidates(problem, dev)
            if not cands:
                continue
            best = min(cands, key=lambda c: c.time_s)
            knobs = ", ".join(f"{k}={v}" for k, v in sorted(best.config.items()))
            rows.append([
                backend.name,
                dev.name,
                best.precision,
                knobs or "-",
                f"{best.time_s * 1e6:.2f}",
            ])
    print(render_table(
        ["backend", "device", "precision", "knobs", "predicted us"], rows
    ))


def _print_autotune(count: int) -> None:
    """Cold-vs-warm serving: sweep offline, warm-start, compare planners."""
    import tempfile
    import time as _time
    from pathlib import Path

    import numpy as np

    from repro import api
    from repro.autotune import ArtifactManifest, SweepConfig, run_sweep, write_artifact
    from repro.bench.report import render_table
    from repro.dlmc.generator import MatrixSpec, generate_matrix

    widths = (64, 128, 256)
    spec = MatrixSpec("transformer", 512, 512, sparsity=0.9, seed=1)
    weights = generate_matrix(spec, vector_length=8, bits=8)
    rng = np.random.default_rng(0)

    def first_contact(client: api.Client) -> dict:
        """Plan every request class once; returns hit/miss/latency stats."""
        session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
        cache = client.planner.cache
        cache.reset_counters()
        t0 = _time.perf_counter()
        for n in widths:
            session.plan_for(n, 8)
        planner_s = _time.perf_counter() - t0
        stats = dict(cache.stats())
        # then actually serve one request per class through the batcher
        for n in widths:
            session.run(rng.integers(-128, 128, size=(512, n)))
        return {"planner_ms": planner_s * 1e3, **stats}

    # offline: sweep exactly the request classes the engine will see
    with api.open_engine(device="A100") as probe:
        probe_session = probe.prepare(api.SpmmRequest(lhs=weights, session="probe"))
        weight_bits = probe_session.weight_bits
        weights = probe_session.matrix  # converted once, reused below
    config = SweepConfig(
        ops=("spmm",),
        shapes=tuple((512, 512, n) for n in widths),
        vector_lengths=(8,),
        sparsities=(weights.sparsity,),
        devices=("A100",),
        backends=("magicube-emulation",),
        min_bits=((weight_bits, 8),),
    )
    report = run_sweep(config, repeats=max(1, count))
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "plans.json"
        write_artifact(artifact, report.cache, ArtifactManifest.for_report(report))
        s = report.summary()
        print(
            f"sweep: {s['measured']} points in {s['elapsed_s']:.2f}s, "
            f"median cold search {s['search_s_median'] * 1e3:.2f}ms, "
            f"{s['plans']} plans shipped"
        )
        results = {}
        for mode, kwargs in (("cold", {}), ("warm", {"warm_start": artifact})):
            with api.open_engine(device="A100", **kwargs) as client:
                preloaded = len(client.planner.cache)
                results[mode] = {"preloaded": preloaded, **first_contact(client)}
    print(render_table(
        ["mode", "preloaded", "hits", "misses", "hit rate", "planner ms"],
        [
            [
                mode, r["preloaded"], r["hits"], r["misses"],
                f"{r['hit_rate']:.1%}", f"{r['planner_ms']:.2f}",
            ]
            for mode, r in results.items()
        ],
        title="-- first contact with swept request classes --",
    ))
    warm, cold = results["warm"], results["cold"]
    if warm["hit_rate"] <= 0.5:
        raise AssertionError(
            f"warm-start first-contact hit rate {warm['hit_rate']:.1%} <= 50%"
        )
    speedup = (
        f" ({cold['planner_ms'] / warm['planner_ms']:.1f}x faster)"
        if warm["planner_ms"] > 0 else ""
    )
    print(
        f"warm start: {warm['hit_rate']:.0%} first-contact hit rate, "
        f"planner {cold['planner_ms']:.2f}ms -> {warm['planner_ms']:.2f}ms"
        f"{speedup}"
    )


def _print_retune(count: int) -> None:
    """Cold vs manually-warmed vs scheduler-converged on a workload shift."""
    import tempfile
    import time as _time
    from pathlib import Path

    import numpy as np

    from repro import api
    from repro.autotune import (
        ArtifactManifest,
        RetunePolicy,
        SweepBudget,
        SweepConfig,
        manifest_path,
        run_sweep,
        write_artifact,
    )
    from repro.bench.report import render_table
    from repro.dlmc.generator import MatrixSpec, generate_matrix

    phase_a, phase_b = (64, 128), (256, 320)
    all_widths = phase_a + phase_b
    spec = MatrixSpec("transformer", 512, 512, sparsity=0.9, seed=1)
    weights = generate_matrix(spec, vector_length=8, bits=8)
    rng = np.random.default_rng(0)

    # prepare once: share the converted operand, read the weight width
    with api.open_engine(device="A100") as probe:
        ps = probe.prepare(api.SpmmRequest(lhs=weights, session="probe"))
        weight_bits, weights = ps.weight_bits, ps.matrix

    def serve(client: api.Client, widths, requests_per: int = 3) -> None:
        session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
        for n in widths:
            for _ in range(requests_per):
                session.run(rng.integers(-128, 128, size=(512, n)))

    def first_contact(client: api.Client) -> dict:
        """Plan every request class of both phases once, cold counters."""
        session = client.prepare(api.SpmmRequest(lhs=weights, session="ffn"))
        cache = client.planner.cache
        cache.reset_counters()
        t0 = _time.perf_counter()
        for n in all_widths:
            session.plan_for(n, 8)
        planner_s = _time.perf_counter() - t0
        return {"planner_ms": planner_s * 1e3, **cache.stats()}

    with tempfile.TemporaryDirectory() as tmp:
        tmpdir = Path(tmp)
        # the manually-warmed operator swept *yesterday's* mix (phase A)
        manual_cfg = SweepConfig(
            ops=("spmm",),
            shapes=tuple((512, 512, n) for n in phase_a),
            vector_lengths=(8,),
            sparsities=(weights.sparsity,),
            devices=("A100",),
            backends=("magicube-emulation",),
            min_bits=((weight_bits, 8),),
        )
        manual_report = run_sweep(manual_cfg, repeats=max(1, count))
        manual_art = tmpdir / "manual" / "plans.json"
        write_artifact(
            manual_art, manual_report.cache,
            ArtifactManifest.for_report(manual_report),
        )

        # the scheduler-enabled engine sees the shift live; cycles are
        # driven explicitly (run_once) so the report is deterministic
        policy = RetunePolicy(
            interval_s=3600.0,
            min_requests=1,
            hot_share=0.05,
            cooldown_s=0.0,
            budget=SweepBudget(max_trials=32, max_seconds=120.0),
            repeats=max(1, count),
            artifact_dir=tmpdir / "retuned",
        )
        with api.open_engine(device="A100", retune=policy) as live:
            serve(live, phase_a)
            c1 = live.retune.run_once()
            serve(live, phase_b)  # the workload mix shifts
            c2 = live.retune.run_once()
            status = live.retune_status()
        shipped = [Path(p) for p in status.artifacts]
        for i, cycle in enumerate((c1, c2), 1):
            reasons = ", ".join(sorted({t.reason for t in cycle.triggers}))
            print(
                f"cycle {i}: snapshot {cycle.snapshot_fingerprint}, "
                f"{len(cycle.triggers)} trigger(s) ({reasons or 'none'}), "
                f"{cycle.promoted} plan(s) promoted -> "
                f"{cycle.artifact.parent.name if cycle.artifact else 'live cache only'}"
            )

        modes = (
            ("cold", {}),
            ("manual-warm", {"warm_start": manual_art}),
            ("scheduler", {"warm_start": shipped}),
        )
        results = {}
        for mode, kwargs in modes:
            with api.open_engine(device="A100", **kwargs) as client:
                results[mode] = {
                    "preloaded": len(client.planner.cache),
                    **first_contact(client),
                }
        print(render_table(
            ["mode", "preloaded", "hits", "misses", "hit rate", "planner ms"],
            [
                [
                    mode, r["preloaded"], r["hits"], r["misses"],
                    f"{r['hit_rate']:.1%}", f"{r['planner_ms']:.2f}",
                ]
                for mode, r in results.items()
            ],
            title="-- first contact with the full (shifted) workload --",
        ))
        manifest = ArtifactManifest.load(manifest_path(shipped[-1]))
        retune_info = manifest.sweep["retune"]
        print(
            f"provenance: {shipped[-1].parent.name} was triggered by "
            f"telemetry snapshot {retune_info['snapshot']} "
            f"({len(retune_info['triggers'])} trigger(s))"
        )
    sched = results["scheduler"]
    if sched["misses"] or sched["hits"] != len(all_widths):
        raise AssertionError(
            f"scheduler-converged engine should hit all {len(all_widths)} "
            f"request classes on first contact, got {sched['hits']} hits / "
            f"{sched['misses']} misses"
        )
    if results["manual-warm"]["misses"] != len(phase_b):
        raise AssertionError(
            "manually-warmed engine should still cold-miss the shifted "
            "phase-B classes"
        )
    print(
        f"loop closed: no manual sweep, {sched['hit_rate']:.0%} first-contact "
        f"hit rate (cold planner {results['cold']['planner_ms']:.2f}ms -> "
        f"{sched['planner_ms']:.2f}ms)"
    )


def _print_table5(count: int) -> None:
    from repro.bench.figures import table5_accuracy
    from repro.bench.report import render_table

    results = table5_accuracy()
    rows = [[k, f"{v * 100:.2f}%"] for k, v in results.items()]
    print(render_table(["scheme", "accuracy"], rows))


EXPERIMENTS = {
    "table1": ("Table I: library capabilities", lambda c: _print_table1()),
    "table2": ("Table II: peak TOPS per GPU", lambda c: _print_table2()),
    "table3": ("Table III: MMA shapes", lambda c: _print_table3()),
    "table4": ("Table IV: precision pairs", lambda c: _print_table4()),
    "fig11": ("Fig. 11: SpMM ablation", _print_fig11),
    "fig12": ("Fig. 12: SpMM TOP/s sweep", _print_fig12),
    "fig13": ("Fig. 13: SDDMM TOP/s sweep", _print_fig13),
    "fig14": ("Fig. 14: SpMM speedups", _print_fig14),
    "fig15": ("Fig. 15: SDDMM speedups", _print_fig15),
    "fig17": ("Fig. 17: e2e Transformer latency", _print_fig17),
    "table5": ("Table V: accuracy study (trains a model)", _print_table5),
    "serve": ("Serving: batched engine throughput demo", _print_serve),
    "backends": ("Runtime: registered-backend sweep on a fixed topology", _print_backends),
    "autotune": ("Autotune: offline sweep -> warm-start cold/warm comparison", _print_autotune),
    "retune": ("Retune: telemetry-driven scheduler closing serve -> autotune on a workload shift", _print_retune),
}


def _parse_mix(text: str) -> tuple[tuple[str, float], ...]:
    """``NAME=WEIGHT,NAME=WEIGHT`` -> the ReplayConfig mix tuple."""
    pairs = []
    for part in text.split(","):
        name, sep, weight = part.partition("=")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"bad mix entry {part!r}; expected NAME=WEIGHT"
            )
        try:
            pairs.append((name.strip(), float(weight)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad mix weight in {part!r}; expected a number"
            ) from None
    return tuple(pairs)


def _run_replay(args) -> int:
    from repro.bench.loadgen import ReplayConfig, render_replay_report, run_replay

    mix_kwargs = {"mix": args.mix} if args.mix else {}
    config = ReplayConfig(
        requests=args.requests,
        arrival=args.arrival,
        rate_rps=args.rate,
        seed=args.seed,
        trace_path=args.arrival_trace,
        gateway_workers=args.gateway,
        **mix_kwargs,
    )
    report = run_replay(config, out=args.out)
    print(render_replay_report(report))
    if args.gateway:
        print(f"wrote {args.out} (+ .metrics.json, .trace.jsonl, .health.json)")
    else:
        print(
            f"wrote {args.out} (+ .metrics.json, .trace.jsonl, .health.json, "
            f".profile.json, .folded.txt)"
        )
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv[:1] == ["compare"]:
        # the regression gate takes positional file paths, which the
        # experiment parser would reject — route it before argparse
        from repro.bench.loadgen import compare_main

        return compare_main(argv[1:])
    if argv[:1] == ["kernels"]:
        # the kernel wall-clock gate has its own flags (--wall, --floor)
        from repro.bench.kernels import kernels_main

        return kernels_main(argv[1:])

    parser = argparse.ArgumentParser(
        prog="repro bench", description=__doc__
    )
    parser.add_argument("experiments", nargs="*", help="subset to run")
    parser.add_argument("--count", type=int, default=3, help="DLMC matrices per sparsity")
    parser.add_argument("--list", action="store_true", help="list experiments")
    replay = parser.add_argument_group("traffic replay (serve --replay)")
    replay.add_argument(
        "--replay", action="store_true",
        help="run the serve traffic replay and write BENCH_serve.json",
    )
    replay.add_argument("--requests", type=int, default=120, help="replay size")
    replay.add_argument(
        "--arrival", choices=("poisson", "bursty", "uniform", "trace"),
        default="poisson", help="arrival process",
    )
    replay.add_argument("--rate", type=float, default=400.0, help="offered rps")
    replay.add_argument("--seed", type=int, default=0, help="schedule seed")
    replay.add_argument(
        "--arrival-trace", default=None, metavar="PATH",
        help="JSON list of arrival offsets (with --arrival trace)",
    )
    replay.add_argument(
        "--gateway", type=int, default=None, metavar="N",
        help="route through a repro.fleet gateway with N worker processes",
    )
    replay.add_argument(
        "--mix", type=_parse_mix, default=None, metavar="NAME=W,NAME=W",
        help="request-class mix, e.g. spmm=0.5,transformer=0.5 (classes: "
             "spmm, sddmm, attention, transformer; default "
             "spmm=0.6,sddmm=0.25,attention=0.15)",
    )
    replay.add_argument(
        "--out", default="BENCH_serve.json", help="report artifact path"
    )
    args = parser.parse_args(argv)

    if args.list:
        for key, (desc, _) in EXPERIMENTS.items():
            print(f"{key:<8} {desc}")
        return 0

    if args.replay:
        if args.experiments not in ([], ["serve"]):
            print(
                f"--replay only applies to 'serve', got {args.experiments}",
                file=sys.stderr,
            )
            return 2
        return _run_replay(args)

    selected = args.experiments or list(EXPERIMENTS)
    unknown = [e for e in selected if e not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; use --list", file=sys.stderr)
        return 2
    for key in selected:
        desc, fn = EXPERIMENTS[key]
        print(f"\n=== {desc} ===")
        t0 = time.time()
        fn(args.count)
        print(f"[{key} done in {time.time() - t0:.1f}s]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
