"""Plain-text renderers for benchmark results."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str = "") -> str:
    """Align a list-of-rows table like the paper's tables."""
    cells = [[str(h) for h in headers]] + [
        [f"{c:.2f}" if isinstance(c, float) else str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    x_label: str,
    xs: list,
    series: dict,
    title: str = "",
    fmt: str = "{:.2f}",
) -> str:
    """Render {name: [values]} against an x axis — one figure panel."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [
            fmt.format(series[name][i]) if series[name][i] is not None else "OOM"
            for name in series
        ]
        rows.append(row)
    return render_table(headers, rows, title=title)
