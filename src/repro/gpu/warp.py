"""Warp and thread-block geometry helpers.

CUDA organizes threads as grid -> thread block -> warp (32 threads). The
kernels in this library reason about work distribution at warp
granularity; these helpers keep that arithmetic in one audited place.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.gpu.device import WARP_SIZE


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division (non-negative operands)."""
    if b <= 0:
        raise ConfigError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def round_up(a: int, multiple: int) -> int:
    """Round ``a`` up to the next multiple of ``multiple``."""
    return ceil_div(a, multiple) * multiple


@dataclass(frozen=True)
class ThreadBlock:
    """Shape of one thread block: ``warps`` warps of 32 threads."""

    warps: int

    def __post_init__(self) -> None:
        if self.warps < 1 or self.warps > 32:
            raise ConfigError(f"thread block must have 1..32 warps, got {self.warps}")

    @property
    def threads(self) -> int:
        return self.warps * WARP_SIZE


@dataclass(frozen=True)
class LaunchGrid:
    """A kernel launch: ``blocks`` thread blocks of shape ``block``."""

    blocks: int
    block: ThreadBlock

    @property
    def total_warps(self) -> int:
        return self.blocks * self.block.warps

    def occupancy_waves(self, num_sms: int, blocks_per_sm: int = 2) -> float:
        """Number of 'waves' the grid takes to stream through the device.

        A wave is one full complement of resident blocks. The fractional
        last wave is what causes the tail effect on small grids.
        """
        resident = num_sms * blocks_per_sm
        return max(1.0, self.blocks / resident)

    def utilization(self, num_sms: int, blocks_per_sm: int = 2) -> float:
        """Fraction of the device kept busy, accounting for the tail wave."""
        resident = num_sms * blocks_per_sm
        waves = self.blocks / resident
        if waves >= 1.0:
            # full waves are fully utilized; the tail wave is partial
            full = int(waves)
            frac = waves - full
            return (full + frac) / ceil_div(self.blocks, resident)
        return max(waves, 1.0 / resident)


def lane_id(thread: int) -> int:
    """Lane index of a thread within its warp."""
    return thread % WARP_SIZE


def warp_id(thread: int) -> int:
    """Warp index of a thread within its block."""
    return thread // WARP_SIZE
