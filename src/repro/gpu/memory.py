"""Global-memory transaction model: coalescing and traffic accounting.

Two concerns the paper's kernels optimize for:

1. **Coalescing** — a warp's global loads are serviced in 32-byte
   sectors; a request touching fewer distinct sectors moves less data.
   The SpMM staging loop deliberately shapes each row load into a single
   64B (BSn=64) or 128B (BSn=128) transaction (Sec. IV-B2).
2. **Traffic** — the cost model distinguishes *compulsory* DRAM traffic
   (unique bytes, fetched once and then resident in L2 — the A100's
   40 MB L2 comfortably holds the RHS matrices of the evaluation) from
   total *access* traffic served at L2 bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: minimum global-memory transaction granularity (one sector)
SECTOR_BYTES = 32


def coalesced_sectors(byte_addresses: np.ndarray, access_bytes: int = 1) -> int:
    """Number of 32-byte sectors one warp request touches.

    ``byte_addresses`` are the per-lane starting addresses, each lane
    reading ``access_bytes``. Perfectly coalesced loads of 32 x 4B hit
    4 sectors; a fully scattered byte gather can hit 32.
    """
    addrs = np.asarray(byte_addresses, dtype=np.int64).reshape(-1)
    ends = addrs + access_bytes - 1
    sectors = np.concatenate([addrs // SECTOR_BYTES, ends // SECTOR_BYTES])
    return int(np.unique(sectors).size)


def transaction_efficiency(byte_addresses: np.ndarray, access_bytes: int = 1) -> float:
    """Useful bytes / transferred bytes for one warp request."""
    useful = np.asarray(byte_addresses).size * access_bytes
    moved = coalesced_sectors(byte_addresses, access_bytes) * SECTOR_BYTES
    return useful / moved


@dataclass
class TrafficCounter:
    """Accumulates the memory traffic of one kernel execution.

    ``unique_read_bytes`` — compulsory DRAM reads (distinct data).
    ``read_bytes`` — total bytes requested (re-reads served by L2).
    ``write_bytes`` — bytes written out (DRAM, write-through for results).
    """

    unique_read_bytes: int = 0
    read_bytes: int = 0
    write_bytes: int = 0
    #: bookkeeping by logical stream ("lhs_values", "rhs", "output", ...)
    by_stream: dict = field(default_factory=dict)

    def read(self, stream: str, bytes_: int, unique_bytes: int | None = None) -> None:
        """Record ``bytes_`` read from ``stream``.

        ``unique_bytes`` defaults to ``bytes_`` (no reuse); pass the
        distinct-data size when the same bytes are re-read (e.g. RHS rows
        fetched once per output row-block).
        """
        u = bytes_ if unique_bytes is None else min(unique_bytes, bytes_)
        self.read_bytes += int(bytes_)
        self.unique_read_bytes += int(u)
        s = self.by_stream.setdefault(stream, [0, 0, 0])
        s[0] += int(bytes_)
        s[1] += int(u)

    def write(self, stream: str, bytes_: int) -> None:
        """Record ``bytes_`` written to ``stream``."""
        self.write_bytes += int(bytes_)
        s = self.by_stream.setdefault(stream, [0, 0, 0])
        s[2] += int(bytes_)

    def merge(self, other: "TrafficCounter") -> None:
        """Fold another counter into this one."""
        self.unique_read_bytes += other.unique_read_bytes
        self.read_bytes += other.read_bytes
        self.write_bytes += other.write_bytes
        for k, v in other.by_stream.items():
            s = self.by_stream.setdefault(k, [0, 0, 0])
            for i in range(3):
                s[i] += v[i]

    @property
    def total_dram_bytes(self) -> int:
        """Compulsory reads + writes — what must cross the DRAM bus."""
        return self.unique_read_bytes + self.write_bytes

    @property
    def total_access_bytes(self) -> int:
        """All requested bytes — what must cross the L2 crossbar."""
        return self.read_bytes + self.write_bytes
