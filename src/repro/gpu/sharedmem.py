"""Shared-memory bank-conflict model (paper Fig. 4).

A100 shared memory is partitioned into 32 banks of 4-byte words;
successive words map to successive banks. A warp's access is served in
as many cycles as the worst bank's number of *distinct* word addresses
(same-address lanes broadcast for free). The paper's SpMM avoids
conflicts when staging the RHS matrix by padding 8 int32 words after
every 64: this module is the analyzer that verifies that claim and
charges the timing model for conflicted variants.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.gpu.device import NUM_BANKS


def conflict_degree(word_addresses: np.ndarray) -> int:
    """Serialization factor of one warp access (1 = conflict-free).

    ``word_addresses`` holds each lane's shared-memory *word* address
    (byte address / 4). Lanes hitting the same word broadcast; lanes
    hitting different words in the same bank serialize.
    """
    addrs = np.asarray(word_addresses).reshape(-1)
    if addrs.size == 0 or addrs.size > 32:
        raise ConfigError(f"a warp access has 1..32 lanes, got {addrs.size}")
    banks = addrs % NUM_BANKS
    worst = 1
    for bank in np.unique(banks):
        distinct = np.unique(addrs[banks == bank]).size
        worst = max(worst, int(distinct))
    return worst


@dataclass(frozen=True)
class PaddedRowBuffer:
    """The Fig. 4 staging buffer: ``pad_words`` int32 after every 4 rows.

    For BSn=64 a row is 16 int32, so 4 rows are 64 int32 and the scheme
    is exactly the paper's "padding 8 int32 items after every 64 int32
    items". The 8-word skew rotates each 4-row group across banks, which
    makes the column-strided register loads of Fig. 5 conflict-free.
    ``pad_words=0`` is the 'basic' variant Fig. 11 ablates.
    """

    row_words: int
    pad_words: int

    def address(self, row: np.ndarray, word: np.ndarray) -> np.ndarray:
        """Word address of (row, word) elements."""
        row = np.asarray(row)
        return row * self.row_words + np.asarray(word) + (row // 4) * self.pad_words

    def footprint_words(self, rows: int) -> int:
        """Total words the buffer occupies for ``rows`` rows."""
        return rows * self.row_words + (rows // 4) * self.pad_words


def spmm_rhs_load_pattern(
    bsk: int, bsn_bytes: int, pad_words: int, warp: int = 0
) -> np.ndarray:
    """Word addresses for one warp loading its RHS slice (Fig. 4/5).

    In the SpMM online transpose, the staged RHS block has ``bsk`` rows
    of ``bsn_bytes`` int8 (= ``bsn_bytes // 4`` words). Each thread then
    loads 4 int32 *down a column of words*: thread ``t`` of warp ``w``
    owns word-column ``(w * 8 + t // 4)`` and rows ``4*(t % 4) ..
    4*(t % 4)+3``. The returned array is ``(4, 32)``: four successive
    warp transactions (one per register), 32 lane addresses each.
    """
    if bsk % 16 != 0:
        raise ConfigError(f"BSk must be a multiple of 16, got {bsk}")
    buf = PaddedRowBuffer(row_words=bsn_bytes // 4, pad_words=pad_words)
    lanes = np.arange(32)
    word_col = warp * 8 + lanes // 4
    row_base = 4 * (lanes % 4)
    out = np.empty((4, 32), dtype=np.int64)
    for step in range(4):
        out[step] = buf.address(row_base + step, word_col)
    return out


def access_cycles(patterns: np.ndarray) -> int:
    """Total serialized cycles for a batch of warp access patterns.

    ``patterns`` is ``(num_accesses, lanes)``; each row costs its
    conflict degree in cycles.
    """
    p = np.asarray(patterns)
    if p.ndim == 1:
        p = p[None, :]
    return int(sum(conflict_degree(row) for row in p))
