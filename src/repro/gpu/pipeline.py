"""Software-pipeline (prefetch / double-buffer) schedule of Algorithm 1.

The SpMM main loop alternates loading the next RHS/LHS blocks with the
MMA computation of the current step. Without prefetch the two phases
serialize; with the Algorithm-1 pipeline the global-memory latency of
step ``i+1`` hides behind the MMA work of step ``i``. This module turns
per-step phase costs into total schedules, so the ablation benches can
charge exactly the benefit the paper's Fig. 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PipelineSchedule:
    """Total cost of a ``steps``-iteration loop with given phase costs.

    ``load`` is the per-step cost of moving one block from global memory
    into shared memory (both half-phases of Alg. 1: global->regs and
    regs->shared); ``compute`` is the per-step MMA (+ register
    transpose) cost. Units are caller-defined (seconds here).
    """

    steps: int
    load: float
    compute: float

    def serial_time(self) -> float:
        """No prefetch: every step pays load then compute."""
        return self.steps * (self.load + self.compute)

    def pipelined_time(self) -> float:
        """Algorithm 1: loads overlap computes after a cold start.

        Cold start loads the first block (line 7-9); the steady state
        advances at ``max(load, compute)`` per step; the drain pays the
        last compute (line 18-20).
        """
        if self.steps <= 0:
            return 0.0
        steady = (self.steps - 1) * max(self.load, self.compute)
        return self.load + steady + self.compute

    def speedup(self) -> float:
        """Serial / pipelined — the benefit Fig. 11's ablation isolates."""
        p = self.pipelined_time()
        return self.serial_time() / p if p > 0 else 1.0


def overlap_time(load: float, compute: float, steps: int, prefetch: bool) -> float:
    """Convenience wrapper: total loop time with or without prefetch."""
    sched = PipelineSchedule(steps=max(int(steps), 1), load=load, compute=compute)
    return sched.pipelined_time() if prefetch else sched.serial_time()
