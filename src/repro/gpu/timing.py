"""Cost model: operation/traffic counts -> seconds / TOP/s.

Every kernel in this library produces a :class:`KernelStats` describing
exactly what it did — MMA instructions per precision, global-memory
traffic (compulsory vs total), shared-memory transaction cycles including
bank-conflict serialization, launch geometry, and whether the Algorithm-1
prefetch pipeline was active. :class:`CostModel` converts those counts to
time on a :class:`~repro.gpu.device.DeviceSpec`.

The model is deliberately simple and auditable:

- compute time  = MMA ops / (tensor-core peak x efficiency)
- DRAM time     = compulsory bytes / DRAM bandwidth
- L2 time       = total accessed bytes / L2 bandwidth
- shared time   = serialized warp transactions / (SMs x clock)
- epilogue time = CUDA-core cycles (warp shuffles, scaling) / (SMs x clock)

Memory time is ``max(DRAM, L2)``. With prefetch, memory overlaps compute
(Algorithm 1): total = max(compute+shared+epilogue, memory). Without it
the phases serialize, moderated by an ``overlap`` factor for the warp-
level parallelism that still hides some latency. Device under-occupancy
(small grids) divides throughput via the tail-wave utilization model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceSpec
from repro.gpu.memory import TrafficCounter
from repro.gpu.warp import LaunchGrid


@dataclass
class KernelStats:
    """Everything a kernel execution did, in counts.

    ``mma_ops`` maps a precision name ("int8", "int4", "fp16") to the
    total multiply-add *operations* (2 per MAC) issued at that precision;
    ``useful_ops`` counts only the mathematically necessary operations
    (2 x nnz x N for SpMM) — the numerator of the paper's TOP/s metric.
    """

    name: str = "kernel"
    mma_ops: dict = field(default_factory=dict)
    useful_ops: int = 0
    traffic: TrafficCounter = field(default_factory=TrafficCounter)
    smem_transaction_cycles: int = 0
    epilogue_cycles: int = 0
    grid: LaunchGrid | None = None
    prefetch: bool = False
    #: bytes whose load latency is exposed serially (not hidden behind
    #: compute) — e.g. a non-prefetched operand stream
    serial_bytes: int = 0
    notes: dict = field(default_factory=dict)

    def add_mma(self, precision: str, count: int, ops_per_mma: int) -> None:
        """Record ``count`` MMA instructions of one shape."""
        self.mma_ops[precision] = self.mma_ops.get(precision, 0) + count * ops_per_mma

    @property
    def total_mma_ops(self) -> int:
        return sum(self.mma_ops.values())


@dataclass(frozen=True)
class TimingBreakdown:
    """Per-component times (seconds) and the resulting total."""

    compute: float
    dram: float
    l2: float
    shared: float
    epilogue: float
    launch: float
    utilization: float
    total: float
    serial: float = 0.0

    def bound(self) -> str:
        """Which component dominates ('compute', 'dram', 'l2', 'shared')."""
        parts = {
            "compute": self.compute,
            "dram": self.dram,
            "l2": self.l2,
            "shared": self.shared,
        }
        return max(parts, key=parts.get)


@dataclass(frozen=True)
class CostModel:
    """Maps :class:`KernelStats` to time on one device.

    ``compute_efficiency`` is the achieved fraction of tensor-core peak
    (kernel-dependent: instruction mix, occupancy); ``mem_efficiency``
    the achieved fraction of DRAM bandwidth; ``serial_overlap`` how much
    of ``min(compute, memory)`` still overlaps *without* prefetch thanks
    to warp parallelism (0 = fully serial, 1 = fully overlapped).
    """

    device: DeviceSpec
    compute_efficiency: float = 0.50
    mem_efficiency: float = 0.85
    l2_efficiency: float = 0.80
    serial_overlap: float = 0.40
    blocks_per_sm: int = 2

    def breakdown(self, stats: KernelStats) -> TimingBreakdown:
        """Full component-wise timing for one kernel execution."""
        dev = self.device
        t_compute = 0.0
        for precision, ops in stats.mma_ops.items():
            peak = dev.peak_tops(precision) * 1e12
            t_compute += ops / (peak * self.compute_efficiency)
        t_dram = stats.traffic.total_dram_bytes / (
            dev.dram_bandwidth_gbs * 1e9 * self.mem_efficiency
        )
        t_l2 = stats.traffic.total_access_bytes / (
            dev.l2_bandwidth_gbs * 1e9 * self.l2_efficiency
        )
        sm_hz = dev.num_sms * dev.clock_ghz * 1e9
        t_shared = stats.smem_transaction_cycles / sm_hz
        # ALU/shuffle epilogue work issues on all 4 warp schedulers of
        # each SM, unlike the single shared-memory path
        t_epilogue = stats.epilogue_cycles / (sm_hz * 4)

        util = 1.0
        if stats.grid is not None:
            util = stats.grid.utilization(dev.num_sms, self.blocks_per_sm)

        on_chip = t_compute + t_shared + t_epilogue
        t_mem = max(t_dram, t_l2)
        if stats.prefetch:
            body = max(on_chip, t_mem)
        else:
            body = max(on_chip, t_mem) + (1.0 - self.serial_overlap) * min(
                on_chip, t_mem
            )
        t_serial = stats.serial_bytes / (
            dev.dram_bandwidth_gbs * 1e9 * self.mem_efficiency
        )
        body += (1.0 - self.serial_overlap) * t_serial
        total = dev.launch_overhead_s + body / util
        return TimingBreakdown(
            compute=t_compute,
            dram=t_dram,
            l2=t_l2,
            shared=t_shared,
            epilogue=t_epilogue,
            launch=dev.launch_overhead_s,
            utilization=util,
            total=total,
            serial=t_serial,
        )

    def time(self, stats: KernelStats) -> float:
        """Total execution time in seconds."""
        return self.breakdown(stats).total

    def tops(self, stats: KernelStats) -> float:
        """The paper's throughput metric: useful tera-ops per second."""
        t = self.time(stats)
        return stats.useful_ops / t / 1e12 if t > 0 else 0.0
