"""Bit-accurate Matrix-Multiply-Accumulate primitives (``mma.sync``).

Implements the warp-level MMA semantics of the NVPTX ``mma`` API the
paper programs against: D = A @ B + C with int8/int4 operands, int32
accumulation, row-major A / column-major B, and all four signedness
combinations (``.s8/.u8`` x ``.s8/.u8`` etc. — mixed signed x unsigned is
what makes the two's-complement emulation of Sec. IV-D work).

Two entry points:

- :func:`mma_sync` operates on packed per-thread register fragments,
  exactly as the hardware instruction does — used by the strict
  (fragment-level) kernel mode and the layout tests.
- :func:`mma_tile` operates on small integer tiles directly (a fused
  distribute -> mma_sync -> collect) — the fast path used inside kernels.

The registry :data:`SUPPORTED_SHAPES` mirrors Table III of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError, PrecisionError, ShapeError
from repro.gpu.fragments import FragmentLayout, layout_for


@dataclass(frozen=True)
class MmaShape:
    """One supported ``mma`` instruction shape."""

    m: int
    n: int
    k: int
    ab_bits: int

    @property
    def name(self) -> str:
        return f"m{self.m}n{self.n}k{self.k}"

    @property
    def ops(self) -> int:
        """Multiply-add operation count (2 ops per MAC), per instruction."""
        return 2 * self.m * self.n * self.k


#: Table III — supported shapes per precision. Magicube uses the smallest
#: shape of each row (m8n8k16 for int8, m8n8k32 for int4).
SUPPORTED_SHAPES: dict[int, tuple[MmaShape, ...]] = {
    8: (
        MmaShape(8, 8, 16, 8),
        MmaShape(16, 8, 16, 8),
        MmaShape(16, 8, 32, 8),
    ),
    4: (
        MmaShape(8, 8, 32, 4),
        MmaShape(16, 8, 32, 4),
        MmaShape(16, 8, 64, 4),
    ),
}


def supported_shapes(bits: int) -> tuple[MmaShape, ...]:
    """All MMA shapes available for ``bits``-wide operands (Table III)."""
    try:
        return SUPPORTED_SHAPES[bits]
    except KeyError:
        raise PrecisionError(f"tensor cores support no int{bits} MMA") from None


def mma_shape_for(bits: int) -> MmaShape:
    """The smallest shape for ``bits`` — the paper's choice (Sec. III)."""
    return supported_shapes(bits)[0]


def _saturating_range(bits: int, signed: bool) -> tuple[int, int]:
    if signed:
        return -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    return 0, (1 << bits) - 1


def _validate_operand(x: np.ndarray, bits: int, signed: bool, what: str) -> np.ndarray:
    x = np.asarray(x)
    if not np.issubdtype(x.dtype, np.integer):
        raise PrecisionError(f"{what} must be an integer array, got {x.dtype}")
    lo, hi = _saturating_range(bits, signed)
    x64 = x.astype(np.int64)
    if x64.size and (x64.min() < lo or x64.max() > hi):
        raise PrecisionError(
            f"{what} values exceed {'signed' if signed else 'unsigned'} int{bits} "
            f"range [{lo}, {hi}]"
        )
    return x64


def ref_imma(
    a: np.ndarray,
    b: np.ndarray,
    bits: int,
    a_signed: bool = True,
    b_signed: bool = True,
) -> np.ndarray:
    """Reference integer matmul with int32 accumulation semantics.

    Validates operand ranges against the declared width/signedness, then
    accumulates exactly (int64 internally — A100 int32 accumulators
    cannot overflow for k <= 64 at these widths, which tests verify).
    """
    a64 = _validate_operand(a, bits, a_signed, "A")
    b64 = _validate_operand(b, bits, b_signed, "B")
    if a64.ndim != 2 or b64.ndim != 2 or a64.shape[1] != b64.shape[0]:
        raise ShapeError(f"incompatible matmul shapes {a64.shape} @ {b64.shape}")
    c = a64 @ b64
    lo, hi = -(1 << 31), (1 << 31) - 1
    if c.size and (c.min() < lo or c.max() > hi):
        raise PrecisionError("int32 accumulator overflow in MMA")
    return c.astype(np.int32)


def mma_sync(
    a_frags: np.ndarray,
    b_frags: np.ndarray,
    c_frags: np.ndarray,
    layout: FragmentLayout,
    a_signed: bool = True,
    b_signed: bool = True,
) -> np.ndarray:
    """Warp-level MMA on packed register fragments (one instruction).

    ``a_frags``/``b_frags`` are the ``(32,)`` uint32 arrays produced by
    :meth:`FragmentLayout.distribute_a` / ``distribute_b``; ``c_frags``
    the ``(32, 2)`` int32 accumulators. Returns new accumulators
    ``D = A @ B + C`` distributed the same way. The input fragments are
    interpreted strictly via the layout — wrong marshalling produces
    wrong numbers, exactly as on hardware.
    """
    a = layout.collect_a(np.asarray(a_frags, dtype=np.uint32), signed=a_signed)
    b = layout.collect_b(np.asarray(b_frags, dtype=np.uint32), signed=b_signed)
    c_frags = np.asarray(c_frags, dtype=np.int32)
    if c_frags.shape != (32, 2):
        raise LayoutError(f"accumulator fragment must be (32, 2), got {c_frags.shape}")
    c = layout.collect_c(c_frags)
    d = ref_imma(a, b, layout.ab_bits, a_signed, b_signed).astype(np.int64) + c
    lo, hi = -(1 << 31), (1 << 31) - 1
    if d.size and (d.min() < lo or d.max() > hi):
        raise PrecisionError("int32 accumulator overflow in MMA")
    return layout.distribute_c(d.astype(np.int32))


def mma_tile(
    a: np.ndarray,
    b: np.ndarray,
    bits: int,
    accum: np.ndarray | None = None,
    a_signed: bool = True,
    b_signed: bool = True,
) -> np.ndarray:
    """Tile-level MMA: D = A @ B (+ accum) for one instruction shape.

    ``a`` must be ``m x k`` and ``b`` ``k x n`` for the smallest shape of
    ``bits`` (m8n8k16 / m8n8k32). This is semantically identical to
    routing through :func:`mma_sync` (tests assert so) but skips the
    register packing for speed.
    """
    layout = layout_for(bits)
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != (layout.m, layout.k):
        raise ShapeError(f"A tile must be {layout.m}x{layout.k}, got {a.shape}")
    if b.shape != (layout.k, layout.n):
        raise ShapeError(f"B tile must be {layout.k}x{layout.n}, got {b.shape}")
    d = ref_imma(a, b, bits, a_signed, b_signed)
    if accum is not None:
        d = (d.astype(np.int64) + np.asarray(accum, dtype=np.int64)).astype(np.int32)
    return d
