"""GPU device capability model (paper Table II).

Each :class:`DeviceSpec` records the totals the paper reports — peak
TFLOPS/TOPS per precision across Tensor cores *plus* CUDA cores, and the
fraction contributed by Tensor cores — together with the memory-system
parameters the cost model needs. Numbers are the published A100-SXM4-40GB
/ V100-SXM2 / H100-SXM5 specifications.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import DeviceError

#: bytes per shared-memory bank word
BANK_WIDTH_BYTES = 4
#: number of shared-memory banks per SM
NUM_BANKS = 32
#: threads per warp
WARP_SIZE = 32


@dataclass(frozen=True)
class PeakRate:
    """Peak arithmetic rate for one precision on one device.

    ``total`` is TFLOPS (fp) or TOPS (int) across Tensor + CUDA cores as
    in Table II; ``tensor_fraction`` is the Tensor-core share.
    """

    total: float
    tensor_fraction: float

    @property
    def tensor(self) -> float:
        """Peak rate of the Tensor cores alone (TFLOPS/TOPS)."""
        return self.total * self.tensor_fraction


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of one GPU model."""

    name: str
    num_sms: int
    clock_ghz: float
    dram_bandwidth_gbs: float
    l2_bytes: int
    l2_bandwidth_gbs: float
    smem_bytes_per_sm: int
    registers_per_sm_bytes: int
    #: peak rates keyed by precision name ("fp16", "int8", "int4")
    peaks: dict = field(default_factory=dict)
    #: fixed kernel launch overhead, seconds
    launch_overhead_s: float = 1.2e-6
    max_warps_per_sm: int = 64

    def peak_tops(self, precision: str, tensor_only: bool = True) -> float:
        """Peak TOPS (int) / TFLOPS (fp) for ``precision``.

        Raises :class:`DeviceError` for precisions the device lacks —
        e.g. int4 on V100, mirroring the '-' cells of Table II.
        """
        rate = self.peaks.get(precision)
        if rate is None:
            raise DeviceError(f"{self.name} has no {precision} tensor-core support")
        return rate.tensor if tensor_only else rate.total

    def supports(self, precision: str) -> bool:
        return precision in self.peaks

    @property
    def smem_bandwidth_bytes_per_s(self) -> float:
        """Aggregate shared-memory bandwidth: banks x width x clock x SMs."""
        return NUM_BANKS * BANK_WIDTH_BYTES * self.clock_ghz * 1e9 * self.num_sms


V100 = DeviceSpec(
    name="V100",
    num_sms=80,
    clock_ghz=1.53,
    dram_bandwidth_gbs=900.0,
    l2_bytes=6 * 2**20,
    l2_bandwidth_gbs=2100.0,
    smem_bytes_per_sm=96 * 2**10,
    registers_per_sm_bytes=256 * 2**10,
    peaks={
        "fp16": PeakRate(total=126.0, tensor_fraction=0.889),
    },
)

A100 = DeviceSpec(
    name="A100",
    num_sms=108,
    clock_ghz=1.41,
    dram_bandwidth_gbs=1555.0,
    l2_bytes=40 * 2**20,
    l2_bandwidth_gbs=4700.0,
    smem_bytes_per_sm=192 * 2**10,  # configurable unified L1/shared, per Sec. V
    registers_per_sm_bytes=256 * 2**10,
    peaks={
        "fp16": PeakRate(total=390.0, tensor_fraction=0.80),
        "int8": PeakRate(total=702.0, tensor_fraction=0.889),
        "int4": PeakRate(total=1248.0, tensor_fraction=1.0),
        # CUDA-core-only rates (for Sputnik-style kernels): the non-tensor
        # remainder of the fp16 row, and the plain fp32 FPU rate
        "fp16_cuda": PeakRate(total=78.0, tensor_fraction=1.0),
        "fp32_cuda": PeakRate(total=19.5, tensor_fraction=1.0),
    },
)

H100 = DeviceSpec(
    name="H100",
    num_sms=132,
    clock_ghz=1.98,
    dram_bandwidth_gbs=3350.0,
    l2_bytes=50 * 2**20,
    l2_bandwidth_gbs=7000.0,
    smem_bytes_per_sm=228 * 2**10,
    registers_per_sm_bytes=256 * 2**10,
    peaks={
        "fp16": PeakRate(total=1120.0, tensor_fraction=0.892),
        "int8": PeakRate(total=1696.0, tensor_fraction=0.943),
    },
)

# Discussion (a) of the paper: the techniques carry to other matrix
# accelerators — AMD's MI250X exposes MFMA wavefront instructions with
# the same layout constraints. Modelled so the kernels can be costed on
# it (383 TOP/s int8 via Matrix Cores; per-GCD numbers x2 dies).
MI250X = DeviceSpec(
    name="MI250X",
    num_sms=220,  # compute units across both GCDs
    clock_ghz=1.70,
    dram_bandwidth_gbs=3276.0,
    l2_bytes=16 * 2**20,
    l2_bandwidth_gbs=6000.0,
    smem_bytes_per_sm=64 * 2**10,
    registers_per_sm_bytes=512 * 2**10,
    peaks={
        "fp16": PeakRate(total=383.0, tensor_fraction=0.95),
        "int8": PeakRate(total=383.0, tensor_fraction=1.0),
    },
)

_DEVICES = {d.name: d for d in (V100, A100, H100, MI250X)}


def get_device(name: str = "A100") -> DeviceSpec:
    """Look up a device spec by name (case-insensitive)."""
    try:
        return _DEVICES[name.upper()]
    except KeyError:
        raise DeviceError(
            f"unknown device {name!r}; available: {sorted(_DEVICES)}"
        ) from None


def list_devices() -> list[str]:
    """Names of all modelled devices."""
    return sorted(_DEVICES)
