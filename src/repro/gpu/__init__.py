"""Tensor-core GPU simulator substrate.

The paper's kernels are CUDA; this subpackage is the synthetic equivalent
that lets the same algorithms run and be measured without a GPU:

- :mod:`repro.gpu.device` — device capability tables (Table II of the
  paper: V100/A100/H100 peak TOPS per precision, SM counts, bandwidths).
- :mod:`repro.gpu.warp` — warp / thread-block geometry helpers.
- :mod:`repro.gpu.fragments` — the per-thread register fragment layouts of
  ``mma.sync`` (Fig. 1): which thread holds which matrix elements.
- :mod:`repro.gpu.mma` — bit-accurate Matrix-Multiply-Accumulate for the
  int8 (m8n8k16) and int4 (m8n8k32) shapes, with signed/unsigned operand
  combinations, plus the full supported-shape registry (Table III).
- :mod:`repro.gpu.sharedmem` — the 32-bank shared-memory conflict model
  used to validate the conflict-free layout of Fig. 4.
- :mod:`repro.gpu.memory` — global-memory coalescing into 32/64/128-byte
  transactions and DRAM/L2 traffic accounting.
- :mod:`repro.gpu.pipeline` — the software pipeline of Algorithm 1
  (prefetch/double buffering) as an analytic schedule.
- :mod:`repro.gpu.timing` — the cost model mapping operation and traffic
  counts to seconds / TOP/s on a given device.
"""

from repro.gpu.device import DeviceSpec, get_device, A100, V100, H100
from repro.gpu.mma import MmaShape, supported_shapes, mma_shape_for, mma_tile, ref_imma
from repro.gpu.fragments import FragmentLayout, layout_for
from repro.gpu.timing import KernelStats, CostModel

__all__ = [
    "DeviceSpec",
    "get_device",
    "A100",
    "V100",
    "H100",
    "MmaShape",
    "supported_shapes",
    "mma_shape_for",
    "mma_tile",
    "ref_imma",
    "FragmentLayout",
    "layout_for",
    "KernelStats",
    "CostModel",
]
