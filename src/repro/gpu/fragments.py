"""Per-thread register fragment layouts of ``mma.sync`` (paper Fig. 1).

A warp of 32 threads collectively holds the A (LHS, row-major), B (RHS,
column-major) and C (accumulator, row-major) tiles of one MMA, with a
fixed mapping from (thread, register lane) to matrix element. For the
``m8n8k16`` int8 shape:

- thread ``t`` holds A[t//4, 4*(t%4) : 4*(t%4)+4]   (4 int8 = 1 register)
- thread ``t`` holds B[4*(t%4) : 4*(t%4)+4, t//4]   (4 int8 = 1 register)
- thread ``t`` holds C[t//4, 2*(t%4) : 2*(t%4)+2]   (2 int32 registers)

``m8n8k32`` int4 is identical except each thread's A/B register holds 8
int4 lanes. These mappings are *the* layout constraint that motivates the
SR-BCRS format and the online-transpose strategies: data must arrive in
registers exactly this way or the MMA computes garbage.

The distribute/collect functions here are bit-exact: they produce packed
``uint32`` registers just like the hardware sees.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import LayoutError, ShapeError
from repro.gpu.device import WARP_SIZE
from repro.lowp.pack import pack_rows, unpack_rows


@dataclass(frozen=True)
class FragmentLayout:
    """Thread-to-element mapping for one MMA shape.

    ``m, n, k`` are the MMA tile dims; ``ab_bits`` the A/B element width.
    ``lanes`` = elements per 32-bit A/B register = ``32 // ab_bits``.
    """

    m: int
    n: int
    k: int
    ab_bits: int

    @property
    def lanes(self) -> int:
        return 32 // self.ab_bits

    # ---- index maps -----------------------------------------------------
    def a_elements(self, thread: int) -> tuple[int, np.ndarray]:
        """(row, cols) of the A elements held by ``thread`` (row-major A)."""
        self._check_thread(thread)
        row = thread // 4
        start = (thread % 4) * self.lanes
        return row, np.arange(start, start + self.lanes)

    def b_elements(self, thread: int) -> tuple[np.ndarray, int]:
        """(rows, col) of the B elements held by ``thread`` (col-major B)."""
        self._check_thread(thread)
        col = thread // 4
        start = (thread % 4) * self.lanes
        return np.arange(start, start + self.lanes), col

    def c_elements(self, thread: int) -> tuple[int, np.ndarray]:
        """(row, cols) of the two int32 accumulators held by ``thread``."""
        self._check_thread(thread)
        row = thread // 4
        start = (thread % 4) * 2
        return row, np.arange(start, start + 2)

    @staticmethod
    def _check_thread(thread: int) -> None:
        if not 0 <= thread < WARP_SIZE:
            raise LayoutError(f"thread index {thread} outside warp [0, 32)")

    # ---- distribute: matrices -> packed registers -----------------------
    def distribute_a(self, a: np.ndarray) -> np.ndarray:
        """Scatter a row-major ``m x k`` tile into per-thread registers.

        Returns a ``(32,)`` uint32 array: one packed A register per
        thread. The element order inside each register follows the lane
        order (lowest lane = lowest column).
        """
        a = np.asarray(a)
        if a.shape != (self.m, self.k):
            raise ShapeError(f"A tile must be {self.m}x{self.k}, got {a.shape}")
        # thread t reads row t//4, a lane-width slice of columns: this is a
        # pure reshape of the row-major tile.
        words = pack_rows(a, self.ab_bits)  # (m, k*bits/32)
        return np.ascontiguousarray(words).reshape(-1)

    def distribute_b(self, b: np.ndarray) -> np.ndarray:
        """Scatter a ``k x n`` tile into per-thread registers (col-major).

        The hardware requires B column-major: thread t's register holds a
        contiguous run of *rows* from column t//4.
        """
        b = np.asarray(b)
        if b.shape != (self.k, self.n):
            raise ShapeError(f"B tile must be {self.k}x{self.n}, got {b.shape}")
        words = pack_rows(np.ascontiguousarray(b.T), self.ab_bits)  # (n, k*bits/32)
        return np.ascontiguousarray(words).reshape(-1)

    def distribute_c(self, c: np.ndarray) -> np.ndarray:
        """Scatter an ``m x n`` int32 accumulator tile: (32, 2) int32."""
        c = np.asarray(c, dtype=np.int32)
        if c.shape != (self.m, self.n):
            raise ShapeError(f"C tile must be {self.m}x{self.n}, got {c.shape}")
        return np.ascontiguousarray(c).reshape(WARP_SIZE, 2)

    # ---- collect: packed registers -> matrices --------------------------
    def collect_a(self, regs: np.ndarray, signed: bool = True) -> np.ndarray:
        """Gather per-thread A registers back into the ``m x k`` tile."""
        regs = self._check_regs(regs, self.m * self.k // (self.lanes * WARP_SIZE))
        return unpack_rows(regs.reshape(self.m, -1), self.ab_bits, signed)

    def collect_b(self, regs: np.ndarray, signed: bool = True) -> np.ndarray:
        """Gather per-thread B registers back into the ``k x n`` tile."""
        regs = self._check_regs(regs, self.n * self.k // (self.lanes * WARP_SIZE))
        cols = unpack_rows(regs.reshape(self.n, -1), self.ab_bits, signed)
        return np.ascontiguousarray(cols.T)

    def collect_c(self, regs: np.ndarray) -> np.ndarray:
        """Gather per-thread accumulators back into the ``m x n`` tile."""
        regs = np.asarray(regs, dtype=np.int32)
        if regs.shape != (WARP_SIZE, 2):
            raise LayoutError(f"C fragment must be (32, 2) int32, got {regs.shape}")
        return regs.reshape(self.m, self.n)

    def _check_regs(self, regs: np.ndarray, per_thread: int) -> np.ndarray:
        regs = np.asarray(regs, dtype=np.uint32)
        if regs.size != WARP_SIZE * per_thread:
            raise LayoutError(
                f"fragment needs {WARP_SIZE * per_thread} registers, got {regs.size}"
            )
        return regs.reshape(-1)


#: fragment layouts for the shapes Magicube uses (highlighted in Table III)
INT8_M8N8K16 = FragmentLayout(m=8, n=8, k=16, ab_bits=8)
INT4_M8N8K32 = FragmentLayout(m=8, n=8, k=32, ab_bits=4)

_LAYOUTS = {
    (8, 8, 16, 8): INT8_M8N8K16,
    (8, 8, 32, 4): INT4_M8N8K32,
}


def layout_for(bits: int) -> FragmentLayout:
    """The smallest-shape layout for a given operand width (paper choice).

    Magicube deliberately uses the smallest supported MMA shapes —
    m8n8k16 for int8 and m8n8k32 for int4 — because small m matches small
    sparsity granularity V <= 8 (Sec. III).
    """
    if bits == 8:
        return INT8_M8N8K16
    if bits == 4:
        return INT4_M8N8K32
    raise LayoutError(f"no native MMA fragment layout for int{bits}")
