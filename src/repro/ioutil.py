"""Small filesystem helpers shared across the library."""

from __future__ import annotations

import os
import threading
from pathlib import Path

__all__ = ["atomic_write_text"]


def atomic_write_text(path: "str | Path", text: str) -> Path:
    """Write ``text`` to ``path`` atomically; returns the path written.

    The payload lands in a temporary sibling first and is moved into
    place with ``os.replace``, so a concurrent reader (another process
    polling the file) sees the old or the new content, never a torn
    write. The pid + thread-id temp name keeps concurrent writers
    (processes *or* threads) from unlinking each other's half-written
    payloads. Parent directories are created as needed.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
    )
    try:
        tmp.write_text(text)
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    return path
