"""Measured offline sweeps: warmup/repeat timing, budgets, pruning.

The runner walks an enumerated sweep space point by point. For every
point it (a) plans the request class into the sweep's **shipping
cache** — the :class:`~repro.serve.cache.PlanCache` the artifact will
carry — and (b) measures the *cold planner-search latency* with
warmup + repeat runs on throwaway caches, reporting the median (the
statistic a warm start saves at serving time).

Two mechanisms keep full sweeps tractable:

- a :class:`SweepBudget` (trial count and/or wall-clock ceiling) stops
  the walk early, recording the untouched tail as skipped rather than
  silently pretending full coverage, and
- **cost-model-guided pruning**: per (op, device), once a backend's
  planned time has lost to the best backend by more than
  ``prune_ratio`` on ``prune_after`` consecutive problems, its
  remaining points on that (op, device) are skipped — the cost models
  already told us it cannot win there.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field

from repro.errors import SweepError
from repro.serve.cache import PlanCache
from repro.serve.planner import ExecutionPlanner
from repro.autotune.space import SweepConfig, SweepPoint, enumerate_space

__all__ = ["Measurement", "SweepBudget", "SweepReport", "run_sweep"]


@dataclass(frozen=True)
class SweepBudget:
    """How much a sweep is allowed to spend.

    ``max_trials`` caps measured points; ``max_seconds`` caps the
    sweep's wall clock. ``None`` means unbounded.
    """

    max_trials: int | None = None
    max_seconds: float | None = None

    def __post_init__(self) -> None:
        if self.max_trials is not None and self.max_trials < 1:
            raise SweepError("max_trials must be >= 1 (or None)")
        if self.max_seconds is not None and self.max_seconds <= 0:
            raise SweepError("max_seconds must be > 0 (or None)")

    def exhausted(self, trials: int, elapsed_s: float) -> str | None:
        """The reason the budget is spent, or ``None`` while it isn't."""
        if self.max_trials is not None and trials >= self.max_trials:
            return f"trial budget ({self.max_trials}) exhausted"
        if self.max_seconds is not None and elapsed_s >= self.max_seconds:
            return f"time budget ({self.max_seconds}s) exhausted"
        return None


@dataclass(frozen=True)
class Measurement:
    """One measured sweep point."""

    point: SweepPoint
    plan_key: str
    precision: str
    config: dict
    predicted_time_s: float
    search_s_median: float
    search_s_mean: float
    search_s_min: float
    repeats: int

    def to_dict(self) -> dict:
        return {
            "plan_key": self.plan_key,
            "backend": self.point.backend,
            "device": self.point.device,
            "precision": self.precision,
            "config": dict(self.config),
            "predicted_time_s": self.predicted_time_s,
            "search_s_median": self.search_s_median,
            "search_s_mean": self.search_s_mean,
            "search_s_min": self.search_s_min,
            "repeats": self.repeats,
        }


@dataclass
class SweepReport:
    """Everything one sweep produced.

    ``cache`` holds the shipped plans; ``pruned``/``skipped`` record
    every point the sweep did *not* measure, with the reason — a sweep
    never silently truncates its coverage.
    """

    config: SweepConfig
    cache: PlanCache
    measurements: list[Measurement] = field(default_factory=list)
    pruned: list[tuple[SweepPoint, str]] = field(default_factory=list)
    skipped: list[tuple[SweepPoint, str]] = field(default_factory=list)
    failed: list[tuple[SweepPoint, str]] = field(default_factory=list)
    elapsed_s: float = 0.0

    @property
    def points_total(self) -> int:
        return (len(self.measurements) + len(self.pruned)
                + len(self.skipped) + len(self.failed))

    def summary(self) -> dict:
        return {
            "points": self.points_total,
            "measured": len(self.measurements),
            "pruned": len(self.pruned),
            "skipped": len(self.skipped),
            "failed": len(self.failed),
            "plans": len(self.cache),
            "elapsed_s": self.elapsed_s,
            "search_s_median": (
                statistics.median(m.search_s_median for m in self.measurements)
                if self.measurements else 0.0
            ),
        }


class _PruneState:
    """Consecutive-loss tracking for one (op, device) group of backends."""

    def __init__(self, ratio: float, after: int) -> None:
        self.ratio = ratio
        self.after = after
        #: predicted times per problem cell (the backend-free part of
        #: the plan key), keyed by backend within the cell
        self._cells: dict[tuple, dict[str, float]] = {}
        self._losses: dict[tuple[str, str, str], int] = {}

    @staticmethod
    def _cell(point: SweepPoint) -> tuple:
        return (point.op, point.device, point.rows, point.cols, point.inner,
                point.vector_length, round(point.sparsity, 3),
                point.objective.token)

    @staticmethod
    def _group(point: SweepPoint) -> tuple[str, str, str]:
        return (point.op, point.device, point.backend)

    def should_prune(self, point: SweepPoint) -> bool:
        return self._losses.get(self._group(point), 0) >= self.after

    def observe(self, point: SweepPoint, predicted_time_s: float) -> None:
        """Fold one measured point in and update the loss counter.

        Backends enumerate in priority order, so by the time a
        low-priority backend reaches a cell the cell already holds the
        front-runners' times to lose against.
        """
        cell = self._cell(point)
        times = self._cells.setdefault(cell, {})
        times[point.backend] = predicted_time_s
        best = min(times.values())
        group = self._group(point)
        if predicted_time_s > self.ratio * best:
            self._losses[group] = self._losses.get(group, 0) + 1
        else:
            self._losses[group] = 0


def run_sweep(
    config: SweepConfig,
    budget: SweepBudget | None = None,
    warmup: int = 1,
    repeats: int = 3,
    prune_ratio: float | None = 4.0,
    prune_after: int = 2,
    cache: PlanCache | None = None,
    progress=None,
    keys: "frozenset[str] | set[str] | None" = None,
) -> SweepReport:
    """Run one offline sweep and return its report (plans + stats).

    ``warmup``/``repeats`` control the cold-search timing loop (each
    run plans into a fresh throwaway cache, so every repeat pays the
    full search). ``prune_ratio=None`` disables pruning; ``progress``
    is an optional callable fed one human-readable line per point.
    ``keys`` restricts the walk to the grid cells whose
    :attr:`~repro.autotune.space.SweepPoint.plan_key` is in the set —
    the *targeted* mode the re-tuning scheduler uses to re-sweep only
    the plan keys its triggers named, not the whole cross-product.

    Sweeps enumerate *and measure* against the process-wide backend
    registry — the one the serving planner resolves names through —
    so custom backends must be :func:`~repro.runtime.register_backend`\\
    ed before sweeping, not handed in as a side registry.
    """
    if repeats < 1:
        raise SweepError("repeats must be >= 1")
    if warmup < 0:
        raise SweepError("warmup must be >= 0")
    if prune_ratio is not None and prune_ratio <= 1.0:
        raise SweepError("prune_ratio must be > 1 (or None to disable)")
    points = enumerate_space(config)
    if keys is not None:
        points = [p for p in points if p.plan_key in keys]
        if not points:
            raise SweepError(
                f"none of the {len(keys)} targeted plan keys fall inside "
                f"the sweep config's grid"
            )
    report = SweepReport(
        config=config, cache=cache if cache is not None else PlanCache()
    )
    planners: dict[str, ExecutionPlanner] = {}
    pruner = (
        _PruneState(prune_ratio, prune_after) if prune_ratio is not None else None
    )
    started = time.perf_counter()
    budget = budget if budget is not None else SweepBudget()
    spent: str | None = None
    for point in points:
        spent = spent or budget.exhausted(
            len(report.measurements), time.perf_counter() - started
        )
        if spent:
            report.skipped.append((point, spent))
            continue
        if pruner is not None and pruner.should_prune(point):
            report.pruned.append((
                point,
                f"cost model: {point.backend} lost >{pruner.ratio}x on "
                f"{pruner.after} consecutive {point.op} problems on "
                f"{point.device}",
            ))
            continue
        try:
            measurement = _measure(point, planners, report.cache, warmup, repeats)
        except Exception as exc:  # a point must not kill the sweep
            report.failed.append((point, f"{type(exc).__name__}: {exc}"))
            continue
        report.measurements.append(measurement)
        if pruner is not None:
            pruner.observe(point, measurement.predicted_time_s)
        if progress is not None:
            progress(
                f"{point.label}: {measurement.precision} "
                f"predicted {measurement.predicted_time_s * 1e6:.2f}us "
                f"search {measurement.search_s_median * 1e3:.2f}ms"
            )
    report.elapsed_s = time.perf_counter() - started
    return report


def _measure(
    point: SweepPoint,
    planners: dict[str, ExecutionPlanner],
    ship_cache: PlanCache,
    warmup: int,
    repeats: int,
) -> Measurement:
    """Plan one point into the shipping cache and time the cold search."""
    planner = planners.get(point.device)
    if planner is None:
        planner = planners[point.device] = ExecutionPlanner(
            device=point.device, cache=ship_cache
        )
    plan = _plan(planner, point)
    if plan.key != point.plan_key:  # pragma: no cover - contract guard
        raise SweepError(
            f"sweep produced key {plan.key!r} but expected "
            f"{point.plan_key!r}; the artifact would never hit"
        )
    times = []
    for i in range(warmup + repeats):
        cold = ExecutionPlanner(device=point.device, cache=PlanCache())
        t0 = time.perf_counter()
        _plan(cold, point)
        t1 = time.perf_counter()
        if i >= warmup:
            times.append(t1 - t0)
    return Measurement(
        point=point,
        plan_key=plan.key,
        precision=plan.precision,
        config=dict(plan.config),
        predicted_time_s=plan.predicted_time_s,
        search_s_median=statistics.median(times),
        search_s_mean=statistics.fmean(times),
        search_s_min=min(times),
        repeats=repeats,
    )


def _plan(planner: ExecutionPlanner, point: SweepPoint):
    plan_fn = planner.plan_spmm if point.op == "spmm" else planner.plan_sddmm
    return plan_fn(
        point.rows, point.cols, point.inner, point.vector_length,
        point.sparsity, point.objective, backend=point.backend,
    )
