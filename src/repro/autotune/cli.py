"""``repro autotune`` — offline sweeps that ship warm plan caches.

Usage::

    repro autotune sweep --out plans.json                # default grid
    repro autotune sweep --device A100 --shape 512x512x64 \\
        --sparsity 0.9 --min-bits 8x8 --out plans.json
    repro autotune export serving-cache.json --out plans.json
    repro autotune verify plans.json
    repro autotune diff old-plans.json new-plans.json
    repro autotune pack plans-a.json plans-b.json --out fleet-pack
    repro autotune watch telemetry.json --plans plans.json \\
        --out retuned/plans.json

``sweep`` enumerates (plannable backends x devices x topology grid)
from the live backend registry, measures every surviving point, and
writes the artifact pair — ``plans.json`` (a schema-v2 plan cache any
engine can ``warm_start=``) plus ``plans.manifest.json`` (provenance +
fingerprints). ``verify`` re-checks an artifact's manifest against the
current registry and exits non-zero on drift; ``diff`` compares two
artifacts plan by plan. ``watch`` closes the serve → autotune loop
across processes: it reads a telemetry snapshot a serving process
exported (``client.telemetry.snapshot().save(path)``), decides which
plan keys are worth re-sweeping, runs the targeted sweep, and ships a
re-tuned artifact whose manifest names the triggering snapshot.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

from repro.errors import MagicubeError

_SHAPE = re.compile(r"^(\d+)x(\d+)x(\d+)$")
_BITS = re.compile(r"^(\d+)x(\d+)$")


def _parse_shape(text: str) -> tuple[int, int, int]:
    m = _SHAPE.match(text)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad shape {text!r}; expected MxKxN (e.g. 512x512x64)"
        )
    return (int(m.group(1)), int(m.group(2)), int(m.group(3)))


def _parse_bits(text: str) -> tuple[int, int]:
    m = _BITS.match(text)
    if not m:
        raise argparse.ArgumentTypeError(
            f"bad min-bits {text!r}; expected LxR (e.g. 8x8)"
        )
    return (int(m.group(1)), int(m.group(2)))


def _sweep_config(args):
    from repro.autotune.space import DEFAULT_SHAPES, SweepConfig

    return SweepConfig(
        ops=tuple(args.op) if args.op else ("spmm",),
        shapes=tuple(args.shape) if args.shape else DEFAULT_SHAPES,
        vector_lengths=tuple(args.vector_length) if args.vector_length else (8,),
        sparsities=tuple(args.sparsity) if args.sparsity else (0.9,),
        backends=tuple(args.backend) if args.backend else None,
        devices=tuple(args.device) if args.device else None,
        min_bits=tuple(args.min_bits) if args.min_bits else ((4, 4), (8, 8)),
        objective=args.objective,
        latency_budget_s=args.latency_budget,
        mask_patterns=tuple(args.mask_pattern) if args.mask_pattern else (),
    )


def _cmd_sweep(args) -> int:
    from repro.autotune.artifact import ArtifactManifest, write_artifact
    from repro.autotune.runner import SweepBudget, run_sweep

    config = _sweep_config(args)
    budget = SweepBudget(max_trials=args.trials, max_seconds=args.seconds)
    progress = None if args.quiet or args.json else (lambda line: print(f"  {line}"))
    if progress:
        print("sweeping...")
    report = run_sweep(
        config,
        budget=budget,
        warmup=args.warmup,
        repeats=args.repeats,
        prune_ratio=args.prune_ratio,
        progress=progress,
    )
    manifest = ArtifactManifest.for_report(report)
    plans_path, mpath = write_artifact(Path(args.out), report.cache, manifest)
    summary = {
        **report.summary(),
        "artifact": str(plans_path),
        "manifest": str(mpath),
    }
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        s = report.summary()
        print(
            f"swept {s['measured']}/{s['points']} points "
            f"({s['pruned']} pruned, {s['skipped']} skipped, "
            f"{s['failed']} failed) in {s['elapsed_s']:.2f}s; "
            f"median cold search {s['search_s_median'] * 1e3:.2f}ms"
        )
        print(f"shipped {s['plans']} plans -> {plans_path} (+ {mpath.name})")
    return 0 if report.measurements else 1


def _cmd_export(args) -> int:
    from repro.autotune.artifact import write_artifact
    from repro.serve.cache import PlanCache

    cache = PlanCache()
    cache.load(args.cache)
    plans_path, mpath = write_artifact(Path(args.out), cache)
    print(f"exported {len(cache)} plans -> {plans_path} (+ {mpath.name})")
    return 0


def _cmd_verify(args) -> int:
    from repro.autotune.artifact import check_drift, load_artifact

    cache, manifest = load_artifact(args.artifact)
    print(f"{args.artifact}: {len(cache)} plans")
    if manifest is None:
        print("no manifest found; provenance cannot be verified")
        return 1
    print(f"produced by {manifest.created_by} at git {manifest.git}")
    drift = check_drift(manifest)
    if not drift:
        print(
            f"OK: {len(manifest.backends)} backend and "
            f"{len(manifest.devices)} device fingerprints match the "
            f"live registry"
        )
        return 0
    print(f"DRIFT: {len(drift)} mismatch(es) against the live registry:")
    for line in drift:
        print(f"  - {line}")
    return 1


def _cmd_diff(args) -> int:
    from repro.autotune.artifact import load_artifact
    from repro.bench.report import render_table

    a, _ = load_artifact(args.a)
    b, _ = load_artifact(args.b)
    keys_a, keys_b = set(a.keys()), set(b.keys())
    added = sorted(keys_b - keys_a)
    removed = sorted(keys_a - keys_b)
    changed = []
    for key in sorted(keys_a & keys_b):
        pa, pb = a.peek(key), b.peek(key)
        if pa.to_dict() != pb.to_dict():
            changed.append((key, pa, pb))
    for label, keys in (("added", added), ("removed", removed)):
        for key in keys:
            print(f"{label}: {key}")
    if changed:
        rows = [
            [
                key.split("|", 1)[0],
                key,
                f"{pa.precision} -> {pb.precision}",
                f"{pa.predicted_time_s * 1e6:.2f} -> "
                f"{pb.predicted_time_s * 1e6:.2f}",
            ]
            for key, pa, pb in changed
        ]
        print(render_table(
            ["op", "key", "precision", "predicted us"],
            rows, title="-- changed plans --",
        ))
    if not (added or removed or changed):
        print(f"identical: {len(keys_a)} plans")
        return 0
    print(
        f"{len(added)} added, {len(removed)} removed, "
        f"{len(changed)} changed (of {len(keys_a | keys_b)})"
    )
    return 1


def _cmd_pack(args) -> int:
    from repro.fleet.pack import build_pack

    pack = build_pack(args.artifacts, args.out, version=args.version)
    summary = pack.summary()
    print(f"packed {summary['members']} artifact(s), {summary['plans']} "
          f"plan(s) -> {summary['root']} (version {summary['version']}, "
          f"fingerprint {summary['fingerprint']})")
    return 0


def _cmd_watch(args) -> int:
    import time as _time

    from repro.autotune.policy import RetunePolicy
    from repro.autotune.runner import SweepBudget
    from repro.autotune.scheduler import retune_from_snapshot
    from repro.serve.cache import PlanCache
    from repro.serve.telemetry import TelemetrySnapshot

    baseline: frozenset[str] = frozenset()
    if args.plans:
        cache = PlanCache()
        cache.load(args.plans)
        baseline = frozenset(cache.keys())
    policy = RetunePolicy(
        min_requests=args.min_requests,
        hot_share=args.hot_share,
        regression_ratio=args.regression_ratio,
        max_keys=args.max_keys,
        cooldown_s=args.cooldown,
        budget=SweepBudget(max_trials=args.trials, max_seconds=args.seconds),
        warmup=args.warmup,
        repeats=args.repeats,
    )
    cycles = []
    tuned_at: dict[str, float] = {}
    for i in range(args.cycles):
        if i:
            _time.sleep(args.interval)
        try:
            snapshot = TelemetrySnapshot.load(args.snapshot)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read snapshot {args.snapshot}: {exc}",
                  file=sys.stderr)
            return 2
        now = _time.monotonic()
        exclude = {
            key for key, tuned in tuned_at.items()
            if now - tuned < policy.cooldown_s
        }
        cycle = retune_from_snapshot(
            snapshot, policy, baseline_keys=baseline, exclude=exclude,
            out=args.out,
        )
        cycles.append(cycle)
        # only keys the sweep actually measured and shipped are warm
        # from now on; everything else triggered (skipped keys, or a
        # tail the budget cut off) merely cools down, so it resurfaces
        # on a later cycle instead of being silently forgotten
        baseline = baseline | set(cycle.promoted_keys)
        for t in cycle.triggers:
            tuned_at[t.plan_key] = now
        if args.json:
            print(json.dumps(cycle.to_dict(), indent=2, sort_keys=True))
            continue
        if not cycle.triggers:
            print(
                f"cycle {i + 1}: snapshot {cycle.snapshot_fingerprint} — "
                f"nothing to re-tune"
            )
            continue
        print(
            f"cycle {i + 1}: snapshot {cycle.snapshot_fingerprint} — "
            f"{len(cycle.triggers)} trigger(s), {cycle.measured} measured, "
            f"{cycle.promoted} plan(s) shipped in {cycle.elapsed_s:.2f}s"
        )
        for t in cycle.triggers:
            print(f"  {t.reason:<10} {t.plan_key}")
        for key, why in cycle.skipped:
            print(f"  skipped    {key}: {why}")
        if cycle.artifact is not None:
            print(f"  -> {cycle.artifact}")
    return 0 if any(c.promoted for c in cycles) or not any(
        c.triggers for c in cycles
    ) else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro autotune", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sweep = sub.add_parser("sweep", help="run an offline sweep, ship an artifact")
    sweep.add_argument("--op", action="append", choices=("spmm", "sddmm"),
                       help="ops to sweep (repeatable; default spmm)")
    sweep.add_argument("--shape", action="append", type=_parse_shape,
                       metavar="MxKxN", help="topology grid entry (repeatable)")
    sweep.add_argument("--vector-length", action="append", type=int, metavar="V",
                       help="vector lengths (repeatable; default 8)")
    sweep.add_argument("--sparsity", action="append", type=float, metavar="S",
                       help="sparsity grid entry (repeatable; default 0.9)")
    sweep.add_argument("--mask-pattern", action="append", metavar="NAME",
                       help="attention-mask zoo pattern to price (repeatable; "
                            "sparsities become density targets and cells are "
                            "priced at each pattern's realized sparsity)")
    sweep.add_argument("--backend", action="append", metavar="NAME",
                       help="restrict to registered backends (repeatable; "
                            "default: every plannable backend)")
    sweep.add_argument("--device", action="append", metavar="NAME",
                       help="restrict devices (repeatable; default: all modelled)")
    sweep.add_argument("--min-bits", action="append", type=_parse_bits,
                       metavar="LxR", help="objective minima, e.g. 8x8 "
                       "(repeatable; default 4x4 and 8x8)")
    sweep.add_argument("--objective", choices=("latency", "accuracy"),
                       default="latency")
    sweep.add_argument("--latency-budget", type=float, default=None, metavar="S",
                       help="accuracy objective's latency budget in seconds")
    sweep.add_argument("--warmup", type=int, default=1)
    sweep.add_argument("--repeats", type=int, default=3)
    sweep.add_argument("--trials", type=int, default=None, metavar="N",
                       help="measure at most N points")
    sweep.add_argument("--seconds", type=float, default=None, metavar="S",
                       help="stop measuring after S seconds of wall clock")
    sweep.add_argument("--prune-ratio", type=float, default=4.0, metavar="R",
                       help="prune a backend after consecutive >Rx cost-model "
                            "losses (0 disables; default 4.0)")
    sweep.add_argument("--out", required=True, metavar="PATH",
                       help="artifact path (plan-cache JSON; the manifest "
                            "lands beside it)")
    sweep.add_argument("--json", action="store_true",
                       help="print a machine-readable summary")
    sweep.add_argument("--quiet", action="store_true")
    sweep.set_defaults(fn=_cmd_sweep)

    export = sub.add_parser(
        "export", help="wrap an existing plan-cache JSON into an artifact"
    )
    export.add_argument("cache", help="plan-cache JSON (e.g. from a serving run)")
    export.add_argument("--out", required=True, metavar="PATH")
    export.set_defaults(fn=_cmd_export)

    verify = sub.add_parser(
        "verify", help="check an artifact's manifest against the live registry"
    )
    verify.add_argument("artifact", help="plan-cache JSON of the artifact")
    verify.set_defaults(fn=_cmd_verify)

    diff = sub.add_parser("diff", help="compare two artifacts plan by plan")
    diff.add_argument("a")
    diff.add_argument("b")
    diff.set_defaults(fn=_cmd_diff)

    pack = sub.add_parser(
        "pack",
        help="bundle artifacts into a versioned fleet pack "
             "(alias of `repro fleet pack`)",
    )
    pack.add_argument("artifacts", nargs="+",
                      help="plan-cache JSON artifacts to bundle")
    pack.add_argument("--out", default="fleet-pack", metavar="DIR",
                      help="pack directory to write (default: fleet-pack)")
    pack.add_argument("--version", default="0")
    pack.set_defaults(fn=_cmd_pack)

    watch = sub.add_parser(
        "watch",
        help="re-tune targeted plan keys from an exported telemetry snapshot",
    )
    watch.add_argument(
        "snapshot",
        help="TelemetrySnapshot JSON (client.telemetry.snapshot().save(path))",
    )
    watch.add_argument("--plans", default=None, metavar="PATH",
                       help="baseline artifact: its keys count as warm, "
                            "everything else a serving process planned live "
                            "is a cold miss")
    watch.add_argument("--out", required=True, metavar="PATH",
                       help="artifact path for the re-tuned plans")
    watch.add_argument("--min-requests", type=int, default=1, metavar="N",
                       help="ignore snapshots with fewer requests (default 1)")
    watch.add_argument("--hot-share", type=float, default=0.10, metavar="F",
                       help="traffic share that makes a key hot (default 0.10)")
    watch.add_argument("--regression-ratio", type=float, default=1.5,
                       metavar="R", help="observed/predicted latency ratio "
                       "that triggers a re-tune (default 1.5)")
    watch.add_argument("--max-keys", type=int, default=8, metavar="N",
                       help="re-tune at most N keys per cycle (default 8)")
    watch.add_argument("--cooldown", type=float, default=300.0, metavar="S",
                       help="per-key floor between re-tunes across cycles "
                            "(default 300)")
    watch.add_argument("--trials", type=int, default=64, metavar="N",
                       help="sweep budget: measure at most N points")
    watch.add_argument("--seconds", type=float, default=60.0, metavar="S",
                       help="sweep budget: wall-clock cap per cycle")
    watch.add_argument("--warmup", type=int, default=0)
    watch.add_argument("--repeats", type=int, default=1)
    watch.add_argument("--cycles", type=int, default=1, metavar="N",
                       help="poll the snapshot file N times (default 1)")
    watch.add_argument("--interval", type=float, default=5.0, metavar="S",
                       help="seconds between polls (default 5)")
    watch.add_argument("--json", action="store_true",
                       help="print machine-readable cycle records")
    watch.set_defaults(fn=_cmd_watch)

    args = parser.parse_args(argv)
    if getattr(args, "prune_ratio", None) == 0:
        args.prune_ratio = None
    try:
        return args.fn(args)
    except MagicubeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
