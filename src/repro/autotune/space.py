"""Sweep-space enumeration over the backend registry.

A sweep space is the cross-product the offline autotuner walks:

    plannable backends x devices x (op, shape, vector length, sparsity)
    x objective minima

enumerated **from the registry**, not hard-coded — registering a new
backend (or adding a device profile) grows the next sweep
automatically. Enumeration is deterministic: backends come out in the
registry's priority-ordered fallback order, devices in
:func:`~repro.gpu.device.list_devices` order, and the topology grid in
the order the config declares, so the same registry and config always
produce the same ordered list of :class:`SweepPoint`\\ s — the property
that makes shipped artifacts reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SweepError
from repro.gpu.device import list_devices
from repro.runtime import (
    REGISTRY,
    BackendRegistry,
    Device,
    Problem,
    plannable_backends,
)
from repro.serve.planner import Objective, PlanKey

__all__ = ["SweepConfig", "SweepPoint", "enumerate_space"]

#: the (rows, cols, inner) topology grid a no-argument sweep walks
DEFAULT_SHAPES: tuple[tuple[int, int, int], ...] = (
    (512, 512, 64),
    (512, 512, 128),
)


@dataclass(frozen=True)
class SweepPoint:
    """One (problem, backend, device, objective) cell of a sweep.

    ``plan_key`` is exactly the key a single-device, pinned-backend
    :class:`~repro.serve.planner.ExecutionPlanner` would memoize the
    search under — the contract that makes a shipped artifact *hit* at
    serving time instead of merely resembling the serving keys.
    """

    op: str
    rows: int
    cols: int
    inner: int
    vector_length: int
    sparsity: float
    backend: str
    device: str
    objective: Objective
    #: the zoo mask variant this cell prices, when the sweep walked a
    #: mask-pattern axis; ``sparsity`` is then the pattern's *realized*
    #: sparsity at this (rows, vector_length) — the same value a served
    #: ``TransformerRequest`` plans at, so the shipped key still hits
    mask_pattern: str | None = None

    @property
    def problem(self) -> Problem:
        return Problem(
            op=self.op,
            rows=self.rows,
            cols=self.cols,
            inner=self.inner,
            vector_length=self.vector_length,
            sparsity=round(self.sparsity, 3),
        )

    @property
    def plan_key(self) -> str:
        return str(PlanKey(
            op=self.op,
            rows=self.rows,
            cols=self.cols,
            inner=self.inner,
            vector_length=self.vector_length,
            sparsity=round(self.sparsity, 3),
            backend=self.backend,
            device=self.device,
            objective=self.objective.token,
        ))

    @property
    def label(self) -> str:
        mask = f" mask={self.mask_pattern}" if self.mask_pattern else ""
        return (
            f"{self.op} {self.rows}x{self.cols} n={self.inner} "
            f"v={self.vector_length} s={self.sparsity:.3f}{mask} "
            f"{self.backend}@{self.device} {self.objective.token}"
        )


@dataclass(frozen=True)
class SweepConfig:
    """What one offline sweep covers.

    ``backends``/``devices`` of ``None`` mean "everything the registry
    / device table offers" *at enumeration time* — the sweep literally
    reads the live registry. ``min_bits`` mirrors how serving sessions
    tighten their objective to the operands' actual bit widths
    (:meth:`Objective.with_min_bits`): sweep the pairs your sessions
    will classify requests into, and the shipped keys line up.
    ``max_bits`` (paired entry-for-entry with ``min_bits`` when given)
    caps the objectives the same way — the re-tuning scheduler uses it
    to reproduce precision-pinned serving objectives exactly.
    """

    ops: tuple[str, ...] = ("spmm",)
    shapes: tuple[tuple[int, int, int], ...] = DEFAULT_SHAPES
    vector_lengths: tuple[int, ...] = (8,)
    sparsities: tuple[float, ...] = (0.9,)
    backends: tuple[str, ...] | None = None
    devices: tuple[str, ...] | None = None
    min_bits: tuple[tuple[int, int], ...] = ((4, 4), (8, 8))
    max_bits: tuple[tuple[int, int], ...] | None = None
    objective: str = "latency"
    latency_budget_s: float | None = None
    #: attention-mask zoo patterns (:data:`repro.transformer.masks
    #: .MASK_ZOO` names) to price: each ``sparsities`` entry becomes the
    #: pattern's density *target* and the grid cell is priced at the
    #: realized sparsity of the built mask — the extra plan-key
    #: dimension whole-model transformer requests plan under
    mask_patterns: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.objective not in ("latency", "accuracy"):
            raise SweepError(f"unknown sweep objective {self.objective!r}")
        for op in self.ops:
            if op not in ("spmm", "sddmm"):
                raise SweepError(f"unknown sweep op {op!r}")
        if self.mask_patterns:
            from repro.transformer.masks import MASK_ZOO

            for pattern in self.mask_patterns:
                if pattern not in MASK_ZOO:
                    raise SweepError(
                        f"unknown mask pattern {pattern!r}; zoo has "
                        f"{tuple(sorted(MASK_ZOO))}"
                    )
        if not (self.ops and self.shapes and self.vector_lengths
                and self.sparsities and self.min_bits):
            raise SweepError("sweep config has an empty axis")
        if self.max_bits is not None and len(self.max_bits) != len(self.min_bits):
            raise SweepError(
                f"max_bits must pair with min_bits entry for entry "
                f"({len(self.max_bits)} != {len(self.min_bits)})"
            )

    def objectives(self) -> tuple[Objective, ...]:
        """The objective grid, one per ``min_bits`` pair."""
        maxima = (
            self.max_bits
            if self.max_bits is not None
            else ((16, 16),) * len(self.min_bits)
        )
        out = []
        for (l_bits, r_bits), (max_l, max_r) in zip(self.min_bits, maxima):
            out.append(Objective(
                kind=self.objective,
                min_l_bits=l_bits,
                min_r_bits=r_bits,
                max_l_bits=max_l,
                max_r_bits=max_r,
                latency_budget_s=(
                    self.latency_budget_s if self.objective == "accuracy" else None
                ),
            ))
        return tuple(out)

    # -- provenance ------------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "ops": list(self.ops),
            "shapes": [list(s) for s in self.shapes],
            "vector_lengths": list(self.vector_lengths),
            "sparsities": list(self.sparsities),
            "backends": list(self.backends) if self.backends is not None else None,
            "devices": list(self.devices) if self.devices is not None else None,
            "min_bits": [list(p) for p in self.min_bits],
            "max_bits": (
                [list(p) for p in self.max_bits]
                if self.max_bits is not None else None
            ),
            "objective": self.objective,
            "latency_budget_s": self.latency_budget_s,
            "mask_patterns": list(self.mask_patterns),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "SweepConfig":
        def _tuples(key, default):
            value = d.get(key)
            if value is None:
                return default
            return tuple(tuple(v) if isinstance(v, list) else v for v in value)

        backends = d.get("backends")
        devices = d.get("devices")
        max_bits = d.get("max_bits")
        return cls(
            ops=tuple(d.get("ops", ("spmm",))),
            shapes=_tuples("shapes", DEFAULT_SHAPES),
            vector_lengths=tuple(d.get("vector_lengths", (8,))),
            sparsities=tuple(d.get("sparsities", (0.9,))),
            backends=tuple(backends) if backends is not None else None,
            devices=tuple(devices) if devices is not None else None,
            min_bits=_tuples("min_bits", ((4, 4), (8, 8))),
            max_bits=_tuples("max_bits", None) if max_bits is not None else None,
            objective=d.get("objective", "latency"),
            latency_budget_s=d.get("latency_budget_s"),
            mask_patterns=tuple(d.get("mask_patterns", ())),
        )


def _sparsity_axis(
    config: SweepConfig, rows: int, vector_length: int
) -> list[tuple[float, str | None]]:
    """The (sparsity, mask_pattern) grid for one (rows, v) cell.

    Without mask patterns this is just the configured sparsity axis.
    With them, each configured sparsity is a density *target* handed to
    each zoo builder, and the cell is priced at the built mask's
    realized sparsity — rounded the way the planner rounds plan keys,
    and deduplicated per pattern (two targets realizing the same mask
    would measure the same key twice).
    """
    if not config.mask_patterns:
        return [(s, None) for s in config.sparsities]
    from repro.transformer.masks import build_mask

    axis: list[tuple[float, str | None]] = []
    for pattern in config.mask_patterns:
        seen: set[float] = set()
        for target in config.sparsities:
            mask = build_mask(
                pattern, rows, vector_length=vector_length, sparsity=target
            )
            realized = round(mask.sparsity, 3)
            if realized in seen:
                continue
            seen.add(realized)
            axis.append((realized, pattern))
    return axis


def enumerate_space(
    config: SweepConfig, registry: BackendRegistry | None = None
) -> list[SweepPoint]:
    """The ordered sweep grid one config spans against one registry.

    Cells a backend cannot serve — the (op, device) pair unsupported,
    or rows not divisible by the vector length — are dropped here, so
    the runner only ever sees plannable points. An entirely empty grid
    raises :class:`~repro.errors.SweepError` (a sweep that measures
    nothing is a misconfiguration, not a success).
    """
    reg = registry if registry is not None else REGISTRY
    devices = config.devices if config.devices is not None else tuple(list_devices())
    objectives = config.objectives()
    points: list[SweepPoint] = []
    for op in config.ops:
        for device_name in devices:
            device = Device.resolve(device_name)
            backends = plannable_backends(
                op, device, names=config.backends, registry=reg
            )
            for backend in backends:
                for rows, cols, inner in config.shapes:
                    for v in config.vector_lengths:
                        if rows % v != 0:
                            continue
                        for sparsity, pattern in _sparsity_axis(
                            config, rows, v
                        ):
                            for objective in objectives:
                                points.append(SweepPoint(
                                    op=op,
                                    rows=rows,
                                    cols=cols,
                                    inner=inner,
                                    vector_length=v,
                                    sparsity=sparsity,
                                    backend=backend.name,
                                    device=device.name,
                                    objective=objective,
                                    mask_pattern=pattern,
                                ))
    if not points:
        raise SweepError(
            "sweep space is empty: no (backend, device, topology) cell "
            "survived the registry's support filters"
        )
    return points
