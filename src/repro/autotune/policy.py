"""Re-tune policy: which live plan keys are worth re-sweeping.

The serving engine accumulates per-plan-key telemetry
(:meth:`repro.serve.telemetry.Telemetry.snapshot`); this module is the
pure decision layer between that snapshot and a targeted sweep:

- :class:`RetunePolicy` holds the knobs — traffic-share and regression
  thresholds, trigger toggles, sweep budget, cadence;
- :func:`evaluate_snapshot` turns one snapshot into
  :class:`RetuneTrigger`\\ s (hot keys by traffic share, cold-search
  misses against a baseline key set, latency regressions vs. the
  plan's recorded cost estimate, fingerprint drift);
- :func:`synthesize` turns triggers back into
  :class:`~repro.autotune.space.SweepConfig`\\ s plus the exact plan-key
  set to measure, so :func:`~repro.autotune.runner.run_sweep` (with its
  ``keys=`` filter) re-sweeps *only* what the triggers named.

Everything here is deterministic and side-effect free — the
:mod:`~repro.autotune.scheduler` supplies the threading, promotion and
artifact shipping around it, and ``repro autotune watch`` drives the
same functions from a snapshot file on disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.autotune.runner import SweepBudget
from repro.autotune.space import SweepConfig
from repro.errors import ConfigError
from repro.obs.health import HealthReport, SloSpec
from repro.serve.planner import Objective, PlanKey
from repro.serve.telemetry import TelemetrySnapshot

__all__ = [
    "RetunePolicy",
    "RetuneTrigger",
    "TargetedSweep",
    "evaluate_snapshot",
    "synthesize",
]


@dataclass(frozen=True)
class RetunePolicy:
    """When and how a live engine re-tunes itself.

    Pass one to :func:`repro.open_engine` to attach a background
    :class:`~repro.autotune.scheduler.RetuneScheduler` to the engine::

        import repro
        from repro.autotune import RetunePolicy

        policy = RetunePolicy(
            interval_s=30.0,       # scheduler wake-up cadence
            hot_share=0.10,        # keys carrying >=10% of traffic
            regression_ratio=1.5,  # observed vs predicted latency
            artifact_dir="retuned-plans",  # ship each promotion
        )
        client = repro.open_engine(device="A100", retune=policy)
        client.close()

    ``min_requests`` gates the whole evaluation — no re-tuning before
    the engine has seen that much traffic. ``cooldown_s`` keeps one
    key from being re-swept on every cycle. ``budget`` caps each
    cycle's sweep cost (the scheduler runs off the hot path, but CPU
    time is still CPU time); ``warmup``/``repeats`` are handed to
    :func:`~repro.autotune.runner.run_sweep`. ``artifact_dir`` (when
    set) ships every promotion as a ``retune-NNNN/plans.json`` artifact
    whose manifest records the triggering telemetry snapshot.

    ``slos`` attaches SLO objectives (:class:`repro.obs.health.SloSpec`)
    the scheduler evaluates over the engine's metrics each cycle, on a
    rolling ``slo_window_s`` window; while a **latency** objective is
    in breach and ``retune_on_slo_breach`` is on, every served key is
    marked for re-sweep (the ``slo-breach`` trigger) — the engine is
    failing its contract, so the plans carrying the traffic are the
    first suspects.
    """

    interval_s: float = 30.0
    min_requests: int = 32
    hot_share: float = 0.10
    regression_ratio: float = 1.5
    retune_cold_misses: bool = True
    retune_on_drift: bool = True
    slos: tuple[SloSpec, ...] = ()
    retune_on_slo_breach: bool = True
    #: opt-in: also react to queue_depth / rejection_rate breaches (the
    #: ``load-shed`` trigger). Off by default — admission pressure on a
    #: single engine usually means overload, not a stale plan; a fleet
    #: deployment (:func:`repro.fleet.fleet_retune_policy`) turns it on
    #: so saturated workers re-sweep the plans carrying their traffic.
    retune_on_load_shed: bool = False
    slo_window_s: float = 300.0
    max_keys: int = 8
    cooldown_s: float = 300.0
    budget: SweepBudget = field(
        default_factory=lambda: SweepBudget(max_trials=64, max_seconds=60.0)
    )
    warmup: int = 0
    repeats: int = 1
    artifact_dir: "str | Path | None" = None

    def __post_init__(self) -> None:
        if self.interval_s <= 0:
            raise ConfigError("interval_s must be > 0")
        if self.min_requests < 0:
            raise ConfigError("min_requests must be >= 0")
        if not 0.0 < self.hot_share <= 1.0:
            raise ConfigError("hot_share must be in (0, 1]")
        if self.regression_ratio <= 1.0:
            raise ConfigError("regression_ratio must be > 1")
        if self.max_keys < 1:
            raise ConfigError("max_keys must be >= 1")
        if self.cooldown_s < 0:
            raise ConfigError("cooldown_s must be >= 0")
        if self.warmup < 0 or self.repeats < 1:
            raise ConfigError("warmup must be >= 0 and repeats >= 1")
        if self.slo_window_s <= 0:
            raise ConfigError("slo_window_s must be > 0")
        # a tuple-of-SloSpec is the frozen form; accept a plain list
        if not isinstance(self.slos, tuple):
            object.__setattr__(self, "slos", tuple(self.slos))


@dataclass(frozen=True)
class RetuneTrigger:
    """One plan key one policy decided to re-sweep, and why.

    ``reason`` is the highest-priority trigger that fired
    (``regression`` > ``slo-breach`` > ``load-shed`` > ``cold-miss`` >
    ``hot`` > ``drift``); ``detail`` names every one that did. ``share`` is the
    key's traffic share in the evaluated snapshot (the sort key for
    :func:`evaluate_snapshot`'s ``max_keys`` cap).
    """

    plan_key: str
    reason: str
    detail: str
    share: float = 0.0

    def to_dict(self) -> dict:
        return {
            "plan_key": self.plan_key,
            "reason": self.reason,
            "detail": self.detail,
            "share": self.share,
        }


@dataclass(frozen=True)
class TargetedSweep:
    """One synthesized sweep: a config plus the exact keys to measure.

    ``config`` spans the union of the triggers' axes (shapes, vector
    lengths, sparsities, backends, devices, objective bounds);
    ``keys`` filters :func:`~repro.autotune.runner.run_sweep` down to
    the triggered cells, so the union grid never measures untriggered
    cross-product cells.
    """

    config: SweepConfig
    keys: frozenset[str]


def evaluate_snapshot(
    snapshot: TelemetrySnapshot,
    policy: RetunePolicy,
    *,
    baseline_keys: frozenset[str] = frozenset(),
    drift: Sequence[str] = (),
    exclude: "frozenset[str] | set[str]" = frozenset(),
    health: "HealthReport | None" = None,
) -> list[RetuneTrigger]:
    """Decide which of a snapshot's plan keys are worth re-sweeping.

    ``baseline_keys`` is the plan-key set that existed before live
    traffic (warm-start artifacts plus earlier promotions) — traffic on
    any other key paid a cold planner search, the ``cold-miss``
    trigger. ``drift`` is the output of
    :func:`~repro.autotune.artifact.check_drift` for the engine's
    warm-start manifests; any non-empty drift marks every served key.
    ``health`` is a current :class:`~repro.obs.health.HealthReport`
    (the scheduler evaluates ``policy.slos`` each cycle); a **latency**
    objective in breach marks every served key — the ``slo-breach``
    trigger — and, when ``policy.retune_on_load_shed`` is on, a
    **queue_depth** / **rejection_rate** objective in breach marks
    them with the lower-priority ``load-shed`` trigger: the fleet
    gateway feeding its admission signals into the policy's SLOs is
    shedding work, so cheaper plans for the keys carrying the traffic
    are the remedy re-tuning can offer.
    ``exclude`` removes keys under the scheduler's cooldown.
    Triggers come back sorted by traffic share (then key), capped at
    ``policy.max_keys``.
    """
    total = snapshot.requests
    if total < policy.min_requests or total == 0:
        return []
    breached = []
    pressured = []
    if policy.retune_on_slo_breach and health is not None:
        breached = [r for r in health.breaches if r.spec.kind == "latency"]
    if policy.retune_on_load_shed and health is not None:
        pressured = [
            r for r in health.breaches
            if r.spec.kind in ("queue_depth", "rejection_rate")
        ]
    triggers: list[RetuneTrigger] = []
    for key in sorted(snapshot.plans):
        if key in exclude:
            continue
        stats = snapshot.plans[key]
        share = stats.get("requests", 0) / total
        reasons: list[tuple[str, str]] = []
        launches = stats.get("launches", stats.get("batches", 0))
        predicted = stats.get("predicted_time_s", 0.0)
        if launches and predicted > 0:
            observed = stats.get("modelled_busy_s", 0.0) / launches
            ratio = observed / predicted
            if ratio > policy.regression_ratio:
                reasons.append((
                    "regression",
                    f"observed {observed * 1e6:.2f}us vs predicted "
                    f"{predicted * 1e6:.2f}us ({ratio:.2f}x > "
                    f"{policy.regression_ratio}x)",
                ))
        if breached:
            worst = max(breached, key=lambda r: r.burn)
            reasons.append((
                "slo-breach",
                f"latency objective {worst.spec.name!r} burning at "
                f"{worst.burn:.2f}x budget ({worst.detail})",
            ))
        if pressured:
            worst = max(pressured, key=lambda r: r.burn)
            reasons.append((
                "load-shed",
                f"pressure objective {worst.spec.name!r} "
                f"({worst.spec.kind}) burning at {worst.burn:.2f}x "
                f"budget ({worst.detail})",
            ))
        if policy.retune_cold_misses and key not in baseline_keys:
            reasons.append((
                "cold-miss",
                "first contact paid the cold planner search (key absent "
                "from the warm baseline)",
            ))
        if share >= policy.hot_share:
            reasons.append((
                "hot",
                f"traffic share {share:.1%} >= {policy.hot_share:.1%}",
            ))
        if policy.retune_on_drift and drift:
            reasons.append((
                "drift",
                f"{len(drift)} fingerprint mismatch(es), e.g. {drift[0]}",
            ))
        if not reasons:
            continue
        triggers.append(RetuneTrigger(
            plan_key=key,
            reason=reasons[0][0],
            detail="; ".join(f"{r}: {d}" for r, d in reasons),
            share=share,
        ))
    triggers.sort(key=lambda t: (-t.share, t.plan_key))
    return triggers[: policy.max_keys]


def synthesize(
    triggers: Sequence[RetuneTrigger],
) -> tuple[list[TargetedSweep], list[tuple[RetuneTrigger, str]]]:
    """Turn triggers into targeted sweeps (plus the unsweepable rest).

    Each trigger's plan key is parsed back into its problem axes
    (:meth:`~repro.serve.planner.PlanKey.parse`) and objective
    (:meth:`~repro.serve.planner.Objective.parse`); triggers sharing an
    objective kind and latency budget merge into one
    :class:`TargetedSweep` whose config spans the union of their axes
    and whose ``keys`` restrict the walk to exactly the triggered
    cells. Keys a sweep cannot reproduce — multi-backend /
    multi-device searched sets (``+``-joined runtime segments) or
    unparseable keys — come back in the second list with the reason,
    never silently dropped.
    """
    groups: dict[tuple, dict] = {}
    skipped: list[tuple[RetuneTrigger, str]] = []
    for trigger in triggers:
        try:
            pk = PlanKey.parse(trigger.plan_key)
        except ValueError as exc:
            skipped.append((trigger, f"unparseable plan key: {exc}"))
            continue
        if "+" in pk.backend or "+" in pk.device:
            skipped.append((
                trigger,
                "multi-backend/device searched key; a sweep pins one "
                "(backend, device) per point and would change the key",
            ))
            continue
        try:
            obj = Objective.parse(pk.objective)
        except ValueError as exc:
            skipped.append((trigger, f"unparseable objective token: {exc}"))
            continue
        group = groups.setdefault((obj.kind, obj.latency_budget_s), {
            "ops": {}, "shapes": {}, "vector_lengths": {}, "sparsities": {},
            "backends": {}, "devices": {}, "bits": {}, "keys": set(),
        })
        # dicts as ordered sets: union the axes, preserve trigger order
        group["ops"][pk.op] = None
        group["shapes"][(pk.rows, pk.cols, pk.inner)] = None
        group["vector_lengths"][pk.vector_length] = None
        group["sparsities"][pk.sparsity] = None
        group["backends"][pk.backend] = None
        group["devices"][pk.device] = None
        group["bits"][(
            obj.min_l_bits, obj.min_r_bits, obj.max_l_bits, obj.max_r_bits
        )] = None
        group["keys"].add(trigger.plan_key)
    targets = []
    for (kind, budget_s), group in groups.items():
        bits = list(group["bits"])
        targets.append(TargetedSweep(
            config=SweepConfig(
                ops=tuple(group["ops"]),
                shapes=tuple(group["shapes"]),
                vector_lengths=tuple(group["vector_lengths"]),
                sparsities=tuple(group["sparsities"]),
                backends=tuple(group["backends"]),
                devices=tuple(group["devices"]),
                min_bits=tuple((l, r) for l, r, _, _ in bits),
                max_bits=tuple((ml, mr) for _, _, ml, mr in bits),
                objective=kind,
                latency_budget_s=budget_s,
            ),
            keys=frozenset(group["keys"]),
        ))
    return targets, skipped
