"""``python -m repro.autotune`` — alias for the ``repro-autotune`` CLI."""

from repro.autotune.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
