"""Shipped autotune artifacts: plan cache + provenance manifest.

An artifact is two sibling JSON files:

- ``<name>.json`` — a schema-v2 :class:`~repro.serve.cache.PlanCache`
  payload, loadable by any planner (the engine's ``warm_start=`` path,
  ``PlanCache.load``, another process sharing the file), and
- ``<name>.manifest.json`` — provenance: the sweep config that
  produced the plans, ``git describe`` of the producing tree, and
  **fingerprints** of every backend and device the sweep saw.

Fingerprints are short hashes of the machine-readable capability
descriptions (a backend's :class:`~repro.runtime.BackendCapabilities`
row + priority, a device's Table II spec). Loading an artifact against
a registry whose fingerprints no longer match — a backend re-tuned, a
device profile edited, a backend gone — is *drift*: the plans still
load (a stale plan merely re-loses the planner search when its key no
longer matches), but :func:`check_drift` names every mismatch so
``repro-autotune verify`` can fail CI before a stale artifact ships.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.errors import PlanCacheError
from repro.gpu.device import list_devices
from repro.ioutil import atomic_write_text
from repro.runtime import REGISTRY, BackendRegistry, Device
from repro.serve.cache import PlanCache
from repro.version import __version__

__all__ = [
    "ArtifactManifest",
    "backend_fingerprint",
    "check_drift",
    "device_fingerprint",
    "load_artifact",
    "manifest_path",
    "warm_start_cache",
    "write_artifact",
]

#: manifest schema version (independent of the plan-cache schema)
MANIFEST_SCHEMA = 1


def _digest(payload: object) -> str:
    canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canon.encode()).hexdigest()[:12]


def backend_fingerprint(backend) -> str:
    """Hash of one backend's machine-readable capability row."""
    caps = backend.capabilities()
    return _digest({
        "name": backend.name,
        "priority": backend.priority,
        "capabilities": dataclasses.asdict(caps),
    })


def device_fingerprint(device: "Device | str") -> str:
    """Hash of one device's Table II capability model."""
    # asdict recurses into the peaks dict's PeakRate values
    return _digest(dataclasses.asdict(Device.resolve(device).spec))


def registry_fingerprints(
    registry: BackendRegistry | None = None,
    names: Sequence[str] | None = None,
) -> dict:
    """``{backend name: fingerprint}`` for a registry (or a subset)."""
    reg = registry if registry is not None else REGISTRY
    chosen = list(names) if names is not None else reg.names()
    return {name: backend_fingerprint(reg.get(name)) for name in sorted(chosen)}


def device_fingerprints(names: Sequence[str] | None = None) -> dict:
    """``{device name: fingerprint}`` for the modelled device table."""
    chosen = list(names) if names is not None else list(list_devices())
    return {name: device_fingerprint(name) for name in sorted(chosen)}


def git_describe(cwd: "str | Path | None" = None) -> str:
    """``git describe --always --dirty`` of the producing tree, or
    ``"unknown"`` outside a repository (shipped artifacts built from a
    tarball still get a manifest, just without a revision)."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True, text=True, timeout=10,
            cwd=str(cwd) if cwd is not None else None,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    return out.stdout.strip() if out.returncode == 0 and out.stdout.strip() else "unknown"


@dataclass
class ArtifactManifest:
    """Provenance of one shipped plan cache."""

    sweep: dict = field(default_factory=dict)
    git: str = "unknown"
    created_by: str = f"repro-autotune {__version__}"
    backends: dict = field(default_factory=dict)
    devices: dict = field(default_factory=dict)
    plans: int = 0
    measurements: list = field(default_factory=list)
    schema: int = MANIFEST_SCHEMA

    # -- construction ----------------------------------------------------
    @classmethod
    def for_report(cls, report, registry=None) -> "ArtifactManifest":
        """Manifest for a :class:`~repro.autotune.runner.SweepReport`."""
        # fingerprint exactly what was measured: an empty sweep claims
        # provenance over nothing, not over the whole registry
        swept_backends = sorted({m.point.backend for m in report.measurements})
        swept_devices = sorted({m.point.device for m in report.measurements})
        return cls(
            sweep={**report.config.to_dict(), **report.summary()},
            git=git_describe(),
            backends=registry_fingerprints(registry, swept_backends),
            devices=device_fingerprints(swept_devices),
            plans=len(report.cache),
            measurements=[m.to_dict() for m in report.measurements],
        )

    @classmethod
    def for_cache(cls, cache: PlanCache, registry=None) -> "ArtifactManifest":
        """Manifest for an exported, already-populated plan cache."""
        backends, devices = set(), set()
        for key in cache.keys():
            plan = cache.peek(key)
            if plan is not None:
                backends.update(plan.backend.split("+"))
                devices.update(plan.device.split("+"))
        reg = registry if registry is not None else REGISTRY
        known = {b for b in backends if b in reg}
        return cls(
            sweep={"source": "export"},
            git=git_describe(),
            backends=registry_fingerprints(registry, sorted(known)),
            devices=device_fingerprints(
                sorted(d for d in devices if d in list_devices())
            ),
            plans=len(cache),
        )

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "sweep": self.sweep,
            "git": self.git,
            "created_by": self.created_by,
            "backends": dict(self.backends),
            "devices": dict(self.devices),
            "plans": self.plans,
            "measurements": list(self.measurements),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ArtifactManifest":
        schema = d.get("schema")
        if schema != MANIFEST_SCHEMA:
            raise PlanCacheError(
                f"unsupported artifact-manifest schema {schema!r} "
                f"(supported: {MANIFEST_SCHEMA})"
            )
        return cls(
            sweep=dict(d.get("sweep", {})),
            git=d.get("git", "unknown"),
            created_by=d.get("created_by", "unknown"),
            backends=dict(d.get("backends", {})),
            devices=dict(d.get("devices", {})),
            plans=int(d.get("plans", 0)),
            measurements=list(d.get("measurements", [])),
            schema=schema,
        )

    def save(self, path: "str | Path") -> Path:
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True)
        )

    @classmethod
    def load(cls, path: "str | Path") -> "ArtifactManifest":
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise PlanCacheError(
                f"cannot read artifact manifest {path}: {exc}"
            ) from exc
        if not isinstance(payload, dict):
            raise PlanCacheError(
                f"artifact manifest {path} holds "
                f"{type(payload).__name__}, not an object"
            )
        return cls.from_dict(payload)


def manifest_path(plans_path: "str | Path") -> Path:
    """``plans.json`` -> ``plans.manifest.json`` (the sibling rule)."""
    plans_path = Path(plans_path)
    return plans_path.with_name(f"{plans_path.stem}.manifest.json")


def write_artifact(
    path: "str | Path",
    cache: PlanCache,
    manifest: ArtifactManifest | None = None,
    registry=None,
) -> tuple[Path, Path]:
    """Write the plan-cache JSON + manifest; returns both paths."""
    path = Path(path)
    if manifest is None:
        manifest = ArtifactManifest.for_cache(cache, registry)
    manifest.plans = len(cache)
    plans_path = cache.save(path)
    return plans_path, manifest.save(manifest_path(path))


def load_artifact(
    path: "str | Path",
) -> tuple[PlanCache, ArtifactManifest | None]:
    """Load an artifact into a fresh cache; manifest ``None`` if absent."""
    path = Path(path)
    cache = PlanCache()
    cache.load(path)
    mpath = manifest_path(path)
    manifest = ArtifactManifest.load(mpath) if mpath.exists() else None
    return cache, manifest


def check_drift(
    manifest: ArtifactManifest,
    registry: BackendRegistry | None = None,
) -> list[str]:
    """Mismatches between a manifest and the live registry/device table.

    Returns one human-readable line per drift; an empty list means the
    artifact was produced against exactly this execution environment.
    """
    reg = registry if registry is not None else REGISTRY
    drift: list[str] = []
    for name, fingerprint in sorted(manifest.backends.items()):
        if name not in reg:
            drift.append(f"backend {name!r} is no longer registered")
        elif backend_fingerprint(reg.get(name)) != fingerprint:
            drift.append(
                f"backend {name!r} changed since the sweep "
                f"(capabilities/priority fingerprint mismatch)"
            )
    for name, fingerprint in sorted(manifest.devices.items()):
        if name not in list_devices():
            drift.append(f"device {name!r} is no longer modelled")
        elif device_fingerprint(name) != fingerprint:
            drift.append(
                f"device {name!r} profile changed since the sweep "
                f"(Table II fingerprint mismatch)"
            )
    return drift


def warm_start_cache(
    cache: PlanCache,
    artifacts: "str | Path | Sequence[str | Path]",
    registry: BackendRegistry | None = None,
    check: bool = True,
) -> int:
    """Merge shipped artifacts into a live cache; returns plans loaded.

    Manifest drift (when ``check``) and unreadable artifacts surface as
    ``RuntimeWarning``s — a bad shipped cache must degrade a server to
    a cold start, not keep it from booting.
    """
    if isinstance(artifacts, (str, Path)):
        artifacts = [artifacts]
    loaded = 0
    for path in artifacts:
        path = Path(path)
        try:
            shipped, manifest = load_artifact(path)
        except PlanCacheError as exc:
            warnings.warn(
                f"skipping warm-start artifact: {exc}",
                RuntimeWarning, stacklevel=2,
            )
            continue
        if check and manifest is not None:
            for line in check_drift(manifest, registry):
                warnings.warn(
                    f"warm-start artifact {path.name} drifted: {line}",
                    RuntimeWarning, stacklevel=2,
                )
        for key in shipped.keys():
            plan = shipped.peek(key)
            if plan is not None and cache.peek(key) is None:
                cache.put(key, plan)
                loaded += 1
    return loaded
