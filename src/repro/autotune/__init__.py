"""repro.autotune — offline autotuning sweeps that ship warm plan caches.

Magicube's reported wins come from per-(topology, precision, device)
tuning — Table IV picks different L/R pairs on different GPUs — but a
cold serving process pays the planner search for every new request
class. This subsystem moves that search **offline** and makes it
reproducible:

- :mod:`~repro.autotune.space` enumerates the sweep grid from the live
  :class:`~repro.runtime.BackendRegistry` (plannable backends x
  modelled devices x a topology/precision grid), deterministically.
- :mod:`~repro.autotune.runner` measures each point (warmup + repeats,
  median cold-search latency) under a trial/time :class:`SweepBudget`,
  with cost-model-guided pruning of backends that keep losing.
- :mod:`~repro.autotune.artifact` ships the result: a schema-v2
  :class:`~repro.serve.cache.PlanCache` JSON plus a provenance
  manifest (sweep config, ``git describe``, backend/device capability
  fingerprints) with drift detection against the registry it is later
  loaded into.

Serving picks the artifact up through ``Engine(warm_start=...)`` /
``ExecutionPlanner(warm_start=...)``; ``repro-autotune`` (also
``python -m repro.autotune``) drives sweeps from the command line, and
``python -m repro.bench autotune`` reports the cold-vs-warm win.

The loop also runs the *other* way — serve feeding autotune:

- :mod:`~repro.autotune.policy` decides, from a live engine's
  :class:`~repro.serve.telemetry.TelemetrySnapshot`, which plan keys
  are worth re-sweeping (hot traffic, cold-search misses, latency
  regressions, fingerprint drift) and synthesizes *targeted* sweep
  configs covering exactly those keys.
- :mod:`~repro.autotune.scheduler` runs that loop in the background of
  a serving engine (``repro.open_engine(retune=RetunePolicy(...))``),
  promotes the re-tuned plans into the live plan cache atomically, and
  ships each promotion as an artifact whose manifest names the
  triggering snapshot. ``repro autotune watch`` drives the same cycle
  from a snapshot file exported by another process, and ``repro bench
  retune`` demonstrates the loop closing on a shifting workload.

Quick start::

    from repro.autotune import SweepConfig, run_sweep, write_artifact

    report = run_sweep(SweepConfig(devices=("A100",)))
    write_artifact("plans.json", report.cache,
                   ArtifactManifest.for_report(report))

    from repro.serve import Engine
    engine = Engine(device="A100", warm_start="plans.json")
"""

from repro.autotune.artifact import (
    ArtifactManifest,
    backend_fingerprint,
    check_drift,
    device_fingerprint,
    load_artifact,
    manifest_path,
    warm_start_cache,
    write_artifact,
)
from repro.autotune.policy import (
    RetunePolicy,
    RetuneTrigger,
    TargetedSweep,
    evaluate_snapshot,
    synthesize,
)
from repro.autotune.runner import Measurement, SweepBudget, SweepReport, run_sweep
from repro.autotune.scheduler import (
    RetuneCycle,
    RetuneScheduler,
    RetuneStatus,
    retune_from_snapshot,
)
from repro.autotune.space import SweepConfig, SweepPoint, enumerate_space

__all__ = [
    "ArtifactManifest",
    "Measurement",
    "RetuneCycle",
    "RetunePolicy",
    "RetuneScheduler",
    "RetuneStatus",
    "RetuneTrigger",
    "SweepBudget",
    "SweepConfig",
    "SweepPoint",
    "SweepReport",
    "TargetedSweep",
    "backend_fingerprint",
    "check_drift",
    "device_fingerprint",
    "enumerate_space",
    "evaluate_snapshot",
    "load_artifact",
    "manifest_path",
    "retune_from_snapshot",
    "run_sweep",
    "synthesize",
    "warm_start_cache",
    "write_artifact",
]
