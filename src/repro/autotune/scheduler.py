"""The telemetry-driven re-tuning scheduler — serve → autotune, closed.

A :class:`RetuneScheduler` watches one live
:class:`~repro.serve.engine.Engine` and, off the hot path (a background
thread woken every ``policy.interval_s``), runs the loop one cycle at a
time:

1. **observe** — export the engine's telemetry as a deterministic
   :class:`~repro.serve.telemetry.TelemetrySnapshot` and drift-check
   the engine's warm-start manifests against the live registry;
2. **decide** — :func:`~repro.autotune.policy.evaluate_snapshot` names
   the plan keys worth re-sweeping (hot, cold-missed, regressed,
   drifted, or carrying traffic while a latency SLO burns — see
   ``RetunePolicy.slos``), under the policy's cooldown and
   ``max_keys`` cap;
3. **re-sweep** — :func:`~repro.autotune.policy.synthesize` builds
   targeted :class:`~repro.autotune.space.SweepConfig`\\ s and
   :func:`~repro.autotune.runner.run_sweep` measures exactly the
   triggered keys, budget-capped by the policy's
   :class:`~repro.autotune.runner.SweepBudget`;
4. **promote** — the fresh plans land in the engine's live
   :class:`~repro.serve.cache.PlanCache` through the lock-atomic
   :meth:`~repro.serve.cache.PlanCache.promote` (an in-process
   hot-swap: concurrent ``run()`` calls see the old or the new plan
   set, never a torn mix), and — when ``policy.artifact_dir`` is set —
   ship as a ``retune-NNNN`` artifact whose manifest names the
   triggering telemetry snapshot.

Attach one with ``repro.open_engine(retune=RetunePolicy(...))`` and
poll it with ``client.retune_status()``; ``repro autotune watch``
drives the same decide/re-sweep/ship stages from a snapshot file
exported by another process.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from repro.autotune.artifact import (
    ArtifactManifest,
    check_drift,
    device_fingerprints,
    git_describe,
    manifest_path,
    registry_fingerprints,
    write_artifact,
)
from repro.autotune.policy import (
    RetunePolicy,
    RetuneTrigger,
    evaluate_snapshot,
    synthesize,
)
from repro.autotune.runner import run_sweep
from repro.errors import PlanCacheError, RetuneError
from repro.serve.cache import PlanCache

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve.engine import Engine
    from repro.serve.telemetry import TelemetrySnapshot

__all__ = ["RetuneCycle", "RetuneScheduler", "RetuneStatus", "retune_from_snapshot"]


@dataclass
class RetuneCycle:
    """What one scheduler wake-up observed, measured and promoted."""

    snapshot_fingerprint: str
    triggers: list[RetuneTrigger] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)
    drift: list[str] = field(default_factory=list)
    measured: int = 0
    promoted: int = 0  # plans installed into the live cache
    changed: int = 0  # of those, how many differed from the cached plan
    promoted_keys: list[str] = field(default_factory=list)
    artifact: Path | None = None
    error: str | None = None  # a cycle that raised still gets recorded
    elapsed_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "snapshot": self.snapshot_fingerprint,
            "triggers": [t.to_dict() for t in self.triggers],
            "skipped": [list(pair) for pair in self.skipped],
            "drift": list(self.drift),
            "measured": self.measured,
            "promoted": self.promoted,
            "changed": self.changed,
            "promoted_keys": list(self.promoted_keys),
            "artifact": str(self.artifact) if self.artifact is not None else None,
            "error": self.error,
            "elapsed_s": self.elapsed_s,
        }


@dataclass(frozen=True)
class RetuneStatus:
    """A point-in-time view of one scheduler (``client.retune_status()``)."""

    running: bool
    cycles: int
    triggers_total: int
    promoted_total: int
    baseline_keys: int
    artifacts: tuple[str, ...] = ()
    last_cycle: dict | None = None
    last_error: str | None = None

    def to_dict(self) -> dict:
        return {
            "running": self.running,
            "cycles": self.cycles,
            "triggers_total": self.triggers_total,
            "promoted_total": self.promoted_total,
            "baseline_keys": self.baseline_keys,
            "artifacts": list(self.artifacts),
            "last_cycle": self.last_cycle,
            "last_error": self.last_error,
        }


@dataclass
class _SweepOutcome:
    """What measuring a batch of targeted sweeps produced."""

    cache: PlanCache
    configs: list = field(default_factory=list)
    measurements: list = field(default_factory=list)
    backends: set = field(default_factory=set)
    devices: set = field(default_factory=set)
    measured: int = 0


def _measure_targets(targets, policy: RetunePolicy) -> _SweepOutcome:
    """Run every targeted sweep under the policy's budget/timing knobs."""
    outcome = _SweepOutcome(cache=PlanCache())
    for target in targets:
        report = run_sweep(
            target.config,
            budget=policy.budget,
            warmup=policy.warmup,
            repeats=policy.repeats,
            prune_ratio=None,  # targeted points are already chosen
            cache=outcome.cache,
            keys=target.keys,
        )
        outcome.configs.append(target.config.to_dict())
        outcome.measurements += [m.to_dict() for m in report.measurements]
        outcome.backends |= {m.point.backend for m in report.measurements}
        outcome.devices |= {m.point.device for m in report.measurements}
        outcome.measured += len(report.measurements)
    return outcome


def _manifest_for(
    outcome: _SweepOutcome, snapshot, cycle: RetuneCycle,
    source: str, registry, extra: dict | None = None,
) -> ArtifactManifest:
    """Provenance naming the triggering snapshot and its triggers."""
    return ArtifactManifest(
        sweep={
            "source": source,
            "configs": outcome.configs,
            "measured": outcome.measured,
            "retune": {
                **(extra or {}),
                "snapshot": snapshot.fingerprint,
                "triggers": [t.to_dict() for t in cycle.triggers],
                "drift": list(cycle.drift),
            },
        },
        git=git_describe(),
        backends=registry_fingerprints(registry, sorted(outcome.backends)),
        devices=device_fingerprints(sorted(outcome.devices)),
        plans=len(outcome.cache),
        measurements=outcome.measurements,
    )


class RetuneScheduler:
    """Watches one engine's telemetry and re-tunes its plan cache.

    Construction is passive; :meth:`start` spawns the daemon thread
    (``Engine(retune=...)`` does both). :meth:`run_once` is the whole
    loop body and is safe to call directly — tests and ``bench
    retune`` drive deterministic cycles that way, without waking the
    thread.
    """

    def __init__(
        self,
        engine: "Engine",
        policy: RetunePolicy | None = None,
        registry=None,
    ) -> None:
        self._engine = engine
        self.policy = policy if policy is not None else RetunePolicy()
        self._registry = registry
        #: the engine's obs metrics registry (distinct from `registry`,
        #: the runtime *backend* registry used for drift fingerprints)
        self._obs_metrics = getattr(engine, "metrics", None)
        #: rolling-window SLO evaluator (only when the policy declares
        #: objectives and the engine has a metrics registry to read)
        self._health_evaluator = None
        if self.policy.slos and self._obs_metrics is not None:
            from repro.obs.health import HealthEvaluator

            self._health_evaluator = HealthEvaluator(
                self.policy.slos, window_s=self.policy.slo_window_s
            )
        self._stop_event = threading.Event()
        self._thread: threading.Thread | None = None
        #: serializes cycles (timer thread vs. a direct run_once call)
        self._cycle_lock = threading.Lock()
        self._state_lock = threading.Lock()
        #: keys that did NOT pay a live cold search: the warm-started /
        #: pre-existing cache contents plus everything already promoted
        self._baseline_keys = frozenset(engine.planner.cache.keys())
        self._tuned_at: dict[str, float] = {}
        #: consecutive re-tunes of a key that left its plan unchanged —
        #: each doubles that key's effective cooldown (capped), so a
        #: permanently-regressed key whose re-sweep cannot change
        #: anything backs off instead of burning the budget forever
        self._unchanged_streak: dict[str, int] = {}
        self._cycles = 0
        self._triggers_total = 0
        self._promoted_total = 0
        self._artifacts: list[Path] = []
        self._last_cycle: RetuneCycle | None = None
        self._last_error: str | None = None

    # -- lifecycle -------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the background thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background cycle thread (idempotent)."""
        if self.running:
            return
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-retune", daemon=True
        )
        self._thread.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop the background thread; safe to call repeatedly."""
        self._stop_event.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout=timeout)
        self._thread = None

    def _loop(self) -> None:
        while not self._stop_event.wait(self.policy.interval_s):
            try:
                self.run_once()
            except Exception as exc:  # the loop must survive a bad cycle
                with self._state_lock:
                    self._last_error = f"{type(exc).__name__}: {exc}"

    # -- reporting -------------------------------------------------------
    def status(self) -> RetuneStatus:
        """A consistent point-in-time view of the scheduler's state."""
        with self._state_lock:
            return RetuneStatus(
                running=self.running,
                cycles=self._cycles,
                triggers_total=self._triggers_total,
                promoted_total=self._promoted_total,
                baseline_keys=len(self._baseline_keys),
                artifacts=tuple(str(p) for p in self._artifacts),
                last_cycle=(
                    self._last_cycle.to_dict()
                    if self._last_cycle is not None else None
                ),
                last_error=self._last_error,
            )

    # -- the loop body ---------------------------------------------------
    def run_once(self) -> RetuneCycle:
        """Run one observe → decide → re-sweep → promote cycle.

        Returns the :class:`RetuneCycle` record (also visible via
        :meth:`status` as ``last_cycle``). Cycles are serialized: a
        direct call while the timer thread is mid-cycle blocks until
        that cycle finishes.
        """
        with self._cycle_lock:
            started = time.perf_counter()
            snapshot = self._engine.telemetry.snapshot()
            drift = self._drift_lines()
            now = time.monotonic()
            exclude = set()
            for key, tuned in self._tuned_at.items():
                backoff = 1 << min(self._unchanged_streak.get(key, 0), 6)
                if now - tuned < self.policy.cooldown_s * backoff:
                    exclude.add(key)
            health = None
            if self._health_evaluator is not None:
                # publishes repro_slo_* into the engine's registry too
                health = self._health_evaluator.evaluate(
                    self._obs_metrics, now=now
                )
            triggers = evaluate_snapshot(
                snapshot,
                self.policy,
                baseline_keys=self._baseline_keys,
                drift=drift,
                exclude=exclude,
                health=health,
            )
            cycle = RetuneCycle(
                snapshot_fingerprint=snapshot.fingerprint,
                triggers=list(triggers),
                drift=list(drift),
            )
            try:
                if triggers:
                    self._retune(cycle, snapshot, triggers)
            except Exception as exc:
                # a failing sweep must not hot-retry every interval:
                # its triggers cool down exactly like handled ones, and
                # the cycle is still recorded (re-raised for the caller
                # / the loop's last_error)
                cycle.error = f"{type(exc).__name__}: {exc}"
                failed = time.monotonic()
                for trigger in triggers:
                    self._tuned_at[trigger.plan_key] = failed
                raise
            finally:
                cycle.elapsed_s = time.perf_counter() - started
                with self._state_lock:
                    self._cycles += 1
                    self._triggers_total += len(cycle.triggers)
                    self._promoted_total += cycle.promoted
                    if cycle.artifact is not None:
                        self._artifacts.append(cycle.artifact)
                    self._last_cycle = cycle
                if self._obs_metrics is not None:
                    self._publish_cycle(cycle, cooldown_keys=len(exclude))
            return cycle

    def _publish_cycle(self, cycle: RetuneCycle, cooldown_keys: int) -> None:
        """Mirror one cycle's outcome into the obs metrics registry."""
        from repro.obs import names

        m = self._obs_metrics
        m.counter(names.RETUNE_CYCLES).inc()
        if cycle.triggers:
            m.counter(names.RETUNE_TRIGGERS).inc(len(cycle.triggers))
        if cycle.promoted:
            m.counter(names.RETUNE_PROMOTIONS).inc(cycle.promoted)
        m.gauge(names.RETUNE_COOLDOWN).set(cooldown_keys)

    def _retune(
        self,
        cycle: RetuneCycle,
        snapshot: "TelemetrySnapshot",
        triggers: Sequence[RetuneTrigger],
    ) -> None:
        """Measure the triggered keys and promote the fresh plans."""
        targets, skipped = synthesize(triggers)
        cycle.skipped = [(t.plan_key, why) for t, why in skipped]
        tuned = time.monotonic()
        # unsweepable keys get the cooldown too — they must not occupy
        # trigger slots (max_keys) on every single cycle
        for trigger, _why in skipped:
            self._tuned_at[trigger.plan_key] = tuned
        if not targets:
            return
        outcome = _measure_targets(targets, self.policy)
        cycle.measured = outcome.measured
        plans = {key: outcome.cache.peek(key) for key in outcome.cache.keys()}
        if not plans:
            raise RetuneError(
                f"targeted sweep measured no plans for "
                f"{sorted(k for t in targets for k in t.keys)}"
            )
        live = self._engine.planner.cache
        before = {key: live.peek(key) for key in plans}
        cycle.changed = live.promote(plans)
        cycle.promoted = len(plans)
        cycle.promoted_keys = sorted(plans)
        changed_keys = []
        for key, plan in plans.items():
            self._tuned_at[key] = tuned
            prev = before[key]
            if prev is not None and prev.to_dict() == plan.to_dict():
                # a sterile re-tune: same plan came back — back off
                self._unchanged_streak[key] = (
                    self._unchanged_streak.get(key, 0) + 1
                )
            else:
                self._unchanged_streak.pop(key, None)
                changed_keys.append(key)
        # observations recorded under a *replaced* plan describe the old
        # decision; regression checks restart from post-promotion traffic
        self._engine.telemetry.reset_plans(changed_keys)
        with self._state_lock:
            # promoted keys join the baseline: their future traffic is
            # warm, not a cold miss
            self._baseline_keys = self._baseline_keys | frozenset(plans)
        if self.policy.artifact_dir is not None:
            cycle.artifact = self._ship(outcome, snapshot, cycle)

    def _ship(self, outcome: _SweepOutcome, snapshot, cycle: RetuneCycle) -> Path:
        """Write the promotion as a provenance-carrying artifact pair."""
        with self._state_lock:
            seq = len(self._artifacts) + 1
        out = Path(self.policy.artifact_dir) / f"retune-{seq:04d}" / "plans.json"
        manifest = _manifest_for(
            outcome, snapshot, cycle, "retune", self._registry,
            extra={"cycle": seq},
        )
        plans_path, _ = write_artifact(out, outcome.cache, manifest)
        return plans_path

    def _drift_lines(self) -> list[str]:
        """Drift of the engine's warm-start manifests vs. the registry."""
        lines: list[str] = []
        for path in getattr(self._engine, "warm_start_paths", ()):
            mpath = manifest_path(path)
            if not mpath.exists():
                continue
            try:
                manifest = ArtifactManifest.load(mpath)
            except PlanCacheError:
                continue  # unreadable manifest already warned at load
            lines += check_drift(manifest, self._registry)
        return lines


def retune_from_snapshot(
    snapshot: "TelemetrySnapshot",
    policy: RetunePolicy,
    *,
    baseline_keys: frozenset[str] = frozenset(),
    drift: Sequence[str] = (),
    exclude: "frozenset[str] | set[str]" = frozenset(),
    out: "str | Path | None" = None,
    registry=None,
) -> RetuneCycle:
    """One offline decide → re-sweep → ship cycle from a snapshot.

    The cross-process form of :meth:`RetuneScheduler.run_once` —
    ``repro autotune watch`` feeds it snapshots another serving
    process exported with ``client.telemetry.snapshot().save(path)``.
    There is no live cache to hot-swap, so promotion means shipping
    the re-tuned artifact to ``out`` (when given); warm-start the next
    engine from it to close the loop across processes. ``exclude``
    carries the caller's cooldown state (keys re-tuned recently) —
    the stateless equivalent of the scheduler's per-key rate limit.
    """
    cycle = RetuneCycle(snapshot_fingerprint=snapshot.fingerprint)
    started = time.perf_counter()
    triggers = evaluate_snapshot(
        snapshot, policy, baseline_keys=baseline_keys, drift=drift,
        exclude=exclude,
    )
    cycle.triggers = list(triggers)
    cycle.drift = list(drift)
    if triggers:
        targets, skipped = synthesize(triggers)
        cycle.skipped = [(t.plan_key, why) for t, why in skipped]
        outcome = _measure_targets(targets, policy)
        cycle.measured = outcome.measured
        cycle.promoted = len(outcome.cache)
        cycle.promoted_keys = outcome.cache.keys()
        if out is not None and len(outcome.cache):
            manifest = _manifest_for(
                outcome, snapshot, cycle, "retune-watch", registry
            )
            plans_path, _ = write_artifact(Path(out), outcome.cache, manifest)
            cycle.artifact = plans_path
    cycle.elapsed_s = time.perf_counter() - started
    return cycle
