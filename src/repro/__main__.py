"""``python -m repro`` — alias of the ``repro`` console entry point."""

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
