"""Common base for sparse-matrix formats."""

from __future__ import annotations

import abc

import numpy as np


class SparseFormat(abc.ABC):
    """Minimal interface all sparse formats share."""

    #: matrix dimensions
    shape: tuple[int, int]

    @abc.abstractmethod
    def to_dense(self) -> np.ndarray:
        """Materialize the full dense matrix."""

    @property
    @abc.abstractmethod
    def nnz(self) -> int:
        """Number of stored nonzero *scalars* (excluding padding)."""

    @property
    def density(self) -> float:
        """nnz / (rows x cols)."""
        m, k = self.shape
        return self.nnz / (m * k) if m * k else 0.0

    @property
    def sparsity(self) -> float:
        """1 - density, the paper's convention (0.9 = 90% zeros)."""
        return 1.0 - self.density

    @abc.abstractmethod
    def storage_bytes(self, value_bits: int) -> int:
        """Bytes needed to store the format with ``value_bits`` values.

        Index/pointer arrays are counted at their natural width; value
        payloads at ``value_bits`` per element *including padding* — the
        traffic the kernels actually move.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        m, k = self.shape
        return (
            f"{type(self).__name__}({m}x{k}, nnz={self.nnz}, "
            f"sparsity={self.sparsity:.3f})"
        )
