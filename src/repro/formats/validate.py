"""Structural validation helpers for sparse formats.

The format constructors already validate on construction; these helpers
re-check invariants after mutation-free round trips and give tests a
single entry point per format.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.blocked_ell import PAD_BLOCK, BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.srbcrs import PAD_INDEX, SRBCRSMatrix


def validate_csr(m: CSRMatrix) -> None:
    """Re-run CSR invariants (sorted-within-row is *not* required)."""
    CSRMatrix(shape=m.shape, row_ptrs=m.row_ptrs, col_indices=m.col_indices, values=m.values)


def validate_bcrs(m: BCRSMatrix) -> None:
    """Re-run BCRS invariants plus per-strip column uniqueness."""
    BCRSMatrix(
        shape=m.shape,
        vector_length=m.vector_length,
        row_ptrs=m.row_ptrs,
        col_indices=m.col_indices,
        values=m.values,
    )
    for r in range(m.num_strips):
        cols, _ = m.strip_vectors(r)
        if np.unique(cols).size != cols.size:
            raise FormatError(f"duplicate column index in strip {r}")


def validate_srbcrs(m: SRBCRSMatrix) -> None:
    """Re-run SR-BCRS invariants plus padding-slot cleanliness.

    Padded slots must carry the sentinel index *and* zero values —
    the kernels accumulate over whole stride groups and rely on padding
    contributing nothing.
    """
    SRBCRSMatrix(
        shape=m.shape,
        vector_length=m.vector_length,
        stride=m.stride,
        row_starts=m.row_starts,
        row_ends=m.row_ends,
        col_indices=m.col_indices,
        values=m.values,
    )
    v = m.vector_length
    for r in range(m.num_strips):
        n_valid = int(m.row_ends[r] - m.row_starts[r])
        for g in range(m.strip_num_groups(r)):
            cols, tile = m.group(r, g)
            local_valid = min(max(n_valid - g * m.stride, 0), m.stride)
            if np.any(cols[:local_valid] == PAD_INDEX):
                raise FormatError(f"sentinel inside valid region of strip {r}")
            if np.any(cols[local_valid:] != PAD_INDEX):
                raise FormatError(f"missing sentinel in padding of strip {r}")
            if np.any(tile[:, local_valid:] != 0):
                raise FormatError(f"nonzero values in padding of strip {r}")
            assert tile.shape == (v, m.stride)


def validate_blocked_ell(m: BlockedEllMatrix) -> None:
    """Re-run Blocked-ELL invariants plus zero padding blocks."""
    BlockedEllMatrix(
        shape=m.shape, block_size=m.block_size, block_cols=m.block_cols, blocks=m.blocks
    )
    pad = m.block_cols == PAD_BLOCK
    if pad.any() and np.any(m.blocks[pad] != 0):
        raise FormatError("padding blocks must be zero")
