"""Sparse matrix formats.

The deep-learning-friendly structured sparsity the paper targets is
*1-D block* sparsity: the M x K sparse matrix is split into M/V row
strips, and within a strip each nonzero is a dense V x 1 column vector
(V in {2, 4, 8}).

- :mod:`repro.formats.csr` — scalar CSR (cuSPARSE fine-grained baseline).
- :mod:`repro.formats.bcrs` — BCRS with 1-D blocks, i.e. the column-vector
  sparse encoding used by vectorSparse (Fig. 2a/b).
- :mod:`repro.formats.srbcrs` — **SR-BCRS**, the paper's strided
  row-major BCRS (Fig. 2c): vectors stored stride-by-stride row-major so
  a warp's contiguous loads directly satisfy the MMA LHS layout.
- :mod:`repro.formats.blocked_ell` — Blocked-ELL (cuSPARSE block SpMM).
- :mod:`repro.formats.shuffle` — block-wise column-index shuffling for
  the int4 online transpose (Fig. 7).
- :mod:`repro.formats.convert` — conversions between all of the above.
- :mod:`repro.formats.validate` — structural invariant checkers.
"""

from repro.formats.csr import CSRMatrix
from repro.formats.bcrs import BCRSMatrix
from repro.formats.srbcrs import SRBCRSMatrix
from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.shuffle import (
    SHUFFLE_ORDER,
    shuffle_block_indices,
    unshuffle_block_indices,
    inverse_order,
)
from repro.formats.convert import (
    dense_to_bcrs,
    dense_to_srbcrs,
    dense_to_csr,
    dense_to_blocked_ell,
    bcrs_to_srbcrs,
    srbcrs_to_bcrs,
)

__all__ = [
    "CSRMatrix",
    "BCRSMatrix",
    "SRBCRSMatrix",
    "BlockedEllMatrix",
    "SHUFFLE_ORDER",
    "shuffle_block_indices",
    "unshuffle_block_indices",
    "inverse_order",
    "dense_to_bcrs",
    "dense_to_srbcrs",
    "dense_to_csr",
    "dense_to_blocked_ell",
    "bcrs_to_srbcrs",
    "srbcrs_to_bcrs",
]
