"""Block-wise column-index shuffling for the int4 online transpose.

Fig. 7 of the paper: to transpose int4 data with only int32-granularity
bitwise ops, the SR-BCRS column indices are pre-shuffled in blocks of 8
from ``[0,1,2,3,4,5,6,7]`` to ``[0,2,4,6,1,3,5,7]`` (even positions
first). After the int8-granularity register transpose and the
nibble split/mask/shift/OR sequence, the data lanes come out in the
*original* order — the shuffle and the nibble interleave cancel exactly.

Pre-shuffling is free (done once at format-construction time); it
replaces per-element int4 shuffles in the kernel inner loop with 8
bitwise ops per 16 values.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError

#: the Fig. 7 permutation: even source positions first, then odd
SHUFFLE_ORDER = np.array([0, 2, 4, 6, 1, 3, 5, 7], dtype=np.int64)


def inverse_order(order: np.ndarray = SHUFFLE_ORDER) -> np.ndarray:
    """Permutation that undoes ``order``."""
    inv = np.empty_like(order)
    inv[order] = np.arange(order.size)
    return inv


def shuffle_block_indices(indices: np.ndarray, block: int = 8) -> np.ndarray:
    """Apply the block-wise shuffle to a flat column-index array.

    The array length must be a multiple of ``block`` (SR-BCRS guarantees
    this via its stride padding: int4 stride 32 = 4 blocks of 8).
    """
    idx = np.asarray(indices)
    if idx.size % block != 0:
        raise FormatError(f"index count {idx.size} not a multiple of block {block}")
    if block != SHUFFLE_ORDER.size:
        raise FormatError(f"shuffle is defined for blocks of 8, got {block}")
    return np.ascontiguousarray(idx.reshape(-1, block)[:, SHUFFLE_ORDER].reshape(idx.shape))


def unshuffle_block_indices(indices: np.ndarray, block: int = 8) -> np.ndarray:
    """Invert :func:`shuffle_block_indices`."""
    idx = np.asarray(indices)
    if idx.size % block != 0:
        raise FormatError(f"index count {idx.size} not a multiple of block {block}")
    inv = inverse_order()
    return np.ascontiguousarray(idx.reshape(-1, block)[:, inv].reshape(idx.shape))
