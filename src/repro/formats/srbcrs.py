"""SR-BCRS — Strided Row-major BCRS (the paper's format, Fig. 2c).

The key deficiency of BCRS for Tensor cores: vectors are stored
vector-by-vector (column-major within a strip), but the MMA LHS fragment
wants each thread to read *consecutive elements of a row*. SR-BCRS fixes
the storage order: vectors of a strip are grouped into *strides* of
``stride`` vectors (stride = the MMA reduction dim k, e.g. 16 for int8),
and each group's ``V x stride`` sub-matrix is stored **row-major**. A
warp streaming the group front-to-back lands every element exactly where
the m8n8k16 fragment layout needs it — zero marshalling.

Padding: a strip whose vector count is not a multiple of the stride pads
the last group with zero vectors, and the column indices with the
sentinel :data:`PAD_INDEX`. To address strips independently despite the
padding, the format keeps **2M row pointers** (one first-vector and one
last-vector pointer per strip) instead of CSR's M+1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat
from repro.gpu.warp import ceil_div

#: column-index sentinel marking a padded (invalid) vector slot — the
#: '*' entries of Fig. 2c
PAD_INDEX = -1


@dataclass
class SRBCRSMatrix(SparseFormat):
    """SR-BCRS sparse matrix.

    Attributes
    ----------
    vector_length:
        V, the 1-D block height (<= 8 = the MMA m dim).
    stride:
        Vectors per storage group; equals the MMA reduction dimension
        (16 for int8 operands, 32 for int4).
    row_starts / row_ends:
        Per-strip first-vector offset and one-past-last *valid* vector
        offset, in (padded) vector units — the paper's 2M pointers.
        ``row_starts`` is always stride-aligned.
    col_indices:
        Padded column indices, length = total padded vectors;
        :data:`PAD_INDEX` in padding slots.
    values:
        Flat value array of length ``padded_vectors * V`` laid out
        group-row-major: group g of a strip occupies
        ``[g0 * V, (g0 + stride) * V)`` (``g0`` = group start offset)
        reshaped as ``(V, stride)`` row-major. Padding slots hold zeros.
    """

    shape: tuple[int, int]
    vector_length: int
    stride: int
    row_starts: np.ndarray
    row_ends: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_starts = np.ascontiguousarray(self.row_starts, dtype=np.int64)
        self.row_ends = np.ascontiguousarray(self.row_ends, dtype=np.int64)
        self.col_indices = np.ascontiguousarray(self.col_indices, dtype=np.int32)
        self.values = np.ascontiguousarray(self.values)
        m, k = self.shape
        v, s = self.vector_length, self.stride
        if v < 1 or v > 8:
            raise FormatError(f"vector length must be in [1, 8], got {v}")
        if m % v != 0:
            raise FormatError(f"rows {m} must be a multiple of V={v}")
        if s < 1:
            raise FormatError(f"stride must be positive, got {s}")
        strips = m // v
        if self.row_starts.shape != (strips,) or self.row_ends.shape != (strips,):
            raise FormatError(f"need {strips} row start/end pointers")
        if np.any(self.row_starts % s != 0):
            raise FormatError("row_starts must be stride-aligned")
        if np.any(self.row_ends < self.row_starts):
            raise FormatError("row_ends must be >= row_starts")
        padded = self.col_indices.size
        if self.values.shape != (padded * v,):
            raise FormatError(
                f"values must be flat with {padded * v} elements, got {self.values.shape}"
            )
        if padded % s != 0:
            raise FormatError("total padded vectors must be a multiple of the stride")

    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls, dense: np.ndarray, vector_length: int, stride: int
    ) -> "SRBCRSMatrix":
        """Compress a dense matrix with V x 1 structured sparsity."""
        dense = np.asarray(dense)
        m, k = dense.shape
        v = vector_length
        if m % v != 0:
            raise FormatError(f"rows {m} not a multiple of V={v}")
        strips = m // v
        strip_view = dense.reshape(strips, v, k)
        keep = strip_view.any(axis=1)  # (strips, k)
        counts = keep.sum(axis=1).astype(np.int64)
        padded_counts = np.array(
            [ceil_div(int(c), stride) * stride if c else 0 for c in counts],
            dtype=np.int64,
        )
        row_starts = np.zeros(strips, dtype=np.int64)
        np.cumsum(padded_counts[:-1], out=row_starts[1:])
        row_ends = row_starts + counts
        total = int(padded_counts.sum())

        col_indices = np.full(total, PAD_INDEX, dtype=np.int32)
        values = np.zeros(total * v, dtype=dense.dtype)
        for r in range(strips):
            cols = np.nonzero(keep[r])[0]
            n = cols.size
            if n == 0:
                continue
            start = int(row_starts[r])
            col_indices[start : start + n] = cols
            vecs = strip_view[r][:, cols]  # (v, n) — dense vectors of strip
            # stride-group row-major placement
            for g0 in range(0, int(padded_counts[r]), stride):
                block = np.zeros((v, stride), dtype=dense.dtype)
                take = min(stride, n - g0)
                if take > 0:
                    block[:, :take] = vecs[:, g0 : g0 + take]
                flat0 = (start + g0) * v
                values[flat0 : flat0 + v * stride] = block.reshape(-1)
        return cls(
            shape=dense.shape,
            vector_length=v,
            stride=stride,
            row_starts=row_starts,
            row_ends=row_ends,
            col_indices=col_indices,
            values=values,
        )

    # ------------------------------------------------------------------
    @property
    def num_strips(self) -> int:
        return self.shape[0] // self.vector_length

    @property
    def num_vectors(self) -> int:
        """Valid (unpadded) vector count."""
        return int((self.row_ends - self.row_starts).sum())

    @property
    def num_padded_vectors(self) -> int:
        return int(self.col_indices.size)

    @property
    def nnz(self) -> int:
        return self.num_vectors * self.vector_length

    @property
    def padding_ratio(self) -> float:
        """Padded / valid vectors — the storage overhead of the format."""
        nv = self.num_vectors
        return self.num_padded_vectors / nv if nv else 1.0

    def strip_num_groups(self, strip: int) -> int:
        """Stride groups (= SpMM accumulation steps) of one strip."""
        n = int(self.row_ends[strip] - self.row_starts[strip])
        return ceil_div(n, self.stride) if n else 0

    def group(self, strip: int, g: int) -> tuple[np.ndarray, np.ndarray]:
        """One stride group: (col_indices[stride], lhs_tile[V, stride]).

        The returned tile is exactly the MMA LHS operand (row-major);
        padded slots carry index -1 and zero values.
        """
        start = int(self.row_starts[strip]) + g * self.stride
        if g < 0 or g >= self.strip_num_groups(strip):
            raise FormatError(f"strip {strip} has no group {g}")
        cols = self.col_indices[start : start + self.stride]
        flat0 = start * self.vector_length
        tile = self.values[flat0 : flat0 + self.vector_length * self.stride]
        return cols, tile.reshape(self.vector_length, self.stride)

    def iter_groups(self, strip: int) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Iterate the stride groups of one strip in order."""
        for g in range(self.strip_num_groups(strip)):
            yield self.group(strip, g)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        v = self.vector_length
        out = np.zeros((m, k), dtype=self.values.dtype)
        for r in range(self.num_strips):
            for cols, tile in self.iter_groups(r):
                valid = cols != PAD_INDEX
                if not valid.any():
                    continue
                rows = slice(r * v, (r + 1) * v)
                out[rows, cols[valid]] += tile[:, valid]
        return out

    def storage_bytes(self, value_bits: int) -> int:
        ptr_bytes = (self.row_starts.size + self.row_ends.size) * 4
        idx_bytes = self.col_indices.size * 4
        val_bytes = (self.values.size * value_bits + 7) // 8  # incl. padding
        return ptr_bytes + idx_bytes + val_bytes

    def vectors_per_strip(self) -> np.ndarray:
        """Valid vector counts per strip."""
        return self.row_ends - self.row_starts
