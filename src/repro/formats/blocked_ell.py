"""Blocked-ELL format (cuSPARSE's block SpMM input).

cuSPARSE's Tensor-core SpMM consumes Blocked-ELL: the matrix is tiled
into ``bs x bs`` dense blocks, and every block-row stores the *same*
number of blocks (the maximum over block-rows), padding short rows with
explicit zero blocks. Two consequences the paper leans on:

- block size must be >= 8 for cuSPARSE to see speedups (coarse
  granularity that costs model accuracy), and
- the ELL padding inflates both storage and compute for matrices with
  imbalanced rows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat

#: column sentinel for padded block slots
PAD_BLOCK = -1


@dataclass
class BlockedEllMatrix(SparseFormat):
    """Blocked-ELL sparse matrix.

    ``block_cols`` is ``(block_rows, ell_width)`` holding the *block*
    column index of each slot (or :data:`PAD_BLOCK`); ``blocks`` is
    ``(block_rows, ell_width, bs, bs)`` with zero-filled padding slots.
    """

    shape: tuple[int, int]
    block_size: int
    block_cols: np.ndarray
    blocks: np.ndarray

    def __post_init__(self) -> None:
        self.block_cols = np.ascontiguousarray(self.block_cols, dtype=np.int32)
        self.blocks = np.ascontiguousarray(self.blocks)
        m, k = self.shape
        bs = self.block_size
        if bs < 1 or m % bs != 0 or k % bs != 0:
            raise FormatError(f"shape {self.shape} not tileable by block size {bs}")
        brows = m // bs
        if self.block_cols.ndim != 2 or self.block_cols.shape[0] != brows:
            raise FormatError(f"block_cols must have {brows} rows")
        ell = self.block_cols.shape[1]
        if self.blocks.shape != (brows, ell, bs, bs):
            raise FormatError(
                f"blocks must be ({brows}, {ell}, {bs}, {bs}), got {self.blocks.shape}"
            )
        valid = self.block_cols != PAD_BLOCK
        if valid.any():
            vc = self.block_cols[valid]
            if vc.min() < 0 or vc.max() >= k // bs:
                raise FormatError("block column index out of range")

    @property
    def ell_width(self) -> int:
        """Blocks stored per block-row (including padding)."""
        return self.block_cols.shape[1]

    @classmethod
    def from_dense(cls, dense: np.ndarray, block_size: int) -> "BlockedEllMatrix":
        """Tile a dense matrix; keep blocks containing any nonzero."""
        dense = np.asarray(dense)
        m, k = dense.shape
        bs = block_size
        if m % bs != 0 or k % bs != 0:
            raise FormatError(f"shape {dense.shape} not tileable by {bs}")
        brows, bcols = m // bs, k // bs
        tiles = dense.reshape(brows, bs, bcols, bs).swapaxes(1, 2)  # (br, bc, bs, bs)
        keep = tiles.reshape(brows, bcols, -1).any(axis=2)
        width = max(int(keep.sum(axis=1).max(initial=0)), 1)
        block_cols = np.full((brows, width), PAD_BLOCK, dtype=np.int32)
        blocks = np.zeros((brows, width, bs, bs), dtype=dense.dtype)
        for r in range(brows):
            cols = np.nonzero(keep[r])[0]
            block_cols[r, : cols.size] = cols
            blocks[r, : cols.size] = tiles[r, cols]
        return cls(shape=dense.shape, block_size=bs, block_cols=block_cols, blocks=blocks)

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        bs = self.block_size
        out = np.zeros((m, k), dtype=self.blocks.dtype)
        for r in range(self.block_cols.shape[0]):
            for s in range(self.ell_width):
                c = int(self.block_cols[r, s])
                if c == PAD_BLOCK:
                    continue
                out[r * bs : (r + 1) * bs, c * bs : (c + 1) * bs] += self.blocks[r, s]
        return out

    @property
    def nnz(self) -> int:
        valid = self.block_cols != PAD_BLOCK
        return int(valid.sum()) * self.block_size * self.block_size

    @property
    def padded_nnz(self) -> int:
        """Stored scalars including ELL padding — what the kernel computes on."""
        return int(self.blocks.size)

    @property
    def padding_ratio(self) -> float:
        n = self.nnz
        return self.padded_nnz / n if n else 1.0

    def storage_bytes(self, value_bits: int) -> int:
        idx_bytes = self.block_cols.size * 4
        val_bytes = (self.blocks.size * value_bits + 7) // 8
        return idx_bytes + val_bytes
