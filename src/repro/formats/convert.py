"""Conversions between dense and the sparse formats.

The evaluation pipelines build each library's preferred format from the
same dense (or BCRS) source so that every kernel computes the identical
problem — mirroring how the paper generates Blocked-ELL inputs "with the
same sparsity and problem size as BCRS" for cuSPARSE.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError
from repro.formats.bcrs import BCRSMatrix
from repro.formats.blocked_ell import BlockedEllMatrix
from repro.formats.csr import CSRMatrix
from repro.formats.srbcrs import PAD_INDEX, SRBCRSMatrix
from repro.gpu.warp import ceil_div


def dense_to_csr(dense: np.ndarray) -> CSRMatrix:
    """Dense -> scalar CSR."""
    return CSRMatrix.from_dense(dense)


def dense_to_bcrs(dense: np.ndarray, vector_length: int) -> BCRSMatrix:
    """Dense -> BCRS with V x 1 blocks (vectorSparse encoding)."""
    return BCRSMatrix.from_dense(dense, vector_length)


def dense_to_srbcrs(dense: np.ndarray, vector_length: int, stride: int) -> SRBCRSMatrix:
    """Dense -> SR-BCRS with the given storage stride (MMA k dim)."""
    return SRBCRSMatrix.from_dense(dense, vector_length, stride)


def dense_to_blocked_ell(dense: np.ndarray, block_size: int) -> BlockedEllMatrix:
    """Dense -> Blocked-ELL with ``block_size`` square blocks."""
    return BlockedEllMatrix.from_dense(dense, block_size)


def bcrs_to_srbcrs(bcrs: BCRSMatrix, stride: int) -> SRBCRSMatrix:
    """Re-lay a BCRS matrix into SR-BCRS storage (no value change).

    This is the format-construction step a user of the library performs
    once per sparse operand; it is pure data movement, vectorized per
    strip.
    """
    v = bcrs.vector_length
    strips = bcrs.num_strips
    counts = bcrs.vectors_per_strip().astype(np.int64)
    padded_counts = np.array(
        [ceil_div(int(c), stride) * stride if c else 0 for c in counts], dtype=np.int64
    )
    row_starts = np.zeros(strips, dtype=np.int64)
    np.cumsum(padded_counts[:-1], out=row_starts[1:])
    row_ends = row_starts + counts
    total = int(padded_counts.sum())
    col_indices = np.full(total, PAD_INDEX, dtype=np.int32)
    values = np.zeros(total * v, dtype=bcrs.values.dtype)
    for r in range(strips):
        cols, vecs = bcrs.strip_vectors(r)  # vecs: (n, v) vector-major
        n = cols.size
        if n == 0:
            continue
        start = int(row_starts[r])
        col_indices[start : start + n] = cols
        tile_cols = vecs.T  # (v, n): row-major strip content
        for g0 in range(0, int(padded_counts[r]), stride):
            block = np.zeros((v, stride), dtype=bcrs.values.dtype)
            take = min(stride, n - g0)
            if take > 0:
                block[:, :take] = tile_cols[:, g0 : g0 + take]
            flat0 = (start + g0) * v
            values[flat0 : flat0 + v * stride] = block.reshape(-1)
    return SRBCRSMatrix(
        shape=bcrs.shape,
        vector_length=v,
        stride=stride,
        row_starts=row_starts,
        row_ends=row_ends,
        col_indices=col_indices,
        values=values,
    )


def srbcrs_to_bcrs(sr: SRBCRSMatrix) -> BCRSMatrix:
    """Strip SR-BCRS padding back into plain BCRS."""
    v = sr.vector_length
    strips = sr.num_strips
    counts = sr.vectors_per_strip().astype(np.int64)
    row_ptrs = np.zeros(strips + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptrs[1:])
    total = int(counts.sum())
    col_indices = np.empty(total, dtype=np.int32)
    values = np.empty((total, v), dtype=sr.values.dtype)
    for r in range(strips):
        out = int(row_ptrs[r])
        n = int(counts[r])
        taken = 0
        for cols, tile in sr.iter_groups(r):
            take = min(sr.stride, n - taken)
            if take <= 0:
                break
            col_indices[out + taken : out + taken + take] = cols[:take]
            values[out + taken : out + taken + take] = tile[:, :take].T
            taken += take
    return BCRSMatrix(
        shape=sr.shape,
        vector_length=v,
        row_ptrs=row_ptrs,
        col_indices=col_indices,
        values=values,
    )


def blocked_ell_equivalent(
    dense: np.ndarray, vector_length: int, block_size: int = 8
) -> BlockedEllMatrix:
    """Build the Blocked-ELL input cuSPARSE gets for a 1-D-block matrix.

    Following the paper's methodology (after Chen et al.): generate a
    Blocked-ELL matrix with the same sparsity and problem size as the
    BCRS source. 1-D V x 1 blocks do not tile into bs x bs squares
    without fill-in, so the comparable input keeps every bs x bs block
    containing at least one nonzero vector — charging cuSPARSE its
    coarse-granularity overhead, which is the effect the paper measures.
    """
    if block_size % vector_length != 0 and vector_length % block_size != 0:
        raise FormatError(
            f"block size {block_size} incompatible with vector length {vector_length}"
        )
    return BlockedEllMatrix.from_dense(np.asarray(dense), block_size)
