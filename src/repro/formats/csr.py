"""Scalar Compressed Row Storage (CRS/CSR).

The baseline fine-grained format: cuSPARSE's CSR SpMM and Sputnik both
consume it. Stored as the classic (row_ptrs, col_indices, values)
triple.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat


@dataclass
class CSRMatrix(SparseFormat):
    """CSR sparse matrix.

    ``row_ptrs`` has length M+1; row r's entries live at
    ``[row_ptrs[r], row_ptrs[r+1])`` of ``col_indices`` / ``values``.
    """

    shape: tuple[int, int]
    row_ptrs: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_ptrs = np.ascontiguousarray(self.row_ptrs, dtype=np.int64)
        self.col_indices = np.ascontiguousarray(self.col_indices, dtype=np.int32)
        self.values = np.ascontiguousarray(self.values)
        m, k = self.shape
        if self.row_ptrs.shape != (m + 1,):
            raise FormatError(f"row_ptrs must have length {m + 1}")
        if self.row_ptrs[0] != 0 or self.row_ptrs[-1] != self.col_indices.size:
            raise FormatError("row_ptrs must start at 0 and end at nnz")
        if np.any(np.diff(self.row_ptrs) < 0):
            raise FormatError("row_ptrs must be non-decreasing")
        if self.values.shape != self.col_indices.shape:
            raise FormatError("values and col_indices must align")
        if self.col_indices.size and (
            self.col_indices.min() < 0 or self.col_indices.max() >= k
        ):
            raise FormatError("column index out of range")

    @classmethod
    def from_dense(cls, dense: np.ndarray) -> "CSRMatrix":
        """Compress a dense matrix (exact zeros dropped)."""
        dense = np.asarray(dense)
        if dense.ndim != 2:
            raise FormatError("from_dense expects a 2-D array")
        rows, cols = np.nonzero(dense)
        m = dense.shape[0]
        row_ptrs = np.zeros(m + 1, dtype=np.int64)
        np.add.at(row_ptrs, rows + 1, 1)
        row_ptrs = np.cumsum(row_ptrs)
        return cls(
            shape=dense.shape,
            row_ptrs=row_ptrs,
            col_indices=cols.astype(np.int32),
            values=dense[rows, cols],
        )

    def to_dense(self) -> np.ndarray:
        out = np.zeros(self.shape, dtype=self.values.dtype)
        rows = np.repeat(np.arange(self.shape[0]), np.diff(self.row_ptrs))
        out[rows, self.col_indices] = self.values
        return out

    @property
    def nnz(self) -> int:
        return int(self.col_indices.size)

    def storage_bytes(self, value_bits: int) -> int:
        ptr_bytes = self.row_ptrs.size * 4
        idx_bytes = self.col_indices.size * 4
        val_bytes = (self.values.size * value_bits + 7) // 8
        return ptr_bytes + idx_bytes + val_bytes

    def row_nnz(self) -> np.ndarray:
        """Nonzeros per row — the load-balance statistic Sputnik exploits."""
        return np.diff(self.row_ptrs)
