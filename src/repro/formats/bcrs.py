"""Block Compressed Row Storage with 1-D blocks (Fig. 2a/b).

This is the *column-vector sparse encoding* of vectorSparse: the matrix
is divided into M/V row strips; each nonzero of a strip is a dense
V x 1 vector identified by its column index, and vectors are stored
consecutively (each vector's V elements contiguous).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FormatError
from repro.formats.base import SparseFormat


@dataclass
class BCRSMatrix(SparseFormat):
    """BCRS with 1-D (V x 1) dense blocks.

    ``row_ptrs`` has length M/V + 1 in units of vectors; strip r's
    vectors occupy ``[row_ptrs[r], row_ptrs[r+1])`` of ``col_indices``
    and of the first axis of ``values`` (shape ``(num_vectors, V)``).
    """

    shape: tuple[int, int]
    vector_length: int
    row_ptrs: np.ndarray
    col_indices: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        self.row_ptrs = np.ascontiguousarray(self.row_ptrs, dtype=np.int64)
        self.col_indices = np.ascontiguousarray(self.col_indices, dtype=np.int32)
        self.values = np.ascontiguousarray(self.values)
        m, k = self.shape
        v = self.vector_length
        if v < 1 or m % v != 0:
            raise FormatError(f"rows {m} must be a multiple of vector length {v}")
        strips = m // v
        if self.row_ptrs.shape != (strips + 1,):
            raise FormatError(f"row_ptrs must have length {strips + 1}")
        if self.row_ptrs[0] != 0 or self.row_ptrs[-1] != self.col_indices.size:
            raise FormatError("row_ptrs must start at 0 and end at num_vectors")
        if np.any(np.diff(self.row_ptrs) < 0):
            raise FormatError("row_ptrs must be non-decreasing")
        if self.values.shape != (self.col_indices.size, v):
            raise FormatError(
                f"values must be (num_vectors, {v}), got {self.values.shape}"
            )
        if self.col_indices.size and (
            self.col_indices.min() < 0 or self.col_indices.max() >= k
        ):
            raise FormatError("column index out of range")

    @property
    def num_strips(self) -> int:
        return self.shape[0] // self.vector_length

    @property
    def num_vectors(self) -> int:
        return int(self.col_indices.size)

    @classmethod
    def from_dense(cls, dense: np.ndarray, vector_length: int) -> "BCRSMatrix":
        """Compress a dense matrix whose sparsity is V x 1 structured.

        A column of a strip is kept iff it contains any nonzero; the
        stored vector is the full V elements (zeros within a kept vector
        are preserved — they are part of the dense block).
        """
        dense = np.asarray(dense)
        m, k = dense.shape
        v = vector_length
        if m % v != 0:
            raise FormatError(f"rows {m} not a multiple of V={v}")
        strips = m // v
        strip_view = dense.reshape(strips, v, k)
        keep = strip_view.any(axis=1)  # (strips, k)
        counts = keep.sum(axis=1)
        row_ptrs = np.zeros(strips + 1, dtype=np.int64)
        np.cumsum(counts, out=row_ptrs[1:])
        strip_ids, cols = np.nonzero(keep)
        values = np.ascontiguousarray(
            strip_view[strip_ids, :, cols]
        )  # (num_vectors, v)
        return cls(
            shape=dense.shape,
            vector_length=v,
            row_ptrs=row_ptrs,
            col_indices=cols.astype(np.int32),
            values=values,
        )

    def to_dense(self) -> np.ndarray:
        m, k = self.shape
        v = self.vector_length
        out = np.zeros((self.num_strips, v, k), dtype=self.values.dtype)
        strip_ids = np.repeat(np.arange(self.num_strips), np.diff(self.row_ptrs))
        out[strip_ids, :, self.col_indices] = self.values
        return out.reshape(m, k)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    def storage_bytes(self, value_bits: int) -> int:
        ptr_bytes = self.row_ptrs.size * 4
        idx_bytes = self.col_indices.size * 4
        val_bytes = (self.values.size * value_bits + 7) // 8
        return ptr_bytes + idx_bytes + val_bytes

    def strip_vectors(self, strip: int) -> tuple[np.ndarray, np.ndarray]:
        """(col_indices, values) of one row strip — values ``(n_vec, V)``."""
        lo, hi = self.row_ptrs[strip], self.row_ptrs[strip + 1]
        return self.col_indices[lo:hi], self.values[lo:hi]

    def vectors_per_strip(self) -> np.ndarray:
        """Vector counts per strip (load-balance statistic)."""
        return np.diff(self.row_ptrs)
