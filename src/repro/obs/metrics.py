"""Process-wide metrics: counters, gauges, fixed-bucket histograms.

A :class:`MetricsRegistry` owns named metric *families*; each family
holds one instrument per label set (Prometheus semantics, without the
client-library dependency). Counters and gauges are plain numbers;
histograms are **fixed-bucket** — an observation lands in one of a
finite set of upper-bound buckets plus a running count/sum, so a
long-running engine's memory stays constant no matter how many requests
it serves, and p50/p95/p99 come from linear interpolation inside the
bucket rather than an unbounded value list.

The serving stack publishes into one registry per engine (defaulting
to the process-wide :func:`get_registry`), and the exporters in
:mod:`repro.obs.export` turn any registry into a JSON snapshot or
Prometheus text. Registries round-trip through :meth:`~MetricsRegistry.
to_dict` / :meth:`~MetricsRegistry.from_dict`, which is how the
``repro obs`` CLI re-renders a snapshot another process exported.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

from repro.errors import ConfigError

__all__ = [
    "Counter",
    "DEFAULT_TIME_BUCKETS_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
]

#: default histogram buckets for second-valued observations: ~1 µs to
#: ~16 s in powers of 4 — wide enough for both wall and modelled times
DEFAULT_TIME_BUCKETS_S: tuple[float, ...] = tuple(
    1e-6 * 4**i for i in range(13)
)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ConfigError(f"counters only go up; inc({n}) is invalid")
        with self._lock:
            self.value += n


class Gauge:
    """A value that can go up and down (queue depth, cooldown keys)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self.value = 0.0

    def set(self, v: float) -> None:
        with self._lock:
            self.value = float(v)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self.value += n

    def dec(self, n: float = 1.0) -> None:
        with self._lock:
            self.value -= n


class Histogram:
    """Fixed-bucket distribution with constant memory.

    ``buckets`` are inclusive upper bounds (an implicit ``+Inf``
    overflow bucket is always appended). :meth:`quantile` interpolates
    linearly inside the winning bucket — the trade the registry makes
    for never holding per-observation state; the telemetry layer keeps
    a bounded reservoir when exact percentiles matter.
    """

    __slots__ = (
        "_lock", "buckets", "counts", "count", "sum", "min", "max",
    )

    def __init__(
        self, lock: threading.Lock, buckets: Iterable[float] | None = None
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_TIME_BUCKETS_S
        if not bounds or list(bounds) != sorted(bounds):
            raise ConfigError("histogram buckets must be a sorted, non-empty list")
        self._lock = lock
        self.buckets = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.buckets) + 1)  # +1: +Inf overflow
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, v: float) -> None:
        v = float(v)
        with self._lock:
            i = 0
            for i, bound in enumerate(self.buckets):  # noqa: B007
                if v <= bound:
                    break
            else:
                i = len(self.buckets)
            self.counts[i] += 1
            self.count += 1
            self.sum += v
            if v < self.min:
                self.min = v
            if v > self.max:
                self.max = v

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q`` (0..1) quantile from the bucket counts.

        Linear interpolation between the winning bucket's bounds,
        clamped to the observed min/max so the estimate never leaves
        the data's actual range.
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            seen = 0
            for i, n in enumerate(self.counts):
                if n == 0:
                    continue
                if seen + n >= rank:
                    lo = self.buckets[i - 1] if i > 0 else self.min
                    hi = self.buckets[i] if i < len(self.buckets) else self.max
                    lo = max(lo, self.min)
                    hi = min(hi, self.max)
                    if hi <= lo or n == 0:
                        return lo
                    frac = (rank - seen) / n
                    return lo + (hi - lo) * frac
                seen += n
            return self.max


class _Family:
    """One named metric family: kind, help text, children per label set."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(
        self, name: str, kind: str, help: str, buckets: tuple[float, ...] | None
    ) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: dict[tuple[tuple[str, str], ...], object] = {}


class MetricsRegistry:
    """A named, labelled set of counters, gauges and histograms.

    Instruments are created on first access and kept forever (families
    are bounded by the code's metric names and the workload's label
    sets — sessions, backends — not by traffic volume). ``declare``
    creates an *empty* family so exporters list every documented metric
    even before its first observation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, _Family] = {}

    # -- instrument access ---------------------------------------------
    def _family(
        self, name: str, kind: str, help: str,
        buckets: tuple[float, ...] | None = None,
    ) -> _Family:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = _Family(name, kind, help, buckets)
                self._families[name] = family
            elif family.kind != kind:
                raise ConfigError(
                    f"metric {name!r} is a {family.kind}, not a {kind}"
                )
            if help and not family.help:
                family.help = help
            if buckets is not None and family.buckets is None:
                # a family declared without an explicit layout adopts
                # the first one offered (how from_dict restores
                # non-default bucket bounds); later conflicting layouts
                # are ignored — children already exist on the first
                if not family.children:
                    family.buckets = buckets
            return family

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Counter:
        family = self._family(name, "counter", help)
        return self._child(family, labels)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None, help: str = ""
    ) -> Gauge:
        family = self._family(name, "gauge", help)
        return self._child(family, labels)

    def histogram(
        self,
        name: str,
        labels: Mapping[str, str] | None = None,
        help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> Histogram:
        family = self._family(
            name, "histogram", help,
            tuple(buckets) if buckets is not None else None,
        )
        return self._child(family, labels)

    def _child(self, family: _Family, labels: Mapping[str, str] | None):
        key = _label_key(labels)
        with self._lock:
            child = family.children.get(key)
            if child is None:
                if family.kind == "counter":
                    child = Counter(self._lock)
                elif family.kind == "gauge":
                    child = Gauge(self._lock)
                else:
                    child = Histogram(self._lock, family.buckets)
                family.children[key] = child
            return child

    def declare(
        self, name: str, kind: str, help: str = "",
        buckets: Iterable[float] | None = None,
    ) -> None:
        """Register an (empty) family so exporters always name it."""
        if kind not in _KINDS:
            raise ConfigError(f"unknown metric kind {kind!r}")
        self._family(
            name, kind, help,
            tuple(buckets) if buckets is not None else None,
        )

    # -- introspection -------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def kind(self, name: str) -> str:
        with self._lock:
            return self._families[name].kind

    def samples(self, name: str) -> list[tuple[dict, object]]:
        """Every (labels, instrument) pair of one family, label-sorted."""
        with self._lock:
            family = self._families[name]
            return [
                (dict(key), child)
                for key, child in sorted(family.children.items())
            ]

    # -- persistence ----------------------------------------------------
    def to_dict(self) -> dict:
        """A deterministic, JSON-ready snapshot of every instrument."""
        out: dict = {}
        with self._lock:
            for name in sorted(self._families):
                family = self._families[name]
                samples = []
                for key in sorted(family.children):
                    child = family.children[key]
                    if isinstance(child, (Counter, Gauge)):
                        state: dict = {"value": child.value}
                    else:
                        state = {
                            "buckets": list(child.buckets),
                            "counts": list(child.counts),
                            "count": child.count,
                            "sum": child.sum,
                            "min": child.min if child.count else None,
                            "max": child.max if child.count else None,
                        }
                    samples.append({"labels": dict(key), **state})
                out[name] = {
                    "kind": family.kind,
                    "help": family.help,
                    "samples": samples,
                }
        return out

    @classmethod
    def from_dict(cls, d: Mapping[str, dict]) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output (round-trip)."""
        registry = cls()
        for name, family in d.items():
            kind = family.get("kind")
            if kind not in _KINDS:
                raise ConfigError(f"metric {name!r} has unknown kind {kind!r}")
            help_line = family.get("help", "")
            registry.declare(name, kind, help_line)
            for sample in family.get("samples", ()):
                labels = sample.get("labels") or None
                if kind == "counter":
                    registry.counter(name, labels).inc(float(sample["value"]))
                elif kind == "gauge":
                    registry.gauge(name, labels).set(float(sample["value"]))
                else:
                    h = registry.histogram(
                        name, labels, buckets=sample["buckets"]
                    )
                    h.counts = [int(c) for c in sample["counts"]]
                    h.count = int(sample["count"])
                    h.sum = float(sample["sum"])
                    h.min = (
                        float(sample["min"]) if sample.get("min") is not None
                        else math.inf
                    )
                    h.max = (
                        float(sample["max"]) if sample.get("max") is not None
                        else -math.inf
                    )
        return registry


#: the process-wide default registry engines publish into unless one is
#: injected (``repro.open_engine(metrics=...)``)
_GLOBAL = MetricsRegistry()
_GLOBAL_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _GLOBAL


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        previous, _GLOBAL = _GLOBAL, registry
    return previous
