"""Request-scoped tracing: one span tree per served request.

A :class:`Tracer` hands out a :class:`RequestTrace` per request; code
along the serving path opens named :class:`Span`\\ s on it::

    tracer = Tracer(enabled=True)
    trace = tracer.request(op="spmm", session="ffn", request_id=7)
    with trace.span("plan-resolution"):
        ...  # resolve()
    tracer.finish(trace)

Span ids are a **per-trace counter starting at 1**, assigned in
creation order — two identical request flows produce identical
id/name/parent structure (wall timings differ, structure never does),
which is what the span-tree determinism test pins. Spans nest through
a per-thread stack, so a span opened *inside* another span's ``with``
block (same thread) parents to it; spans opened from a different
thread — the batcher's worker executing the batch the request rode —
attach at the root, mirroring the actual handoff.

When tracing is disabled the tracer returns the :data:`NULL_TRACE`
singleton whose every operation is a constant no-op (and which is
*falsy*, so hot paths can skip work with ``if trace:``). That is the
whole overhead story: no allocation, no branching beyond one method
call, per disabled request.

Finished traces ring-buffer on the tracer (:attr:`Tracer.KEEP` most
recent) and export as JSON-lines — one trace per line, deterministic
key order — via :meth:`Tracer.export_jsonl`.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from typing import Iterator

from repro.ioutil import atomic_write_text

__all__ = [
    "NULL_SPAN",
    "NULL_TRACE",
    "RequestTrace",
    "Span",
    "Tracer",
]


class Span:
    """One named, timed segment of a request's journey.

    ``start_s``/``end_s`` are seconds relative to the owning trace's
    birth (monotonic clock). ``attrs`` carries the segment's facts —
    plan key, backend, modelled time, queue depth, batch id — set at
    creation or later via :meth:`set`.
    """

    __slots__ = ("trace", "span_id", "parent_id", "name", "start_s", "end_s", "attrs")

    def __init__(
        self,
        trace: "RequestTrace",
        span_id: int,
        parent_id: int | None,
        name: str,
        start_s: float,
        attrs: dict,
    ) -> None:
        self.trace = trace
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = start_s
        self.end_s: float | None = None
        self.attrs = attrs

    def set(self, **attrs) -> "Span":
        """Attach facts to the span; returns ``self`` for chaining."""
        self.attrs.update(attrs)
        return self

    def end(self) -> None:
        """Close the span now (idempotent)."""
        if self.end_s is None:
            self.end_s = self.trace.now()

    @property
    def wall_s(self) -> float:
        """The span's wall duration (0.0 while still open)."""
        return (self.end_s - self.start_s) if self.end_s is not None else 0.0

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc) -> None:
        self.end()
        self.trace._pop(self)

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "wall_s": self.wall_s,
            "attrs": dict(sorted(self.attrs.items())),
        }


class RequestTrace:
    """The span tree of one request, from submit to response.

    Thread-safe: the submitting thread and the batch-executing worker
    both append spans. Iterating yields spans in creation (= id) order.
    """

    def __init__(self, request_id: int, op: str, session: str) -> None:
        self.request_id = request_id
        self.op = op
        self.session = session
        self._born = time.perf_counter()
        self._lock = threading.Lock()
        self._spans: list[Span] = []
        self._next_id = 1
        self._stack = threading.local()  # per-thread open-span stack

    def now(self) -> float:
        """Seconds since the trace was born (the span clock)."""
        return time.perf_counter() - self._born

    def span(self, name: str, **attrs) -> Span:
        """Open a span; close it via ``with`` or :meth:`Span.end`.

        Used as a context manager, spans opened inside the block (same
        thread) parent to it.
        """
        stack = getattr(self._stack, "open", None)
        parent = stack[-1].span_id if stack else None
        with self._lock:
            span = Span(self, self._next_id, parent, name, self.now(), attrs)
            self._next_id += 1
            self._spans.append(span)
        if stack is None:
            stack = self._stack.open = []
        stack.append(span)
        return span

    def _pop(self, span: Span) -> None:
        stack = getattr(self._stack, "open", None)
        if stack and stack[-1] is span:
            stack.pop()

    def add_span(
        self, name: str, start_s: float, end_s: float, **attrs
    ) -> Span:
        """Record an already-elapsed segment with explicit timing.

        The engine synthesizes the *queue* span this way: the wait is
        measured by the batcher (``BatchItem.queue_wait_s``), so by the
        time the batch executes, the span's start and end are known
        facts rather than live instants.
        """
        with self._lock:
            span = Span(self, self._next_id, None, name, start_s, attrs)
            self._next_id += 1
            span.end_s = end_s
            self._spans.append(span)
        return span

    def __iter__(self) -> Iterator[Span]:
        with self._lock:
            return iter(list(self._spans))

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)

    def __bool__(self) -> bool:
        # a live trace is truthy even before its first span (len()
        # would otherwise make an empty trace look like NULL_TRACE)
        return True

    def find(self, name: str) -> Span | None:
        """The first span with ``name``, or None."""
        for span in self:
            if span.name == name:
                return span
        return None

    def to_dict(self) -> dict:
        """JSON-ready form; span order is creation order."""
        return {
            "request_id": self.request_id,
            "op": self.op,
            "session": self.session,
            "spans": [s.to_dict() for s in self],
        }


class _NullSpan:
    """The no-op span: every operation returns instantly."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def set(self, **attrs) -> "_NullSpan":
        return self

    def end(self) -> None:
        pass


class _NullTrace:
    """The no-op trace a disabled tracer hands out (falsy singleton)."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def span(self, name: str, **attrs) -> _NullSpan:
        return NULL_SPAN

    def add_span(self, name: str, start_s: float, end_s: float, **attrs) -> _NullSpan:
        return NULL_SPAN

    def now(self) -> float:
        return 0.0

    def to_dict(self) -> None:  # a null trace serializes to nothing
        return None


NULL_SPAN = _NullSpan()
NULL_TRACE = _NullTrace()


class Tracer:
    """Hands out request traces and ring-buffers the finished ones."""

    #: finished traces retained for ``repro obs tail`` / export
    KEEP = 1024

    def __init__(self, enabled: bool = True, keep: int | None = None) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._finished: deque[RequestTrace] = deque(
            maxlen=keep if keep is not None else self.KEEP
        )

    def request(
        self, op: str, session: str, request_id: int
    ) -> "RequestTrace | _NullTrace":
        """A new trace for one request — or :data:`NULL_TRACE` when
        disabled (the only branch the disabled path ever takes)."""
        if not self.enabled:
            return NULL_TRACE
        return RequestTrace(request_id, op, session)

    def finish(self, trace: "RequestTrace | _NullTrace") -> None:
        """Retire a trace into the ring buffer (no-op for null traces)."""
        if not trace:
            return
        with self._lock:
            self._finished.append(trace)

    def finished(self) -> list[RequestTrace]:
        """Retired traces, oldest first."""
        with self._lock:
            return list(self._finished)

    def export_jsonl(self, path: "str | Path") -> Path:
        """Write retired traces as JSON lines (one trace per line,
        sorted keys — deterministic given identical trace structure).
        Atomic, like every artifact writer in the library."""
        lines = [
            json.dumps(t.to_dict(), sort_keys=True) for t in self.finished()
        ]
        return atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
