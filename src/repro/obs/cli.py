"""``repro obs`` — inspect metrics snapshots, traces, profiles, health.

Usage::

    repro obs summary                      # tables from a metrics snapshot
    repro obs summary --metrics m.json
    repro obs export --format prometheus   # scrape-ready text
    repro obs export --format json --out metrics.json
    repro obs tail -n 5                    # most recent request traces
    repro obs tail --follow                # poll the trace log for new ones
    repro obs tail --session s0 --plan-key 'spmm|...'   # filtered
    repro obs profile --top 10             # self-time attribution table
    repro obs health                       # grade SLOs over a snapshot
    repro obs health --probe               # exit 0/1/2 = healthy/degraded/breach

The commands operate on the artifacts a serving run exports — by
default the files ``repro bench serve --replay`` writes
(``BENCH_serve.metrics.json`` / ``BENCH_serve.trace.jsonl``). When no
snapshot exists yet, ``summary``, ``export`` and ``health`` fall back
to an empty registry with every standard metric declared, so ``repro
obs export --format prometheus`` always names the full documented
contract and ``repro obs health --probe`` grades a quiet engine as
healthy (exit 0) rather than failing the probe on a missing file.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.obs.export import (
    load_json,
    render_json,
    render_prometheus,
    summarize,
    write_snapshot,
)
from repro.obs.health import DEFAULT_SLOS, SloSpec, evaluate_registry
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import declare_standard
from repro.obs.profile import attribute

__all__ = ["DEFAULT_METRICS_PATH", "DEFAULT_TRACE_PATH", "main"]

#: the artifacts the traffic-replay bench leaves at the repo root
DEFAULT_METRICS_PATH = "BENCH_serve.metrics.json"
DEFAULT_TRACE_PATH = "BENCH_serve.trace.jsonl"


def _load_registry(path: str) -> tuple[MetricsRegistry, str]:
    """(registry, provenance line) for a snapshot path that may not exist."""
    p = Path(path)
    if p.exists():
        return load_json(p.read_text()), f"metrics from {p}"
    registry = declare_standard(MetricsRegistry())
    return registry, f"{p} not found; showing the (empty) standard contract"


def _cmd_summary(args: argparse.Namespace) -> int:
    registry, provenance = _load_registry(args.metrics)
    print(f"# {provenance}")
    print(summarize(registry))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    registry, provenance = _load_registry(args.metrics)
    if args.format == "prometheus":
        text = render_prometheus(registry)
    else:
        text = render_json(registry) + "\n"
    if args.out:
        if args.format == "json":
            write_snapshot(registry, args.out)
        else:
            from repro.ioutil import atomic_write_text

            atomic_write_text(args.out, text)
        print(f"wrote {args.out} ({provenance})")
    else:
        sys.stdout.write(text)
    return 0


def _render_trace_line(doc: dict) -> str:
    lines = [
        f"request {doc.get('request_id')} "
        f"[{doc.get('op')}@{doc.get('session')}]"
    ]
    spans = doc.get("spans", [])
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    def walk(parent: int | None, depth: int) -> None:
        for span in children.get(parent, []):
            attrs = span.get("attrs") or {}
            facts = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"{'  ' * (depth + 1)}{span['name']}: "
                f"{span.get('wall_s', 0.0) * 1e3:.3f} ms"
                + (f"  ({facts})" if facts else "")
            )
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def _trace_matches(doc: dict, args: argparse.Namespace) -> bool:
    """Does a trace document pass the ``--session`` / ``--plan-key``
    filters? A plan key matches when *any* span carries it."""
    if args.session and doc.get("session") != args.session:
        return False
    if args.plan_key:
        for span in doc.get("spans", ()):
            attrs = span.get("attrs") or {}
            if attrs.get("plan_key") == args.plan_key:
                break
        else:
            return False
    return True


def _cmd_tail(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists() and not args.follow:
        print(
            f"{path} not found; run `repro bench serve --replay` (or export "
            f"a tracer) first",
            file=sys.stderr,
        )
        return 1
    if args.follow:
        return _tail_follow(path, args)
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    docs = [d for d in map(json.loads, lines) if _trace_matches(d, args)]
    for doc in docs[-args.n:]:
        print(_render_trace_line(doc))
    if not docs:
        print(
            "(no matching traces)" if lines else "(trace log is empty)"
        )
    return 0


def _tail_follow(path: Path, args: argparse.Namespace) -> int:
    """Poll the trace log and print traces as they are appended.

    The tracer's JSONL ring file is rewritten atomically (a shrink
    means a rotation), so the follower tracks a byte offset and resets
    it whenever the file shrinks. ``--max-polls`` bounds the loop for
    scripts and tests; the default (0) polls until interrupted.
    """
    offset = 0
    polls = 0
    try:
        while True:
            if path.exists():
                data = path.read_text()
                if len(data) < offset:  # rotated/truncated: start over
                    offset = 0
                chunk = data[offset:]
                # only consume complete lines; a partial tail line is
                # an in-flight append we will see on the next poll
                consumed = chunk.rfind("\n") + 1
                offset += consumed
                for line in chunk[:consumed].splitlines():
                    if not line.strip():
                        continue
                    doc = json.loads(line)
                    if _trace_matches(doc, args):
                        print(_render_trace_line(doc), flush=True)
            polls += 1
            if args.max_polls and polls >= args.max_polls:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.bench.report import render_table

    path = Path(args.trace)
    if not path.exists():
        print(
            f"{path} not found; run `repro bench serve --replay` (or export "
            f"a tracer) first",
            file=sys.stderr,
        )
        return 1
    docs = [
        json.loads(ln)
        for ln in path.read_text().splitlines()
        if ln.strip()
    ]
    rows = attribute(docs)
    if args.json:
        print(json.dumps(rows[: args.top], indent=2, sort_keys=True))
        return 0
    print(f"# self-time attribution from {path} ({len(docs)} trace(s))")
    if not rows:
        print("(no spans recorded)")
        return 0
    total_self = sum(r["self_s"] for r in rows) or 1.0
    table = [
        [
            r["phase"], r["backend"], r["plan_key"], r["count"],
            f"{r['self_s'] * 1e3:.3f}",
            f"{r['self_s'] / total_self:.1%}",
            f"{r['wall_s'] * 1e3:.3f}",
        ]
        for r in rows[: args.top]
    ]
    print(render_table(
        ["phase", "backend", "plan_key", "count", "self ms", "self %",
         "wall ms"],
        table,
    ))
    if len(rows) > args.top:
        print(f"... {len(rows) - args.top} more row(s); raise --top to see")
    return 0


def _load_slos(path: "str | None") -> tuple[SloSpec, ...]:
    """SLO specs from a JSON file (a list of SloSpec field dicts), or
    the defaults when no file is named."""
    if not path:
        return DEFAULT_SLOS
    docs = json.loads(Path(path).read_text())
    return tuple(SloSpec(**doc) for doc in docs)


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.bench.report import render_table

    registry, provenance = _load_registry(args.metrics)
    report = evaluate_registry(registry, _load_slos(args.slos))
    print(f"# {provenance}")
    print(render_table(
        ["objective", "kind", "status", "burn", "detail"],
        [
            [r.spec.name, r.spec.kind, r.status, f"{r.burn:.2f}x", r.detail]
            for r in report.results
        ],
    ))
    print(f"overall: {report.status}")
    if args.out:
        report.save(args.out)
        print(f"wrote {args.out}")
    return report.exit_code() if args.probe else 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro obs", description=__doc__)
    sub = parser.add_subparsers(
        dest="command", metavar="{summary,tail,export,profile,health}"
    )

    p_summary = sub.add_parser(
        "summary", help="render a metrics snapshot as tables"
    )
    p_summary.add_argument(
        "--metrics", default=DEFAULT_METRICS_PATH,
        help="metrics snapshot JSON (default: %(default)s)",
    )
    p_summary.set_defaults(fn=_cmd_summary)

    p_export = sub.add_parser(
        "export", help="export a metrics snapshot (json or prometheus)"
    )
    p_export.add_argument(
        "--metrics", default=DEFAULT_METRICS_PATH,
        help="metrics snapshot JSON (default: %(default)s)",
    )
    p_export.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
    )
    p_export.add_argument("--out", help="write here instead of stdout")
    p_export.set_defaults(fn=_cmd_export)

    p_tail = sub.add_parser(
        "tail", help="show the most recent request traces"
    )
    p_tail.add_argument(
        "--trace", default=DEFAULT_TRACE_PATH,
        help="trace JSONL log (default: %(default)s)",
    )
    p_tail.add_argument("-n", type=int, default=10, help="traces to show")
    p_tail.add_argument(
        "--session", default="", help="only traces from this session id"
    )
    p_tail.add_argument(
        "--plan-key", default="",
        help="only traces whose spans carry this plan key",
    )
    p_tail.add_argument(
        "--follow", action="store_true",
        help="poll the log and print new traces as they land",
    )
    p_tail.add_argument(
        "--interval", type=float, default=0.5,
        help="--follow poll interval in seconds (default: %(default)s)",
    )
    p_tail.add_argument(
        "--max-polls", type=int, default=0,
        help="stop --follow after this many polls (default: until ^C)",
    )
    p_tail.set_defaults(fn=_cmd_tail)

    p_profile = sub.add_parser(
        "profile", help="self-time attribution from a trace log"
    )
    p_profile.add_argument(
        "--trace", default=DEFAULT_TRACE_PATH,
        help="trace JSONL log (default: %(default)s)",
    )
    p_profile.add_argument(
        "--top", type=int, default=20, help="rows to show (default: %(default)s)"
    )
    p_profile.add_argument(
        "--json", action="store_true", help="emit the rows as JSON"
    )
    p_profile.set_defaults(fn=_cmd_profile)

    p_health = sub.add_parser(
        "health", help="grade SLO objectives over a metrics snapshot"
    )
    p_health.add_argument(
        "--metrics", default=DEFAULT_METRICS_PATH,
        help="metrics snapshot JSON (default: %(default)s)",
    )
    p_health.add_argument(
        "--slos", default="",
        help="JSON file of SloSpec field dicts (default: built-in SLOs)",
    )
    p_health.add_argument("--out", help="also write the report JSON here")
    p_health.add_argument(
        "--probe", action="store_true",
        help="exit 0/1/2 for healthy/degraded/breach (probe semantics)",
    )
    p_health.set_defaults(fn=_cmd_health)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
