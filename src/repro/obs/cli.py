"""``repro obs`` — inspect metrics snapshots and trace logs.

Usage::

    repro obs summary                      # tables from a metrics snapshot
    repro obs summary --metrics m.json
    repro obs export --format prometheus   # scrape-ready text
    repro obs export --format json --out metrics.json
    repro obs tail -n 5                    # most recent request traces

The commands operate on the artifacts a serving run exports — by
default the files ``repro bench serve --replay`` writes
(``BENCH_serve.metrics.json`` / ``BENCH_serve.trace.jsonl``). When no
snapshot exists yet, ``summary`` and ``export`` fall back to an empty
registry with every standard metric declared, so ``repro obs export
--format prometheus`` always names the full documented contract.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.obs.export import (
    load_json,
    render_json,
    render_prometheus,
    summarize,
    write_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import declare_standard

__all__ = ["DEFAULT_METRICS_PATH", "DEFAULT_TRACE_PATH", "main"]

#: the artifacts the traffic-replay bench leaves at the repo root
DEFAULT_METRICS_PATH = "BENCH_serve.metrics.json"
DEFAULT_TRACE_PATH = "BENCH_serve.trace.jsonl"


def _load_registry(path: str) -> tuple[MetricsRegistry, str]:
    """(registry, provenance line) for a snapshot path that may not exist."""
    p = Path(path)
    if p.exists():
        return load_json(p.read_text()), f"metrics from {p}"
    registry = declare_standard(MetricsRegistry())
    return registry, f"{p} not found; showing the (empty) standard contract"


def _cmd_summary(args: argparse.Namespace) -> int:
    registry, provenance = _load_registry(args.metrics)
    print(f"# {provenance}")
    print(summarize(registry))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    registry, provenance = _load_registry(args.metrics)
    if args.format == "prometheus":
        text = render_prometheus(registry)
    else:
        text = render_json(registry) + "\n"
    if args.out:
        if args.format == "json":
            write_snapshot(registry, args.out)
        else:
            from repro.ioutil import atomic_write_text

            atomic_write_text(args.out, text)
        print(f"wrote {args.out} ({provenance})")
    else:
        sys.stdout.write(text)
    return 0


def _render_trace_line(doc: dict) -> str:
    lines = [
        f"request {doc.get('request_id')} "
        f"[{doc.get('op')}@{doc.get('session')}]"
    ]
    spans = doc.get("spans", [])
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span.get("parent_id"), []).append(span)

    def walk(parent: int | None, depth: int) -> None:
        for span in children.get(parent, []):
            attrs = span.get("attrs") or {}
            facts = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            lines.append(
                f"{'  ' * (depth + 1)}{span['name']}: "
                f"{span.get('wall_s', 0.0) * 1e3:.3f} ms"
                + (f"  ({facts})" if facts else "")
            )
            walk(span["span_id"], depth + 1)

    walk(None, 0)
    return "\n".join(lines)


def _cmd_tail(args: argparse.Namespace) -> int:
    path = Path(args.trace)
    if not path.exists():
        print(
            f"{path} not found; run `repro bench serve --replay` (or export "
            f"a tracer) first",
            file=sys.stderr,
        )
        return 1
    lines = [ln for ln in path.read_text().splitlines() if ln.strip()]
    for line in lines[-args.n:]:
        print(_render_trace_line(json.loads(line)))
    if not lines:
        print("(trace log is empty)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro obs", description=__doc__)
    sub = parser.add_subparsers(dest="command", metavar="{summary,tail,export}")

    p_summary = sub.add_parser(
        "summary", help="render a metrics snapshot as tables"
    )
    p_summary.add_argument(
        "--metrics", default=DEFAULT_METRICS_PATH,
        help="metrics snapshot JSON (default: %(default)s)",
    )
    p_summary.set_defaults(fn=_cmd_summary)

    p_export = sub.add_parser(
        "export", help="export a metrics snapshot (json or prometheus)"
    )
    p_export.add_argument(
        "--metrics", default=DEFAULT_METRICS_PATH,
        help="metrics snapshot JSON (default: %(default)s)",
    )
    p_export.add_argument(
        "--format", choices=("json", "prometheus"), default="json",
    )
    p_export.add_argument("--out", help="write here instead of stdout")
    p_export.set_defaults(fn=_cmd_export)

    p_tail = sub.add_parser(
        "tail", help="show the most recent request traces"
    )
    p_tail.add_argument(
        "--trace", default=DEFAULT_TRACE_PATH,
        help="trace JSONL log (default: %(default)s)",
    )
    p_tail.add_argument("-n", type=int, default=10, help="traces to show")
    p_tail.set_defaults(fn=_cmd_tail)

    args = parser.parse_args(argv)
    if args.command is None:
        parser.print_help()
        return 2
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
