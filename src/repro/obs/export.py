"""Exporters: a metrics registry as JSON or Prometheus text.

Two formats, one registry:

- **JSON snapshot** — the full instrument state (bucket counts
  included) under a schema version; lossless, and
  :func:`load_json` rebuilds a registry from it. This is the format
  the ``repro obs`` CLI passes between processes.
- **Prometheus text exposition** — ``# HELP`` / ``# TYPE`` lines plus
  samples, histograms expanded to cumulative ``_bucket{le=...}`` /
  ``_sum`` / ``_count`` series. Scrape-ready; also parseable by
  :func:`parse_prometheus` (used by the CI gate to check every
  documented metric is named).
"""

from __future__ import annotations

import json
import math
from pathlib import Path

from repro.errors import ConfigError
from repro.ioutil import atomic_write_text
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "EXPORT_SCHEMA",
    "load_json",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "write_snapshot",
]

EXPORT_SCHEMA = 1


def render_json(registry: MetricsRegistry) -> str:
    """The registry as a schema-versioned JSON document."""
    return json.dumps(
        {"schema": EXPORT_SCHEMA, "metrics": registry.to_dict()},
        indent=2,
        sort_keys=True,
    )


def load_json(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`render_json` output."""
    doc = json.loads(text)
    schema = doc.get("schema")
    if schema != EXPORT_SCHEMA:
        raise ConfigError(
            f"metrics snapshot schema {schema!r} is not {EXPORT_SCHEMA}"
        )
    return MetricsRegistry.from_dict(doc["metrics"])


def write_snapshot(registry: MetricsRegistry, path: "str | Path") -> Path:
    """Atomically write the JSON snapshot; returns the path."""
    return atomic_write_text(path, render_json(registry) + "\n")


def _fmt(v: float) -> str:
    """Prometheus sample value: integers without the trailing .0."""
    if v == math.inf:
        return "+Inf"
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _escape(value: str) -> str:
    """Prometheus label-value escaping: ``\\``, newline, ``"``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def _labels(labels: dict, extra: "tuple[str, str] | None" = None) -> str:
    pairs = sorted(labels.items())
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    body = ",".join(f'{k}="{_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for name in registry.names():
        kind = registry.kind(name)
        samples = registry.samples(name)
        help_line = registry.to_dict()[name]["help"]
        if help_line:
            lines.append(f"# HELP {name} {help_line}")
        lines.append(f"# TYPE {name} {kind}")
        for labels, instrument in samples:
            if isinstance(instrument, (Counter, Gauge)):
                lines.append(f"{name}{_labels(labels)} {_fmt(instrument.value)}")
            elif isinstance(instrument, Histogram):
                cumulative = 0
                for bound, n in zip(
                    (*instrument.buckets, math.inf), instrument.counts
                ):
                    cumulative += n
                    le = _labels(labels, ("le", _fmt(bound)))
                    lines.append(f"{name}_bucket{le} {cumulative}")
                lines.append(
                    f"{name}_sum{_labels(labels)} {_fmt(instrument.sum)}"
                )
                lines.append(
                    f"{name}_count{_labels(labels)} {instrument.count}"
                )
    return "\n".join(lines) + "\n" if lines else ""


def _parse_label_body(body: str, raw: str) -> dict[str, str]:
    """Tokenize ``k="v",k2="v2"`` honouring the value escapes.

    The naive ``split(",")`` reader corrupts any label value that
    contains a comma, quote, or backslash — exactly the values
    :func:`_escape` now protects on the render side — so this walks the
    body character by character, undoing ``\\\\``, ``\\n`` and ``\\"``.
    """
    labels: dict[str, str] = {}
    i, n = 0, len(body)
    while i < n:
        eq = body.find("=", i)
        if eq < 0 or eq + 1 >= n or body[eq + 1] != '"':
            raise ConfigError(f"unparseable label value in: {raw!r}")
        key = body[i:eq]
        chars: list[str] = []
        j = eq + 2
        while j < n and body[j] != '"':
            ch = body[j]
            if ch == "\\":
                if j + 1 >= n:
                    raise ConfigError(f"unparseable label value in: {raw!r}")
                nxt = body[j + 1]
                chars.append({"\\": "\\", "n": "\n", '"': '"'}.get(nxt, nxt))
                j += 2
            else:
                chars.append(ch)
                j += 1
        if j >= n:
            raise ConfigError(f"unparseable label value in: {raw!r}")
        labels[key] = "".join(chars)
        i = j + 1
        if i < n:
            if body[i] != ",":
                raise ConfigError(f"unparseable labels in: {raw!r}")
            i += 1
    return labels


def parse_prometheus(text: str) -> dict[str, dict]:
    """Parse exposition text back to ``{family: {kind, samples}}``.

    A deliberately strict reader for *our* exporter's output (the CI
    gate and tests use it) — unknown line shapes raise rather than
    skip, so a formatting regression cannot hide.
    """
    families: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_line = rest.partition(" ")
            families.setdefault(name, {"kind": "", "help": "", "samples": []})
            families[name]["help"] = help_line
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            if kind not in ("counter", "gauge", "histogram"):
                raise ConfigError(f"unparseable TYPE line: {raw!r}")
            families.setdefault(name, {"kind": "", "help": "", "samples": []})
            families[name]["kind"] = kind
            continue
        if line.startswith("#"):
            raise ConfigError(f"unparseable comment line: {raw!r}")
        # sample: name{labels} value  |  name value
        head, _, value = line.rpartition(" ")
        if not head:
            raise ConfigError(f"unparseable sample line: {raw!r}")
        name, _, label_body = head.partition("{")
        labels: dict[str, str] = {}
        if label_body:
            if not label_body.endswith("}"):
                raise ConfigError(f"unparseable labels in: {raw!r}")
            labels = _parse_label_body(label_body[:-1], raw)
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        if base not in families:
            raise ConfigError(f"sample for undeclared family: {raw!r}")
        families[base]["samples"].append(
            {
                "series": name,
                "labels": labels,
                "value": math.inf if value == "+Inf" else float(value),
            }
        )
    return families


def summarize(registry: MetricsRegistry) -> str:
    """A human-oriented one-screen rendering (``repro obs summary``)."""
    from repro.bench.report import render_table

    counter_rows, gauge_rows, hist_rows = [], [], []
    for name in registry.names():
        kind = registry.kind(name)
        for labels, instrument in registry.samples(name):
            label_text = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
            if kind == "counter":
                counter_rows.append([name, label_text, _fmt(instrument.value)])
            elif kind == "gauge":
                gauge_rows.append([name, label_text, _fmt(instrument.value)])
            else:
                hist_rows.append([
                    name, label_text, instrument.count,
                    f"{instrument.mean:.3e}",
                    f"{instrument.quantile(0.50):.3e}",
                    f"{instrument.quantile(0.95):.3e}",
                    f"{instrument.quantile(0.99):.3e}",
                ])
    blocks = []
    if counter_rows:
        blocks.append(render_table(
            ["counter", "labels", "value"], counter_rows,
            title="-- counters --",
        ))
    if gauge_rows:
        blocks.append(render_table(
            ["gauge", "labels", "value"], gauge_rows, title="-- gauges --",
        ))
    if hist_rows:
        blocks.append(render_table(
            ["histogram", "labels", "count", "mean", "p50", "p95", "p99"],
            hist_rows, title="-- histograms --",
        ))
    return "\n".join(blocks) if blocks else "(no metrics recorded)"
