"""SLO evaluation: is the fleet healthy against a declared target?

Metrics (:mod:`repro.obs.metrics`) say what the engine *did*; this
module says whether that is *acceptable*. Operators declare objectives
as :class:`SloSpec` values — a latency quantile bound, a rejection-rate
ceiling, a queue-saturation ceiling, a plan-cache hit-rate floor — and
an evaluator reads any :class:`~repro.obs.metrics.MetricsRegistry`
(live, or rebuilt from a snapshot) and grades each objective
``healthy`` / ``degraded`` / ``breach``.

Grading follows the SRE error-budget **burn rate** convention: every
objective implies a budget (a latency p95 objective allows 5% of
requests over the threshold; a 99% hit-rate floor allows 1% misses),
and the burn rate is consumption divided by budget — ``1.0`` means
burning exactly the budget, ``2.0`` twice as fast. A spec's
``degraded_burn`` / ``breach_burn`` thresholds turn the number into a
status, and the worst objective decides the report's overall status —
which is also its probe-style :meth:`~HealthReport.exit_code`
(0 / 1 / 2), so ``repro obs health --probe`` slots straight into a
readiness check.

Two evaluation modes:

- :func:`evaluate_registry` — one-shot, over the registry's full
  lifetime totals. What the CLI and the replay bench use on a
  finished snapshot.
- :class:`HealthEvaluator` — rolling window. Each
  :meth:`~HealthEvaluator.evaluate` call snapshots the registry and
  grades the *delta* against the oldest snapshot inside ``window_s``,
  so a long-running engine is judged on recent traffic, not on its
  lifetime averages. This is what the re-tune scheduler holds: a
  burning latency objective raises the ``slo_breach`` trigger in
  :mod:`repro.autotune.policy`.

Evaluations publish back into the registry under the ``repro_slo_*``
names, so the health of the health-checker is itself observable.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping

from repro.errors import ConfigError
from repro.ioutil import atomic_write_text
from repro.obs import names
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "DEFAULT_SLOS",
    "HealthEvaluator",
    "HealthReport",
    "ObjectiveResult",
    "SloSpec",
    "evaluate_registry",
]

#: schema version stamped into exported health reports
HEALTH_SCHEMA = 1

_KINDS = ("latency", "rejection_rate", "queue_depth", "cache_hit_rate")

#: which metric each kind reads when the spec does not override it
_DEFAULT_METRIC = {
    "latency": names.REQUEST_WALL,
    "rejection_rate": names.REJECTIONS,
    "queue_depth": names.QUEUE_DEPTH,
    "cache_hit_rate": names.CACHE_HITS,
}

_STATUS_ORDER = ("healthy", "degraded", "breach")


@dataclass(frozen=True)
class SloSpec:
    """One declarative objective over the standard metrics contract.

    ``kind`` picks the burn-rate formula and the default source metric:

    - ``latency`` — at most ``1 - quantile`` of requests may take
      longer than ``objective`` seconds (default source:
      ``repro_request_wall_seconds``);
    - ``rejection_rate`` — at most ``objective`` of submitted requests
      may be shed by admission control;
    - ``queue_depth`` — the queue gauge must stay at or below
      ``objective`` waiting requests;
    - ``cache_hit_rate`` — at least ``objective`` of plan lookups must
      be answered warm.

    ``labels`` filters the source metric's samples (a sample matches
    when its label set contains every filter pair), which is how a
    per-request-class objective targets one session, or a latency
    objective targets one backend's ``repro_kernel_wall_seconds``.
    """

    name: str
    kind: str
    objective: float
    quantile: float = 0.95
    metric: str = ""
    labels: tuple[tuple[str, str], ...] = ()
    degraded_burn: float = 1.0
    breach_burn: float = 2.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(
                f"unknown SLO kind {self.kind!r}; choose from {_KINDS}"
            )
        if self.objective <= 0:
            raise ConfigError("objective must be positive")
        if self.kind in ("rejection_rate",) and not self.objective < 1.0:
            raise ConfigError("rejection_rate objective must be < 1")
        if self.kind == "cache_hit_rate" and not self.objective < 1.0:
            raise ConfigError("cache_hit_rate objective must be < 1")
        if self.kind == "latency" and not 0.0 < self.quantile < 1.0:
            raise ConfigError("quantile must be in (0, 1)")
        if not 0.0 < self.degraded_burn <= self.breach_burn:
            raise ConfigError(
                "need 0 < degraded_burn <= breach_burn, got "
                f"{self.degraded_burn} / {self.breach_burn}"
            )
        # normalize a dict-shaped labels filter into the frozen form
        if isinstance(self.labels, Mapping):
            object.__setattr__(
                self, "labels",
                tuple(sorted((str(k), str(v)) for k, v in self.labels.items())),
            )

    @property
    def source_metric(self) -> str:
        return self.metric or _DEFAULT_METRIC[self.kind]

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "objective": self.objective,
            "quantile": self.quantile,
            "metric": self.source_metric,
            "labels": dict(self.labels),
            "degraded_burn": self.degraded_burn,
            "breach_burn": self.breach_burn,
        }


#: the out-of-the-box contract ``repro obs health`` and the replay
#: bench evaluate when no spec file is given — deliberately loose
#: (these grade a healthy local replay as healthy; a deployment tunes
#: its own numbers)
DEFAULT_SLOS: tuple[SloSpec, ...] = (
    SloSpec(name="wall-p95", kind="latency", objective=0.25, quantile=0.95),
    SloSpec(name="rejection-rate", kind="rejection_rate", objective=0.05),
    SloSpec(name="queue-saturation", kind="queue_depth", objective=64.0),
    SloSpec(name="plan-cache-hit-rate", kind="cache_hit_rate", objective=0.50),
)


# -- reading a registry snapshot ---------------------------------------

def _matches(sample_labels: Mapping[str, str], spec: SloSpec) -> bool:
    return all(sample_labels.get(k) == v for k, v in spec.labels)


class _View:
    """Read-side adapter over a registry's :meth:`to_dict` form.

    Working on the dict form (not live instruments) makes one code path
    serve live registries, loaded snapshots, and windowed deltas alike.
    """

    def __init__(self, doc: Mapping[str, dict]) -> None:
        self._doc = doc

    def _samples(self, name: str, spec: SloSpec) -> list[dict]:
        family = self._doc.get(name)
        if not family:
            return []
        return [
            s for s in family.get("samples", ())
            if _matches(s.get("labels", {}), spec)
        ]

    def counter_total(self, name: str, spec: SloSpec) -> float:
        return sum(float(s.get("value", 0.0)) for s in self._samples(name, spec))

    def gauge_max(self, name: str, spec: SloSpec) -> float | None:
        values = [float(s.get("value", 0.0)) for s in self._samples(name, spec)]
        return max(values) if values else None

    def histogram_merged(self, name: str, spec: SloSpec) -> dict | None:
        """Samples of one histogram family merged into a single
        distribution (they share the family's bucket layout)."""
        merged: dict | None = None
        for s in self._samples(name, spec):
            if merged is None:
                merged = {
                    "buckets": list(s["buckets"]),
                    "counts": list(s["counts"]),
                    "count": int(s["count"]),
                    "sum": float(s["sum"]),
                }
            else:
                for i, c in enumerate(s["counts"]):
                    merged["counts"][i] += int(c)
                merged["count"] += int(s["count"])
                merged["sum"] += float(s["sum"])
        if merged is None or merged["count"] == 0:
            return None
        return merged


def _delta_doc(current: Mapping[str, dict], base: Mapping[str, dict]) -> dict:
    """``current - base`` for the cumulative kinds; gauges stay current.

    Histogram deltas subtract per-bucket counts (layouts are stable for
    a given family); a family or sample absent from ``base`` passes
    through unchanged.
    """
    out: dict = {}
    for name, family in current.items():
        old_family = base.get(name)
        if family.get("kind") == "gauge" or not old_family:
            out[name] = family
            continue
        old_samples = {
            tuple(sorted(s.get("labels", {}).items())): s
            for s in old_family.get("samples", ())
        }
        samples = []
        for s in family.get("samples", ()):
            old = old_samples.get(tuple(sorted(s.get("labels", {}).items())))
            if old is None:
                samples.append(s)
            elif family.get("kind") == "counter":
                samples.append({
                    "labels": s.get("labels", {}),
                    "value": max(0.0, float(s["value"]) - float(old["value"])),
                })
            else:
                counts = [
                    max(0, int(c) - int(o))
                    for c, o in zip(s["counts"], old["counts"])
                ]
                samples.append({
                    "labels": s.get("labels", {}),
                    "buckets": s["buckets"],
                    "counts": counts,
                    "count": max(0, int(s["count"]) - int(old["count"])),
                    "sum": max(0.0, float(s["sum"]) - float(old["sum"])),
                })
        out[name] = {**family, "samples": samples}
    return out


def _fraction_above(hist: dict, threshold: float) -> float:
    """Fraction of a merged histogram's observations above ``threshold``.

    Buckets fully above the threshold count whole; the straddling
    bucket contributes linearly (same interpolation the quantile
    estimate uses).
    """
    buckets = hist["buckets"]
    counts = hist["counts"]
    total = hist["count"]
    above = 0.0
    lo = 0.0
    for i, n in enumerate(counts):
        hi = buckets[i] if i < len(buckets) else math.inf
        if n:
            if lo >= threshold:
                above += n
            elif hi > threshold:
                if math.isinf(hi):
                    above += n  # overflow bucket: assume above
                else:
                    above += n * (hi - threshold) / (hi - lo)
        lo = hi
    return above / total if total else 0.0


# -- results -----------------------------------------------------------

@dataclass
class ObjectiveResult:
    """One objective's grade: the burn rate and what it means."""

    spec: SloSpec
    burn: float
    status: str
    detail: str
    observed: float | None = None  # the measured quantity, spec units

    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "burn": self.burn,
            "status": self.status,
            "detail": self.detail,
            "observed": self.observed,
        }


@dataclass
class HealthReport:
    """Every objective's grade plus the worst-of overall status."""

    results: list[ObjectiveResult] = field(default_factory=list)
    window_s: float | None = None

    @property
    def status(self) -> str:
        worst = 0
        for r in self.results:
            worst = max(worst, _STATUS_ORDER.index(r.status))
        return _STATUS_ORDER[worst]

    @property
    def breaches(self) -> list[ObjectiveResult]:
        return [r for r in self.results if r.status == "breach"]

    def burning(self, kind: str | None = None) -> list[ObjectiveResult]:
        """Objectives at degraded-or-worse, optionally of one kind."""
        return [
            r for r in self.results
            if r.status != "healthy" and (kind is None or r.spec.kind == kind)
        ]

    def exit_code(self) -> int:
        """Probe-style: 0 healthy, 1 degraded, 2 breach."""
        return _STATUS_ORDER.index(self.status)

    def to_dict(self) -> dict:
        return {
            "schema": HEALTH_SCHEMA,
            "status": self.status,
            "window_s": self.window_s,
            "objectives": [r.to_dict() for r in self.results],
        }

    def save(self, path: "str | Path") -> Path:
        """Atomically write the JSON form; returns the path written."""
        return atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )


def _evaluate_spec(view: _View, spec: SloSpec) -> ObjectiveResult:
    if spec.kind == "latency":
        hist = view.histogram_merged(spec.source_metric, spec)
        if hist is None:
            return ObjectiveResult(
                spec, 0.0, "healthy", "no observations yet", None
            )
        violating = _fraction_above(hist, spec.objective)
        budget = 1.0 - spec.quantile
        burn = violating / budget
        detail = (
            f"{violating:.2%} of requests over {spec.objective:g}s "
            f"(budget {budget:.2%} at p{spec.quantile * 100:g})"
        )
        return ObjectiveResult(spec, burn, _grade(spec, burn), detail, violating)
    if spec.kind == "rejection_rate":
        rejected = view.counter_total(spec.source_metric, spec)
        served = view.counter_total(names.REQUESTS, spec)
        submitted = rejected + served
        if submitted == 0:
            return ObjectiveResult(spec, 0.0, "healthy", "no traffic yet", None)
        rate = rejected / submitted
        burn = rate / spec.objective
        detail = (
            f"{rate:.2%} of {submitted:g} submissions shed "
            f"(objective <= {spec.objective:.2%})"
        )
        return ObjectiveResult(spec, burn, _grade(spec, burn), detail, rate)
    if spec.kind == "queue_depth":
        depth = view.gauge_max(spec.source_metric, spec)
        if depth is None:
            return ObjectiveResult(spec, 0.0, "healthy", "no queue yet", None)
        burn = depth / spec.objective
        detail = f"queue depth {depth:g} (objective <= {spec.objective:g})"
        return ObjectiveResult(spec, burn, _grade(spec, burn), detail, depth)
    # cache_hit_rate
    hits = view.counter_total(spec.source_metric, spec)
    misses = view.counter_total(names.CACHE_MISSES, spec)
    lookups = hits + misses
    if lookups == 0:
        return ObjectiveResult(spec, 0.0, "healthy", "no lookups yet", None)
    hit_rate = hits / lookups
    burn = (1.0 - hit_rate) / (1.0 - spec.objective)
    detail = (
        f"hit rate {hit_rate:.2%} over {lookups:g} lookups "
        f"(floor {spec.objective:.2%})"
    )
    return ObjectiveResult(spec, burn, _grade(spec, burn), detail, hit_rate)


def _grade(spec: SloSpec, burn: float) -> str:
    if burn < spec.degraded_burn:
        return "healthy"
    if burn < spec.breach_burn:
        return "degraded"
    return "breach"


def _publish(report: HealthReport, registry: MetricsRegistry) -> None:
    for r in report.results:
        labels = {"objective": r.spec.name}
        registry.counter(names.SLO_EVALUATIONS, labels).inc()
        registry.gauge(names.SLO_BURN_RATE, labels).set(r.burn)
        if r.status == "breach":
            registry.counter(names.SLO_BREACHES, labels).inc()


def evaluate_registry(
    registry: "MetricsRegistry | Mapping[str, dict]",
    specs: Iterable[SloSpec] = DEFAULT_SLOS,
    *,
    publish: bool = False,
) -> HealthReport:
    """One-shot evaluation over a registry's lifetime totals.

    ``registry`` may be live or the dict form a snapshot loads to.
    ``publish=True`` writes the ``repro_slo_*`` metrics back (requires
    a live registry).
    """
    live = isinstance(registry, MetricsRegistry)
    doc = registry.to_dict() if live else registry
    view = _View(doc)
    report = HealthReport(results=[_evaluate_spec(view, s) for s in specs])
    if publish:
        if not live:
            raise ConfigError("publish=True needs a live MetricsRegistry")
        _publish(report, registry)
    return report


class HealthEvaluator:
    """Rolling-window evaluation of a live registry.

    Each :meth:`evaluate` call snapshots the registry, drops snapshots
    older than ``window_s``, and grades the counter/histogram *delta*
    between now and the oldest retained snapshot (gauges grade at
    their current value). ``now`` is injectable so tests and schedulers
    control the clock; callers pass a monotonic timestamp.
    """

    def __init__(
        self,
        specs: Iterable[SloSpec] = DEFAULT_SLOS,
        *,
        window_s: float = 300.0,
        publish: bool = True,
    ) -> None:
        if window_s <= 0:
            raise ConfigError("window_s must be positive")
        self.specs = tuple(specs)
        self.window_s = float(window_s)
        self.publish = publish
        self._snapshots: list[tuple[float, dict]] = []

    def evaluate(
        self, registry: MetricsRegistry, *, now: float
    ) -> HealthReport:
        doc = registry.to_dict()
        # the base is the snapshot closest to (now - window_s) from the
        # far side: keep the newest out-of-window snapshot so the delta
        # always spans ~window_s, never collapses to lifetime totals
        cutoff = now - self.window_s
        inside = [(t, d) for t, d in self._snapshots if t >= cutoff]
        outside = [(t, d) for t, d in self._snapshots if t < cutoff]
        self._snapshots = (outside[-1:] or []) + inside
        base = self._snapshots[0][1] if self._snapshots else {}
        self._snapshots.append((now, doc))
        view = _View(_delta_doc(doc, base))
        report = HealthReport(
            results=[_evaluate_spec(view, s) for s in self.specs],
            window_s=self.window_s,
        )
        if self.publish:
            _publish(report, registry)
        return report
