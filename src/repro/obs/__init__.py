"""repro.obs — request-scoped tracing, metrics, and exporters.

The observability subsystem the serving stack publishes into:

- :mod:`repro.obs.trace` — a :class:`Tracer` handing out per-request
  span trees (admission → queue → plan-resolution → kernel-launch),
  exported as deterministic JSON lines.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with constant memory.
- :mod:`repro.obs.names` — the standard metric contract (the table in
  ``docs/observability.md``).
- :mod:`repro.obs.export` — JSON-snapshot and Prometheus-text
  exporters, surfaced by the ``repro obs`` CLI.
- :mod:`repro.obs.profile` — self-time attribution over span trees and
  the opt-in sampling profiler (``Engine(profile=ProfileConfig())``),
  exporting folded-stack and speedscope flamegraphs.
- :mod:`repro.obs.health` — declarative :class:`SloSpec` objectives and
  burn-rate evaluation over any registry, producing probe-style
  :class:`HealthReport` grades.

See ``docs/observability.md`` for the span model and metric names.
"""

from repro.obs.export import (
    load_json,
    parse_prometheus,
    render_json,
    render_prometheus,
    write_snapshot,
)
from repro.obs.health import (
    DEFAULT_SLOS,
    HealthEvaluator,
    HealthReport,
    SloSpec,
    evaluate_registry,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.names import STANDARD_METRICS, declare_standard
from repro.obs.profile import (
    NULL_PROFILER,
    ProfileConfig,
    ProfileReport,
    Profiler,
    attribute,
    render_folded,
    render_speedscope,
)
from repro.obs.trace import NULL_SPAN, NULL_TRACE, RequestTrace, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_SLOS",
    "Gauge",
    "HealthEvaluator",
    "HealthReport",
    "Histogram",
    "MetricsRegistry",
    "NULL_PROFILER",
    "NULL_SPAN",
    "NULL_TRACE",
    "ProfileConfig",
    "ProfileReport",
    "Profiler",
    "RequestTrace",
    "STANDARD_METRICS",
    "SloSpec",
    "Span",
    "Tracer",
    "attribute",
    "declare_standard",
    "evaluate_registry",
    "get_registry",
    "load_json",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "render_folded",
    "render_speedscope",
    "set_registry",
    "write_snapshot",
]
