"""repro.obs — request-scoped tracing, metrics, and exporters.

The observability subsystem the serving stack publishes into:

- :mod:`repro.obs.trace` — a :class:`Tracer` handing out per-request
  span trees (admission → queue → plan-resolution → kernel-launch),
  exported as deterministic JSON lines.
- :mod:`repro.obs.metrics` — a :class:`MetricsRegistry` of counters,
  gauges, and fixed-bucket histograms with constant memory.
- :mod:`repro.obs.names` — the standard metric contract (the table in
  ``docs/observability.md``).
- :mod:`repro.obs.export` — JSON-snapshot and Prometheus-text
  exporters, surfaced by the ``repro obs`` CLI.

See ``docs/observability.md`` for the span model and metric names.
"""

from repro.obs.export import (
    load_json,
    parse_prometheus,
    render_json,
    render_prometheus,
    write_snapshot,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.obs.names import STANDARD_METRICS, declare_standard
from repro.obs.trace import NULL_SPAN, NULL_TRACE, RequestTrace, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "NULL_TRACE",
    "RequestTrace",
    "STANDARD_METRICS",
    "Span",
    "Tracer",
    "declare_standard",
    "get_registry",
    "load_json",
    "parse_prometheus",
    "render_json",
    "render_prometheus",
    "set_registry",
    "write_snapshot",
]
