"""``python -m repro.obs`` — same surface as ``repro obs``."""

from repro.obs.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
