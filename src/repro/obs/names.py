"""The observability contract: every standard metric, by name.

These constants are the single source of truth for what the serving
stack publishes. ``docs/observability.md`` renders this table, the
Prometheus exporter emits exactly these families, and the docs test
asserts the two never drift. Adding a metric means adding it *here*
(name + kind + help) and then publishing into it.

Conventions follow Prometheus: ``_total`` suffix on counters,
``_seconds`` on time-valued histograms, labels for the low-cardinality
dimensions (``session``, ``backend``, ``device``).
"""

from __future__ import annotations

from repro.obs.metrics import DEFAULT_TIME_BUCKETS_S, MetricsRegistry

__all__ = ["KERNEL_WALL_BUCKETS_S", "STANDARD_METRICS", "declare_standard"]

# -- serving -----------------------------------------------------------
REQUESTS = "repro_requests_total"
BATCHES = "repro_batches_total"
LAUNCHES = "repro_launches_total"
REJECTIONS = "repro_rejections_total"
QUEUE_DEPTH = "repro_queue_depth"
REQUEST_WALL = "repro_request_wall_seconds"
REQUEST_MODELLED = "repro_request_modelled_seconds"
QUEUE_WAIT = "repro_queue_wait_seconds"
BATCH_SIZE = "repro_batch_size"

# -- kernels -----------------------------------------------------------
KERNEL_WALL = "repro_kernel_wall_seconds"

# -- SLO / health ------------------------------------------------------
SLO_EVALUATIONS = "repro_slo_evaluations_total"
SLO_BREACHES = "repro_slo_breaches_total"
SLO_BURN_RATE = "repro_slo_burn_rate"

# -- plan cache --------------------------------------------------------
CACHE_HITS = "repro_plan_cache_hits_total"
CACHE_MISSES = "repro_plan_cache_misses_total"
CACHE_PROMOTIONS = "repro_plan_cache_promotions_total"
CACHE_ENTRIES = "repro_plan_cache_entries"

# -- re-tuning scheduler -----------------------------------------------
RETUNE_CYCLES = "repro_retune_cycles_total"
RETUNE_TRIGGERS = "repro_retune_triggers_total"
RETUNE_PROMOTIONS = "repro_retune_promotions_total"
RETUNE_COOLDOWN = "repro_retune_cooldown_keys"

# -- fleet gateway (multi-process serving front door) ------------------
FLEET_REQUESTS = "repro_fleet_requests_total"
FLEET_SHED = "repro_fleet_shed_total"
FLEET_RETRIES = "repro_fleet_retries_total"
FLEET_RESTARTS = "repro_fleet_worker_restarts_total"
FLEET_INFLIGHT = "repro_fleet_inflight"
FLEET_WORKERS = "repro_fleet_workers"
FLEET_HEARTBEAT_AGE = "repro_fleet_heartbeat_age"
FLEET_RPC_WALL = "repro_fleet_rpc_wall_seconds"

#: batch sizes are small integers; powers of two up to the default
#: ``BatchPolicy.max_batch_size`` neighbourhood
_BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0)

#: kernel-wall buckets start at 10 ns, not 1 µs: the fastpath backends
#: execute small kernels in hundreds of nanoseconds, which would all
#: collapse into the lowest ``DEFAULT_TIME_BUCKETS_S`` edge and make
#: p50 interpolation meaningless. This override is KERNEL_WALL-only —
#: request-level latencies keep the default layout.
KERNEL_WALL_BUCKETS_S: tuple[float, ...] = tuple(1e-8 * 4**i for i in range(15))

#: ``(name, kind, help, buckets)`` for every metric the stack publishes
STANDARD_METRICS: tuple[tuple[str, str, str, tuple[float, ...] | None], ...] = (
    (REQUESTS, "counter",
     "Requests served, by session.", None),
    (BATCHES, "counter",
     "Coalesced batch executions, by session.", None),
    (LAUNCHES, "counter",
     "Modelled kernel launches, by session.", None),
    (REJECTIONS, "counter",
     "Requests shed by admission control, by session.", None),
    (QUEUE_DEPTH, "gauge",
     "Requests waiting in the micro-batcher at last enqueue, by session.",
     None),
    (REQUEST_WALL, "histogram",
     "Per-request wall latency: queue wait + batch execution.",
     DEFAULT_TIME_BUCKETS_S),
    (REQUEST_MODELLED, "histogram",
     "Per-request modelled kernel latency (calibrated cost model).",
     DEFAULT_TIME_BUCKETS_S),
    (QUEUE_WAIT, "histogram",
     "Time a request spent queued before its batch dispatched.",
     DEFAULT_TIME_BUCKETS_S),
    (BATCH_SIZE, "histogram",
     "Requests coalesced per batch execution.", _BATCH_BUCKETS),
    (KERNEL_WALL, "histogram",
     "Measured wall time of one backend kernel execution, by op and "
     "backend.", KERNEL_WALL_BUCKETS_S),
    (SLO_EVALUATIONS, "counter",
     "SLO health evaluations performed, by objective.", None),
    (SLO_BREACHES, "counter",
     "Health evaluations that found an objective in breach, by "
     "objective.", None),
    (SLO_BURN_RATE, "gauge",
     "Error-budget burn rate at the last health evaluation, by "
     "objective (1.0 = burning exactly the budget).", None),
    (CACHE_HITS, "counter",
     "Plan-cache lookups answered from the cache.", None),
    (CACHE_MISSES, "counter",
     "Plan-cache lookups that fell through to the planner.", None),
    (CACHE_PROMOTIONS, "counter",
     "Plans promoted into the live cache (warm start or re-tune).", None),
    (CACHE_ENTRIES, "gauge",
     "Plans currently resident in the cache.", None),
    (RETUNE_CYCLES, "counter",
     "Re-tuning scheduler observe/decide cycles.", None),
    (RETUNE_TRIGGERS, "counter",
     "Plan keys whose drift triggered a re-sweep.", None),
    (RETUNE_PROMOTIONS, "counter",
     "Plan keys whose re-sweep promoted a changed plan.", None),
    (RETUNE_COOLDOWN, "gauge",
     "Plan keys currently held in re-tune cooldown.", None),
    (FLEET_REQUESTS, "counter",
     "Requests the fleet gateway routed to a worker, by worker.", None),
    (FLEET_SHED, "counter",
     "Requests the gateway shed at a worker's in-flight cap, by "
     "worker.", None),
    (FLEET_RETRIES, "counter",
     "Requests re-sent after being lost to a dying worker, by worker.",
     None),
    (FLEET_RESTARTS, "counter",
     "Worker processes respawned after a crash, by worker.", None),
    (FLEET_INFLIGHT, "gauge",
     "Requests currently in flight to a worker, by worker.", None),
    (FLEET_WORKERS, "gauge",
     "Worker processes currently alive in the pool.", None),
    (FLEET_HEARTBEAT_AGE, "gauge",
     "Seconds since a worker's last heartbeat, by worker.", None),
    (FLEET_RPC_WALL, "histogram",
     "Gateway-observed round-trip wall time of one routed request.",
     DEFAULT_TIME_BUCKETS_S),
)


def declare_standard(registry: MetricsRegistry) -> MetricsRegistry:
    """Pre-register every standard family (empty until published into).

    The engine calls this on its registry at construction so ``repro
    obs export`` names every documented metric even on a freshly
    started — or idle — engine.
    """
    for name, kind, help_line, buckets in STANDARD_METRICS:
        registry.declare(name, kind, help_line, buckets=buckets)
    return registry
