"""Continuous profiling: where time goes *inside* a span.

The tracer (:mod:`repro.obs.trace`) answers "which phase was slow for
this request"; this module answers the next two questions an operator
asks:

- **Self-time attribution** — :func:`attribute` walks finished
  :class:`~repro.obs.trace.RequestTrace` span trees (live objects or
  their exported dict form) and charges each span its *self* time —
  wall minus the wall of its children — aggregated per
  ``phase × backend × plan key``. A phase that is slow only because a
  child is slow attributes nothing to itself, so the table points at
  the code that actually burned the time.
- **Sampling profiler** — a :class:`Profiler` built from a
  :class:`ProfileConfig` and threaded through the serving stack
  (``Engine(profile=ProfileConfig(...))``). The batcher's dispatch and
  every backend ``execute`` call run under :meth:`Profiler.sample`,
  which — for the sampled fraction of calls — captures the current
  Python call stack as a **collapsed-stack** frame list, the phase's
  wall time, and (opt-in) the tracemalloc peak while the phase ran.
  Aggregation is bounded: at most ``max_stacks`` distinct stacks are
  retained per phase; further novel stacks fold into a ``(truncated)``
  bucket rather than growing memory with traffic.

Disabled profiling mirrors the tracer's null-object story: an engine
opened without ``profile=`` holds the falsy :data:`NULL_PROFILER`
singleton whose :meth:`~_NullProfiler.sample` returns a shared no-op
context manager — no allocation, no branching beyond one method call,
per dispatch. The acceptance tests pin the disabled path below 5% of a
request's wall time, exactly like the tracer guard.

Two export formats, both standard flamegraph inputs:

- :func:`render_folded` — ``stack;frames;here count`` lines
  (Brendan Gregg's folded format, ``flamegraph.pl`` input);
- :func:`render_speedscope` — a ``sampled`` speedscope JSON profile
  (https://www.speedscope.app), one profile per phase.
"""

from __future__ import annotations

import json
import random
import threading
import traceback
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterable, Mapping

from repro.errors import ConfigError
from repro.ioutil import atomic_write_text

__all__ = [
    "NULL_PROFILER",
    "PhaseStat",
    "ProfileConfig",
    "ProfileReport",
    "Profiler",
    "attribute",
    "render_folded",
    "render_speedscope",
]

#: schema version stamped into exported profile reports
PROFILE_SCHEMA = 1

#: the synthetic leaf novel stacks fold into once ``max_stacks`` is hit
TRUNCATED_STACK = "(truncated)"


@dataclass(frozen=True)
class ProfileConfig:
    """How an engine profiles itself (pass to ``Engine(profile=...)``).

    ``sample_rate`` is the fraction of profiled calls that capture a
    stack (1.0 = every call; sampling is seeded, so a given call
    sequence samples deterministically). ``memory=True`` additionally
    records the tracemalloc peak over each *sampled* phase — useful,
    but it starts :mod:`tracemalloc` process-wide, which is not free;
    leave it off unless memory is the question. ``max_stacks`` bounds
    the distinct collapsed stacks retained per phase.
    """

    sample_rate: float = 1.0
    memory: bool = False
    max_stacks: int = 256
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0.0 < self.sample_rate <= 1.0:
            raise ConfigError(
                f"sample_rate must be in (0, 1], got {self.sample_rate}"
            )
        if self.max_stacks < 1:
            raise ConfigError("max_stacks must be >= 1")


@dataclass
class PhaseStat:
    """Aggregated samples of one ``(phase, collapsed stack)`` pair."""

    phase: str
    stack: str
    count: int = 0
    wall_s: float = 0.0
    peak_bytes: int = 0  # max tracemalloc peak seen (0 without memory=)

    def to_dict(self) -> dict:
        return {
            "phase": self.phase,
            "stack": self.stack,
            "count": self.count,
            "wall_s": self.wall_s,
            "peak_bytes": self.peak_bytes,
        }


class _Sample:
    """One live sampled phase: times itself, lands in the profiler."""

    __slots__ = ("_profiler", "_phase", "_stack", "_t0", "_mem")

    def __init__(self, profiler: "Profiler", phase: str, stack: str) -> None:
        self._profiler = profiler
        self._phase = phase
        self._stack = stack
        self._t0 = 0.0
        self._mem = False

    def __enter__(self) -> "_Sample":
        if self._profiler.config.memory:
            import tracemalloc

            if not tracemalloc.is_tracing():
                tracemalloc.start()
            tracemalloc.reset_peak()
            self._mem = True
        self._t0 = perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        wall = perf_counter() - self._t0
        peak = 0
        if self._mem:
            import tracemalloc

            _, peak = tracemalloc.get_traced_memory()
        self._profiler._record(self._phase, self._stack, wall, peak)


class _NullSample:
    """The no-op sample an unsampled (or disabled) call receives."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def __enter__(self) -> "_NullSample":
        return self

    def __exit__(self, *exc) -> None:
        pass


class _NullProfiler:
    """The no-op profiler a disabled engine holds (falsy singleton)."""

    __slots__ = ()

    def __bool__(self) -> bool:
        return False

    def sample(self, phase: str) -> _NullSample:
        return NULL_SAMPLE

    def report(self) -> "ProfileReport":
        return ProfileReport(stats=[], sampled=0, skipped=0)


NULL_SAMPLE = _NullSample()
NULL_PROFILER = _NullProfiler()


#: stack frames below these functions are serving-machinery noise the
#: collapsed stack drops (everything from the sample call site down)
_CUT_FUNCTIONS = frozenset(("sample", "__enter__"))


def _collapsed_stack(skip: int = 2) -> str:
    """The current call stack as ``module:function`` frames, root-first,
    joined with ``;`` (the folded-stack separator). ``skip`` drops the
    innermost frames (this helper and its caller)."""
    frames = traceback.extract_stack()[:-skip]
    parts = []
    for f in frames:
        name = Path(f.filename).stem
        if f.name in _CUT_FUNCTIONS and name == "profile":
            continue
        parts.append(f"{name}:{f.name}")
    return ";".join(parts) if parts else "(empty)"


class Profiler:
    """Bounded, thread-safe collector of sampled phase executions.

    The serving stack calls :meth:`sample` around its hot phases; the
    returned context manager is live (captures a stack and times the
    phase) for the configured fraction of calls and the shared no-op
    otherwise. :meth:`report` snapshots the aggregate.
    """

    def __init__(self, config: ProfileConfig | None = None) -> None:
        self.config = config if config is not None else ProfileConfig()
        self.enabled = True
        self._lock = threading.Lock()
        #: (phase, stack) -> PhaseStat, bounded per phase by max_stacks
        self._stats: dict[tuple[str, str], PhaseStat] = {}
        self._stacks_per_phase: dict[str, int] = {}
        self._sampled = 0
        self._skipped = 0
        self._rng = random.Random(self.config.seed)

    def __bool__(self) -> bool:
        return True

    def sample(self, phase: str) -> "_Sample | _NullSample":
        """A context manager timing one phase execution — live for the
        sampled fraction of calls, the shared no-op otherwise."""
        rate = self.config.sample_rate
        if rate < 1.0:
            with self._lock:
                if self._rng.random() >= rate:
                    self._skipped += 1
                    return NULL_SAMPLE
        # capture the stack at entry: identical to the exit stack for a
        # context manager, and it keeps __exit__ thin
        return _Sample(self, phase, _collapsed_stack(skip=2))

    def _record(
        self, phase: str, stack: str, wall_s: float, peak_bytes: int
    ) -> None:
        with self._lock:
            self._sampled += 1
            key = (phase, stack)
            stat = self._stats.get(key)
            if stat is None:
                if self._stacks_per_phase.get(phase, 0) >= self.config.max_stacks:
                    key = (phase, TRUNCATED_STACK)
                    stat = self._stats.get(key)
                if stat is None:
                    stat = self._stats[key] = PhaseStat(phase=phase, stack=key[1])
                    self._stacks_per_phase[phase] = (
                        self._stacks_per_phase.get(phase, 0) + 1
                    )
            stat.count += 1
            stat.wall_s += wall_s
            if peak_bytes > stat.peak_bytes:
                stat.peak_bytes = peak_bytes

    def report(self) -> "ProfileReport":
        """A point-in-time snapshot of everything sampled so far."""
        with self._lock:
            stats = sorted(
                (PhaseStat(**s.to_dict()) for s in self._stats.values()),
                key=lambda s: (-s.wall_s, s.phase, s.stack),
            )
            return ProfileReport(
                stats=stats, sampled=self._sampled, skipped=self._skipped
            )


@dataclass
class ProfileReport:
    """The exportable aggregate of one profiler's samples."""

    stats: list[PhaseStat]
    sampled: int = 0
    skipped: int = 0

    @property
    def phases(self) -> list[str]:
        seen: dict[str, None] = {}
        for s in self.stats:
            seen[s.phase] = None
        return list(seen)

    def phase_totals(self) -> dict[str, dict]:
        """Per-phase roll-up: samples, wall, peak memory."""
        out: dict[str, dict] = {}
        for s in self.stats:
            t = out.setdefault(
                s.phase, {"count": 0, "wall_s": 0.0, "peak_bytes": 0}
            )
            t["count"] += s.count
            t["wall_s"] += s.wall_s
            t["peak_bytes"] = max(t["peak_bytes"], s.peak_bytes)
        return out

    def to_dict(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA,
            "sampled": self.sampled,
            "skipped": self.skipped,
            "phases": self.phase_totals(),
            "stats": [s.to_dict() for s in self.stats],
        }

    @classmethod
    def from_dict(cls, d: Mapping) -> "ProfileReport":
        if d.get("schema") != PROFILE_SCHEMA:
            raise ConfigError(
                f"profile schema {d.get('schema')!r} is not {PROFILE_SCHEMA}"
            )
        return cls(
            stats=[
                PhaseStat(
                    phase=s["phase"], stack=s["stack"], count=int(s["count"]),
                    wall_s=float(s["wall_s"]),
                    peak_bytes=int(s.get("peak_bytes", 0)),
                )
                for s in d.get("stats", ())
            ],
            sampled=int(d.get("sampled", 0)),
            skipped=int(d.get("skipped", 0)),
        )

    def save(self, path: "str | Path") -> Path:
        """Atomically write the speedscope JSON export; returns the path."""
        return atomic_write_text(path, render_speedscope(self) + "\n")


# -- self-time attribution from span trees ------------------------------

def attribute(traces: Iterable) -> list[dict]:
    """Self-time table from finished request traces.

    ``traces`` may be live :class:`~repro.obs.trace.RequestTrace`
    objects (``Tracer.finished()``) or their exported dict form (one
    parsed line of a ``.trace.jsonl`` file). Each span is charged its
    **self** time — wall minus the wall of its child spans — and
    aggregated per ``(phase, backend, plan_key)``. Rows come back
    sorted by total self time, descending::

        rows = attribute(tracer.finished())
        rows[0]  # {"phase": ..., "backend": ..., "plan_key": ...,
                 #  "count": ..., "self_s": ..., "wall_s": ...}
    """
    table: dict[tuple[str, str, str], dict] = {}
    for trace in traces:
        doc = trace if isinstance(trace, dict) else trace.to_dict()
        if doc is None:
            continue
        spans = doc.get("spans", [])
        child_wall: dict[int | None, float] = {}
        for span in spans:
            parent = span.get("parent_id")
            if parent is not None:
                child_wall[parent] = (
                    child_wall.get(parent, 0.0) + float(span.get("wall_s", 0.0))
                )
        for span in spans:
            wall = float(span.get("wall_s", 0.0))
            self_s = max(0.0, wall - child_wall.get(span.get("span_id"), 0.0))
            attrs = span.get("attrs") or {}
            key = (
                str(span.get("name", "?")),
                str(attrs.get("backend") or "-"),
                str(attrs.get("plan_key") or "-"),
            )
            row = table.setdefault(key, {
                "phase": key[0], "backend": key[1], "plan_key": key[2],
                "count": 0, "self_s": 0.0, "wall_s": 0.0,
            })
            row["count"] += 1
            row["self_s"] += self_s
            row["wall_s"] += wall
    return sorted(
        table.values(),
        key=lambda r: (-r["self_s"], r["phase"], r["backend"], r["plan_key"]),
    )


# -- exporters ----------------------------------------------------------

def render_folded(report: ProfileReport, weight: str = "wall_us") -> str:
    """The report as folded-stack lines (``flamegraph.pl`` input).

    One line per distinct stack: frames joined with ``;`` (the phase is
    the root frame), a space, then the integer weight —
    ``wall_us`` (default) or ``samples``.
    """
    if weight not in ("wall_us", "samples"):
        raise ConfigError(f"unknown folded weight {weight!r}")
    lines = []
    for s in report.stats:
        w = s.count if weight == "samples" else round(s.wall_s * 1e6)
        lines.append(f"{s.phase};{s.stack} {int(w)}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_speedscope(report: ProfileReport, name: str = "repro") -> str:
    """The report as a speedscope JSON document (one ``sampled``
    profile per phase; weights are microseconds of sampled wall)."""
    frame_index: dict[str, int] = {}

    def frames_for(stack: str) -> list[int]:
        out = []
        for frame in stack.split(";"):
            if frame not in frame_index:
                frame_index[frame] = len(frame_index)
            out.append(frame_index[frame])
        return out

    profiles = []
    for phase in report.phases:
        samples, weights = [], []
        for s in report.stats:
            if s.phase != phase:
                continue
            samples.append(frames_for(f"{s.phase};{s.stack}"))
            weights.append(round(s.wall_s * 1e6))
        profiles.append({
            "type": "sampled",
            "name": phase,
            "unit": "microseconds",
            "startValue": 0,
            "endValue": sum(weights),
            "samples": samples,
            "weights": weights,
        })
    doc = {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": name,
        "activeProfileIndex": 0,
        "exporter": "repro.obs.profile",
        "shared": {
            "frames": [
                {"name": frame}
                for frame, _ in sorted(frame_index.items(), key=lambda kv: kv[1])
            ]
        },
        "profiles": profiles,
    }
    return json.dumps(doc, sort_keys=True)
