"""Version of the repro library."""

__version__ = "1.0.0"
