"""Fleet artifact packs: one versioned directory of warm-start plans.

An autotune *artifact* is one plan cache + its provenance manifest
(:mod:`repro.autotune.artifact`). A *pack* bundles any number of
artifacts into a single versioned directory the whole fleet boots
from::

    fleet-pack/
      pack.json              <- pack manifest: version, members, fingerprint
      spmm-sweep.json        <- member plan cache (schema-v2)
      spmm-sweep.manifest.json
      attn-sweep.json
      attn-sweep.manifest.json

``pack.json`` records a sha256 digest per member file and a pack-level
**fingerprint** (digest of the member digests), so "did every worker
load the same plans?" is one string comparison across the fleet, and a
truncated copy fails :meth:`FleetPack.verify` before a worker serves
from it. Packs are built by :func:`build_pack` (the ``repro autotune
pack`` / ``repro fleet pack`` CLIs) and consumed by
:class:`~repro.fleet.pool.WorkerPool`, which hands every worker the
pack's plan paths as its ``open_engine(warm_start=...)`` list.
"""

from __future__ import annotations

import hashlib
import json
import shutil
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.autotune.artifact import (
    ArtifactManifest,
    _digest,
    git_describe,
    load_artifact,
    manifest_path,
)
from repro.errors import FleetError, PlanCacheError
from repro.ioutil import atomic_write_text
from repro.version import __version__

__all__ = ["FleetPack", "PackMember", "build_pack"]

#: pack manifest schema version (independent of artifact/plan schemas)
PACK_SCHEMA = 1

#: the pack manifest's fixed file name inside the pack directory
PACK_MANIFEST = "pack.json"


def _file_digest(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()[:12]


@dataclass(frozen=True)
class PackMember:
    """One plan-cache artifact inside a pack."""

    name: str          # member stem, e.g. "spmm-sweep"
    plans: str         # file name of the plan cache inside the pack
    manifest: str      # file name of its provenance manifest ("" if none)
    digest: str        # sha256[:12] of the plan-cache file
    plan_count: int    # plans in the cache at pack time

    def to_dict(self) -> dict:
        return {
            "name": self.name, "plans": self.plans,
            "manifest": self.manifest, "digest": self.digest,
            "plan_count": self.plan_count,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PackMember":
        return cls(
            name=str(d["name"]), plans=str(d["plans"]),
            manifest=str(d.get("manifest", "")),
            digest=str(d["digest"]), plan_count=int(d.get("plan_count", 0)),
        )


@dataclass
class FleetPack:
    """A loaded (or freshly built) fleet pack."""

    root: Path
    version: str = "0"
    git: str = "unknown"
    created_by: str = f"repro-fleet {__version__}"
    members: tuple[PackMember, ...] = ()
    schema: int = PACK_SCHEMA

    # -- identity --------------------------------------------------------
    @property
    def fingerprint(self) -> str:
        """Digest over the member digests: equal packs serve equal plans."""
        return _digest([m.digest for m in sorted(self.members, key=lambda m: m.name)])

    @property
    def plan_count(self) -> int:
        return sum(m.plan_count for m in self.members)

    def plan_paths(self) -> list[Path]:
        """The member plan-cache files, in member order — exactly the
        list a worker passes to ``open_engine(warm_start=...)``."""
        return [self.root / m.plans for m in self.members]

    # -- persistence -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "version": self.version,
            "git": self.git,
            "created_by": self.created_by,
            "fingerprint": self.fingerprint,
            "members": [m.to_dict() for m in self.members],
        }

    def save(self) -> Path:
        return atomic_write_text(
            self.root / PACK_MANIFEST,
            json.dumps(self.to_dict(), indent=2, sort_keys=True),
        )

    @classmethod
    def load(cls, root: "str | Path") -> "FleetPack":
        root = Path(root)
        path = root / PACK_MANIFEST
        try:
            payload = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise FleetError(f"cannot read fleet pack {path}: {exc}") from exc
        if not isinstance(payload, dict):
            raise FleetError(
                f"fleet pack {path} holds {type(payload).__name__}, not an object"
            )
        schema = payload.get("schema")
        if schema != PACK_SCHEMA:
            raise FleetError(
                f"unsupported fleet-pack schema {schema!r} "
                f"(supported: {PACK_SCHEMA})"
            )
        try:
            members = tuple(
                PackMember.from_dict(m) for m in payload.get("members", [])
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise FleetError(f"malformed member entry in {path}: {exc}") from exc
        pack = cls(
            root=root,
            version=str(payload.get("version", "0")),
            git=str(payload.get("git", "unknown")),
            created_by=str(payload.get("created_by", "unknown")),
            members=members,
            schema=schema,
        )
        recorded = payload.get("fingerprint")
        if recorded is not None and recorded != pack.fingerprint:
            raise FleetError(
                f"fleet pack {root} fingerprint mismatch: manifest says "
                f"{recorded}, members hash to {pack.fingerprint}"
            )
        return pack

    # -- integrity -------------------------------------------------------
    def verify(self) -> list[str]:
        """Problems with the on-disk pack; empty list means intact.

        Checks every member file exists and still hashes to its recorded
        digest, and that each provenance manifest (when present) parses.
        Like :func:`~repro.autotune.artifact.check_drift` this *names*
        problems rather than raising, so callers choose the severity.
        """
        problems: list[str] = []
        for m in self.members:
            plans = self.root / m.plans
            if not plans.exists():
                problems.append(f"member {m.name!r}: missing plan file {m.plans}")
                continue
            digest = _file_digest(plans)
            if digest != m.digest:
                problems.append(
                    f"member {m.name!r}: plan file digest {digest} != "
                    f"recorded {m.digest} (corrupt or modified copy)"
                )
            if m.manifest:
                mpath = self.root / m.manifest
                if not mpath.exists():
                    problems.append(
                        f"member {m.name!r}: missing manifest {m.manifest}"
                    )
                else:
                    try:
                        ArtifactManifest.load(mpath)
                    except PlanCacheError as exc:
                        problems.append(f"member {m.name!r}: {exc}")
        return problems

    def summary(self) -> dict:
        """Small status dict for CLIs and the gateway's ``status()``."""
        return {
            "root": str(self.root),
            "version": self.version,
            "fingerprint": self.fingerprint,
            "members": len(self.members),
            "plans": self.plan_count,
        }


def build_pack(
    artifacts: Sequence["str | Path"],
    out: "str | Path",
    version: str = "0",
) -> FleetPack:
    """Copy plan-cache artifacts into ``out`` and write ``pack.json``.

    Each entry in ``artifacts`` is a plan-cache path (its sibling
    ``*.manifest.json`` rides along when present). Every artifact is
    parsed before it is admitted — a corrupt cache fails the build, not
    the fleet boot. Duplicate member stems are rejected: two files named
    ``plans.json`` from different directories would collide in the pack.
    """
    if not artifacts:
        raise FleetError("a fleet pack needs at least one plan-cache artifact")
    out = Path(out)
    out.mkdir(parents=True, exist_ok=True)
    members: list[PackMember] = []
    seen: set[str] = set()
    for src in artifacts:
        src = Path(src)
        name = src.stem
        if name in seen:
            raise FleetError(
                f"duplicate pack member stem {name!r}: rename one of the "
                f"source artifacts before packing"
            )
        seen.add(name)
        try:
            cache, _manifest = load_artifact(src)
        except PlanCacheError as exc:
            raise FleetError(f"cannot pack artifact {src}: {exc}") from exc
        dst = out / src.name
        if src.resolve() != dst.resolve():
            shutil.copyfile(src, dst)
        src_manifest = manifest_path(src)
        manifest_name = ""
        if src_manifest.exists():
            dst_manifest = out / src_manifest.name
            if src_manifest.resolve() != dst_manifest.resolve():
                shutil.copyfile(src_manifest, dst_manifest)
            manifest_name = src_manifest.name
        members.append(PackMember(
            name=name, plans=src.name, manifest=manifest_name,
            digest=_file_digest(dst), plan_count=len(cache),
        ))
    pack = FleetPack(
        root=out, version=str(version), git=git_describe(),
        members=tuple(sorted(members, key=lambda m: m.name)),
    )
    pack.save()
    return pack
