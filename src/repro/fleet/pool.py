"""The worker pool: spawn, watch, respawn.

:class:`WorkerPool` owns N :class:`_WorkerHandle`\\ s, each a spawned
child process running :func:`repro.fleet.worker.worker_main` plus the
parent end of its duplex pipe. The pool is pure process plumbing — it
knows nothing about requests or placement; the
:class:`~repro.fleet.gateway.Gateway` layers routing, retries and
metrics on top.

The spawn context (never fork) keeps workers safe under the threaded
gateway: a forked child would inherit the parent's locked batcher and
registry locks mid-flight. Worker *slots* are stable: respawning
``w1`` produces a fresh process under the same name, so the placement
ring never changes shape on a crash — only on an operator resize.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from dataclasses import replace
from typing import TYPE_CHECKING

from repro.errors import FleetError
from repro.fleet.worker import WorkerSpec, worker_main

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

__all__ = ["WorkerPool"]

#: default grace period for a worker to boot / exit before escalation
DEFAULT_JOIN_S = 10.0


class _WorkerHandle:
    """One slot: the live process + parent pipe end for a worker name."""

    def __init__(self, spec: WorkerSpec, ctx) -> None:
        self.spec = spec
        self._ctx = ctx
        self.process = None
        self.conn: "Connection | None" = None
        self.restarts = 0
        self.started_at = 0.0

    @property
    def name(self) -> str:
        return self.spec.name

    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()

    def start(self) -> None:
        parent, child = self._ctx.Pipe(duplex=True)
        self.process = self._ctx.Process(
            target=worker_main, args=(self.spec, child),
            name=f"repro-fleet-{self.name}", daemon=True,
        )
        self.process.start()
        child.close()  # the child's end lives in the child now
        self.conn = parent
        self.started_at = time.time()

    def stop(self, timeout: float = DEFAULT_JOIN_S) -> None:
        if self.conn is not None:
            try:
                self.conn.close()
            except OSError:
                pass
            self.conn = None
        if self.process is not None:
            self.process.join(timeout)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout)
            self.process = None

    def kill(self) -> None:
        """SIGKILL the worker process (crash injection / last resort)."""
        if self.process is not None:
            self.process.kill()


class WorkerPool:
    """N named worker slots, spawned from one template spec."""

    def __init__(
        self,
        workers: int,
        spec: WorkerSpec,
        max_restarts: int = 3,
    ) -> None:
        if workers < 1:
            raise FleetError(f"a fleet needs >= 1 worker, got {workers}")
        if max_restarts < 0:
            raise FleetError(f"max_restarts must be >= 0, got {max_restarts}")
        self._ctx = mp.get_context("spawn")
        self.max_restarts = max_restarts
        self._handles: dict[str, _WorkerHandle] = {}
        for i in range(workers):
            name = f"w{i}"
            self._handles[name] = _WorkerHandle(
                replace(spec, name=name), self._ctx
            )

    # -- introspection ---------------------------------------------------
    @property
    def names(self) -> list[str]:
        return sorted(self._handles)

    def __len__(self) -> int:
        return len(self._handles)

    def handle(self, name: str) -> _WorkerHandle:
        try:
            return self._handles[name]
        except KeyError:
            raise FleetError(
                f"unknown worker {name!r} (workers: {self.names})"
            ) from None

    def alive(self) -> list[str]:
        return [n for n, h in sorted(self._handles.items()) if h.alive()]

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        for handle in self._handles.values():
            if not handle.alive():
                handle.start()

    def respawn(self, name: str) -> _WorkerHandle:
        """Replace a dead worker's process in the same slot.

        Raises :class:`~repro.errors.FleetError` once the slot's
        restart budget is spent — a worker that dies on every boot is a
        deployment problem, and looping on it would mask that.
        """
        handle = self.handle(name)
        if handle.restarts >= self.max_restarts:
            raise FleetError(
                f"worker {name!r} exceeded its restart budget "
                f"({self.max_restarts}); not respawning"
            )
        handle.stop(timeout=1.0)
        handle.restarts += 1
        handle.start()
        return handle

    def stop(self, timeout: float = DEFAULT_JOIN_S) -> None:
        for handle in self._handles.values():
            handle.stop(timeout)

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
