"""``python -m repro.fleet`` — alias of the ``repro fleet`` subcommand."""

import sys

from repro.fleet.cli import main

if __name__ == "__main__":
    sys.exit(main())
