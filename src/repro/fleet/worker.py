"""The fleet worker: one warm-started engine behind a pipe RPC loop.

A worker is a child process (spawn context) running
:func:`worker_main`: it opens a normal in-process
:func:`~repro.api.client.open_engine` client — warm-started from the
fleet pack, with its *own* :class:`~repro.obs.MetricsRegistry` (a
registry holds locks and cannot cross a process boundary) — and serves
RPC messages from its end of a duplex ``multiprocessing.Pipe``.

The RPC protocol is deliberately small. Requests from the gateway are
dicts with an ``op``:

``prepare``
    Carries a full typed request *including its operand* plus the
    gateway-assigned session name. The worker builds the prepared
    session and retains the operand; this is the only message that
    ships a matrix, once per (worker, session).
``run``
    Carries the request with its operand stripped (``lhs``/``mask`` is
    ``None``) and the session name. The worker substitutes its retained
    operand — restoring the identity the client facade's
    operand-check demands — and submits; the reply is sent from the
    future's done-callback, so the recv loop never blocks on execution
    and same-session requests still coalesce in the worker's batcher.
``flush`` / ``stats`` / ``shutdown``
    Drain the batcher; report ``summary`` + telemetry + metrics
    snapshots; close the engine and exit.

Replies are ``{"id", "ok": True, "result": ...}`` or ``{"id", "ok":
False, "error": {"type", "message"}}`` — the gateway rebuilds the
typed exception from the ``type`` name, so a worker-side
``AdmissionError`` stays an ``AdmissionError`` at the front door. A
daemon thread interleaves unsolicited ``{"heartbeat": ...}`` frames
(wall time, in-flight count, requests served) that the gateway's
monitor uses for liveness; all sends share one lock since ack, reply
and heartbeat threads write the same pipe.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

from repro.api.requests import Request, SddmmRequest, SpmmRequest
from repro.errors import FleetError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from repro.autotune.policy import RetunePolicy
    from repro.serve.batcher import BatchPolicy

__all__ = ["WorkerSpec", "worker_main"]

#: seconds between unsolicited heartbeat frames
DEFAULT_HEARTBEAT_S = 0.2


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to boot — picklable, since it crosses
    the spawn boundary as a ``Process`` argument."""

    name: str
    device: str = "A100"
    backend: str | None = None
    policy: "BatchPolicy | None" = None
    retune: "RetunePolicy | None" = None
    #: plan-cache files to warm-start from (a pack's ``plan_paths()``)
    warm_start: tuple[str, ...] = ()
    heartbeat_s: float = DEFAULT_HEARTBEAT_S


class _WorkerServer:
    """The in-process state behind one worker's recv loop."""

    def __init__(self, spec: WorkerSpec, conn: "Connection") -> None:
        from repro.api.client import open_engine
        from repro.obs.metrics import MetricsRegistry

        self.spec = spec
        self.conn = conn
        self.client = open_engine(
            device=spec.device,
            backend=spec.backend,
            policy=spec.policy,
            retune=spec.retune,
            warm_start=list(spec.warm_start) or None,
            metrics=MetricsRegistry(),
        )
        #: gateway-assigned session name -> retained operand (or None
        #: for attention, whose request class is pure topology)
        self._operands: dict[str, object] = {}
        self._send_lock = threading.Lock()
        self._inflight_lock = threading.Lock()
        self._inflight = 0
        self._served = 0
        self._stop = threading.Event()

    # -- pipe ------------------------------------------------------------
    def _send(self, message: dict) -> None:
        with self._send_lock:
            try:
                self.conn.send(message)
            except (BrokenPipeError, OSError):
                # gateway went away; the monitor loop will notice EOF
                self._stop.set()

    def _reply(self, msg_id: int, result: object) -> None:
        try:
            self._send({"id": msg_id, "ok": True, "result": result})
        except Exception as exc:  # unpicklable payload, not a dead pipe
            self._send({"id": msg_id, "ok": False, "error": {
                "type": "FleetError",
                "message": f"worker reply failed to serialize: {exc}",
            }})

    def _fail(self, msg_id: int, exc: BaseException) -> None:
        self._send({"id": msg_id, "ok": False, "error": {
            "type": type(exc).__name__, "message": str(exc),
        }})

    # -- heartbeats ------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.spec.heartbeat_s):
            with self._inflight_lock:
                inflight, served = self._inflight, self._served
            self._send({"heartbeat": {
                "time": time.time(), "inflight": inflight, "served": served,
            }})

    # -- message handlers ------------------------------------------------
    def _handle_prepare(self, msg: dict) -> dict:
        request: Request = msg["request"]
        name = request.session
        if not name:
            raise FleetError("prepare message carries no session name")
        if name not in self._operands:
            self.client.prepare(request)
            if isinstance(request, SpmmRequest):
                self._operands[name] = request.lhs
            elif isinstance(request, SddmmRequest):
                self._operands[name] = request.mask
            else:
                self._operands[name] = None
        return {"session": name, "sessions": len(self._operands)}

    def _rebuild(self, request: Request) -> Request:
        """Re-attach the retained operand a run message stripped."""
        name = request.session
        if name not in self._operands:
            raise FleetError(
                f"run for unprepared session {name!r} "
                f"(known: {sorted(self._operands)})"
            )
        operand = self._operands[name]
        if isinstance(request, SpmmRequest):
            return replace(request, lhs=operand)
        if isinstance(request, SddmmRequest):
            return replace(request, mask=operand)
        return request

    def _handle_run(self, msg: dict) -> None:
        msg_id = msg["id"]
        try:
            future = self.client.submit(self._rebuild(msg["request"]))
        except BaseException as exc:
            self._fail(msg_id, exc)
            return
        with self._inflight_lock:
            self._inflight += 1

        def _done(fut) -> None:
            with self._inflight_lock:
                self._inflight -= 1
                self._served += 1
            exc = fut.exception()
            if exc is not None:
                self._fail(msg_id, exc)
            else:
                self._reply(msg_id, fut.result())

        future.add_done_callback(_done)

    def _handle_stats(self) -> dict:
        engine = self.client.engine
        return {
            "name": self.spec.name,
            "summary": engine.summary(),
            "telemetry": self.client.telemetry.snapshot().to_dict(),
            "metrics": self.client.metrics.to_dict(),
            "sessions": sorted(self._operands),
        }

    # -- the loop --------------------------------------------------------
    def serve(self) -> None:
        beat = threading.Thread(
            target=self._heartbeat_loop, name=f"{self.spec.name}-heartbeat",
            daemon=True,
        )
        beat.start()
        try:
            while not self._stop.is_set():
                try:
                    msg = self.conn.recv()
                except (EOFError, OSError):
                    break
                op = msg.get("op")
                msg_id = msg.get("id", -1)
                if op == "run":
                    self._handle_run(msg)
                    continue
                try:
                    if op == "prepare":
                        self._reply(msg_id, self._handle_prepare(msg))
                    elif op == "flush":
                        self.client.engine.flush()
                        self._reply(msg_id, {"flushed": True})
                    elif op == "stats":
                        self._reply(msg_id, self._handle_stats())
                    elif op == "shutdown":
                        self._reply(msg_id, {"stopping": True})
                        break
                    else:
                        raise FleetError(f"unknown fleet RPC op {op!r}")
                except BaseException as exc:
                    self._fail(msg_id, exc)
        finally:
            self._stop.set()
            try:
                self.client.engine.close()
            except Exception:
                pass


def worker_main(spec: WorkerSpec, conn: "Connection") -> None:
    """Process entry point: boot the engine, serve the pipe until EOF
    or ``shutdown``. Module-level so the spawn context can import it."""
    server = _WorkerServer(spec, conn)
    server.serve()
