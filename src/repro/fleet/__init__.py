"""repro.fleet — the sharded multi-process serving front door.

The seventh subsystem: everything below this package serves from one
engine in one process; :mod:`repro.fleet` shards session traffic
across a pool of worker processes, each running a warm-started
:func:`repro.open_engine` client behind a pipe RPC loop.

- :mod:`repro.fleet.placement` — deterministic consistent-hash
  session→worker placement (:class:`PlacementRing`);
- :mod:`repro.fleet.pack` — versioned fleet artifact packs every
  worker warm-starts from (:class:`FleetPack`, :func:`build_pack`);
- :mod:`repro.fleet.worker` / :mod:`repro.fleet.pool` — the spawned
  worker processes and their lifecycle (:class:`WorkerSpec`,
  :class:`WorkerPool`);
- :mod:`repro.fleet.gateway` — the Client-shaped front door with
  failure handling, load shedding and fleet-wide metric aggregation
  (:class:`Gateway`, :func:`open_fleet`);
- ``repro fleet`` — the CLI (``serve --workers N --demo``, ``status``,
  ``pack``).

See ``docs/fleet.md`` for the topology, the failure model and pack
rollout.
"""

from repro.fleet.gateway import (
    FLEET_SLOS,
    FleetConfig,
    Gateway,
    fleet_retune_policy,
    open_fleet,
)
from repro.fleet.pack import FleetPack, PackMember, build_pack
from repro.fleet.placement import PlacementRing
from repro.fleet.pool import WorkerPool
from repro.fleet.worker import WorkerSpec, worker_main

__all__ = [
    "FLEET_SLOS",
    "FleetConfig",
    "FleetPack",
    "Gateway",
    "PackMember",
    "PlacementRing",
    "WorkerPool",
    "WorkerSpec",
    "build_pack",
    "fleet_retune_policy",
    "open_fleet",
    "worker_main",
]
