"""The fleet front door: Client-shaped routing over a worker pool.

:class:`Gateway` exposes the same verb surface as
:class:`repro.api.Client` — ``run`` / ``submit`` / ``submit_async`` +
``result`` for all three typed request kinds — but executes nothing
itself: every request class is *placed* on one worker of a
:class:`~repro.fleet.pool.WorkerPool` by the consistent-hash
:class:`~repro.fleet.placement.PlacementRing` and shipped over that
worker's pipe. Placement is by session name (gateway-assigned for
unnamed requests), so one session's traffic always lands on one
worker, where the worker's micro-batcher coalesces it exactly as the
single-process engine would.

Failure model:

- a worker's pipe reaching EOF (or its process found dead by the
  monitor) marks the worker down; the slot is respawned in place —
  the ring never changes shape on a crash — and every request that was
  in flight to it is **retried exactly once** (on the fresh process,
  or routed around the slot if its restart budget is spent). A request
  lost twice resolves to :class:`~repro.errors.WorkerCrashError`.
- a worker past its restart budget leaves the live set; ring lookups
  exclude it, which migrates its sessions to their next ring point —
  the minimal-movement rebalance.
- each worker has an in-flight cap (``FleetConfig.max_inflight``);
  beyond it the gateway sheds with the same typed
  :class:`~repro.errors.AdmissionError` the in-process batcher uses.

The gateway publishes the ``repro_fleet_*`` metric families into its
own registry and aggregates the workers' registries on demand:
:meth:`Gateway.metrics_snapshot` merges every worker's serving /
cache / retune families (sum counters and gauges, add histogram
buckets) with the gateway's fleet families into one exportable
:class:`~repro.obs.metrics.MetricsRegistry`. :data:`FLEET_SLOS` grades
that merged view; :func:`fleet_retune_policy` pushes the same
load-shed / queue-pressure objectives down into each worker's
:class:`~repro.autotune.RetunePolicy`, closing the loop between fleet
saturation and plan re-tuning (the ``load-shed`` trigger in
:func:`repro.autotune.policy.evaluate_snapshot`).
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as _FutureTimeout
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING

import repro.errors as _errors
from repro.api.requests import (
    AttentionRequest,
    Request,
    Response,
    SddmmRequest,
    SpmmRequest,
    TransformerRequest,
)
from repro.errors import (
    AdmissionError,
    ConfigError,
    EngineClosedError,
    FleetError,
    WorkerCrashError,
)
from repro.fleet.pack import FleetPack
from repro.fleet.placement import PlacementRing
from repro.fleet.pool import WorkerPool
from repro.fleet.worker import DEFAULT_HEARTBEAT_S, WorkerSpec
from repro.obs import names
from repro.obs.health import DEFAULT_SLOS, SloSpec
from repro.obs.metrics import MetricsRegistry
from repro.obs.names import STANDARD_METRICS
from repro.serve.batcher import RequestHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from pathlib import Path

    from repro.autotune.policy import RetunePolicy
    from repro.obs.health import HealthReport
    from repro.serve.batcher import BatchPolicy

__all__ = [
    "FLEET_SLOS",
    "FleetConfig",
    "Gateway",
    "fleet_retune_policy",
    "merge_metric_docs",
    "open_fleet",
]

#: objectives ``Gateway.health`` grades when none are passed: the
#: single-engine defaults over the merged worker registries, plus the
#: gateway's own shed-rate and in-flight saturation signals
FLEET_SLOS: tuple[SloSpec, ...] = DEFAULT_SLOS + (
    SloSpec(name="fleet-shed-rate", kind="rejection_rate",
            objective=0.05, metric=names.FLEET_SHED),
    SloSpec(name="fleet-inflight-saturation", kind="queue_depth",
            objective=48.0, metric=names.FLEET_INFLIGHT),
)


def fleet_retune_policy(policy: "RetunePolicy | None" = None) -> "RetunePolicy":
    """A worker :class:`~repro.autotune.RetunePolicy` that reacts to
    fleet pressure.

    Extends ``policy`` (default: a fresh policy) with worker-local
    queue-depth and rejection-rate objectives, so a worker drowning in
    its share of fleet traffic raises the ``load-shed`` re-tune
    trigger and re-sweeps the plans carrying that traffic. Objectives
    the policy already declares (by name) are kept as-is.
    """
    from repro.autotune.policy import RetunePolicy

    base = policy if policy is not None else RetunePolicy()
    pressure = (
        SloSpec(name="fleet-queue-pressure", kind="queue_depth",
                objective=32.0),
        SloSpec(name="fleet-shed-pressure", kind="rejection_rate",
                objective=0.05),
    )
    present = {s.name for s in base.slos}
    extra = tuple(s for s in pressure if s.name not in present)
    return replace(base, slos=base.slos + extra, retune_on_load_shed=True)


def merge_metric_docs(docs: "list[dict]") -> dict:
    """Merge registry :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
    snapshots into one: counters and gauges sum per label set,
    histogram samples add bucket counts / count / sum and take the
    min/max envelope. Families keep the first snapshot's kind, help
    and bucket layout (every worker declares the same standard
    contract)."""
    merged: dict = {}
    for doc in docs:
        for name, family in doc.items():
            target = merged.setdefault(name, {
                "kind": family.get("kind"),
                "help": family.get("help", ""),
                "samples": [],
            })
            by_labels = {
                tuple(sorted(s.get("labels", {}).items())): s
                for s in target["samples"]
            }
            for sample in family.get("samples", ()):
                key = tuple(sorted(sample.get("labels", {}).items()))
                have = by_labels.get(key)
                if have is None:
                    copy = dict(sample)
                    if "counts" in copy:
                        copy["counts"] = list(copy["counts"])
                        copy["buckets"] = list(copy["buckets"])
                    target["samples"].append(copy)
                    by_labels[key] = copy
                elif "value" in sample:
                    have["value"] = float(have["value"]) + float(sample["value"])
                else:
                    for i, c in enumerate(sample["counts"]):
                        have["counts"][i] += int(c)
                    have["count"] = int(have["count"]) + int(sample["count"])
                    have["sum"] = float(have["sum"]) + float(sample["sum"])
                    for fn, stat in ((min, "min"), (max, "max")):
                        a, b = have.get(stat), sample.get(stat)
                        have[stat] = (
                            fn(v for v in (a, b) if v is not None)
                            if (a is not None or b is not None) else None
                        )
    return merged


@dataclass(frozen=True)
class FleetConfig:
    """One place to configure a fleet deployment.

    ``pack`` points at a :class:`~repro.fleet.pack.FleetPack` directory
    every worker warm-starts from (verified before the first spawn);
    ``warm_start`` appends loose plan-cache artifacts. ``policy`` /
    ``retune`` / ``backend`` / ``device`` forward to every worker's
    :func:`repro.open_engine`. ``max_inflight`` is the per-worker
    shed threshold at the gateway, ``max_restarts`` the per-slot
    respawn budget, ``retry_lost`` the retry-once toggle for requests
    lost to a dying worker.
    """

    workers: int = 2
    device: str = "A100"
    backend: str | None = None
    policy: "BatchPolicy | None" = None
    retune: "RetunePolicy | None" = None
    pack: "str | Path | None" = None
    warm_start: tuple = ()
    max_inflight: int = 32
    max_restarts: int = 3
    heartbeat_s: float = DEFAULT_HEARTBEAT_S
    rpc_timeout_s: float = 60.0
    retry_lost: bool = True

    def __post_init__(self) -> None:
        if self.max_inflight < 1:
            raise ConfigError(f"max_inflight must be >= 1, got {self.max_inflight}")
        if self.rpc_timeout_s <= 0:
            raise ConfigError("rpc_timeout_s must be > 0")


@dataclass
class _Pending:
    """One message awaiting its reply from a worker."""

    worker: str
    kind: str                  # "run" | "prepare" | "flush" | "stats" | ...
    message: dict
    future: Future
    session: str = ""
    attempts: int = 1
    sent_at: float = 0.0


class Gateway:
    """The sharded serving front door. See the module docstring."""

    def __init__(self, config: FleetConfig | None = None, **overrides) -> None:
        cfg = config if config is not None else FleetConfig()
        if overrides:
            cfg = replace(cfg, **overrides)
        self.config = cfg

        self.pack: FleetPack | None = None
        warm = [str(p) for p in cfg.warm_start]
        if cfg.pack is not None:
            self.pack = FleetPack.load(cfg.pack)
            problems = self.pack.verify()
            if problems:
                raise FleetError(
                    "refusing to boot the fleet from a damaged pack: "
                    + "; ".join(problems)
                )
            warm = [str(p) for p in self.pack.plan_paths()] + warm

        spec = WorkerSpec(
            name="w", device=cfg.device, backend=cfg.backend,
            policy=cfg.policy, retune=cfg.retune,
            warm_start=tuple(warm), heartbeat_s=cfg.heartbeat_s,
        )
        self.pool = WorkerPool(cfg.workers, spec, max_restarts=cfg.max_restarts)
        self.ring = PlacementRing(self.pool.names)

        # the gateway's own registry carries only the fleet families;
        # serving/cache/retune families live in the workers and are
        # merged on demand — publishing them here too would double-count
        self.metrics = MetricsRegistry()
        for name, kind, help_line, buckets in STANDARD_METRICS:
            if name.startswith("repro_fleet_"):
                self.metrics.declare(name, kind, help_line, buckets=buckets)

        self._lock = threading.RLock()
        self._ids = itertools.count(1)
        self._pending: dict[int, _Pending] = {}
        self._inflight = {n: 0 for n in self.pool.names}
        self._prepared: dict[str, set[str]] = {n: set() for n in self.pool.names}
        self._send_locks = {n: threading.Lock() for n in self.pool.names}
        self._sessions: dict[object, str] = {}      # routing key -> name
        self._prepare_requests: dict[str, Request] = {}
        self._retained: dict[str, object] = {}      # name -> operand
        self._session_counter = 0
        self._beat: dict[str, dict] = {}
        self._last_beat: dict[str, float] = {}
        self._dead: set[str] = set()
        self._respawning: set[str] = set()
        self._tickets: dict[int, RequestHandle] = {}
        self._ticket_ids = itertools.count(1)
        self._closed = False

        self.pool.start()
        now = time.time()
        for name in self.pool.names:
            self._last_beat[name] = now
            self._start_receiver(name)
        self.metrics.gauge(names.FLEET_WORKERS).set(len(self.pool))
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="fleet-monitor", daemon=True
        )
        self._monitor.start()

    # -- receive side ----------------------------------------------------
    def _start_receiver(self, name: str) -> None:
        conn = self.pool.handle(name).conn
        thread = threading.Thread(
            target=self._receive_loop, args=(name, conn),
            name=f"fleet-recv-{name}", daemon=True,
        )
        thread.start()

    def _receive_loop(self, name: str, conn) -> None:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            except TypeError:
                # conn.close() on another thread nulls the handle while
                # recv() is blocked on it; same meaning as EOF
                break
            beat = msg.get("heartbeat")
            if beat is not None:
                with self._lock:
                    self._beat[name] = beat
                    self._last_beat[name] = time.time()
                continue
            self._resolve(name, msg)
        # EOF: stale pipe after a respawn is expected; a live slot's
        # pipe dying is a crash
        if conn is self.pool.handle(name).conn and not self._closed:
            self._worker_down(name)

    def _resolve(self, name: str, msg: dict) -> None:
        with self._lock:
            pending = self._pending.pop(msg.get("id"), None)
            if pending is not None and pending.kind == "run":
                self._inflight[pending.worker] -= 1
                self.metrics.gauge(
                    names.FLEET_INFLIGHT, {"worker": pending.worker}
                ).set(self._inflight[pending.worker])
        if pending is None:
            return  # reply for a request already failed over
        if msg.get("ok"):
            if pending.kind == "run":
                self.metrics.histogram(names.FLEET_RPC_WALL).observe(
                    time.monotonic() - pending.sent_at
                )
            pending.future.set_result(msg.get("result"))
        else:
            error = msg.get("error") or {}
            cls = getattr(_errors, error.get("type", ""), FleetError)
            if not (isinstance(cls, type) and issubclass(cls, BaseException)):
                cls = FleetError
            pending.future.set_exception(cls(error.get("message", "worker error")))

    # -- liveness / failover ---------------------------------------------
    def _monitor_loop(self) -> None:
        interval = max(self.config.heartbeat_s, 0.05)
        while not self._closed:
            time.sleep(interval)
            if self._closed:
                return
            now = time.time()
            for name in self.pool.names:
                with self._lock:
                    if name in self._dead or name in self._respawning:
                        continue
                    age = now - self._last_beat.get(name, now)
                self.metrics.gauge(
                    names.FLEET_HEARTBEAT_AGE, {"worker": name}
                ).set(age)
                if not self.pool.handle(name).alive():
                    self._worker_down(name)

    def _worker_down(self, name: str) -> None:
        """One worker died: respawn its slot and fail over its traffic."""
        with self._lock:
            if self._closed or name in self._dead or name in self._respawning:
                return
            self._respawning.add(name)
            lost = [
                p for p in self._pending.values() if p.worker == name
            ]
            for p in lost:
                self._pending.pop(p.message["id"], None)
            self._inflight[name] = 0
            self._prepared[name] = set()
            self.metrics.gauge(names.FLEET_INFLIGHT, {"worker": name}).set(0)
        try:
            self.pool.respawn(name)
            self.metrics.counter(
                names.FLEET_RESTARTS, {"worker": name}
            ).inc()
            with self._lock:
                self._last_beat[name] = time.time()
            self._start_receiver(name)
        except FleetError:
            # restart budget spent: take the slot out of placement —
            # its sessions move to their next ring point
            with self._lock:
                self._dead.add(name)
        finally:
            with self._lock:
                self._respawning.discard(name)
            self.metrics.gauge(names.FLEET_WORKERS).set(
                len(self.pool) - len(self._dead)
            )
        for p in lost:
            if p.kind != "run":
                p.future.set_exception(FleetError(
                    f"worker {name!r} died during a {p.kind!r} call"
                ))
            elif not self.config.retry_lost or p.attempts >= 2:
                p.future.set_exception(WorkerCrashError(
                    f"request to session {p.session!r} lost with worker "
                    f"{name!r} (attempt {p.attempts}); not retrying"
                ))
            else:
                try:
                    self._retry(p, died=name)
                except BaseException as exc:
                    p.future.set_exception(exc)

    def _await_ready(self, worker: str, dead_conn=None) -> None:
        """Wait out a respawn-in-progress window for one slot.

        ``dead_conn`` is the pipe the caller just watched break: the
        slot only counts as ready once its handle carries a *different*
        connection, so a retry can never land on the stale pipe before
        the monitor has even noticed the death.
        """
        deadline = time.monotonic() + self.config.rpc_timeout_s
        while time.monotonic() < deadline:
            with self._lock:
                if worker in self._dead:
                    raise FleetError(f"worker {worker!r} is out of service")
                respawning = worker in self._respawning
            handle = self.pool.handle(worker)
            if (
                not respawning
                and handle.conn is not None
                and handle.conn is not dead_conn
                and handle.alive()
            ):
                return
            time.sleep(0.02)
        raise FleetError(
            f"worker {worker!r} did not come back within "
            f"{self.config.rpc_timeout_s:.1f}s"
        )

    def _retry(self, pending: _Pending, died: str, dead_conn=None) -> None:
        target = self.ring.lookup(pending.session, exclude=self._dead)
        self._await_ready(target, dead_conn if target == died else None)
        self._ensure_prepared(target, pending.session)
        message = dict(pending.message)
        with self._lock:
            mid = next(self._ids)
            message["id"] = mid
            self._pending[mid] = replace(
                pending, worker=target, message=message,
                attempts=pending.attempts + 1, sent_at=time.monotonic(),
            )
            self._inflight[target] += 1
            self.metrics.gauge(
                names.FLEET_INFLIGHT, {"worker": target}
            ).set(self._inflight[target])
        self.metrics.counter(names.FLEET_RETRIES, {"worker": died}).inc()
        self._send(target, message)

    # -- send side -------------------------------------------------------
    def _send(self, worker: str, message: dict) -> None:
        conn = self.pool.handle(worker).conn
        if conn is None:
            # mid-respawn; treat like a pipe that broke under us
            self._send_failed(worker, message, None)
            return
        try:
            with self._send_locks[worker]:
                conn.send(message)
        except (BrokenPipeError, OSError):
            # the worker is dying under us; fail this message over now
            # (the receiver's EOF handles everything sent before it)
            self._send_failed(worker, message, conn)

    def _send_failed(self, worker: str, message: dict, dead_conn) -> None:
        with self._lock:
            pending = self._pending.pop(message.get("id"), None)
            if pending is not None and pending.kind == "run":
                self._inflight[worker] = max(0, self._inflight[worker] - 1)
                self.metrics.gauge(
                    names.FLEET_INFLIGHT, {"worker": worker}
                ).set(self._inflight[worker])
        if pending is None:
            return  # the worker-down sweep already owns it
        if pending.kind != "run":
            pending.future.set_exception(FleetError(
                f"worker {worker!r} pipe closed during a "
                f"{pending.kind!r} call"
            ))
        elif self.config.retry_lost and pending.attempts < 2:
            try:
                self._retry(pending, died=worker, dead_conn=dead_conn)
            except BaseException as exc:
                pending.future.set_exception(exc)
        else:
            pending.future.set_exception(WorkerCrashError(
                f"request to session {pending.session!r} lost with "
                f"worker {worker!r} (attempt {pending.attempts}); "
                f"not retrying"
            ))

    def _call(self, worker: str, kind: str, message: dict,
              timeout: float | None = None, _retried: bool = False) -> object:
        """Send one control message and wait for its reply.

        Control calls are cheap and idempotent (prepare / flush /
        stats), so one that dies with the worker is re-issued once
        after the slot respawns.
        """
        future: Future = Future()
        with self._lock:
            mid = next(self._ids)
            sendable = {**message, "id": mid}
            self._pending[mid] = _Pending(
                worker=worker, kind=kind, message=sendable, future=future,
                sent_at=time.monotonic(),
            )
        self._send(worker, sendable)
        try:
            return future.result(
                timeout if timeout is not None else self.config.rpc_timeout_s
            )
        except (TimeoutError, _FutureTimeout):
            with self._lock:
                self._pending.pop(mid, None)
            raise FleetError(
                f"worker {worker!r} did not answer a {kind!r} call within "
                f"{self.config.rpc_timeout_s:.1f}s"
            ) from None
        except FleetError:
            if _retried or self._closed:
                raise
            self._await_ready(worker)
            return self._call(worker, kind, message, timeout, _retried=True)

    # -- request routing -------------------------------------------------
    def _key_for(self, request: Request) -> object:
        if request.session is not None:
            return ("named", request.session)
        if isinstance(request, SpmmRequest):
            return ("spmm", id(request.lhs), request.backend)
        if isinstance(request, SddmmRequest):
            return ("sddmm", id(request.mask), request.backend)
        if isinstance(request, AttentionRequest):
            return ("attention", request.topology)
        if isinstance(request, TransformerRequest):
            return ("transformer", request.topology)
        raise ConfigError(f"unknown request type {type(request).__name__}")

    def _session_name(self, request: Request) -> str:
        key = self._key_for(request)
        with self._lock:
            name = self._sessions.get(key)
            if name is not None:
                return name
            if request.session is not None:
                name = request.session
            else:
                self._session_counter += 1
                name = f"{request.op}#{self._session_counter}"
            self._sessions[key] = name
            # the prepare message ships the operand once per worker;
            # dense payloads (rhs / a / b) stay out of it
            if isinstance(request, SpmmRequest):
                prep = replace(request, session=name, rhs=None)
                self._retained[name] = request.lhs
            elif isinstance(request, SddmmRequest):
                prep = replace(request, session=name, a=None, b=None)
                self._retained[name] = request.mask
            elif isinstance(request, TransformerRequest):
                # ids are the dense payload — they travel per run
                # message, not in the prepare
                prep = replace(request, session=name, ids=None)
                self._retained[name] = None
            else:
                prep = replace(request, session=name)
                self._retained[name] = None
            self._prepare_requests[name] = prep
            return name

    def _check_operand(self, name: str, request: Request) -> None:
        """Same contract as the in-process client: a named session
        serves exactly the operand it was prepared with."""
        retained = self._retained.get(name)
        if isinstance(request, SpmmRequest):
            operand, what = request.lhs, "lhs"
        elif isinstance(request, SddmmRequest):
            operand, what = request.mask, "mask"
        else:
            return
        if operand is not retained:
            raise ConfigError(
                f"fleet session {name!r} was prepared with a different "
                f"{what}; pass the prepared operand (or omit `session=` "
                f"to key by operand identity)"
            )

    def _ensure_prepared(self, worker: str, name: str) -> None:
        with self._lock:
            if name in self._prepared[worker]:
                return
        generation = self.pool.handle(worker).restarts
        self._call(
            worker, "prepare",
            {"op": "prepare", "request": self._prepare_requests[name]},
        )
        with self._lock:
            # a respawn between the ack and here voids the prepare;
            # only record it against the process that acked it
            if self.pool.handle(worker).restarts == generation:
                self._prepared[worker].add(name)

    def _strip(self, request: Request, name: str) -> Request:
        """The run-message form: session pinned, operand stripped (the
        worker re-attaches its retained copy)."""
        if isinstance(request, SpmmRequest):
            return replace(request, session=name, lhs=None)
        if isinstance(request, SddmmRequest):
            return replace(request, session=name, mask=None)
        return replace(request, session=name)

    # -- the Client verbs ------------------------------------------------
    def submit(self, request: Request) -> Future:
        """Route one request to its placed worker; the future resolves
        to its :class:`~repro.api.requests.Response` (or the typed
        error the worker raised)."""
        if self._closed:
            raise EngineClosedError("fleet gateway is closed; submit refused")
        name = self._session_name(request)
        self._check_operand(name, request)
        worker = self.ring.lookup(name, exclude=self._dead)
        self._ensure_prepared(worker, name)
        future: Future = Future()
        with self._lock:
            if self._inflight[worker] >= self.config.max_inflight:
                self.metrics.counter(
                    names.FLEET_SHED, {"worker": worker}
                ).inc()
                raise AdmissionError(
                    f"fleet worker {worker!r} is at its in-flight cap "
                    f"({self.config.max_inflight}); request to session "
                    f"{name!r} shed"
                )
            mid = next(self._ids)
            message = {
                "op": "run", "id": mid,
                "request": self._strip(request, name),
            }
            self._pending[mid] = _Pending(
                worker=worker, kind="run", message=message, future=future,
                session=name, sent_at=time.monotonic(),
            )
            self._inflight[worker] += 1
            self.metrics.gauge(
                names.FLEET_INFLIGHT, {"worker": worker}
            ).set(self._inflight[worker])
        self.metrics.counter(names.FLEET_REQUESTS, {"worker": worker}).inc()
        self._send(worker, message)
        return future

    def submit_async(self, request: Request) -> RequestHandle:
        """Like :meth:`submit`, returning an awaitable ticketed handle
        redeemable via :meth:`result` (also by integer id)."""
        future = self.submit(request)
        with self._lock:
            ticket = next(self._ticket_ids)
            handle = RequestHandle(ticket, future)
            self._tickets[ticket] = handle
        return handle

    def run(self, request: Request) -> Response:
        """Blocking convenience wrapper around :meth:`submit`."""
        return self.submit(request).result(self.config.rpc_timeout_s)

    def result(
        self, request: "RequestHandle | int", timeout: float | None = None
    ) -> Response:
        """Redeem a ticket from :meth:`submit_async`."""
        if isinstance(request, RequestHandle):
            handle = request
        else:
            with self._lock:
                handle = self._tickets.get(request)
            if handle is None:
                if self._closed:
                    raise EngineClosedError(
                        f"fleet gateway is closed; ticket {request!r} "
                        f"cannot resolve"
                    )
                raise ConfigError(f"unknown fleet ticket {request!r}")
        try:
            return handle.result(timeout)
        finally:
            if handle.done():
                with self._lock:
                    self._tickets.pop(handle.id, None)

    # -- fleet operations ------------------------------------------------
    def flush(self) -> None:
        """Dispatch everything queued in every live worker's batcher."""
        for name in self._live():
            self._call(name, "flush", {"op": "flush"})

    def kill_worker(self, name: str) -> None:
        """SIGKILL one worker process (chaos / failover testing — the
        monitor detects the death and respawns the slot)."""
        self.pool.handle(name).kill()

    def worker_stats(self) -> dict:
        """Per-worker ``{name: {summary, telemetry, metrics, ...}}``."""
        return {name: self._call(name, "stats", {"op": "stats"})
                for name in self._live()}

    def metrics_snapshot(self) -> MetricsRegistry:
        """One registry aggregating the whole fleet: every live
        worker's families merged (summed / bucket-added) plus the
        gateway's own ``repro_fleet_*`` families."""
        docs = [
            stats["metrics"] for stats in self.worker_stats().values()
            if isinstance(stats, dict) and "metrics" in stats
        ]
        docs.append(self.metrics.to_dict())
        return MetricsRegistry.from_dict(merge_metric_docs(docs))

    def health(self, specs=None) -> "HealthReport":
        """Grade the merged fleet metrics against SLO objectives
        (default: :data:`FLEET_SLOS`)."""
        from repro.obs.health import evaluate_registry

        return evaluate_registry(
            self.metrics_snapshot(),
            specs if specs is not None else FLEET_SLOS,
        )

    def _live(self) -> list[str]:
        with self._lock:
            dead = set(self._dead)
        return [n for n in self.pool.names if n not in dead]

    def status(self) -> dict:
        """Point-in-time fleet topology for CLIs and tests."""
        now = time.time()
        with self._lock:
            workers = {}
            for name in self.pool.names:
                handle = self.pool.handle(name)
                beat = self._beat.get(name, {})
                workers[name] = {
                    "alive": handle.alive(),
                    "dead": name in self._dead,
                    "restarts": handle.restarts,
                    "inflight": self._inflight.get(name, 0),
                    "served": beat.get("served", 0),
                    "heartbeat_age_s": now - self._last_beat.get(name, now),
                    "sessions": sorted(
                        s for w, prepared in self._prepared.items()
                        if w == name for s in prepared
                    ),
                }
            placement = {
                name: self.ring.lookup(name, exclude=self._dead)
                for name in sorted(self._retained)
            } if len(self._dead) < len(self.pool) else {}
        return {
            "workers": workers,
            "placement": placement,
            "pack": self.pack.summary() if self.pack is not None else None,
            "pending": len(self._pending),
        }

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Shut the fleet down; safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for name in self._live():
            try:
                self._send(name, {"op": "shutdown", "id": next(self._ids)})
            except FleetError:
                pass
        self.pool.stop()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def open_fleet(
    config: FleetConfig | None = None, **overrides
) -> Gateway:
    """Stand up a worker fleet and return its :class:`Gateway` — the
    multi-process sibling of :func:`repro.open_engine`.

    Example::

        from repro.fleet import FleetConfig, open_fleet

        cfg = FleetConfig(workers=2)
        # with open_fleet(cfg) as gateway:
        #     gateway.run(api.AttentionRequest(seq_len=128))
        assert cfg.workers == 2
    """
    return Gateway(config, **overrides)
