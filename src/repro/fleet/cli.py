"""``repro fleet`` — drive the sharded multi-process front door.

Usage::

    repro fleet serve --workers 2 --demo        # mixed traffic demo
    repro fleet serve --workers 3 --demo --kill # + chaos: SIGKILL one
    repro fleet serve --demo --pack fleet-pack  # warm-start from a pack
    repro fleet serve --demo --metrics-out fleet.metrics.json
    repro fleet status --workers 2              # boot, report, shut down
    repro fleet pack plans-a.json plans-b.json --out fleet-pack
    repro fleet pack --check fleet-pack         # verify an existing pack

The demo serves spmm + sddmm + attention sessions through the
gateway, prints the deterministic session→worker placement and the
per-worker request counts, and — with ``--kill`` — SIGKILLs a live
worker mid-stream to exercise respawn + retry-once (the demo fails if
any request errors). ``--metrics-out`` writes the gateway's merged
fleet snapshot in the standard :mod:`repro.obs` JSON form, so
``repro obs summary --metrics fleet.metrics.json`` works on it.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.errors import FleetError, ReproError

__all__ = ["main"]


def _demo_requests(sessions: int):
    """(prepared request factories, one per named session) for the
    demo's mixed traffic."""
    from repro.api.requests import AttentionRequest, SddmmRequest, SpmmRequest
    from repro.core.matrix import SparseMatrix

    rng = np.random.default_rng(7)
    classes = []
    for i in range(sessions):
        dense = (rng.random((64, 64)) < 0.3).astype(np.int8)
        dense[::8, :] = 1  # keep every vector row populated
        lhs = SparseMatrix.from_dense(dense, vector_length=8)
        rhs = np.ones((64, 8), dtype=np.int8)
        classes.append((
            f"spmm-demo-{i}",
            lambda lhs=lhs, rhs=rhs, i=i: SpmmRequest(
                lhs=lhs, rhs=rhs, session=f"spmm-demo-{i}"
            ),
        ))
        mask = SparseMatrix.from_dense(dense, vector_length=8)
        a = np.ones((64, 32), dtype=np.int8)
        b = np.ones((32, 64), dtype=np.int8)
        classes.append((
            f"sddmm-demo-{i}",
            lambda mask=mask, a=a, b=b, i=i: SddmmRequest(
                mask=mask, a=a, b=b, session=f"sddmm-demo-{i}"
            ),
        ))
        classes.append((
            f"attn-demo-{i}",
            lambda i=i: AttentionRequest(
                seq_len=128, num_heads=4, session=f"attn-demo-{i}"
            ),
        ))
    return classes


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.fleet.gateway import FleetConfig, open_fleet

    if not args.demo:
        print("repro fleet serve: only --demo traffic is implemented; "
              "pass --demo", file=sys.stderr)
        return 2
    config = FleetConfig(
        workers=args.workers,
        pack=args.pack,
        max_inflight=args.max_inflight,
    )
    classes = _demo_requests(args.sessions)
    errors: list[str] = []
    retried = 0
    with open_fleet(config) as gateway:
        print(f"fleet up: {len(gateway.pool)} workers"
              + (f", pack {gateway.pack.fingerprint}" if gateway.pack else ""))
        # one priming request per class builds the placement map
        for _name, make in classes:
            gateway.run(make())
        placement = gateway.status()["placement"]
        for session, worker in sorted(placement.items()):
            print(f"  {session:<16} -> {worker}")
        handles = []
        kill_at = args.requests // 2 if args.kill else None
        victim = None
        for n in range(args.requests):
            if kill_at is not None and n == kill_at:
                victim = placement[classes[0][0]]
                print(f"chaos: SIGKILL worker {victim!r} mid-stream")
                gateway.kill_worker(victim)
            _name, make = classes[n % len(classes)]
            try:
                handles.append(gateway.submit_async(make()))
            except ReproError as exc:
                errors.append(f"submit: {type(exc).__name__}: {exc}")
        gateway.flush()
        for handle in handles:
            try:
                gateway.result(handle, timeout=config.rpc_timeout_s)
            except ReproError as exc:
                errors.append(f"result: {type(exc).__name__}: {exc}")
        status = gateway.status()
        doc = gateway.metrics.to_dict()
        retried = sum(
            int(s.get("value", 0))
            for s in doc.get("repro_fleet_retries_total", {}).get("samples", ())
        )
        routed = {
            s.get("labels", {}).get("worker"): int(s.get("value", 0))
            for s in doc.get("repro_fleet_requests_total", {}).get("samples", ())
        }
        for name, info in sorted(status["workers"].items()):
            state = "dead" if info["dead"] else (
                "alive" if info["alive"] else "down")
            print(f"  worker {name}: {state}, routed {routed.get(name, 0)}, "
                  f"restarts {info['restarts']}")
        health = gateway.health()
        print(f"health: {health.status} "
              f"({len(health.results)} objectives, "
              f"{len(health.breaches)} breaching)")
        if args.metrics_out:
            from repro.obs.export import write_snapshot

            write_snapshot(gateway.metrics_snapshot(), args.metrics_out)
            print(f"merged fleet metrics -> {args.metrics_out}")
        if victim is not None:
            print(f"survived the kill: worker {victim!r} respawned, "
                  f"{retried} request(s) retried")
    served = args.requests + len(classes) - len(errors)
    print(f"demo done: {served}/{args.requests + len(classes)} requests "
          f"served, {retried} retried, {len(errors)} errors")
    for line in errors:
        print(f"  error: {line}", file=sys.stderr)
    return 1 if errors else 0


def _cmd_status(args: argparse.Namespace) -> int:
    from repro.fleet.gateway import FleetConfig, open_fleet

    config = FleetConfig(workers=args.workers, pack=args.pack)
    with open_fleet(config) as gateway:
        time.sleep(max(config.heartbeat_s * 2, 0.1))
        status = gateway.status()
        print(json.dumps(status, indent=2, sort_keys=True, default=str))
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from repro.fleet.pack import FleetPack, build_pack

    if args.check:
        pack = FleetPack.load(args.check)
        problems = pack.verify()
        summary = pack.summary()
        print(f"pack {summary['root']}: version {summary['version']}, "
              f"{summary['members']} member(s), {summary['plans']} plan(s), "
              f"fingerprint {summary['fingerprint']}")
        for line in problems:
            print(f"  PROBLEM: {line}", file=sys.stderr)
        return 1 if problems else 0
    if not args.artifacts:
        print("repro fleet pack: pass plan-cache artifacts to bundle, "
              "or --check DIR to verify an existing pack", file=sys.stderr)
        return 2
    pack = build_pack(args.artifacts, args.out, version=args.version)
    summary = pack.summary()
    print(f"packed {summary['members']} artifact(s), {summary['plans']} "
          f"plan(s) -> {summary['root']} "
          f"(version {summary['version']}, "
          f"fingerprint {summary['fingerprint']})")
    return 0


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro fleet",
        description="sharded multi-process serving front door",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser(
        "serve", help="boot a worker fleet and serve demo traffic"
    )
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--demo", action="store_true",
                       help="serve mixed spmm/sddmm/attention traffic")
    serve.add_argument("--requests", type=int, default=48,
                       help="demo requests after the priming pass")
    serve.add_argument("--sessions", type=int, default=2,
                       help="named demo sessions per request kind")
    serve.add_argument("--max-inflight", type=int, default=32)
    serve.add_argument("--pack", default=None,
                       help="fleet-pack directory to warm-start from")
    serve.add_argument("--kill", action="store_true",
                       help="SIGKILL one worker mid-demo (failover drill)")
    serve.add_argument("--metrics-out", default=None,
                       help="write the merged fleet metrics snapshot here")
    serve.set_defaults(fn=_cmd_serve)

    status = sub.add_parser(
        "status", help="boot a fleet, print its status, shut down"
    )
    status.add_argument("--workers", type=int, default=2)
    status.add_argument("--pack", default=None)
    status.set_defaults(fn=_cmd_status)

    pack = sub.add_parser(
        "pack", help="bundle plan-cache artifacts into a fleet pack"
    )
    pack.add_argument("artifacts", nargs="*",
                      help="plan-cache JSON artifacts to bundle")
    pack.add_argument("--out", default="fleet-pack",
                      help="pack directory to write (default: fleet-pack)")
    pack.add_argument("--version", default="0")
    pack.add_argument("--check", default=None, metavar="DIR",
                      help="verify an existing pack instead of building")
    pack.set_defaults(fn=_cmd_pack)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except FleetError as exc:
        print(f"repro fleet: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover - exercised via `repro fleet`
    sys.exit(main())
