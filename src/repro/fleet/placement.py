"""Consistent-hash session placement: which worker owns a session.

The gateway places every serving session on exactly one worker so that
a session's operands are prepared once and its requests batch against
each other. Placement must be *deterministic* (the same session name
lands on the same worker in every process, every run — no seeded
``hash()``) and *stable under resize* (adding or removing one worker
moves only ~``1/n`` of the sessions, not all of them) — the classic
consistent-hash ring with virtual nodes.

Each worker contributes ``vnodes`` points on a 64-bit ring (MD5 of
``"worker:replica"`` — a stable, platform-independent hash; this is
placement, not security). A key maps to the first worker point at or
after its own hash, wrapping at the top. :meth:`PlacementRing.lookup`
takes an ``exclude`` set so the gateway can route *around* a dead
worker without rebuilding the ring — the walk simply continues to the
next live point, which is exactly the minimal-movement rebalance the
failure path needs (and sessions return home when the worker does).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable

from repro.errors import FleetError

__all__ = ["PlacementRing"]

#: ring points contributed per worker; more points = smoother spread
DEFAULT_VNODES = 64


def _point(token: str) -> int:
    """A stable 64-bit ring position for ``token``."""
    return int.from_bytes(
        hashlib.md5(token.encode("utf-8")).digest()[:8], "big"
    )


class PlacementRing:
    """A consistent-hash ring of named workers."""

    def __init__(
        self, workers: Iterable[str] = (), vnodes: int = DEFAULT_VNODES
    ) -> None:
        if vnodes < 1:
            raise FleetError(f"vnodes must be >= 1, got {vnodes}")
        self.vnodes = vnodes
        self._workers: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for name in workers:
            self.add(name)

    # -- membership -----------------------------------------------------
    @property
    def workers(self) -> list[str]:
        return sorted(self._workers)

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, name: str) -> bool:
        return name in self._workers

    def add(self, name: str) -> None:
        """Add a worker's points (idempotent for a present worker)."""
        if name in self._workers:
            return
        self._workers.add(name)
        for i in range(self.vnodes):
            bisect.insort(self._points, (_point(f"{name}:{i}"), name))

    def remove(self, name: str) -> None:
        """Drop a worker's points; keys it owned move to their next
        point (the minimal-movement property)."""
        if name not in self._workers:
            return
        self._workers.discard(name)
        self._points = [p for p in self._points if p[1] != name]

    # -- placement ------------------------------------------------------
    def lookup(self, key: str, exclude: "set[str] | frozenset[str]" = frozenset()) -> str:
        """The worker owning ``key``, skipping ``exclude``\\ d workers.

        Walks clockwise from the key's hash to the first point whose
        worker is not excluded; raises :class:`~repro.errors.FleetError`
        when no live worker remains.
        """
        live = self._workers - set(exclude)
        if not live:
            raise FleetError(
                f"placement ring has no live worker for key {key!r} "
                f"(workers={sorted(self._workers)}, excluded={sorted(exclude)})"
            )
        h = _point(key)
        start = bisect.bisect_left(self._points, (h, ""))
        n = len(self._points)
        for step in range(n):
            _, worker = self._points[(start + step) % n]
            if worker in live:
                return worker
        raise FleetError(f"no ring point for key {key!r}")  # pragma: no cover

    def assignments(
        self, keys: Iterable[str],
        exclude: "set[str] | frozenset[str]" = frozenset(),
    ) -> dict[str, str]:
        """``{key: worker}`` for every key (the rebalance-diff helper)."""
        return {key: self.lookup(key, exclude) for key in keys}
