"""``repro`` — the single console entry point.

Usage::

    repro serve --demo                  # batched serving demo
    repro serve --plan spmm:512x512x256:v=8:s=0.9
    repro autotune sweep --out plans.json
    repro autotune verify plans.json
    repro bench backends                # registered-backend sweep
    repro bench fig14 table2

Each subcommand delegates to the matching subsystem CLI
(:mod:`repro.serve.cli`, :mod:`repro.autotune.cli`,
:mod:`repro.bench.cli`) with the remaining arguments untouched, so
``repro serve --demo`` and the old ``repro-serve --demo`` accept the
same flags. The pre-v1 per-subsystem entry points (``repro-serve``,
``repro-autotune``, ``repro-bench``) are deprecation shims over these
subcommands.
"""

from __future__ import annotations

import argparse
import importlib
import sys
import warnings

from repro.version import __version__

#: subcommand -> (module with a ``main(argv) -> int``, help line)
_COMMANDS: dict[str, tuple[str, str]] = {
    "serve": (
        "repro.serve.cli",
        "batched serving demo and planner inspection",
    ),
    "autotune": (
        "repro.autotune.cli",
        "offline sweeps that ship warm plan caches (sweep/export/verify/diff)",
    ),
    "bench": (
        "repro.bench.cli",
        "regenerate the paper's tables and figures, plus serving benchmarks",
    ),
    "obs": (
        "repro.obs.cli",
        "inspect metrics snapshots and request traces (summary/tail/export)",
    ),
    "fleet": (
        "repro.fleet.cli",
        "sharded multi-process serving front door (serve/status/pack)",
    ),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Magicube (SC'22) reproduction — one typed API, one CLI. "
            "Run a subcommand with -h for its own flags."
        ),
    )
    # --version is dispatched manually in main() (the parser only
    # renders help); declare it here so it shows up in --help
    parser.add_argument(
        "--version", action="store_true", help="print the version and exit"
    )
    sub = parser.add_subparsers(
        dest="command", metavar="{serve,autotune,bench,obs,fleet}"
    )
    for name, (_module, help_line) in _COMMANDS.items():
        sub.add_parser(name, help=help_line, add_help=False)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    parser = _build_parser()
    if not argv:
        parser.print_help()
        return 2
    if argv[0] in ("-h", "--help"):
        parser.print_help()
        return 0
    if argv[0] == "--version":
        print(f"repro {__version__}")
        return 0
    command, rest = argv[0], argv[1:]
    if command not in _COMMANDS:
        parser.print_usage(sys.stderr)
        print(
            f"repro: unknown command {command!r}; "
            f"expected one of {sorted(_COMMANDS)}",
            file=sys.stderr,
        )
        return 2
    module = importlib.import_module(_COMMANDS[command][0])
    return module.main(rest)


def _legacy_main(old: str, command: str, argv: list[str] | None) -> int:
    """Run a pre-v1 console script, warning about the replacement."""
    warnings.warn(
        f"the `{old}` entry point is deprecated; use `repro {command}` "
        f"instead (see docs/api.md for the migration table)",
        DeprecationWarning,
        stacklevel=3,
    )
    argv = list(sys.argv[1:] if argv is None else argv)
    return main([command, *argv])


def serve_main(argv: list[str] | None = None) -> int:
    """The deprecated ``repro-serve`` entry point."""
    return _legacy_main("repro-serve", "serve", argv)


def autotune_main(argv: list[str] | None = None) -> int:
    """The deprecated ``repro-autotune`` entry point."""
    return _legacy_main("repro-autotune", "autotune", argv)


def bench_main(argv: list[str] | None = None) -> int:
    """The deprecated ``repro-bench`` entry point."""
    return _legacy_main("repro-bench", "bench", argv)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
