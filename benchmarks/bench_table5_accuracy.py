"""Table V: sparse-Transformer test accuracy across precision schemes.

Scaled-down LRA stand-in (see DESIGN.md substitution table): the model
trains on a synthetic long-range classification task with irreducible
label noise, with dense and sparse (0.9 / 0.95) attention masks under
identical hyper-parameters, then evaluates each quantization scheme
through the Fig. 16 functional pipeline.

Paper trend to reproduce: dense ~= sparse-0.9 fp16 ~= 16b-8b >= 8b-8b
>= 8b-4b, and sparsity 0.95 costs about a point across the board.
"""

from conftest import run_once

from repro.bench.figures import table5_accuracy
from repro.bench.report import render_table


def test_table5_accuracy(benchmark):
    results = run_once(benchmark, table5_accuracy)
    rows = [[name, f"{acc * 100:.2f}%"] for name, acc in results.items()]
    print("\n=== Table V: sparse-Transformer test accuracy ===")
    print(render_table(["scheme", "accuracy"], rows))
    benchmark.extra_info.update({k: v for k, v in results.items()})

    dense = results["PyTorch dense (fp32)"]
    assert dense > 0.52  # learned above chance despite label noise

    for tag in ("s=0.9", "s=0.95"):
        fp16 = results[f"vectorSparse fp16 ({tag})"]
        q168 = results[f"Magicube 16b-8b ({tag})"]
        q88 = results[f"Magicube 8b-8b ({tag})"]
        q84 = results[f"Magicube 8b-4b ({tag})"]
        # quantized accuracy stays comparable to fp16 (paper: within
        # ~0.5 points for 16b-8b, slightly more as bits shrink)
        assert abs(q168 - fp16) < 0.08
        assert abs(q88 - fp16) < 0.10
        assert abs(q84 - fp16) < 0.12

    # sparse 0.9 stays comparable to dense (paper: 57.3 vs 57.5)
    assert abs(results["Magicube 16b-8b (s=0.9)"] - dense) < 0.10
