"""Fig. 14: SpMM speedup over cublasHgemm across libraries.

Paper shapes: Magicube beats every sparse library; practical speedup
over dense fp16 appears above ~0.7 sparsity; cuBLAS-int8 sits *below*
cuBLAS-fp16; Magicube L8-R8 averages ~1.4x over cuSPARSE-int8 and
L16-R8 well over vectorSparse.
"""

from conftest import run_once

from repro.bench.figures import fig14_spmm_speedup
from repro.bench.report import render_series
from repro.bench.runner import geomean
from repro.dlmc.dataset import SPARSITIES


def test_fig14_spmm_speedup(benchmark, dlmc_count):
    results = run_once(
        benchmark, fig14_spmm_speedup, count=dlmc_count, n_values=(128, 256)
    )
    for (v, n), panel in sorted(results.items()):
        libraries = list(next(iter(panel.values())))
        series = {lib: [panel[s][lib] for s in SPARSITIES] for lib in libraries}
        print(f"\n=== Fig. 14 panel V={v}, N={n}: speedup vs cuBLAS fp16 ===")
        print(render_series("sparsity", list(SPARSITIES), series))

    # -- paper shape assertions on the V=8, N=256 panel ------------------
    panel = results[(8, 256)]
    # cuBLAS int8 below fp16 (i.e. below 1.0) at every sparsity
    assert all(panel[s]["cuBLAS (int8)"] < 1.0 for s in SPARSITIES)
    # Magicube reaches practical speedup above 0.7 sparsity
    assert panel[0.9]["Magicube (L8-R8)"] > 1.0
    assert panel[0.98]["Magicube (L4-R4)"] > 1.0
    # Magicube L8-R8 vs cuSPARSE int8: ~1.4x average (paper: 1.44x)
    ratio_bell = geomean(
        panel[s]["Magicube (L8-R8)"] / panel[s]["cuSPARSE (int8)"] for s in SPARSITIES
    )
    assert 1.0 < ratio_bell < 2.2
    # Magicube L16-R8 vs vectorSparse: well above 1 (paper: 2.50x avg)
    ratio_vs = geomean(
        panel[s]["Magicube (L16-R8)"] / panel[s]["vectorSparse (fp16)"]
        for s in SPARSITIES
    )
    assert ratio_vs > 1.3
    # Magicube L8-R8 vs cuBLAS int8 (paper: 2.88x average)
    ratio_cublas8 = geomean(
        panel[s]["Magicube (L8-R8)"] / panel[s]["cuBLAS (int8)"] for s in SPARSITIES
    )
    assert ratio_cublas8 > 1.5
    # speedups grow with sparsity for Magicube
    mg = [panel[s]["Magicube (L8-R8)"] for s in SPARSITIES]
    assert mg[-1] > mg[0]
    benchmark.extra_info.update(
        {
            "avg_vs_cusparse_int8": ratio_bell,
            "avg_vs_vectorsparse": ratio_vs,
            "avg_vs_cublas_int8": ratio_cublas8,
        }
    )
