"""Shared configuration for the benchmark suite.

Every bench regenerates one table or figure of the paper. Results print
to stdout (run with ``-s`` to see the rows) and are attached to
``benchmark.extra_info`` for machine consumption. Environment variable
``REPRO_BENCH_COUNT`` scales the DLMC subsample per sparsity level
(default 3; the paper's full grid is 256).
"""

import os

import pytest


@pytest.fixture(scope="session")
def dlmc_count() -> int:
    return int(os.environ.get("REPRO_BENCH_COUNT", "3"))


def run_once(benchmark, fn, *args, **kwargs):
    """Benchmark an experiment sweep with a single measured round."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
