"""Table II: peak TFLOPS/TOPS and tensor-core share per GPU."""

from conftest import run_once

from repro.bench.report import render_table
from repro.gpu.device import get_device, list_devices


def build_rows():
    rows = []
    for name in ("V100", "A100", "H100"):
        dev = get_device(name)
        cells = [name]
        for precision in ("fp16", "int8", "int4"):
            if dev.supports(precision):
                rate = dev.peaks[precision]
                cells.append(f"{rate.total:g} ({rate.tensor_fraction * 100:.1f}%)")
            else:
                cells.append("-")
        rows.append(cells)
    return rows


def test_table2_peak_throughput(benchmark):
    rows = run_once(benchmark, build_rows)
    print("\n=== Table II: total peak TFLOPS/TOPS (tensor-core share) ===")
    print(render_table(["GPU", "fp16", "int8", "int4"], rows))
    # the paper's three GPUs plus the MI250X extension (Discussion a)
    assert set(list_devices()) >= {"V100", "A100", "H100"}
    # the paper's headline cells
    assert rows[1][3] == "1248 (100.0%)"  # A100 int4: all tensor cores
    assert rows[0][2] == "-"  # V100: no int8 tensor cores
