"""Table III: MMA shapes supported on Tensor cores for int4/int8."""

import numpy as np
from conftest import run_once

from repro.bench.report import render_table
from repro.gpu.mma import mma_shape_for, mma_tile, supported_shapes


def build_and_verify():
    rows = []
    for bits in (4, 8):
        shapes = supported_shapes(bits)
        rows.append([f"int{bits}/uint{bits}", ", ".join(s.name for s in shapes)])
    # functionally verify the highlighted (smallest) shapes execute
    rng = np.random.default_rng(0)
    for bits in (8, 4):
        s = mma_shape_for(bits)
        lim = 1 << (bits - 1)
        a = rng.integers(-lim, lim, size=(s.m, s.k))
        b = rng.integers(-lim, lim, size=(s.k, s.n))
        np.testing.assert_array_equal(mma_tile(a, b, bits), a @ b)
    return rows


def test_table3_mma_shapes(benchmark):
    rows = run_once(benchmark, build_and_verify)
    print("\n=== Table III: matrix shapes for mma on Tensor cores ===")
    print(render_table(["Precision", "Supported shapes"], rows))
    assert rows[0][1] == "m8n8k32, m16n8k32, m16n8k64"
    assert rows[1][1] == "m8n8k16, m16n8k16, m16n8k32"
