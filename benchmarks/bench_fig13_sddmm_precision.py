"""Fig. 13: Magicube SDDMM TOP/s, basic vs LHS-prefetch variants.

Paper shape: lower precision is faster, but — unlike SpMM — prefetching
the LHS block brings no benefit, because the A tile is shared and reused
by all warps and its latency already hides behind the resident blocks.
"""

from conftest import run_once

from repro.bench.figures import fig13_sddmm_precision
from repro.bench.report import render_table


def test_fig13_sddmm_precision_sweep(benchmark, dlmc_count):
    results = run_once(benchmark, fig13_sddmm_precision, count=dlmc_count)
    headers = ["sparsity", "precision", "basic", "prefetch", "gain"]
    rows = []
    for sparsity, per_precision in results.items():
        for precision, cell in per_precision.items():
            gain = cell["prefetch"] / cell["basic"]
            rows.append([sparsity, precision, cell["basic"], cell["prefetch"], gain])
    print("\n=== Fig. 13: Magicube SDDMM TOP/s (K=256, geomean) ===")
    print(render_table(headers, rows))

    gains = []
    for sparsity, per_precision in results.items():
        # precision ladder holds for SDDMM too
        assert per_precision["L4-R4"]["basic"] > per_precision["L16-R16"]["basic"]
        for cell in per_precision.values():
            gains.append(cell["prefetch"] / cell["basic"])
    # prefetch is NOT beneficial: within a few percent everywhere
    assert max(gains) < 1.25
    benchmark.extra_info["max_prefetch_gain"] = max(gains)
