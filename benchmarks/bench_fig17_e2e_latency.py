"""Fig. 17: end-to-end sparse-Transformer inference latency.

All 8 panels (sparsity x seq_len x heads), batch 2/8, six backends.
Paper shapes: Magicube 1.43-1.63x over vectorSparse at s=0.9/seq 4096,
growing to 1.62-1.92x at seq 8192; dense OOMs at seq 8192 batch 8;
heads 4->8 roughly doubles latency; higher sparsity helps the sparse
schemes only.
"""

from conftest import run_once

from repro.bench.figures import fig17_latency
from repro.bench.report import render_table
from repro.transformer.inference import MAGICUBE_16_8, VECTOR_SPARSE


def test_fig17_end_to_end_latency(benchmark):
    results = run_once(benchmark, fig17_latency)
    for (sparsity, seq, heads), panel in sorted(results.items()):
        print(
            f"\n=== Fig. 17 panel: sparsity={sparsity} seq_len={seq} "
            f"num_heads={heads} (latency ms) ==="
        )
        backends = list(next(iter(panel.values())))
        rows = []
        for batch, row in panel.items():
            rows.append(
                [batch]
                + [f"{row[b]:.2f}" if row[b] is not None else "OOM" for b in backends]
            )
        print(render_table(["batch"] + backends, rows))

    # -- paper shape assertions -----------------------------------------
    vs, mg = VECTOR_SPARSE.label, MAGICUBE_16_8.label
    p = results[(0.9, 4096, 4)]
    speedup_4096 = p[2][vs] / p[2][mg]
    assert 1.2 < speedup_4096 < 2.3
    p8 = results[(0.9, 8192, 4)]
    speedup_8192 = p8[2][vs] / p8[2][mg]
    assert speedup_8192 > speedup_4096  # longer sequences widen the gap

    # dense OOM exactly at seq 8192 / batch 8 (both head counts)
    dense = "PyTorch (cuDNN, fp16)"
    assert results[(0.9, 8192, 4)][8][dense] is None
    assert results[(0.9, 8192, 8)][8][dense] is None
    assert results[(0.9, 8192, 4)][2][dense] is not None
    assert results[(0.9, 4096, 8)][8][dense] is not None

    # heads 4 -> 8 roughly doubles every backend's latency
    a = results[(0.9, 4096, 4)][2][mg]
    b = results[(0.9, 4096, 8)][2][mg]
    assert 1.4 < b / a < 2.6

    # sparsity 0.95 cuts the sparse backends' latency, not the dense one
    assert results[(0.95, 4096, 4)][2][mg] < results[(0.9, 4096, 4)][2][mg]
    assert results[(0.95, 4096, 4)][2][dense] == results[(0.9, 4096, 4)][2][dense]

    benchmark.extra_info["speedup_vs_vectorsparse_4096"] = speedup_4096
    benchmark.extra_info["speedup_vs_vectorsparse_8192"] = speedup_8192
