"""Fig. 12: Magicube SpMM TOP/s across sparsity x precision x V (N=512).

Paper shapes to reproduce: lower precision => higher throughput (with
the L16-R4 < L8-R8 exception at extreme sparsity, where emulation
overhead outweighs the memory saving); larger V => higher throughput;
absolute peak in the tens of TOP/s.
"""

from conftest import run_once

from repro.bench.figures import fig12_spmm_precision
from repro.bench.report import render_table


def test_fig12_spmm_precision_sweep(benchmark, dlmc_count):
    results = run_once(benchmark, fig12_spmm_precision, count=dlmc_count)
    headers = ["sparsity", "precision", "V=2", "V=4", "V=8"]
    rows = []
    for sparsity, per_precision in results.items():
        for precision, per_v in per_precision.items():
            rows.append([sparsity, precision, per_v[2], per_v[4], per_v[8]])
    print("\n=== Fig. 12: Magicube SpMM TOP/s (N=512, geomean) ===")
    print(render_table(headers, rows))

    for sparsity, per_precision in results.items():
        # longer vectors help wherever the kernels are actually busy; at
        # extreme sparsity tiny matrices go launch-bound and flatten
        if sparsity <= 0.9:
            for per_v in per_precision.values():
                assert per_v[8] > per_v[2]
        # the monotone precision ladder at V=8 (native pairs)
        assert per_precision["L4-R4"][8] > per_precision["L8-R8"][8]
        assert per_precision["L8-R8"][8] > per_precision["L16-R16"][8]
        # same-LHS, narrower RHS is never slower
        assert per_precision["L8-R4"][8] >= per_precision["L8-R8"][8] * 0.95

    # the paper's Fig. 12 exception: at extreme sparsity the L16-R4
    # emulation overhead cancels its memory saving relative to L8-R8 —
    # the int4-RHS advantage shrinks as sparsity grows
    gap_low = results[0.5]["L8-R4"][8] / results[0.5]["L8-R8"][8]
    gap_high = results[0.98]["L8-R4"][8] / results[0.98]["L8-R8"][8]
    assert gap_high < gap_low
    assert results[0.98]["L16-R4"][8] < results[0.98]["L8-R4"][8] * 1.02
    benchmark.extra_info["peak_tops_l4r4_v8"] = max(
        res["L4-R4"][8] for res in results.values()
    )
