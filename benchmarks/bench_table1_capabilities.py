"""Table I: supported precisions and sparsity constraints per library."""

from conftest import run_once

from repro.baselines import LIBRARIES, capability_table


def test_table1_capabilities(benchmark):
    table = run_once(benchmark, capability_table)
    print("\n=== Table I: sparse-matrix library capabilities ===")
    print(table)
    benchmark.extra_info["rows"] = len(LIBRARIES)
    # Magicube's unique cell: mixed precision on Tensor cores
    magicube = next(l for l in LIBRARIES if l.name == "Magicube")
    assert magicube.mixed and magicube.int4 and magicube.tensor_cores
    assert not any(l.mixed for l in LIBRARIES if l.name != "Magicube")
