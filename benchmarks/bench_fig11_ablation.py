"""Fig. 11: SpMM optimization ablation on one DLMC matrix (N=512).

Variants accumulate: basic -> conflict-free shared memory -> + RHS
prefetch -> + column-index shuffling (int4 paths). The paper's headline:
every step helps, and shuffling lifts L4-R4/V=8/s=0.7 by ~1.45x on top
of the rest.
"""

from conftest import run_once

from repro.bench.figures import ABLATION_VARIANTS, fig11_ablation
from repro.bench.report import render_table


def test_fig11_optimization_ablation(benchmark):
    results = run_once(benchmark, fig11_ablation)
    variant_names = [name for name, _ in ABLATION_VARIANTS]
    headers = ["sparsity", "precision", "V"] + [
        n.replace("conflict-free", "cf").replace(" + ", "+") for n in variant_names
    ]
    rows = []
    for (sparsity, precision, v), cell in sorted(results.items()):
        rows.append([sparsity, precision, v] + [cell[n] for n in variant_names])
    print("\n=== Fig. 11: SpMM ablation (TOP/s, M=256 K=2304 N=512) ===")
    print(render_table(headers, rows))

    for key, cell in results.items():
        tops = [cell[n] for n in variant_names]
        # each cumulative optimization never hurts
        assert tops[0] <= tops[1] + 1e-9, key
        assert tops[1] <= tops[2] + 1e-9, key
        assert tops[2] <= tops[3] + 1e-9, key

    # shuffling matters specifically on the int4 RHS paths
    int4 = results[(0.7, "L4-R4", 8)]
    shuffle_gain = (
        int4["conflict-free + prefetch + col-index shuffling"]
        / int4["conflict-free + prefetch"]
    )
    benchmark.extra_info["l4r4_shuffle_gain"] = shuffle_gain
    assert shuffle_gain > 1.1
    # ... and is a no-op on pure int8 paths
    int8 = results[(0.7, "L8-R8", 8)]
    assert (
        abs(
            int8["conflict-free + prefetch + col-index shuffling"]
            - int8["conflict-free + prefetch"]
        )
        < 1e-9
    )
