"""Serving-engine throughput: planner + cache + micro-batcher end-to-end.

Runs the ``repro.serve`` demo workload (two prepared SpMM sessions and
one sparse-attention session, a shuffled 120-request stream) and checks
the serving layer's contract: everything is served, requests coalesce
into batches, and the plan cache converts repeated request classes into
hits (> 50%, in practice > 90%).
"""

from conftest import run_once

from repro.bench.report import render_table
from repro.serve.cli import demo


def test_serve_throughput(benchmark):
    summary = run_once(benchmark, demo, num_requests=120, quiet=True)

    total = summary["total"]
    assert total["requests"] == 120
    assert total["batches"] < total["requests"]  # the batcher coalesced
    assert total["mean_batch_size"] > 1.0
    assert total["p50_ms"] <= total["p95_ms"] <= total["p99_ms"]
    assert total["modelled_throughput_rps"] > 0
    assert summary["plan_cache"]["hit_rate"] > 0.5

    print("\n=== Serving engine throughput (mixed spmm + attention) ===")
    rows = [
        [
            name, s["requests"], s["batches"], f"{s['mean_batch_size']:.2f}",
            f"{s['p50_ms']:.4f}", f"{s['p95_ms']:.4f}", f"{s['p99_ms']:.4f}",
            f"{s['modelled_throughput_rps']:.0f}",
        ]
        for name, s in {**summary["sessions"], "TOTAL": total}.items()
    ]
    print(render_table(
        ["session", "req", "batches", "mean batch", "p50 ms", "p95 ms",
         "p99 ms", "model req/s"],
        rows,
    ))
    print("plan cache: {entries} plans, hit rate {hit_rate:.1%}".format(
        **summary["plan_cache"]
    ))
    benchmark.extra_info["plan_cache_hit_rate"] = summary["plan_cache"]["hit_rate"]
    benchmark.extra_info["mean_batch_size"] = total["mean_batch_size"]
    benchmark.extra_info["modelled_throughput_rps"] = total["modelled_throughput_rps"]
