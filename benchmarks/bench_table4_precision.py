"""Table IV: the precision pairs Magicube supports, functionally checked."""

import numpy as np
from conftest import run_once

from repro.bench.report import render_table
from repro.formats import dense_to_srbcrs
from repro.kernels import MagicubeSpMM, SpMMConfig, plan_for, supported_pairs
from repro.kernels.emulation import emulated_matmul


def verify_all_pairs():
    rng = np.random.default_rng(1)
    rows = []
    for op in ("spmm", "sddmm"):
        emulated, native = [], []
        for l, r in supported_pairs(op):
            plan = plan_for(l, r, op)
            # functional spot check of the digit algebra
            a = rng.integers(-(1 << (l - 1)), 1 << (l - 1), size=(8, 16))
            b = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(16, 8))
            np.testing.assert_array_equal(emulated_matmul(a, b, plan), a @ b)
            (native if plan.is_native else emulated).append(plan.name)
        rows.append([op.upper(), ", ".join(emulated), ", ".join(native)])
    return rows


def test_table4_supported_precision(benchmark):
    rows = run_once(benchmark, verify_all_pairs)
    print("\n=== Table IV: precision supported in Magicube ===")
    print(render_table(["Op", "Emulated precision", "Natively supported"], rows))
    assert rows[0][1] == "L16-R16, L16-R8, L16-R4, L12-R4, L8-R4"
    assert rows[0][2] == "L8-R8, L4-R4"
    assert rows[1][1] == "L16-R16"


def test_table4_kernels_execute_every_spmm_pair(benchmark):
    """Each Table-IV SpMM pair runs end to end and matches the reference."""

    def run():
        rng = np.random.default_rng(2)
        from tests.conftest import make_structured_sparse

        checked = 0
        for l, r in supported_pairs("spmm"):
            kern = MagicubeSpMM(SpMMConfig(l_bits=l, r_bits=r))
            dense = make_structured_sparse(rng, 16, 64, 8, 0.6, bits=l)
            lhs = dense_to_srbcrs(dense, 8, kern.required_stride)
            rhs = rng.integers(-(1 << (r - 1)), 1 << (r - 1), size=(64, 32))
            res = kern(lhs, rhs)
            np.testing.assert_array_equal(res.output, dense.astype(np.int64) @ rhs)
            checked += 1
        return checked

    checked = run_once(benchmark, run)
    assert checked == 7
