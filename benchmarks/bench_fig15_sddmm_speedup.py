"""Fig. 15: SDDMM speedup over cublasHgemm across libraries.

Paper shapes: crossover above ~0.7 sparsity, lower precision faster,
Magicube L16-R16 ~1.6x over vectorSparse at V=8, K=256.
"""

from conftest import run_once

from repro.bench.figures import fig15_sddmm_speedup
from repro.bench.report import render_series
from repro.bench.runner import geomean
from repro.dlmc.dataset import SPARSITIES


def test_fig15_sddmm_speedup(benchmark, dlmc_count):
    results = run_once(
        benchmark, fig15_sddmm_speedup, count=dlmc_count, k_values=(128, 256)
    )
    for (v, k), panel in sorted(results.items()):
        libraries = list(next(iter(panel.values())))
        series = {lib: [panel[s][lib] for s in SPARSITIES] for lib in libraries}
        print(f"\n=== Fig. 15 panel V={v}, K={k}: speedup vs cuBLAS fp16 ===")
        print(render_series("sparsity", list(SPARSITIES), series))

    panel = results[(8, 256)]
    # Magicube reaches practical speedup at high sparsity
    assert panel[0.9]["Magicube (L8-R8)"] > 1.0
    # lower precision faster at every sparsity
    for s in SPARSITIES:
        assert panel[s]["Magicube (L4-R4)"] >= panel[s]["Magicube (L16-R16)"]
    # L16-R16 vs vectorSparse fp16 (paper: 1.58x average at V=8, K=256)
    ratio = geomean(
        panel[s]["Magicube (L16-R16)"] / panel[s]["vectorSparse (fp16)"]
        for s in SPARSITIES
    )
    assert ratio > 1.1
    benchmark.extra_info["avg_l16r16_vs_vectorsparse"] = ratio
