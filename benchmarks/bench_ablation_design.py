"""Extension: ablations of design choices DESIGN.md calls out.

Not a paper figure — these benches isolate three decisions the paper
makes without sweeping them:

1. **BSn = 64 vs 128** (Sec. IV-B2 mentions both: 64B vs 128B global
   transactions). Wider tiles amortize LHS re-reads across fewer column
   blocks at the cost of more shared memory per block.
2. **MMA stacking on/off** for emulated precision at V < 8 (Fig. 10b):
   stacking halves the issued MMAs.
3. **SR-BCRS storage overhead vs BCRS**: the stride padding the format
   trades for layout-free LHS loads.
"""

from conftest import run_once

from repro.bench.report import render_table
from repro.bench.runner import build_spmm_workload, time_magicube_spmm
from repro.dlmc.generator import MatrixSpec
from repro.formats import dense_to_bcrs, dense_to_srbcrs
from repro.dlmc.generator import generate_matrix
from repro.gpu.mma import mma_shape_for
from repro.kernels.emulation import mma_count_per_tile, plan_for

SPEC = MatrixSpec("rn50", 256, 2304, 0.8, seed=77)


def test_bsn_tile_width(benchmark):
    """BSn 64 vs 128: wider tiles win at large N, tie at small N."""

    def run():
        rows = []
        for n in (128, 512):
            w = build_spmm_workload(SPEC, 8, n)
            t64 = time_magicube_spmm(w, 8, 8, bsn=64)
            t128 = time_magicube_spmm(w, 8, 8, bsn=128)
            rows.append([n, t64 * 1e6, t128 * 1e6, t64 / t128])
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Design ablation: SpMM BSn tile width (L8-R8, V=8, s=0.8) ===")
    print(render_table(["N", "BSn=64 (us)", "BSn=128 (us)", "64/128"], rows))
    # wider tiles help more at larger N (fewer LHS re-reads)
    assert rows[1][3] >= rows[0][3] * 0.95


def test_mma_stacking_benefit(benchmark):
    """Stacking halves the MMA count for 2-digit emulation at V=4."""

    def run():
        rows = []
        for v in (8, 4, 2):
            plan = plan_for(16, 8)
            per_tile = mma_count_per_tile(plan, v)
            unstacked = plan.products
            rows.append([v, unstacked, per_tile, unstacked / per_tile])
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Design ablation: MMA stacking (L16-R8 emulation) ===")
    print(render_table(["V", "MMAs unstacked", "MMAs stacked", "saving"], rows))
    assert rows[1][3] == 2.0  # V=4: 2 digits stack into one MMA
    assert rows[0][3] == 1.0  # V=8: no headroom


def test_srbcrs_storage_overhead(benchmark):
    """SR-BCRS pays stride padding for its layout-free loads."""

    def run():
        rows = []
        for sparsity in (0.7, 0.9, 0.98):
            spec = MatrixSpec("rn50", 256, 2304, sparsity, seed=5)
            dense = generate_matrix(spec, 8, bits=8)
            bcrs = dense_to_bcrs(dense, 8)
            stride = mma_shape_for(8).k
            sr = dense_to_srbcrs(dense, 8, stride)
            rows.append(
                [
                    sparsity,
                    bcrs.storage_bytes(8),
                    sr.storage_bytes(8),
                    sr.storage_bytes(8) / bcrs.storage_bytes(8),
                    sr.padding_ratio,
                ]
            )
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Design ablation: SR-BCRS vs BCRS storage (int8, V=8) ===")
    print(
        render_table(
            ["sparsity", "BCRS bytes", "SR-BCRS bytes", "ratio", "pad ratio"], rows
        )
    )
    # overhead is modest at DL sparsities and grows toward 0.98 where
    # rows have few vectors relative to the stride
    assert rows[0][3] < rows[2][3]
    assert rows[0][3] < 1.3


def test_smallest_mma_shape_choice(benchmark):
    """The paper picks m8n8k16/m8n8k32; larger m shapes waste rows at
    V <= 8 — quantify the utilization."""

    def run():
        from repro.gpu.mma import supported_shapes

        rows = []
        for bits in (8, 4):
            for shape in supported_shapes(bits):
                util = min(8, shape.m) / shape.m  # V=8 workload
                rows.append([f"int{bits}", shape.name, f"{util * 100:.0f}%"])
        return rows

    rows = run_once(benchmark, run)
    print("\n=== Design ablation: MMA shape utilization at V=8 ===")
    print(render_table(["precision", "shape", "m-dim utilization"], rows))
    # the chosen smallest shapes are the only fully-utilized ones
    assert rows[0][2] == "100%" and rows[3][2] == "100%"
    assert all(r[2] == "50%" for r in (rows[1], rows[2], rows[4], rows[5]))
