"""Gradient checks for the manual-backprop layers."""

import numpy as np

from repro.transformer.layers import (
    Adam,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    cross_entropy,
    softmax,
    softmax_backward,
)


def numerical_grad(f, x, eps=1e-5):
    """Central-difference gradient of scalar f at x."""
    g = np.zeros_like(x)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        i = it.multi_index
        old = x[i]
        x[i] = old + eps
        hi = f()
        x[i] = old - eps
        lo = f()
        x[i] = old
        g[i] = (hi - lo) / (2 * eps)
        it.iternext()
    return g


class TestLinear:
    def test_forward(self):
        rng = np.random.default_rng(0)
        lin = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4)).astype(np.float32)
        np.testing.assert_allclose(
            lin.forward(x), x @ lin.w.value + lin.b.value, rtol=1e-6
        )

    def test_grad_input(self):
        rng = np.random.default_rng(1)
        lin = Linear(4, 3, rng)
        x = rng.normal(size=(2, 4)).astype(np.float64)
        dy = rng.normal(size=(2, 3)).astype(np.float64)
        out_dx = lin.backward_after(x, dy) if hasattr(lin, "backward_after") else None
        lin.forward(x)
        dx = lin.backward(dy)
        num = numerical_grad(lambda: float((lin.forward(x) * dy).sum()), x)
        np.testing.assert_allclose(dx, num, atol=1e-4)

    def test_grad_weight(self):
        rng = np.random.default_rng(2)
        lin = Linear(3, 2, rng)
        x = rng.normal(size=(4, 3)).astype(np.float64)
        dy = rng.normal(size=(4, 2)).astype(np.float64)
        lin.forward(x)
        lin.w.zero_grad()
        lin.backward(dy)
        # weights are float32: a larger eps keeps the perturbation exact
        num = numerical_grad(
            lambda: float((lin.forward(x) * dy).sum()), lin.w.value, eps=1e-3
        )
        np.testing.assert_allclose(lin.w.grad, num, atol=1e-3)

    def test_batched_3d(self):
        rng = np.random.default_rng(3)
        lin = Linear(4, 4, rng)
        x = rng.normal(size=(2, 5, 4)).astype(np.float32)
        y = lin.forward(x)
        assert y.shape == (2, 5, 4)
        dx = lin.backward(np.ones_like(y))
        assert dx.shape == x.shape


class TestLayerNorm:
    def test_normalizes(self):
        ln = LayerNorm(8)
        x = np.random.default_rng(4).normal(3.0, 5.0, size=(10, 8)).astype(np.float32)
        y = ln.forward(x)
        np.testing.assert_allclose(y.mean(axis=-1), 0, atol=1e-5)
        np.testing.assert_allclose(y.std(axis=-1), 1, atol=1e-3)

    def test_grad_input(self):
        rng = np.random.default_rng(5)
        ln = LayerNorm(6)
        x = rng.normal(size=(3, 6)).astype(np.float64)
        dy = rng.normal(size=(3, 6)).astype(np.float64)
        ln.forward(x)
        dx = ln.backward(dy)
        num = numerical_grad(lambda: float((ln.forward(x) * dy).sum()), x)
        np.testing.assert_allclose(dx, num, atol=1e-4)


class TestActivationsAndLoss:
    def test_relu(self):
        r = ReLU()
        x = np.array([[-1.0, 2.0], [3.0, -4.0]])
        np.testing.assert_array_equal(r.forward(x), [[0, 2], [3, 0]])
        np.testing.assert_array_equal(r.backward(np.ones((2, 2))), [[0, 1], [1, 0]])

    def test_softmax_rows_sum_one(self):
        x = np.random.default_rng(6).normal(size=(5, 7))
        np.testing.assert_allclose(softmax(x).sum(axis=-1), 1, rtol=1e-6)

    def test_softmax_masked_rows(self):
        x = np.full((2, 3), -np.inf)
        out = softmax(x)
        assert np.all(np.isfinite(out))

    def test_softmax_backward_matches_numeric(self):
        rng = np.random.default_rng(7)
        x = rng.normal(size=(6,)).astype(np.float64)
        dy = rng.normal(size=(6,)).astype(np.float64)
        probs = softmax(x)
        dx = softmax_backward(probs, dy)
        num = numerical_grad(lambda: float((softmax(x) * dy).sum()), x)
        np.testing.assert_allclose(dx, num, atol=1e-5)

    def test_cross_entropy_grad(self):
        rng = np.random.default_rng(8)
        logits = rng.normal(size=(4, 3)).astype(np.float64)
        labels = np.array([0, 2, 1, 1])
        _, grad = cross_entropy(logits, labels)
        num = numerical_grad(
            lambda: cross_entropy(logits, labels)[0], logits
        )
        np.testing.assert_allclose(grad, num, atol=1e-5)


class TestEmbeddingAndAdam:
    def test_embedding_lookup(self):
        rng = np.random.default_rng(9)
        emb = Embedding(10, 4, rng)
        ids = np.array([[1, 2], [3, 1]])
        out = emb.forward(ids)
        np.testing.assert_array_equal(out[0, 0], emb.table.value[1])

    def test_embedding_grad_accumulates_duplicates(self):
        rng = np.random.default_rng(10)
        emb = Embedding(5, 3, rng)
        ids = np.array([[1, 1]])
        emb.forward(ids)
        emb.backward(np.ones((1, 2, 3)))
        np.testing.assert_allclose(emb.table.grad[1], 2.0)

    def test_adam_reduces_quadratic(self):
        rng = np.random.default_rng(11)
        lin = Linear(4, 1, rng)
        x = rng.normal(size=(64, 4)).astype(np.float32)
        target = x @ np.array([[1.0], [-2.0], [0.5], [3.0]], dtype=np.float32)
        opt = Adam(lin.parameters(), lr=0.05)
        first = None
        for _ in range(200):
            y = lin.forward(x)
            err = y - target
            loss = float((err**2).mean())
            if first is None:
                first = loss
            opt.zero_grad()
            lin.backward(2 * err / err.size)
            opt.step()
        assert loss < first * 0.01
