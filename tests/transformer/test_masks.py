"""Tests for the vector-constrained sparse attention masks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.formats.validate import validate_bcrs
from repro.transformer.masks import (
    mask_statistics,
    mask_to_additive,
    random_vector_mask,
    strided_vector_mask,
)


class TestStridedMask:
    def test_structure_valid(self):
        m = strided_vector_mask(256, vector_length=8)
        validate_bcrs(m)
        assert m.shape == (256, 256)

    def test_vector_constraint(self):
        """Every kept column of a strip covers all V rows."""
        m = strided_vector_mask(128, vector_length=8)
        dense = m.to_dense()
        strips = dense.reshape(16, 8, 128)
        any_kept = strips.any(axis=1)
        all_kept = strips.all(axis=1)
        np.testing.assert_array_equal(any_kept, all_kept)

    def test_diagonal_kept(self):
        m = strided_vector_mask(128, vector_length=8)
        dense = m.to_dense()
        assert np.all(np.diag(dense) != 0)

    def test_local_window_present(self):
        m = strided_vector_mask(256, vector_length=8, local_window=32, stride=128)
        dense = m.to_dense()
        # row 100's strip center is within 16 of column 100
        assert dense[100, 100] != 0

    def test_strided_columns_present(self):
        m = strided_vector_mask(256, vector_length=8, local_window=16, stride=64)
        dense = m.to_dense()
        assert np.all(dense[:, 0] != 0)  # column 0 is a global stride column
        assert np.all(dense[:, 64] != 0)

    def test_causal(self):
        m = strided_vector_mask(128, vector_length=8, causal=True)
        dense = m.to_dense()
        # strip s may attend up to its own last row
        for s in range(16):
            assert not dense[s * 8, s * 8 + 8 :].any()

    def test_bad_length(self):
        with pytest.raises(ConfigError):
            strided_vector_mask(100, vector_length=8)


class TestRandomMask:
    def test_sparsity_near_target(self):
        m = random_vector_mask(512, sparsity=0.9, vector_length=8, seed=1)
        assert abs(m.sparsity - 0.9) < 0.02

    def test_deterministic(self):
        a = random_vector_mask(128, 0.8, seed=5)
        b = random_vector_mask(128, 0.8, seed=5)
        np.testing.assert_array_equal(a.col_indices, b.col_indices)

    def test_bad_sparsity(self):
        with pytest.raises(ConfigError):
            random_vector_mask(128, 1.0)


class TestBandedMask:
    def test_first_offset_block_fully_covered(self):
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(128, 0.9, vector_length=8, offsets=(64, 0), seed=1)
        dense = m.to_dense()
        # every row of strip s attends to the whole partner block s+64
        for s in range(16):
            row = s * 8
            block0 = (s * 8 + 64) % 128
            assert np.all(dense[row, block0 : block0 + 8] != 0)

    def test_partial_coverage_when_budget_short(self):
        """At 0.95 the budget cannot cover both blocks — the structural
        accuracy-loss mechanism of Table V."""
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(128, 0.95, vector_length=8, offsets=(64, 0), seed=1)
        dense = m.to_dense()
        diag_cov = [int((dense[s * 8, s * 8 : s * 8 + 8] != 0).sum()) for s in range(16)]
        assert max(diag_cov) < 8  # the second block is only partial

    def test_target_sparsity(self):
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(512, 0.9, vector_length=8, offsets=(256, 0), seed=2)
        assert abs(m.sparsity - 0.9) < 0.03

    def test_structure_valid(self):
        from repro.formats.validate import validate_bcrs
        from repro.transformer.masks import banded_vector_mask

        validate_bcrs(banded_vector_mask(128, 0.8, offsets=(64, 0), seed=3))

    def test_bad_args(self):
        from repro.transformer.masks import banded_vector_mask

        with pytest.raises(ConfigError):
            banded_vector_mask(100, 0.9)
        with pytest.raises(ConfigError):
            banded_vector_mask(64, 1.5)


class TestHelpers:
    def test_additive_mask(self):
        m = random_vector_mask(64, 0.8, seed=2)
        add = mask_to_additive(m)
        dense = m.to_dense() != 0
        assert np.all(add[dense] == 0.0)
        assert np.all(np.isneginf(add[~dense]))

    def test_statistics(self):
        m = random_vector_mask(128, 0.9, seed=3)
        stats = mask_statistics(m)
        assert stats["vectors"] == m.num_vectors
        assert stats["min_per_strip"] >= 1
