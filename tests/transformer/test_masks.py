"""Tests for the vector-constrained sparse attention masks."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.formats.validate import validate_bcrs
from repro.transformer.masks import (
    mask_statistics,
    mask_to_additive,
    random_vector_mask,
    strided_vector_mask,
)


class TestStridedMask:
    def test_structure_valid(self):
        m = strided_vector_mask(256, vector_length=8)
        validate_bcrs(m)
        assert m.shape == (256, 256)

    def test_vector_constraint(self):
        """Every kept column of a strip covers all V rows."""
        m = strided_vector_mask(128, vector_length=8)
        dense = m.to_dense()
        strips = dense.reshape(16, 8, 128)
        any_kept = strips.any(axis=1)
        all_kept = strips.all(axis=1)
        np.testing.assert_array_equal(any_kept, all_kept)

    def test_diagonal_kept(self):
        m = strided_vector_mask(128, vector_length=8)
        dense = m.to_dense()
        assert np.all(np.diag(dense) != 0)

    def test_local_window_present(self):
        m = strided_vector_mask(256, vector_length=8, local_window=32, stride=128)
        dense = m.to_dense()
        # row 100's strip center is within 16 of column 100
        assert dense[100, 100] != 0

    def test_strided_columns_present(self):
        m = strided_vector_mask(256, vector_length=8, local_window=16, stride=64)
        dense = m.to_dense()
        assert np.all(dense[:, 0] != 0)  # column 0 is a global stride column
        assert np.all(dense[:, 64] != 0)

    def test_causal(self):
        m = strided_vector_mask(128, vector_length=8, causal=True)
        dense = m.to_dense()
        # strip s may attend up to its own last row
        for s in range(16):
            assert not dense[s * 8, s * 8 + 8 :].any()

    def test_bad_length(self):
        with pytest.raises(ConfigError):
            strided_vector_mask(100, vector_length=8)


class TestRandomMask:
    def test_sparsity_near_target(self):
        m = random_vector_mask(512, sparsity=0.9, vector_length=8, seed=1)
        assert abs(m.sparsity - 0.9) < 0.02

    def test_deterministic(self):
        a = random_vector_mask(128, 0.8, seed=5)
        b = random_vector_mask(128, 0.8, seed=5)
        np.testing.assert_array_equal(a.col_indices, b.col_indices)

    def test_bad_sparsity(self):
        with pytest.raises(ConfigError):
            random_vector_mask(128, 1.0)


class TestBandedMask:
    def test_first_offset_block_fully_covered(self):
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(128, 0.9, vector_length=8, offsets=(64, 0), seed=1)
        dense = m.to_dense()
        # every row of strip s attends to the whole partner block s+64
        for s in range(16):
            row = s * 8
            block0 = (s * 8 + 64) % 128
            assert np.all(dense[row, block0 : block0 + 8] != 0)

    def test_partial_coverage_when_budget_short(self):
        """At 0.95 the budget cannot cover both blocks — the structural
        accuracy-loss mechanism of Table V."""
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(128, 0.95, vector_length=8, offsets=(64, 0), seed=1)
        dense = m.to_dense()
        diag_cov = [int((dense[s * 8, s * 8 : s * 8 + 8] != 0).sum()) for s in range(16)]
        assert max(diag_cov) < 8  # the second block is only partial

    def test_target_sparsity(self):
        from repro.transformer.masks import banded_vector_mask

        m = banded_vector_mask(512, 0.9, vector_length=8, offsets=(256, 0), seed=2)
        assert abs(m.sparsity - 0.9) < 0.03

    def test_structure_valid(self):
        from repro.formats.validate import validate_bcrs
        from repro.transformer.masks import banded_vector_mask

        validate_bcrs(banded_vector_mask(128, 0.8, offsets=(64, 0), seed=3))

    def test_bad_args(self):
        from repro.transformer.masks import banded_vector_mask

        with pytest.raises(ConfigError):
            banded_vector_mask(100, 0.9)
        with pytest.raises(ConfigError):
            banded_vector_mask(64, 1.5)


class TestMaskErrorBoundaries:
    """Every builder raises the typed :class:`MaskError` — which IS a
    :class:`ConfigError`, so pre-existing handlers keep working — on
    out-of-contract parameters, never silently accepting them."""

    def test_mask_error_is_config_error(self):
        from repro.errors import MaskError

        assert issubclass(MaskError, ConfigError)

    @pytest.mark.parametrize("length", (0, -8, 7, 100))
    def test_bad_length_every_builder(self, length):
        from repro.errors import MaskError
        from repro.transformer.masks import MASK_ZOO, build_mask

        for variant in MASK_ZOO:
            with pytest.raises(MaskError):
                build_mask(variant, length, vector_length=8)

    @pytest.mark.parametrize("sparsity", (-0.1, 1.0, 1.5))
    def test_bad_sparsity_every_builder(self, sparsity):
        from repro.errors import MaskError
        from repro.transformer.masks import MASK_ZOO, build_mask

        for variant in MASK_ZOO:
            with pytest.raises(MaskError):
                build_mask(variant, 64, sparsity=sparsity)

    def test_sparsity_boundaries_accepted(self):
        """The contract is [0, 1): exactly 0.0 is a legal (dense-ish)
        target; exactly 1.0 is not."""
        from repro.errors import MaskError
        from repro.transformer.masks import build_mask

        assert build_mask("local", 64, sparsity=0.0).sparsity < 1.0
        with pytest.raises(MaskError):
            build_mask("local", 64, sparsity=1.0)

    def test_bad_vector_length(self):
        from repro.errors import MaskError
        from repro.transformer.masks import (
            local_vector_mask,
            strided_vector_mask,
        )

        with pytest.raises(MaskError):
            strided_vector_mask(64, vector_length=0)
        with pytest.raises(MaskError):
            local_vector_mask(64, vector_length=-8)

    def test_bad_window_and_stride(self):
        from repro.errors import MaskError
        from repro.transformer.masks import (
            global_local_vector_mask,
            local_vector_mask,
            strided_vector_mask,
        )

        with pytest.raises(MaskError):
            strided_vector_mask(64, local_window=0)
        with pytest.raises(MaskError):
            strided_vector_mask(64, stride=-1)
        with pytest.raises(MaskError):
            local_vector_mask(64, window=0)
        with pytest.raises(MaskError):
            global_local_vector_mask(64, window=-1)

    def test_unknown_zoo_name(self):
        from repro.errors import MaskError
        from repro.transformer.masks import build_mask

        with pytest.raises(MaskError, match="unknown mask"):
            build_mask("dense", 64)

    def test_legacy_config_error_handlers_still_catch(self):
        """The fix must not break callers written against ConfigError."""
        from repro.transformer.masks import strided_vector_mask

        with pytest.raises(ConfigError):
            strided_vector_mask(100)


class TestMaskZoo:
    def test_variants_sorted_and_complete(self):
        from repro.transformer.masks import MASK_ZOO, mask_variants

        assert mask_variants() == tuple(sorted(MASK_ZOO))
        assert set(mask_variants()) == {
            "local", "strided", "blocked-random", "global-local", "banded",
        }

    def test_zoo_masks_deterministic(self):
        from repro.transformer.masks import build_mask, mask_variants

        for variant in mask_variants():
            a = build_mask(variant, 64, sparsity=0.9, seed=5)
            b = build_mask(variant, 64, sparsity=0.9, seed=5)
            assert np.array_equal(a.to_dense(), b.to_dense())

    def test_zoo_realized_sparsities_distinct(self):
        """The property that makes variants plan-key dimensions: at one
        (length, target) point, the realized sparsities differ."""
        from repro.transformer.masks import build_mask, mask_variants

        realized = {
            v: round(build_mask(v, 128, sparsity=0.9).sparsity, 3)
            for v in mask_variants()
        }
        assert len(set(realized.values())) == len(realized), realized

    def test_local_is_sliding_window(self):
        from repro.transformer.masks import local_vector_mask

        m = local_vector_mask(64, window=16).to_dense()
        rows, cols = np.nonzero(m)
        # every kept column lies within the window of its strip, after
        # V-rounding (strip centers +- window/2, rounded out to strips)
        centers = (rows // 8) * 8 + 4
        assert (np.abs(cols - centers) <= 16 // 2 + 8).all()

    def test_global_local_has_global_columns(self):
        from repro.transformer.masks import global_local_vector_mask

        m = global_local_vector_mask(64, window=8, num_global=2).to_dense()
        # a global column block is attended by every strip
        full_cols = (m != 0).all(axis=0)
        assert full_cols.any()


class TestHelpers:
    def test_additive_mask(self):
        m = random_vector_mask(64, 0.8, seed=2)
        add = mask_to_additive(m)
        dense = m.to_dense() != 0
        assert np.all(add[dense] == 0.0)
        assert np.all(np.isneginf(add[~dense]))

    def test_statistics(self):
        m = random_vector_mask(128, 0.9, seed=3)
        stats = mask_statistics(m)
        assert stats["vectors"] == m.num_vectors
        assert stats["min_per_strip"] >= 1
