"""Tests for the Fig. 17 end-to-end latency model."""

import pytest

from repro.transformer.inference import (
    ALL_BACKENDS,
    MAGICUBE_4_4,
    MAGICUBE_8_8,
    MAGICUBE_16_8,
    PYTORCH_DENSE,
    VECTOR_SPARSE,
    DenseOOM,
    InferenceConfig,
    estimate_latency,
)


def t(cfg, backend):
    return estimate_latency(cfg, backend).total_s


class TestOrdering:
    """The paper's who-wins relations."""

    CFG = InferenceConfig(seq_len=4096, num_heads=4, batch=2, sparsity=0.9)

    def test_magicube_beats_vectorsparse(self):
        assert t(self.CFG, MAGICUBE_16_8) < t(self.CFG, VECTOR_SPARSE)

    def test_vectorsparse_beats_dense(self):
        assert t(self.CFG, VECTOR_SPARSE) < t(self.CFG, PYTORCH_DENSE)

    def test_lower_precision_faster(self):
        assert t(self.CFG, MAGICUBE_4_4) <= t(self.CFG, MAGICUBE_8_8) <= t(
            self.CFG, MAGICUBE_16_8
        )

    def test_vectorsparse_speedup_in_paper_band(self):
        """1.43x-1.63x at sparsity 0.9, seq 4096, heads 4 (paper text)."""
        ratios = [
            t(self.CFG, VECTOR_SPARSE) / t(self.CFG, b)
            for b in (MAGICUBE_16_8, MAGICUBE_8_8, MAGICUBE_4_4)
        ]
        assert all(1.2 < r < 2.3 for r in ratios)

    def test_speedup_grows_with_sequence_length(self):
        """Paper: 1.62x-1.92x at seq 8192 > 1.43x-1.63x at 4096."""
        short = InferenceConfig(seq_len=4096, num_heads=4, batch=2, sparsity=0.9)
        long = InferenceConfig(seq_len=8192, num_heads=4, batch=2, sparsity=0.9)
        r_short = t(short, VECTOR_SPARSE) / t(short, MAGICUBE_16_8)
        r_long = t(long, VECTOR_SPARSE) / t(long, MAGICUBE_16_8)
        assert r_long > r_short


class TestScaling:
    def test_heads_double_runtime(self):
        """Paper: heads 4 -> 8 increases runtime ~2x for all schemes."""
        for backend in (PYTORCH_DENSE, VECTOR_SPARSE, MAGICUBE_8_8):
            a = t(InferenceConfig(4096, 4, 2, 0.9), backend)
            b = t(InferenceConfig(4096, 8, 2, 0.9), backend)
            assert 1.5 < b / a < 2.6

    def test_batch_scales(self):
        # 4x the batch -> more than 2x the latency (host dispatch is the
        # batch-independent floor)
        a = t(InferenceConfig(4096, 4, 2, 0.9), MAGICUBE_8_8)
        b = t(InferenceConfig(4096, 4, 8, 0.9), MAGICUBE_8_8)
        assert b > 2.0 * a

    def test_higher_sparsity_faster_sparse_only(self):
        lo = InferenceConfig(4096, 4, 2, 0.9)
        hi = InferenceConfig(4096, 4, 2, 0.95)
        assert t(hi, MAGICUBE_8_8) < t(lo, MAGICUBE_8_8)
        assert t(hi, VECTOR_SPARSE) < t(lo, VECTOR_SPARSE)
        assert t(hi, PYTORCH_DENSE) == pytest.approx(t(lo, PYTORCH_DENSE), rel=1e-6)


class TestOOM:
    """Paper Fig. 17: dense OOMs at seq 8192 with batch 8."""

    def test_dense_oom_seq8192_batch8(self):
        for heads in (4, 8):
            cfg = InferenceConfig(seq_len=8192, num_heads=heads, batch=8, sparsity=0.9)
            with pytest.raises(DenseOOM):
                estimate_latency(cfg, PYTORCH_DENSE)

    def test_dense_ok_smaller(self):
        for cfg in (
            InferenceConfig(8192, 4, 2, 0.9),
            InferenceConfig(4096, 8, 8, 0.9),
        ):
            estimate_latency(cfg, PYTORCH_DENSE)  # must not raise

    def test_sparse_never_oom(self):
        cfg = InferenceConfig(seq_len=8192, num_heads=8, batch=8, sparsity=0.9)
        for backend in (VECTOR_SPARSE, MAGICUBE_8_8, MAGICUBE_4_4):
            estimate_latency(cfg, backend)


class TestResultStructure:
    def test_components_present(self):
        res = estimate_latency(InferenceConfig(4096, 4, 2, 0.9), MAGICUBE_8_8)
        assert set(res.components) == {"projections+mlp", "attention", "host_dispatch"}
        assert res.total_s == pytest.approx(sum(res.components.values()))

    def test_all_backends_labelled(self):
        labels = {b.label for b in ALL_BACKENDS}
        assert "PyTorch (cuDNN, fp16)" in labels
        assert "Magicube (16b-8b)" in labels
        assert len(labels) == 6
