"""Tests for the classifier, the synthetic LRA task, and training."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.transformer.lra import LRATask, bayes_accuracy, dataset, generate_split
from repro.transformer.masks import random_vector_mask
from repro.transformer.model import SparseTransformerClassifier, TransformerConfig
from repro.transformer.training import (
    evaluate,
    evaluate_quantized,
    train,
)

SMALL = TransformerConfig(
    vocab=8, seq_len=32, d_model=16, num_heads=2, num_layers=1, d_ff=32
)


class TestLRATask:
    def test_deterministic(self):
        t = LRATask(seq_len=64)
        x1, y1 = generate_split(t, 100, split_seed=1)
        x2, y2 = generate_split(t, 100, split_seed=1)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_splits_differ(self):
        t = LRATask(seq_len=64)
        x1, _ = generate_split(t, 100, split_seed=1)
        x2, _ = generate_split(t, 100, split_seed=2)
        assert not np.array_equal(x1, x2)

    def test_roughly_balanced(self):
        t = LRATask(seq_len=64)
        _, y = generate_split(t, 2000, split_seed=3)
        assert 0.3 < y.mean() < 0.7

    def test_bayes_ceiling(self):
        assert bayes_accuracy(LRATask(label_noise=0.35)) == pytest.approx(0.65)

    def test_dataset_shapes(self):
        t = LRATask(seq_len=32)
        xtr, ytr, xte, yte = dataset(t, n_train=64, n_test=16)
        assert xtr.shape == (64, 32) and yte.shape == (16,)


class TestModel:
    def test_forward_shape(self):
        model = SparseTransformerClassifier(SMALL, seed=0)
        ids = np.random.default_rng(0).integers(0, 8, size=(4, 32))
        assert model.forward(ids).shape == (4, 2)

    def test_rejects_wrong_length(self):
        model = SparseTransformerClassifier(SMALL, seed=0)
        with pytest.raises(ShapeError):
            model.forward(np.zeros((2, 16), dtype=np.int64))

    def test_backward_touches_all_parameters(self):
        model = SparseTransformerClassifier(SMALL, seed=0)
        ids = np.random.default_rng(1).integers(0, 8, size=(4, 32))
        logits = model.forward(ids)
        model.backward(np.ones_like(logits))
        grads = [float(np.abs(p.grad).sum()) for p in model.parameters()]
        assert all(g > 0 for g in grads)

    def test_quantized_forward_runs(self):
        model = SparseTransformerClassifier(SMALL, seed=0)
        mask = random_vector_mask(32, 0.3, vector_length=8, seed=1)
        ids = np.random.default_rng(2).integers(0, 8, size=(2, 32))
        q = {"mask": mask, "softmax_bits": 8, "qkv_bits": 8, "use_kernels": False}
        out = model.forward(ids, quantized=q)
        assert np.isfinite(out).all()


class TestTraining:
    def test_loss_decreases(self):
        task = LRATask(vocab=8, seq_len=32, label_noise=0.1)
        x, y = generate_split(task, 256, split_seed=1)
        result = train(SMALL, x, y, epochs=3, batch=32, lr=2e-3, seed=0)
        head = np.mean(result.losses[:4])
        tail = np.mean(result.losses[-4:])
        assert tail < head

    def test_learns_above_chance(self):
        task = LRATask(vocab=8, seq_len=32, label_noise=0.1)
        xtr, ytr = generate_split(task, 512, split_seed=1)
        xte, yte = generate_split(task, 256, split_seed=2)
        result = train(SMALL, xtr, ytr, epochs=6, batch=32, lr=2e-3, seed=0)
        acc = evaluate(result.model, xte, yte)
        assert acc > 0.55

    def test_sparse_mask_trains(self):
        task = LRATask(vocab=8, seq_len=32, label_noise=0.1)
        xtr, ytr = generate_split(task, 256, split_seed=1)
        mask = random_vector_mask(32, 0.3, vector_length=8, seed=4)
        result = train(SMALL, xtr, ytr, mask=mask, epochs=2, batch=32, seed=0)
        assert np.isfinite(result.losses).all()

    def test_quantized_eval_close_to_float(self):
        task = LRATask(vocab=8, seq_len=32, label_noise=0.1)
        xtr, ytr = generate_split(task, 512, split_seed=1)
        xte, yte = generate_split(task, 128, split_seed=2)
        mask = random_vector_mask(32, 0.3, vector_length=8, seed=4)
        result = train(SMALL, xtr, ytr, mask=mask, epochs=5, batch=32, lr=2e-3, seed=0)
        float_acc = evaluate(result.model, xte, yte, mask=mask)
        q_acc = evaluate_quantized(result.model, xte, yte, mask, 16, 8)
        assert abs(float_acc - q_acc) < 0.12
